"""Composite-strategy fuzzing: diverse graph shapes through all exact solvers.

The per-family tests draw from one generator each; this fuzzer composes a
hypothesis strategy over *shapes* (uniform, hub-and-spoke, two-block,
parallel-edge soup, near-tree) and checks the full solver agreement plus
side certification on whatever comes out — the widest net in the suite.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import minimum_cut
from repro.core import EXACT_ALGORITHMS
from repro.graph import check_graph, from_edges, is_connected

from .conftest import oracle_mincut


@st.composite
def graph_shapes(draw):
    shape = draw(st.sampled_from(["uniform", "hub", "two_block", "soup", "near_tree"]))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    if shape == "uniform":
        n = int(rng.integers(2, 16))
        m = int(rng.integers(0, 2 * n))
        us = rng.integers(0, n, size=m)
        vs = rng.integers(0, n, size=m)
        ws = rng.integers(1, 8, size=m)
    elif shape == "hub":
        n = int(rng.integers(3, 14))
        us = np.zeros(n - 1, dtype=np.int64)
        vs = np.arange(1, n)
        ws = rng.integers(1, 10, size=n - 1)
        extra = int(rng.integers(0, n))
        us = np.concatenate((us, rng.integers(1, n, size=extra)))
        vs = np.concatenate((vs, rng.integers(1, n, size=extra)))
        ws = np.concatenate((ws, rng.integers(1, 10, size=extra)))
    elif shape == "two_block":
        half = int(rng.integers(2, 7))
        n = 2 * half
        edges = []
        for base in (0, half):
            for i in range(half):
                for j in range(i + 1, half):
                    if rng.random() < 0.8:
                        edges.append((base + i, base + j, int(rng.integers(1, 6))))
        bridges = int(rng.integers(1, 4))
        for _ in range(bridges):
            edges.append(
                (int(rng.integers(0, half)), int(rng.integers(half, n)), int(rng.integers(1, 4)))
            )
        us, vs, ws = (np.array(x) for x in zip(*edges))
    elif shape == "soup":
        n = int(rng.integers(2, 8))
        m = int(rng.integers(1, 30))  # heavy duplication expected
        us = rng.integers(0, n, size=m)
        vs = rng.integers(0, n, size=m)
        ws = rng.integers(1, 5, size=m)
    else:  # near_tree
        n = int(rng.integers(2, 16))
        perm = rng.permutation(n)
        us = np.array([perm[int(rng.integers(i))] for i in range(1, n)], dtype=np.int64)
        vs = perm[1:]
        ws = rng.integers(1, 9, size=n - 1)
        extra = int(rng.integers(0, 3))
        us = np.concatenate((us, rng.integers(0, n, size=extra)))
        vs = np.concatenate((vs, rng.integers(0, n, size=extra)))
        ws = np.concatenate((ws, rng.integers(1, 9, size=extra)))
    return from_edges(n, us, vs, ws), seed


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=graph_shapes())
def test_fuzz_all_exact_solvers(data):
    g, seed = data
    check_graph(g)
    if g.n < 2:
        return
    values = {}
    for algo in EXACT_ALGORITHMS:
        res = minimum_cut(g, algorithm=algo, rng=seed)
        values[algo] = res.value
        if res.side is not None:
            assert res.verify(g), f"{algo} side does not certify"
    assert len(set(values.values())) == 1, f"disagreement: {values}"
    if is_connected(g):
        assert next(iter(values.values())) == oracle_mincut(g)
    else:
        assert next(iter(values.values())) == 0
