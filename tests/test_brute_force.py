"""Tests for the brute-force reference solver — and through it, an
oracle-independent cross-check of every exact solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import minimum_cut
from repro.baselines import brute_force_mincut
from repro.core import EXACT_ALGORITHMS
from repro.generators import connected_gnm, gnm
from repro.graph import from_edges


class TestBruteForce:
    def test_canonical(self, dumbbell, weighted_cycle, clique6):
        assert brute_force_mincut(dumbbell).value == 1
        assert brute_force_mincut(weighted_cycle).value == 2
        assert brute_force_mincut(clique6).value == 5

    def test_side_certified(self, dumbbell):
        res = brute_force_mincut(dumbbell)
        assert res.verify(dumbbell)

    def test_disconnected(self, two_triangles_disconnected):
        res = brute_force_mincut(two_triangles_disconnected)
        assert res.value == 0
        assert res.verify(two_triangles_disconnected)

    def test_size_limit(self):
        with pytest.raises(ValueError):
            brute_force_mincut(gnm(23, 40, rng=0))
        with pytest.raises(ValueError):
            brute_force_mincut(from_edges(1, [], []))

    def test_cut_count_stat(self, triangle):
        res = brute_force_mincut(triangle)
        assert res.stats["cuts_enumerated"] == 3


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_exact_solvers_match_brute_force(seed):
    """Oracle-independence: all exact solvers equal exhaustive enumeration."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 12))
    m = min(int(rng.integers(n - 1, 3 * n)), n * (n - 1) // 2)
    g = connected_gnm(n, m, rng=rng, weights=(1, 7))
    expected = brute_force_mincut(g).value
    for algo in EXACT_ALGORITHMS:
        got = minimum_cut(g, algorithm=algo, rng=seed).value
        assert got == expected, f"{algo}: {got} != {expected}"
