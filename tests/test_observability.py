"""Observability subsystem tests: tracer, event taxonomy, schema contracts.

Five acceptance properties from the issue:

1. Event ordering — a multi-round solve emits ``solve_start`` first,
   ``solve_end`` last, with strictly increasing ``seq``.
2. λ̂ provenance — the final ``lambda_update`` equals the returned minimum
   cut, and the JSONL sink validates against the taxonomy.
3. Fault visibility — a :class:`~repro.runtime.FaultPlan` that degrades a
   round produces ``worker_event``/``degradation`` trace events matching
   ``stats``.
4. Zero overhead when disabled — a ``tracer=None`` run adds no stats keys,
   returns bit-identical results, and trace event volume is independent of
   edge count (round/pass granularity, never per edge).
5. Stats schema v2 — ``parallel_mincut`` returns the identical key set on
   every return path, including the early exits that used to skip the tail.
"""

import json

import numpy as np
import pytest

from repro.core.api import TRACEABLE_ALGORITHMS, minimum_cut
from repro.core.capforest import capforest
from repro.core.mincut import parallel_mincut
from repro.experiments.harness import make_sequential_variants, time_variant
from repro.generators import connected_gnm
from repro.graph import from_edges
from repro.observability import (
    BENCH_SCHEMA_VERSION,
    EVENT_KINDS,
    LAMBDA_PROVENANCE,
    PARCUT_STATS_KEYS,
    SchemaError,
    Tracer,
    validate_bench_payload,
    validate_parcut_stats,
    validate_trace_events,
    validate_trace_file,
)
from repro.runtime import FaultPlan

from .conftest import oracle_mincut


@pytest.fixture(scope="module")
def trace_graph():
    g = connected_gnm(120, 420, rng=3, weights=(1, 6))
    return g, oracle_mincut(g)


def two_path_graph():
    """4-cycle, mincut 2 — collapses almost immediately."""
    return from_edges(4, [0, 1, 2, 3], [1, 2, 3, 0], [1, 1, 1, 1])


def disconnected_graph():
    return from_edges(4, [0, 2], [1, 3], [3, 3])


class TestEventStream:
    def test_ordering_and_span_structure(self, trace_graph):
        g, truth = trace_graph
        tr = Tracer()
        res = parallel_mincut(g, workers=3, rng=0, tracer=tr)
        assert res.value == truth
        evs = tr.events()
        assert evs[0]["kind"] == "solve_start"
        assert evs[-1]["kind"] == "solve_end"
        seqs = [e["seq"] for e in evs]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert all(e["kind"] in EVENT_KINDS for e in evs)
        # every round span is bracketed: round_start <= round_end counts
        starts = tr.events("round_start")
        ends = tr.events("round_end")
        assert len(starts) == len(ends) == res.stats["rounds"]
        # timestamps are monotone (non-decreasing; perf_counter rounding)
        ts = [e["t"] for e in evs]
        assert all(b >= a for a, b in zip(ts, ts[1:]))

    def test_final_lambda_matches_result(self, trace_graph):
        g, truth = trace_graph
        tr = Tracer()
        res = parallel_mincut(g, workers=3, rng=1, tracer=tr)
        lam_events = tr.events("lambda_update")
        assert lam_events, "a solve must emit at least the min-degree bound"
        assert lam_events[-1]["value"] == res.value == truth
        assert all(e["provenance"] in LAMBDA_PROVENANCE for e in lam_events)
        # the trajectory is non-increasing: bounds only ever improve
        vals = [e["value"] for e in lam_events]
        assert all(b <= a for a, b in zip(vals, vals[1:]))
        summary = validate_trace_events(tr.events())
        assert summary["final_lambda"] == res.value

    def test_jsonl_sink_validates(self, trace_graph, tmp_path):
        g, truth = trace_graph
        path = tmp_path / "trace.jsonl"
        with Tracer(sink=path) as tr:
            res = parallel_mincut(g, workers=2, rng=2, tracer=tr)
        summary = validate_trace_file(path)
        assert summary["final_lambda"] == res.value == truth
        assert summary["events"] == tr.n_emitted
        assert summary["by_kind"]["solve_start"] == 1
        assert summary["by_kind"]["solve_end"] == 1

    @pytest.mark.parametrize("algorithm", TRACEABLE_ALGORITHMS)
    def test_every_traceable_algorithm_emits(self, trace_graph, algorithm):
        g, truth = trace_graph
        tr = Tracer()
        res = minimum_cut(g, algorithm=algorithm, rng=0, tracer=tr)
        assert res.value == truth
        assert tr.n_emitted > 0
        validate_trace_events(tr.events())

    def test_unknown_kind_and_provenance_rejected(self):
        tr = Tracer()
        with pytest.raises(ValueError, match="unknown event kind"):
            tr.emit("made_up_kind")
        with pytest.raises(ValueError, match="provenance"):
            tr.lambda_update(3, "vibes")

    def test_ring_bounded_seq_keeps_counting(self):
        tr = Tracer(ring_size=4)
        for i in range(10):
            tr.emit("round_start", round=i)
        assert tr.n_emitted == 10
        evs = tr.events()
        assert len(evs) == 4
        assert [e["round"] for e in evs] == [6, 7, 8, 9]


class TestFaultVisibility:
    def test_degraded_round_appears_in_trace(self, trace_graph):
        g, truth = trace_graph
        plan = FaultPlan.kill(range(3), executors=("threads",))
        tr = Tracer()
        res = parallel_mincut(
            g, workers=3, executor="threads", rng=0, fault_plan=plan, tracer=tr
        )
        assert res.value == truth
        assert res.stats["degradations"], "the plan kills every thread worker"
        degr = tr.events("degradation")
        assert degr, "degradation must be visible in the trace, not only stats"
        assert degr[0]["from_executor"] == "threads"
        assert degr[0]["to_executor"] == "serial"
        assert res.stats["final_executor"] == "serial"
        # the final solve_end names the executor that actually finished
        assert tr.last("solve_end")["final_executor"] == "serial"

    def test_worker_events_mirrored(self, trace_graph):
        g, truth = trace_graph
        plan = FaultPlan.kill([1], after_pops=3, executors=("threads",))
        tr = Tracer()
        res = parallel_mincut(
            g, workers=3, executor="threads", rng=0, fault_plan=plan, tracer=tr
        )
        assert res.value == truth
        traced = tr.events("worker_event")
        assert traced, "lost workers must surface as worker_event records"
        # stats keeps the raw supervisor dicts; the trace renames their
        # "kind" to "event" (the tracer's own kind is "worker_event")
        stats_kinds = sorted(ev["kind"] for ev in res.stats["worker_events"])
        trace_kinds = sorted(ev["event"] for ev in traced)
        assert stats_kinds == trace_kinds


class TestZeroOverheadWhenDisabled:
    def test_no_trace_keys_in_stats(self, trace_graph):
        g, _ = trace_graph
        res = parallel_mincut(g, workers=2, rng=0)
        assert set(res.stats) == PARCUT_STATS_KEYS

    def test_capforest_parity_with_and_without_tracer(self, trace_graph):
        g, _ = trace_graph
        lam = g.min_weighted_degree()[1]
        plain = capforest(g, lam, pq_kind="bqueue", rng=0)
        traced = capforest(g, lam, pq_kind="bqueue", rng=0, tracer=Tracer())
        assert plain.lambda_hat == traced.lambda_hat
        assert plain.n_marked == traced.n_marked
        assert plain.scan_order == traced.scan_order
        assert plain.edges_scanned == traced.edges_scanned
        assert np.array_equal(plain.uf.labels(), traced.uf.labels())

    def test_event_volume_independent_of_edge_count(self):
        """Pass granularity: 4x the edges must not mean more trace events."""
        counts = {}
        for m in (300, 1200):
            g = connected_gnm(100, m, rng=5, weights=(1, 4))
            tr = Tracer()
            capforest(g, g.min_weighted_degree()[1], pq_kind="bqueue", rng=0, tracer=tr)
            counts[m] = tr.n_emitted
        assert counts[300] == counts[1200] == 1

    def test_parallel_mincut_parity_with_and_without_tracer(self, trace_graph):
        g, _ = trace_graph
        plain = parallel_mincut(g, workers=3, rng=4)
        traced = parallel_mincut(g, workers=3, rng=4, tracer=Tracer())
        assert plain.value == traced.value
        for key in ("rounds", "total_work", "pq_pops", "edges_scanned"):
            assert plain.stats[key] == traced.stats[key]


class TestStatsSchemaV2:
    def every_return_path(self, trace_graph):
        g, _ = trace_graph
        return {
            "multi-round": parallel_mincut(g, workers=3, rng=0),
            "no-viecut": parallel_mincut(g, workers=3, rng=0, use_viecut=False),
            "disconnected": parallel_mincut(disconnected_graph(), rng=0),
            "tiny": parallel_mincut(two_path_graph(), rng=0),
        }

    def test_key_set_identical_on_every_path(self, trace_graph):
        results = self.every_return_path(trace_graph)
        key_sets = {name: frozenset(res.stats) for name, res in results.items()}
        assert all(ks == PARCUT_STATS_KEYS for ks in key_sets.values()), key_sets
        for res in results.values():
            validate_parcut_stats(res.stats)
            assert res.stats["stats_schema"] == 2

    def test_early_exits_carry_finalized_fields(self, trace_graph):
        results = self.every_return_path(trace_graph)
        for name, res in results.items():
            # the fields that used to be missing on the early exits
            assert res.stats["final_executor"] == "serial", name
            assert "modeled_speedup" in res.stats, name
            assert set(res.stats["phase_seconds"]) == {
                "viecut", "capforest", "seq_fallback", "sw_fallback", "contract"
            }, name
        assert results["disconnected"].value == 0
        assert results["disconnected"].stats["rounds"] == 0

    def test_phase_seconds_account_for_work(self, trace_graph):
        g, _ = trace_graph
        res = parallel_mincut(g, workers=3, rng=0)
        phases = res.stats["phase_seconds"]
        assert all(v >= 0.0 for v in phases.values())
        assert phases["viecut"] > 0.0
        if res.stats["rounds"]:
            assert phases["capforest"] > 0.0

    def test_validator_rejects_missing_keys(self, trace_graph):
        g, _ = trace_graph
        stats = dict(parallel_mincut(g, rng=0).stats)
        del stats["modeled_speedup"]
        with pytest.raises(SchemaError, match="modeled_speedup"):
            validate_parcut_stats(stats)
        stats = dict(parallel_mincut(g, rng=0).stats)
        stats["stats_schema"] = 1
        with pytest.raises(SchemaError, match="stats_schema"):
            validate_parcut_stats(stats)


class TestRegistryDifferentiation:
    def test_cgkls_and_hnss_are_distinct_configurations(self, trace_graph):
        """The registry bug: both closures were byte-identical.  They now pin
        different kernels (same algorithm, different implementation tuning,
        mirroring the two paper codes) — equal values, distinct configs."""
        g, truth = trace_graph
        variants = make_sequential_variants()
        cgkls = variants["NOI-CGKLS"](g, 0)
        hnss = variants["NOI-HNSS"](g, 0)
        assert cgkls.value == hnss.value == truth
        assert cgkls.stats["kernel"] == "vector"
        assert hnss.stats["kernel"] == "scalar"
        # same algorithm ⇒ identical operation counts (kernel parity)
        for key in ("pq_pops", "pq_pushes", "edges_scanned", "rounds"):
            assert cgkls.stats[key] == hnss.stats[key]
        # both remain the unbounded-heap baseline (figure 3's comparison
        # against the bounded variants depends on this)
        assert cgkls.stats["bounded"] is False
        assert hnss.stats["bounded"] is False

    def test_time_variant_trace_summary(self, trace_graph):
        g, truth = trace_graph
        variants = make_sequential_variants()
        rec = time_variant("NOI-HNSS", variants["NOI-HNSS"], g, "t", trace=True)
        assert rec.value == truth
        assert rec.trace_summary is not None
        assert rec.trace_summary["final_lambda"] == truth
        # untraced records stay clean
        rec = time_variant("NOI-HNSS", variants["NOI-HNSS"], g, "t")
        assert rec.trace_summary is None

    def test_ho_variant_tolerates_tracer(self, trace_graph):
        g, truth = trace_graph
        variants = make_sequential_variants()
        rec = time_variant("HO-CGKLS", variants["HO-CGKLS"], g, "t", trace=True)
        assert rec.value == truth
        assert rec.trace_summary == {
            "events": 0, "by_kind": {}, "lambda_trajectory": [], "final_lambda": None,
        }


class TestBenchSchema:
    def good_payload(self):
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "benchmark": "capforest-kernels",
            "graph": {"name": "g"},
            "records": [
                {"variant": "capforest", "kernel": "scalar",
                 "executor": "sequential", "wall_s": 0.5},
            ],
        }

    def test_valid_payload_passes(self):
        validate_bench_payload(self.good_payload())

    def test_missing_fields_rejected(self):
        payload = self.good_payload()
        del payload["schema_version"]
        with pytest.raises(SchemaError, match="schema_version"):
            validate_bench_payload(payload)
        payload = self.good_payload()
        del payload["records"][0]["variant"]
        with pytest.raises(SchemaError, match="variant"):
            validate_bench_payload(payload)
        payload = self.good_payload()
        payload["records"][0]["wall_s"] = 0.0
        with pytest.raises(SchemaError, match="wall_s"):
            validate_bench_payload(payload)

    def test_committed_bench_record_validates(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_parcut.json"
        if not path.exists():
            pytest.skip("no committed benchmark record")
        payload = validate_bench_payload(json.loads(path.read_text()))
        assert {rec["kernel"] for rec in payload["records"]} == {"scalar", "vector"}


class TestCli:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_metis

        g = connected_gnm(80, 240, rng=1, weights=(1, 5))
        write_metis(g, tmp_path / "g.graph")
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        rc = main([
            "--algorithm", "parcut", "--workers", "2",
            "--trace", str(trace), "--metrics-json", str(metrics),
            str(tmp_path / "g.graph"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        value = int(out.split("mincut")[1].split()[0])
        summary = validate_trace_file(trace)
        assert summary["final_lambda"] == value
        doc = json.loads(metrics.read_text())
        assert doc["schema_version"] == 2
        assert doc["value"] == value
        assert doc["trace_summary"]["final_lambda"] == value
        validate_parcut_stats(doc["stats"])

    def test_trace_rejected_for_untraceable_algorithm(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_metis

        write_metis(connected_gnm(20, 40, rng=0), tmp_path / "g.graph")
        rc = main([
            "--algorithm", "stoer-wagner", "--trace", str(tmp_path / "t.jsonl"),
            str(tmp_path / "g.graph"),
        ])
        assert rc == 2
        assert "traceable" in capsys.readouterr().err
