"""Tests for ParCut (Algorithm 2): exactness across executors and configs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mincut import parallel_mincut
from repro.generators import connected_gnm
from repro.graph import from_edges

from .conftest import oracle_mincut


class TestCanonical:
    @pytest.mark.parametrize("pq", ["bstack", "bqueue", "heap"])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_dumbbell(self, dumbbell, pq, workers):
        res = parallel_mincut(dumbbell, workers=workers, pq_kind=pq, rng=0)
        assert res.value == 1
        assert res.verify(dumbbell)

    def test_weighted_cycle(self, weighted_cycle):
        res = parallel_mincut(weighted_cycle, workers=2, rng=0)
        assert res.value == 2
        assert res.verify(weighted_cycle)

    def test_two_vertices(self, two_vertices):
        res = parallel_mincut(two_vertices, workers=2, rng=0)
        assert res.value == 7

    def test_disconnected(self, two_triangles_disconnected):
        res = parallel_mincut(two_triangles_disconnected, rng=0)
        assert res.value == 0
        assert res.verify(two_triangles_disconnected)

    def test_single_vertex_rejected(self):
        with pytest.raises(ValueError):
            parallel_mincut(from_edges(1, [], []))


class TestConfigurations:
    def test_no_viecut_seed(self, dumbbell):
        res = parallel_mincut(dumbbell, use_viecut=False, rng=0)
        assert res.value == 1
        assert res.stats["viecut_value"] is None
        assert res.algorithm.endswith("-noseed")

    def test_viecut_seed_recorded(self, dumbbell):
        res = parallel_mincut(dumbbell, use_viecut=True, rng=0)
        assert res.stats["viecut_value"] is not None
        assert res.stats["viecut_value"] >= 1

    def test_stats_work_model(self):
        rng = np.random.default_rng(2)
        g = connected_gnm(60, 150, rng=rng)
        res = parallel_mincut(g, workers=4, use_viecut=False, rng=3)
        if res.stats["makespan_work"] > 0:
            assert res.stats["modeled_speedup"] >= 1.0
            assert res.stats["total_work"] >= res.stats["makespan_work"]

    def test_compute_side_false(self, dumbbell):
        res = parallel_mincut(dumbbell, rng=0, compute_side=False)
        assert res.side is None
        assert res.value == 1

    def test_reproducible(self, dumbbell):
        r1 = parallel_mincut(dumbbell, workers=3, rng=5)
        r2 = parallel_mincut(dumbbell, workers=3, rng=5)
        assert r1.value == r2.value


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    workers=st.integers(1, 4),
    pq=st.sampled_from(["bstack", "bqueue", "heap"]),
    use_viecut=st.booleans(),
)
def test_property_matches_oracle_serial(seed, workers, pq, use_viecut):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 24))
    m = min(int(rng.integers(n - 1, 3 * n)), n * (n - 1) // 2)
    g = connected_gnm(n, m, rng=rng, weights=(1, 8))
    res = parallel_mincut(
        g, workers=workers, pq_kind=pq, use_viecut=use_viecut, executor="serial", rng=rng
    )
    assert res.value == oracle_mincut(g)
    assert res.verify(g)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_matches_oracle_threads(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 30))
    m = min(int(rng.integers(n, 4 * n)), n * (n - 1) // 2)
    g = connected_gnm(n, m, rng=rng, weights=(1, 6))
    res = parallel_mincut(g, workers=3, executor="threads", rng=rng)
    assert res.value == oracle_mincut(g)
    assert res.verify(g)


def test_processes_executor_exact():
    rng = np.random.default_rng(31)
    for _ in range(3):
        g = connected_gnm(50, 120, rng=rng, weights=(1, 5))
        res = parallel_mincut(g, workers=3, executor="processes", rng=rng)
        assert res.value == oracle_mincut(g)
        assert res.verify(g)
