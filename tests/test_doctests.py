"""Doctest runner for the modules whose docstrings carry runnable examples.

Keeps the README-style snippets in docstrings honest: if an API example in
a docstring drifts from the implementation, this test fails.
"""

import doctest

import pytest

import repro
import repro.graph.builder
import repro.utils.timers

MODULES = [repro.graph.builder, repro.utils.timers]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests collected from {module.__name__}"


def test_package_docstring_example():
    """The `import repro` docstring example, executed literally."""
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
