"""Tests for parallel graph contraction (paper §3.2).

The contract under test: :func:`parallel_contract_by_labels` is
*observationally identical* to the sequential
:func:`~repro.graph.contract.contract_by_labels` — same CSR arrays, same
label passthrough — with only the evaluation strategy differing.  Both
paths emit key-sorted arrays, so equality is asserted on the arrays
directly, not up to permutation.

Three behaviours need direct coverage beyond parity:

* chunk boundaries — worker counts that do not divide ``num_arcs`` evenly
  must not double-count or drop boundary arcs;
* the ``PARALLEL_CONTRACT_MIN_ARCS`` switch and the ``workers=1``
  degenerate case delegate to the sequential path outright;
* a lost aggregation chunk degrades the whole call to the sequential path
  (contraction chunks are not droppable the way CAPFOREST marks are).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.graph.parallel_contract as pc_mod
from repro.generators.gnm import connected_gnm
from repro.graph.contract import contract_by_labels
from repro.graph.parallel_contract import (
    PARALLEL_CONTRACT_MIN_ARCS,
    parallel_contract_by_labels,
)


def _dense_labels(n: int, blocks: int, rng_seed: int) -> np.ndarray:
    rng = np.random.default_rng(rng_seed)
    raw = rng.integers(0, blocks, size=n)
    # densify: contract_by_labels requires labels covering 0..max
    _, dense = np.unique(raw, return_inverse=True)
    return dense.astype(np.int64)


@pytest.fixture(scope="module")
def big_graph():
    # comfortably above PARALLEL_CONTRACT_MIN_ARCS (2 * 17000 = 34000 arcs)
    g = connected_gnm(2000, 17_000, rng=7, weights=(1, 9))
    assert g.num_arcs >= PARALLEL_CONTRACT_MIN_ARCS
    return g


def _assert_same_contraction(got, expected):
    gg, gl = got
    eg, el = expected
    assert np.array_equal(gl, el)
    assert np.array_equal(gg.xadj, eg.xadj)
    assert np.array_equal(gg.adjncy, eg.adjncy)
    assert np.array_equal(gg.adjwgt, eg.adjwgt)


class TestParity:
    @pytest.mark.parametrize("workers", [2, 3, 5, 7])
    def test_matches_sequential_at_uneven_chunk_boundaries(self, big_graph, workers):
        # 3/5/7 do not divide 34000 arcs evenly: boundary arcs fall inside
        # chunks at odd offsets, the exact place double-count/drop bugs live
        labels = _dense_labels(big_graph.n, 40, rng_seed=workers)
        _assert_same_contraction(
            parallel_contract_by_labels(big_graph, labels, workers=workers),
            contract_by_labels(big_graph, labels),
        )

    def test_blocks_with_internal_arcs_only(self, big_graph):
        # two blocks of consecutive vertices: most arcs are intra-block and
        # must vanish; the few crossing arcs aggregate into one pair
        labels = (np.arange(big_graph.n) >= big_graph.n // 2).astype(np.int64)
        got_g, _ = parallel_contract_by_labels(big_graph, labels, workers=4)
        exp_g, _ = contract_by_labels(big_graph, labels)
        assert got_g.n == 2
        _assert_same_contraction(
            (got_g, labels), (exp_g, labels)
        )

    def test_identity_labels_preserve_graph(self, big_graph):
        labels = np.arange(big_graph.n, dtype=np.int64)
        got_g, _ = parallel_contract_by_labels(big_graph, labels, workers=4)
        assert np.array_equal(got_g.xadj, big_graph.xadj)
        assert np.array_equal(got_g.adjwgt, big_graph.adjwgt)


class TestSequentialSwitch:
    def _spy(self, monkeypatch):
        calls = []
        real = contract_by_labels

        def spy(graph, labels):
            calls.append(graph.num_arcs)
            return real(graph, labels)

        monkeypatch.setattr(pc_mod, "contract_by_labels", spy)
        return calls

    def test_small_graph_uses_sequential_path(self, monkeypatch, dumbbell):
        calls = self._spy(monkeypatch)
        assert dumbbell.num_arcs < PARALLEL_CONTRACT_MIN_ARCS
        labels = _dense_labels(dumbbell.n, 3, rng_seed=0)
        got = parallel_contract_by_labels(dumbbell, labels, workers=4)
        assert calls == [dumbbell.num_arcs]
        _assert_same_contraction(got, contract_by_labels(dumbbell, labels))

    def test_workers_1_delegates_even_above_threshold(self, monkeypatch, big_graph):
        calls = self._spy(monkeypatch)
        labels = _dense_labels(big_graph.n, 10, rng_seed=1)
        parallel_contract_by_labels(big_graph, labels, workers=1)
        assert calls == [big_graph.num_arcs]

    def test_above_threshold_stays_parallel(self, monkeypatch, big_graph):
        calls = self._spy(monkeypatch)
        labels = _dense_labels(big_graph.n, 10, rng_seed=2)
        parallel_contract_by_labels(big_graph, labels, workers=4)
        assert calls == []


class TestFaultPaths:
    def test_lost_chunk_degrades_to_sequential(self, monkeypatch, big_graph):
        # fail numpy's grouping only on worker threads: every chunk comes
        # back None and the call must fall through to the sequential path
        class WorkerHostileNumpy:
            def __getattr__(self, name):
                return getattr(np, name)

            @staticmethod
            def unique(*args, **kwargs):
                if threading.current_thread() is not threading.main_thread():
                    raise RuntimeError("injected chunk loss")
                return np.unique(*args, **kwargs)

        monkeypatch.setattr(pc_mod, "np", WorkerHostileNumpy())
        labels = _dense_labels(big_graph.n, 25, rng_seed=3)
        _assert_same_contraction(
            pc_mod.parallel_contract_by_labels(big_graph, labels, workers=3),
            contract_by_labels(big_graph, labels),
        )

    def test_bad_labels_length(self, big_graph):
        with pytest.raises(ValueError, match="labels length"):
            parallel_contract_by_labels(
                big_graph, np.zeros(3, dtype=np.int64), workers=2
            )

    def test_bad_worker_count(self, big_graph):
        with pytest.raises(ValueError, match="workers"):
            parallel_contract_by_labels(
                big_graph, np.zeros(big_graph.n, dtype=np.int64), workers=0
            )
