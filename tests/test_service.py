"""Tests for the mincut service (`repro.service`).

Three layers, matching the package:

* **framing** — the hand-rolled HTTP/1.1 subset: bounds enforced (431
  lines, 413 bodies, 501 chunked), pushback/feed semantics, keep-alive;
* **admission** — the two-budget controller in isolation: shed ordering,
  weights, drain mode, release accounting;
* **end-to-end** — a real server on a real socket via
  :class:`~repro.service.testing.ServiceThread`: solve correctness
  against the direct API, backpressure (429 + ``Retry-After``), deadline
  propagation (504 with request context), client-disconnect cancellation,
  graceful drain under load, and trace-taxonomy validation.

Fault injection reuses the engine's deterministic ``_test_fault`` hooks
(gated behind ``ServiceConfig(allow_test_faults=True)`` — production
configs reject underscore kwargs with a 400, which is itself tested).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.core.api import minimum_cut
from repro.graph.io import write_metis
from repro.observability import Tracer
from repro.observability.schema import EVENT_KINDS, validate_trace_events
from repro.runtime.errors import WorkerCrashed, WorkerTimeout
from repro.service import (
    AdmissionController,
    HttpError,
    ServiceClient,
    ServiceConfig,
    classify_failure,
    fire_concurrent,
    graph_from_json,
    graph_payload,
)
from repro.service.http import BufferedStream, encode_response, read_request
from repro.service.testing import ServiceThread

HANG = {"test_fault": "hang", "sleep_seconds": 60}


def _stream(data: bytes) -> BufferedStream:
    """An in-memory stream; call only inside a running event loop."""
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return BufferedStream(reader)


def _parse(data: bytes, max_body: int | None = None):
    async def run():
        if max_body is None:
            return await read_request(_stream(data))
        return await read_request(_stream(data), max_body=max_body)

    return asyncio.run(run())


# ---------------------------------------------------------------------------
# HTTP framing
# ---------------------------------------------------------------------------


class TestHttpFraming:
    def test_parse_simple_request(self):
        req = _parse(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET" and req.path == "/v1/healthz"
        assert req.headers["host"] == "x"
        assert req.keep_alive is True

    def test_parse_body_and_json(self):
        body = b'{"n": 2}'
        req = _parse(
            b"POST /v1/solve HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
            % (len(body), body)
        )
        assert req.json() == {"n": 2}

    def test_connection_close_header(self):
        req = _parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert req.keep_alive is False

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_eof_mid_header_is_400(self):
        with pytest.raises(HttpError) as exc_info:
            _parse(b"GET / HTTP/1.1\r\nHost: x")
        assert exc_info.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as exc_info:
            _parse(b"NONSENSE\r\n\r\n")
        assert exc_info.value.status == 400

    def test_oversized_header_line_is_431(self):
        with pytest.raises(HttpError) as exc_info:
            _parse(b"GET / HTTP/1.1\r\nX-Big: " + b"a" * 20000 + b"\r\n\r\n")
        assert exc_info.value.status == 431

    def test_chunked_body_is_501(self):
        with pytest.raises(HttpError) as exc_info:
            _parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert exc_info.value.status == 501

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as exc_info:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n",
                   max_body=10)
        assert exc_info.value.status == 413

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as exc_info:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert exc_info.value.status == 400

    def test_pushback_is_seen_before_socket(self):
        async def run():
            stream = _stream(b"tail")
            stream.push(b"head-")
            return await stream.read_chunk(16)

        assert asyncio.run(run()) == b"head-"

    def test_feed_appends_behind_push(self):
        async def run():
            stream = _stream(b"")
            stream.feed(b"first")
            stream.feed(b"-second")
            return await stream.read_chunk(64)

        assert asyncio.run(run()) == b"first-second"

    def test_read_underlying_bypasses_buffer(self):
        # the disconnect watch must observe socket EOF even while a
        # pipelined request sits in the pushback buffer
        async def run():
            stream = _stream(b"")
            stream.push(b"GET / HTTP/1.1\r\n\r\n")
            return await stream.read_underlying()

        assert asyncio.run(run()) == b""

    def test_encode_response_roundtrip(self):
        raw = encode_response(429, {"error": "shed"},
                              extra_headers={"Retry-After": "1"})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests")
        assert b"Retry-After: 1" in head
        assert json.loads(body) == {"error": "shed"}


# ---------------------------------------------------------------------------
# admission controller
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_admit_then_release(self):
        ac = AdmissionController(max_inflight=2, per_client_inflight=2)
        decision = ac.try_admit("a")
        assert decision.admitted and decision.queue_depth == 1
        ac.release("a")
        assert ac.inflight == 0

    def test_global_budget_sheds(self):
        ac = AdmissionController(max_inflight=2, per_client_inflight=2)
        ac.try_admit("a")
        ac.try_admit("b")
        decision = ac.try_admit("c")
        assert not decision.admitted
        assert decision.shed_reason == "global_inflight"
        assert decision.queue_depth == 2

    def test_per_client_budget_sheds_before_global_full(self):
        ac = AdmissionController(max_inflight=10, per_client_inflight=1)
        ac.try_admit("greedy")
        decision = ac.try_admit("greedy")
        assert decision.shed_reason == "client_queue"
        # other clients are unaffected by the greedy one
        assert ac.try_admit("polite").admitted

    def test_weight_counts_as_units(self):
        ac = AdmissionController(max_inflight=10, per_client_inflight=4)
        assert ac.try_admit("a", weight=3).admitted
        assert ac.try_admit("a", weight=2).shed_reason == "client_queue"
        assert ac.try_admit("b", weight=8).shed_reason == "global_inflight"
        ac.release("a", weight=3)
        assert ac.try_admit("b", weight=4).admitted

    def test_drain_sheds_everything(self):
        ac = AdmissionController()
        ac.try_admit("a")
        assert ac.begin_drain() == 1
        assert ac.try_admit("b").shed_reason == "draining"
        ac.release("a")  # inflight work still releases during drain
        assert ac.inflight == 0

    def test_over_release_raises(self):
        ac = AdmissionController()
        with pytest.raises(ValueError):
            ac.release("nobody")

    def test_stats_count_sheds_by_reason(self):
        ac = AdmissionController(max_inflight=1, per_client_inflight=1)
        ac.try_admit("a")
        ac.try_admit("b")
        ac.begin_drain()
        ac.try_admit("c")
        stats = ac.stats()
        assert stats["shed_total"] == 2
        assert stats["shed_by_reason"]["global_inflight"] == 1
        assert stats["shed_by_reason"]["draining"] == 1
        assert stats["draining"] is True


# ---------------------------------------------------------------------------
# request plumbing units
# ---------------------------------------------------------------------------


class TestRequestPlumbing:
    def test_graph_from_json_roundtrip(self, dumbbell):
        rebuilt = graph_from_json(graph_payload(dumbbell))
        assert rebuilt.n == dumbbell.n
        assert minimum_cut(rebuilt).value == 1

    @pytest.mark.parametrize("payload", [
        None,
        {"edges": [[0, 1]]},                      # missing n
        {"n": 0, "edges": []},                    # empty graph
        {"n": 2, "edges": [[0]]},                 # short edge row
        {"n": 2, "edges": [[0, 5, 1]]},           # endpoint out of range
        {"n": 2, "edges": [[0, 1, "x"]]},         # non-numeric weight
    ])
    def test_graph_from_json_rejections(self, payload):
        with pytest.raises(HttpError) as exc_info:
            graph_from_json(payload)
        assert exc_info.value.status == 400

    def test_classify_failure_statuses(self):
        assert classify_failure(WorkerTimeout(0, 1.0)) == ("timeout", 504)
        assert classify_failure(TimeoutError("x")) == ("timeout", 504)
        assert classify_failure(WorkerCrashed(0, 1)) == ("retryable", 500)
        assert classify_failure(ValueError("bad"))[1] == 400
        assert classify_failure(RuntimeError("boom"))[1] == 500


# ---------------------------------------------------------------------------
# end-to-end over a real socket
# ---------------------------------------------------------------------------


@pytest.fixture(scope="class")
def service():
    """One shared server for the happy-path class (pool of 2, generous
    budgets); robustness tests below build their own tight configs."""
    with ServiceThread(
        engine_kwargs={"pool_size": 2},
        config=ServiceConfig(max_inflight=16, per_client_inflight=16),
    ) as st:
        yield st


class TestServiceEndToEnd:
    def test_solve_matches_direct_api(self, service, dumbbell):
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _headers, body = client.solve(dumbbell)
            assert status == 200
            assert body["value"] == minimum_cut(dumbbell).value == 1
            assert body["n"] == 8 and body["algorithm"]

    def test_solve_include_side_returns_partition(self, service, dumbbell):
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _headers, body = client.solve(dumbbell, include_side=True)
            assert status == 200
            assert sorted(body["side"]) in ([0, 1, 2, 3], [4, 5, 6, 7])

    def test_solve_many_mixed_items(self, service, dumbbell, weighted_cycle):
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _headers, body = client.solve_many([
                {"graph": graph_payload(dumbbell)},
                {"graph": graph_payload(weighted_cycle)},
            ])
            assert status == 200
            assert [r["value"] for r in body["results"]] == [1, 2]
            assert body["failed"] == 0

    def test_solve_many_per_item_errors(self, service, dumbbell):
        # an unknown algorithm fails at solve time: the batch still
        # returns 200 with a structured per-item error entry, so one bad
        # item cannot void its siblings' results
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _headers, body = client.solve_many([
                {"graph": graph_payload(dumbbell)},
                {"graph": graph_payload(dumbbell), "algorithm": "bogus"},
            ])
            assert status == 200
            good, bad = body["results"]
            assert good["value"] == 1
            assert bad["kind"] == "invalid" and "bogus" in bad["error"]
            assert body["failed"] == 1

    def test_batch_manifest_reads_server_side(self, service, dumbbell,
                                              weighted_cycle, tmp_path):
        p1, p2 = tmp_path / "a.metis", tmp_path / "b.metis"
        write_metis(dumbbell, p1)
        write_metis(weighted_cycle, p2)
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _headers, body = client.batch([
                {"path": str(p1)},
                {"path": str(p2)},
                {"path": str(tmp_path / "missing.metis")},
            ])
            assert status == 200
            results = body["results"]
            assert [r.get("value") for r in results[:2]] == [1, 2]
            assert results[0]["path"] == str(p1)
            assert "error" in results[2] and body["failed"] == 1

    def test_healthz_running(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _headers, body = client.healthz()
            assert status == 200 and body["status"] == "running"

    def test_stats_shape(self, service, dumbbell):
        with ServiceClient("127.0.0.1", service.port) as client:
            client.solve(dumbbell)
            stats = client.stats()
            assert stats["state"] == "running"
            assert stats["service"]["admitted"] >= 1
            assert stats["admission"]["max_inflight"] == 16
            assert "cache" in stats["engine"]  # full engine stats nested

    def test_unknown_path_404(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _headers, body = client.request("GET", "/nope")
            assert status == 404

    def test_wrong_method_405(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _headers, _body = client.request("GET", "/v1/solve")
            assert status == 405

    def test_malformed_json_400(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            client._conn.request("POST", "/v1/solve", body=b"{nope",
                                 headers={"Content-Length": "5"})
            resp = client._conn.getresponse()
            body = json.loads(resp.read())
            assert resp.status == 400 and "error" in body

    def test_invalid_graph_400(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _headers, body = client.request(
                "POST", "/v1/solve", {"graph": {"n": 2, "edges": [[0, 9]]}}
            )
            assert status == 400 and "error" in body

    def test_underscore_kwargs_rejected_without_test_flag(self, service,
                                                          dumbbell):
        # allow_test_faults defaults off: fault-injection kwargs are 400s
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _headers, body = client.solve(
                dumbbell, kwargs={"_test_fault": HANG}
            )
            assert status == 400 and "_test_fault" in body["error"]

    def test_keep_alive_reuses_one_connection(self, service, dumbbell):
        with ServiceClient("127.0.0.1", service.port) as client:
            before = client.stats()["service"]["connections"]
            for _ in range(3):
                assert client.solve(dumbbell)[0] == 200
            after = client.stats()["service"]["connections"]
            assert after == before  # same keep-alive socket throughout


class TestServiceDynamicUpdates:
    def test_register_update_and_warm_resolve(self, service, dumbbell):
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _h, body = client.update("dyn-a", graph=dumbbell)
            assert status == 200
            assert body["value"] == 1 and body["version"] == 0
            assert body["warm"]["mode"] == "cold"  # first solve seeds state
            digest0 = body["digest"]

            status, _h, body = client.update(
                "dyn-a", inserts=[[3, 4, 2]], include_side=True
            )
            assert status == 200
            assert body["value"] == 3  # bridge weight 1 → 3 (= min degree)
            assert body["version"] == 1 and body["digest"] != digest0
            assert body["warm"]["mode"] in ("fast-path", "seeded",
                                            "seeded-contracted")
            # the reported side must be a genuine minimum cut of the
            # *updated* graph (several cuts tie at 3, any is acceptable)
            import numpy as np

            from repro.dynamic import apply_updates

            updated, *_ = apply_updates(dumbbell, [(3, 4, 2)], ())
            mask = np.zeros(8, dtype=bool)
            mask[body["side"]] = True
            assert updated.cut_value(mask) == 3

            status, _h, body = client.update("dyn-a", deletes=[[3, 4]])
            assert status == 200
            assert body["value"] == 0  # the dumbbell halves disconnect
            assert body["m"] == 12 and body["version"] == 2

    def test_unknown_graph_id_404(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _h, body = client.update("never-registered",
                                             inserts=[[0, 1, 1]])
            assert status == 404 and "never-registered" in body["error"]

    def test_reregister_conflict_409(self, service, dumbbell, weighted_cycle):
        with ServiceClient("127.0.0.1", service.port) as client:
            assert client.update("dyn-b", graph=dumbbell)[0] == 200
            status, _h, body = client.update("dyn-b", graph=weighted_cycle)
            assert status == 409 and "already registered" in body["error"]

    def test_malformed_batches_400(self, service, dumbbell):
        with ServiceClient("127.0.0.1", service.port) as client:
            assert client.update("dyn-c", graph=dumbbell)[0] == 200
            # wire-shape error: rows must be [u, v] / [u, v, w]
            status, _h, body = client.update("dyn-c", inserts=[[1]])
            assert status == 400 and "inserts[0]" in body["error"]
            # semantic error: deleting an absent edge classifies as invalid
            status, _h, body = client.update("dyn-c", deletes=[[0, 7]])
            assert status == 400 and body["kind"] == "invalid"
            # failed batches never mutate the handle
            status, _h, body = client.update("dyn-c")
            assert status == 200 and body["version"] == 0

    def test_missing_graph_id_400(self, service, dumbbell):
        with ServiceClient("127.0.0.1", service.port) as client:
            status, _h, body = client.request(
                "POST", "/v1/update", {"graph": graph_payload(dumbbell)}
            )
            assert status == 400 and "graph_id" in body["error"]

    def test_registry_capacity_413(self, dumbbell):
        with ServiceThread(
            engine_kwargs={"pool_size": 0},
            config=ServiceConfig(max_dynamic_graphs=1),
        ) as st, ServiceClient("127.0.0.1", st.port) as client:
            assert client.update("one", graph=dumbbell)[0] == 200
            status, _h, body = client.update("two", graph=dumbbell)
            assert status == 413 and "registry is full" in body["error"]

    def test_update_counter_in_stats(self, service, dumbbell):
        with ServiceClient("127.0.0.1", service.port) as client:
            before = client.stats()["service"].get("updates", 0)
            client.update("dyn-d", graph=dumbbell)
            client.update("dyn-d", inserts=[[0, 4, 1]])
            after = client.stats()["service"]["updates"]
            assert after == before + 2


# ---------------------------------------------------------------------------
# robustness: backpressure, deadlines, disconnects, drain
# ---------------------------------------------------------------------------


def _tight_service(tracer=None, **config_kwargs):
    defaults = dict(max_inflight=2, per_client_inflight=2,
                    allow_test_faults=True, drain_grace_s=3.0)
    defaults.update(config_kwargs)
    return ServiceThread(
        engine_kwargs={"pool_size": 1, "max_recycles": 16},
        config=ServiceConfig(**defaults),
        tracer=tracer,
    )


def _hang_payload(graph, timeout_ms: int = 20_000) -> dict:
    return {"graph": graph_payload(graph), "cache": False,
            "kwargs": {"_test_fault": HANG}, "timeout_ms": timeout_ms}


class TestBackpressure:
    def test_overload_sheds_429_with_retry_after(self, dumbbell):
        tracer = Tracer()
        with _tight_service(tracer) as st:
            hang = _hang_payload(dumbbell, timeout_ms=2_000)
            occupiers = [
                threading.Thread(
                    target=ServiceClient("127.0.0.1", st.port).request,
                    args=("POST", "/v1/solve", hang),
                )
                for _ in range(2)
            ]
            for t in occupiers:
                t.start()
            deadline = time.monotonic() + 5.0
            while (st.service.admission.inflight < 2
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            with ServiceClient("127.0.0.1", st.port) as client:
                status, headers, body = client.solve(dumbbell, cache=False)
            for t in occupiers:
                t.join()
            assert status == 429
            assert headers.get("Retry-After") == "1"
            assert body["shed_reason"] == "global_inflight"
            assert body["queue_depth"] == 2
        sheds = [e for e in tracer.events() if e["kind"] == "request_shed"]
        assert sheds and sheds[0]["shed_reason"] == "global_inflight"

    def test_per_client_budget_isolates_clients(self, dumbbell):
        # one greedy API key saturates its own queue; another key passes
        with _tight_service(max_inflight=8, per_client_inflight=1) as st:
            hang = _hang_payload(dumbbell, timeout_ms=2_000)
            greedy = threading.Thread(
                target=ServiceClient("127.0.0.1", st.port,
                                     api_key="greedy").request,
                args=("POST", "/v1/solve", hang),
            )
            greedy.start()
            deadline = time.monotonic() + 5.0
            while (st.service.admission.inflight < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            status_greedy, _h, body = ServiceClient(
                "127.0.0.1", st.port, api_key="greedy"
            ).solve(dumbbell, cache=False)
            status_polite, _h, _b = ServiceClient(
                "127.0.0.1", st.port, api_key="polite"
            ).solve(dumbbell, cache=False)
            greedy.join()
            assert status_greedy == 429 and body["shed_reason"] == "client_queue"
            assert status_polite == 200

    def test_solve_many_weighs_item_count(self, dumbbell):
        # a 3-item solve_many cannot fit a 2-unit budget: shed up front,
        # before any graph is parsed or submitted
        with _tight_service() as st:
            with ServiceClient("127.0.0.1", st.port) as client:
                status, headers, body = client.solve_many(
                    [{"graph": graph_payload(dumbbell)}] * 3
                )
            assert status == 429
            assert body["shed_reason"] == "global_inflight"
            assert "Retry-After" in headers


class TestDeadlines:
    def test_deadline_expiry_times_out_with_context(self, dumbbell):
        with _tight_service() as st:
            t0 = time.monotonic()
            with ServiceClient("127.0.0.1", st.port) as client:
                status, _headers, body = client.solve(
                    dumbbell, cache=False, timeout_ms=500,
                    kwargs={"_test_fault": HANG},
                )
            elapsed = time.monotonic() - t0
            assert status == 504
            assert body["kind"] == "timeout"
            assert body["timeout_ms"] == 500
            # the 504 body carries enough to find the request in a trace
            assert body["digest"] and body["algorithm"]
            # deadline propagated to the engine: the worker was recycled
            # within ~a dispatch cycle, not after the 60s hang
            assert elapsed < 10.0
            assert st.engine.stats()["pool"]["recycles"] >= 1

    def test_deadline_from_header(self, dumbbell):
        with _tight_service() as st:
            with ServiceClient("127.0.0.1", st.port) as client:
                status, _headers, body = client.request(
                    "POST", "/v1/solve",
                    {"graph": graph_payload(dumbbell), "cache": False,
                     "kwargs": {"_test_fault": HANG}},
                    headers={"X-Timeout-Ms": "500"},
                )
            assert status == 504 and body["timeout_ms"] == 500

    def test_timeout_ms_clamped_to_config_max(self, dumbbell):
        with _tight_service(max_timeout_ms=1_000) as st:
            with ServiceClient("127.0.0.1", st.port) as client:
                status, _headers, body = client.solve(
                    dumbbell, cache=False, timeout_ms=600_000,
                    kwargs={"_test_fault": HANG},
                )
            assert status == 504 and body["timeout_ms"] == 1_000

    def test_invalid_timeout_ms_is_400(self, dumbbell):
        with _tight_service() as st:
            with ServiceClient("127.0.0.1", st.port) as client:
                status, _headers, _body = client.solve(
                    dumbbell, timeout_ms="soon"
                )
            assert status == 400

    def test_retryable_crash_is_retried_to_success(self, dumbbell):
        # first attempt crashes the worker (exit); the service retries on
        # the recycled pool and the *second* attempt, without the fault
        # kwarg, cannot be expressed -- so instead assert the retry path
        # surfaces the crash with retry accounting after exhausting budget
        with _tight_service(retry_attempts=1) as st:
            with ServiceClient("127.0.0.1", st.port) as client:
                status, _headers, body = client.solve(
                    dumbbell, cache=False, timeout_ms=15_000,
                    kwargs={"_test_fault": {"test_fault": "exit",
                                            "exit_code": 3}},
                )
            assert status == 500
            assert body["kind"] == "retryable"
            assert body["retries"] >= 1  # the bounded retry loop ran


class TestDisconnectAndDrain:
    def test_client_disconnect_cancels_and_releases(self, dumbbell):
        tracer = Tracer()
        with _tight_service(tracer) as st:
            payload = json.dumps(_hang_payload(dumbbell)).encode()
            sock = socket.create_connection(("127.0.0.1", st.port))
            sock.sendall(
                b"POST /v1/solve HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(payload), payload)
            )
            deadline = time.monotonic() + 5.0
            while (st.service.admission.inflight < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            sock.close()  # walk away mid-solve
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = ServiceClient("127.0.0.1", st.port).stats()
                if stats["service"]["disconnects"] >= 1:
                    break
                time.sleep(0.02)
            assert stats["service"]["disconnects"] == 1
        kinds = [e["kind"] for e in tracer.events()]
        assert "client_disconnect" in kinds

    def test_drain_completes_inflight_and_rejects_new(self, dumbbell):
        tracer = Tracer()
        with _tight_service(tracer) as st:
            # a short genuine solve is inflight when the drain begins
            slow = {"graph": graph_payload(dumbbell), "cache": False,
                    "kwargs": {"_test_fault": {"test_fault": "hang",
                                               "sleep_seconds": 0.5}},
                    "timeout_ms": 20_000}
            holder: dict = {}

            def run_slow():
                client = ServiceClient("127.0.0.1", st.port)
                holder["resp"] = client.request("POST", "/v1/solve", slow)

            t = threading.Thread(target=run_slow)
            t.start()
            deadline = time.monotonic() + 5.0
            while (st.service.admission.inflight < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            summary = st.drain(grace=10.0)
            t.join()
            # the inflight request finished exactly; no cancellation needed
            status, _headers, body = holder["resp"]
            assert status == 200 and body["value"] == 1
            assert summary["drained"] == 1 and summary["cancelled"] == 0
            # new connections are refused outright (listener closed)
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", st.port), timeout=1.0)
        events = tracer.events()
        kinds = [e["kind"] for e in events]
        assert kinds.count("drain_begin") == 1
        assert kinds.count("drain_end") == 1
        assert kinds.index("drain_begin") < kinds.index("drain_end")

    def test_drain_cancels_stragglers_after_grace(self, dumbbell):
        with _tight_service() as st:
            hang = _hang_payload(dumbbell, timeout_ms=60_000)
            t = threading.Thread(
                target=ServiceClient("127.0.0.1", st.port).request,
                args=("POST", "/v1/solve", hang),
            )
            t.start()
            deadline = time.monotonic() + 5.0
            while (st.service.admission.inflight < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            summary = st.drain(grace=0.3)
            t.join()
            assert summary["cancelled"] == 1

    def test_drain_is_idempotent(self):
        with _tight_service() as st:
            first = st.drain(grace=0.1)
            second = st.drain(grace=0.1)
            assert first["cancelled"] == 0
            assert second == first  # replayed summary, not a second drain


# ---------------------------------------------------------------------------
# trace taxonomy
# ---------------------------------------------------------------------------


class TestServiceTracing:
    def test_full_lifecycle_trace_validates(self, dumbbell):
        tracer = Tracer()
        with _tight_service(tracer) as st:
            with ServiceClient("127.0.0.1", st.port) as client:
                assert client.solve(dumbbell)[0] == 200
                assert client.solve(dumbbell, timeout_ms=400, cache=False,
                                    kwargs={"_test_fault": HANG})[0] == 504
            st.drain(grace=2.0)
        events = tracer.events()
        assert all(e["kind"] in EVENT_KINDS for e in events)
        by_kind = validate_trace_events(events)["by_kind"]
        for kind in ("service_start", "request_admitted", "request_done",
                     "drain_begin", "drain_end"):
            assert by_kind.get(kind, 0) >= 1, kind
        dones = [e for e in tracer.events() if e["kind"] == "request_done"]
        assert {e["status"] for e in dones} == {200, 504}

    def test_service_stop_emitted_on_close(self, dumbbell):
        tracer = Tracer()
        with _tight_service(tracer) as st:
            ServiceClient("127.0.0.1", st.port).solve(dumbbell)
        kinds = [e["kind"] for e in tracer.events()]
        assert kinds.count("service_stop") == 1
        # service events and engine events interleave in one valid stream
        assert "engine_stop" in kinds
        validate_trace_events(tracer.events())


# ---------------------------------------------------------------------------
# concurrent load smoke (fire_concurrent is also the bench primitive)
# ---------------------------------------------------------------------------


class TestConcurrentLoad:
    def test_mixed_load_all_accounted(self, dumbbell, weighted_cycle):
        with ServiceThread(
            engine_kwargs={"pool_size": 2},
            config=ServiceConfig(max_inflight=8, per_client_inflight=8),
        ) as st:
            reqs = []
            for i in range(20):
                graph = dumbbell if i % 2 else weighted_cycle
                reqs.append({"path": "/v1/solve",
                             "payload": {"graph": graph_payload(graph)}})
            records = fire_concurrent("127.0.0.1", st.port, reqs,
                                      concurrency=4)
            assert len(records) == 20
            ok = [r for r in records if r["status"] == 200]
            shed = [r for r in records if r["status"] == 429]
            assert len(ok) + len(shed) == 20  # nothing lost or errored
            assert len(ok) >= 1
            values = {r["body"]["value"] for r in ok}
            assert values <= {1, 2}
            stats = ServiceClient("127.0.0.1", st.port).stats()
            assert stats["service"]["done_ok"] == len(ok)
            assert stats["service"]["shed"] == len(shed)
