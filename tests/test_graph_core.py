"""Tests for the CSR graph, builder, and validation invariants."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.graph import (
    Graph,
    GraphBuilder,
    check_graph,
    from_adjacency,
    from_edges,
    is_valid,
)


def triangle():
    return from_edges(3, [0, 1, 2], [1, 2, 0], [1, 2, 3])


class TestConstruction:
    def test_triangle_shape(self):
        g = triangle()
        assert g.n == 3
        assert g.m == 3
        assert g.num_arcs == 6
        check_graph(g)

    def test_neighbors_sorted(self):
        g = from_edges(4, [0, 0, 0], [3, 1, 2])
        assert list(g.neighbors(0)) == [1, 2, 3]

    def test_weights_aligned(self):
        g = triangle()
        nbrs = list(g.neighbors(0))
        wgts = list(g.weights(0))
        lookup = dict(zip(nbrs, wgts))
        assert lookup == {1: 1, 2: 3}

    def test_parallel_edges_merged(self):
        g = from_edges(2, [0, 1, 0], [1, 0, 1], [2, 3, 4])
        assert g.m == 1
        assert g.edge_weight(0, 1) == 9
        check_graph(g)

    def test_self_loops_dropped(self):
        g = from_edges(3, [0, 1], [0, 2], [5, 1])
        assert g.m == 1
        assert g.edge_weight(1, 2) == 1

    def test_default_unit_weights(self):
        g = from_edges(3, [0, 1], [1, 2])
        assert g.is_unweighted()
        assert g.total_weight() == 2

    def test_empty_graph(self):
        g = from_edges(0, [], [])
        assert g.n == 0
        assert g.m == 0

    def test_isolated_vertices(self):
        g = from_edges(5, [0], [1])
        assert g.degree(4) == 0
        assert g.weighted_degree(4) == 0
        check_graph(g)

    def test_endpoint_out_of_range(self):
        with pytest.raises(ValueError):
            from_edges(2, [0], [2])
        with pytest.raises(ValueError):
            from_edges(2, [-1], [0])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            from_edges(2, [0], [1], [0])
        with pytest.raises(ValueError):
            from_edges(2, [0], [1], [-3])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            from_edges(3, [0, 1], [1])

    def test_builder_chaining(self):
        g = GraphBuilder(3).add_edge(0, 1).add_edge(1, 2, 5).build()
        assert g.m == 2
        assert g.edge_weight(1, 2) == 5

    def test_builder_add_edges_mixed_arity(self):
        g = GraphBuilder(4).add_edges([(0, 1), (1, 2, 7), (2, 3)]).build()
        assert g.edge_weight(1, 2) == 7
        assert g.edge_weight(0, 1) == 1

    def test_from_adjacency(self):
        g = from_adjacency({0: {1: 2}, 1: {0: 2, 2: 3}, 2: {1: 3}})
        assert g.n == 3
        assert g.edge_weight(0, 1) == 2
        assert g.edge_weight(1, 2) == 3

    def test_from_adjacency_inconsistent_weight(self):
        with pytest.raises(ValueError):
            from_adjacency({0: {1: 2}, 1: {0: 5}})


class TestQueries:
    def test_degrees(self):
        g = triangle()
        assert list(g.degrees()) == [2, 2, 2]
        assert g.weighted_degree(0) == 4  # edges 0-1 (w1), 0-2 (w3)
        assert g.weighted_degree(1) == 3
        assert g.weighted_degree(2) == 5

    def test_min_weighted_degree(self):
        g = triangle()
        v, d = g.min_weighted_degree()
        assert (v, d) == (1, 3)

    def test_total_weight(self):
        assert triangle().total_weight() == 6

    def test_edges_iteration_canonical(self):
        edges = sorted(triangle().edges())
        assert edges == [(0, 1, 1), (0, 2, 3), (1, 2, 2)]

    def test_edge_arrays_roundtrip(self):
        g = triangle()
        us, vs, ws = g.edge_arrays()
        g2 = from_edges(g.n, us, vs, ws)
        assert g == g2

    def test_has_edge(self):
        g = triangle()
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 0)

    def test_edge_weight_absent(self):
        g = from_edges(3, [0], [1])
        assert g.edge_weight(0, 2) == 0

    def test_cut_value_triangle(self):
        g = triangle()
        side = np.array([True, False, False])
        # cut {0} vs {1,2}: edges 0-1 (1) + 0-2 (3)
        assert g.cut_value(side) == 4

    def test_cut_value_requires_mask_length(self):
        with pytest.raises(ValueError):
            triangle().cut_value(np.array([True]))

    def test_arc_sources(self):
        g = from_edges(3, [0, 1], [1, 2])
        src = g.arc_sources()
        assert list(src) == [0, 1, 1, 2]

    def test_copy_independent(self):
        g = triangle()
        h = g.copy()
        h.adjwgt[0] = 99
        assert g.adjwgt[0] != 99


class TestValidation:
    def test_valid_graph_passes(self):
        assert is_valid(triangle())

    def test_asymmetric_rejected(self):
        g = Graph(np.array([0, 1, 1]), np.array([1]), np.array([1]))
        assert not is_valid(g)

    def test_self_loop_rejected(self):
        g = Graph(np.array([0, 2, 2]), np.array([0, 0]), np.array([1, 1]))
        assert not is_valid(g)

    def test_weight_mismatch_rejected(self):
        g = Graph(np.array([0, 1, 2]), np.array([1, 0]), np.array([1, 2]))
        assert not is_valid(g)

    def test_parallel_arcs_rejected(self):
        g = Graph(
            np.array([0, 2, 4]),
            np.array([1, 1, 0, 0]),
            np.array([1, 1, 1, 1]),
        )
        assert not is_valid(g)


@given(
    n=st.integers(min_value=1, max_value=30),
    data=st.data(),
)
def test_property_builder_invariants(n, data):
    """Any edge soup builds into a graph satisfying all CSR invariants,
    with total weight equal to the non-self-loop input weight sum."""
    edges = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.integers(1, 100),
            ),
            max_size=120,
        )
    )
    us = [e[0] for e in edges]
    vs = [e[1] for e in edges]
    ws = [e[2] for e in edges]
    g = from_edges(n, us, vs, ws)
    check_graph(g)
    expected_weight = sum(w for u, v, w in edges if u != v)
    assert g.total_weight() == expected_weight
    # weighted degree sum = 2 * total weight
    assert int(g.weighted_degrees().sum()) == 2 * expected_weight
