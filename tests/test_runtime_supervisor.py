"""Unit tests for the supervised execution runtime (repro.runtime)."""

import numpy as np
import pytest

from repro.core.mincut import parallel_mincut
from repro.generators import connected_gnm
from repro.runtime import (
    DEGRADATION_LADDER,
    ExecutorUnavailable,
    FaultClock,
    FaultPlan,
    NoProgressError,
    RuntimeFault,
    WorkerCrashed,
    WorkerFault,
    WorkerTimeout,
    call_with_degradation,
    raise_for_events,
    worker_event,
)
from repro.runtime.supervisor import _validate_payload


class TestErrors:
    def test_taxonomy_hierarchy(self):
        for cls in (WorkerCrashed, WorkerTimeout, ExecutorUnavailable, NoProgressError):
            assert issubclass(cls, RuntimeFault)
        assert issubclass(RuntimeFault, RuntimeError)

    def test_worker_crashed_message(self):
        exc = WorkerCrashed(3, exit_code=70, detail="injected")
        assert exc.worker_id == 3
        assert exc.exit_code == 70
        assert "worker 3" in str(exc) and "70" in str(exc)

    def test_worker_timeout_message(self):
        exc = WorkerTimeout(1, 2.5)
        assert exc.worker_id == 1
        assert "2.5" in str(exc)

    def test_executor_unavailable_dominant_kind(self):
        exc = ExecutorUnavailable("processes", "x", [worker_event(0, "crashed")])
        assert exc.dominant_kind == "crashed"
        exc = ExecutorUnavailable(
            "processes", "x", [worker_event(0, "crashed"), worker_event(1, "timeout")]
        )
        assert exc.dominant_kind == "timeout"


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkerFault("explode")

    def test_scoped_to_executor(self):
        plan = FaultPlan.kill([0], executors=("processes",))
        assert plan.for_worker(0, "processes") is not None
        assert plan.for_worker(0, "threads") is None
        assert plan.for_worker(1, "processes") is None

    def test_clock_fires_once_after_pops(self):
        clock = FaultClock(WorkerFault("crash", after_pops=2))
        assert clock.tick() is None
        assert clock.tick() is None
        fault = clock.tick()
        assert fault is not None and fault.kind == "crash"
        assert clock.tick() is None  # never re-fires

    def test_clock_without_fault(self):
        clock = FaultClock(None)
        assert all(clock.tick() is None for _ in range(5))

    def test_hang_sleep_default(self):
        assert WorkerFault("hang").sleep_seconds > 100
        assert WorkerFault("hang", delay=0.1).sleep_seconds == 0.1
        assert WorkerFault("crash").sleep_seconds == 0.0


class TestPayloadValidation:
    def test_accepts_clean_payload(self):
        wid, pairs, rep = _validate_payload((1, [(0, 2)], {"a": 1}), n=3, n_workers=2)
        assert wid == 1 and pairs == [(0, 2)]

    @pytest.mark.parametrize(
        "payload",
        [
            "garbage",
            (1, [(0, 2)]),  # wrong arity
            (9, [], {}),  # worker id out of range
            (0, [(0, 5)], {}),  # pair out of range
            (0, [(0, -1)], {}),  # negative vertex
            (0, [(0, 1, 2)], {}),  # malformed pair
            (0, [], "not a dict"),
        ],
    )
    def test_rejects_corrupt_payloads(self, payload):
        with pytest.raises((ValueError, TypeError)):
            _validate_payload(payload, n=3, n_workers=2)


class TestDegradationLadder:
    def test_ladder_shape(self):
        assert DEGRADATION_LADDER["processes"] == "threads"
        assert DEGRADATION_LADDER["threads"] == "serial"
        assert DEGRADATION_LADDER["serial"] is None

    def test_degrades_until_success(self):
        seen = []

        def call(executor):
            seen.append(executor)
            if executor != "serial":
                raise ExecutorUnavailable(executor, "boom")
            return 42

        result, used = call_with_degradation(call, "processes")
        assert result == 42 and used == "serial"
        assert seen == ["processes", "threads", "serial"]

    def test_records_each_degradation(self):
        hops = []

        def call(executor):
            if executor == "processes":
                raise ExecutorUnavailable(executor, "boom")
            return 1

        call_with_degradation(
            call, "processes", on_degrade=lambda a, b, e: hops.append((a, b))
        )
        assert hops == [("processes", "threads")]

    def test_fail_policy_raises_immediately(self):
        def call(executor):
            raise ExecutorUnavailable(executor, "boom")

        with pytest.raises(ExecutorUnavailable):
            call_with_degradation(call, "processes", policy="fail")

    def test_serial_failure_exhausts_ladder(self):
        def call(executor):
            raise ExecutorUnavailable(executor, "boom")

        with pytest.raises(ExecutorUnavailable):
            call_with_degradation(call, "serial")

    def test_no_progress_is_not_degradable(self):
        def call(executor):
            raise NoProgressError("stalled")

        with pytest.raises(NoProgressError):
            call_with_degradation(call, "processes")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            call_with_degradation(lambda e: 1, "serial", policy="retry")


class TestRaiseForEvents:
    def test_timeout_dominated(self):
        with pytest.raises(WorkerTimeout):
            raise_for_events("processes", [worker_event(2, "timeout", deadline_s=1.0)])

    def test_crash_dominated(self):
        with pytest.raises(WorkerCrashed):
            raise_for_events(
                "processes",
                [worker_event(0, "crashed", exit_code=70), worker_event(1, "timeout")],
            )

    def test_empty_events(self):
        with pytest.raises(ExecutorUnavailable):
            raise_for_events("processes", [])


class TestNoProgressWatchdog:
    def test_stalled_contraction_raises(self, monkeypatch):
        """A round that fails to shrink the graph must abort, not loop."""
        import repro.core.mincut as mincut_mod

        monkeypatch.setattr(
            mincut_mod,
            "parallel_contract_by_labels",
            lambda g, labels, workers=4, kernel=None: (g, np.arange(g.n, dtype=np.int64)),
        )
        g = connected_gnm(20, 40, rng=np.random.default_rng(0), weights=(1, 4))
        with pytest.raises(NoProgressError):
            parallel_mincut(g, workers=2, rng=0)

    def test_invalid_policy_rejected(self):
        g = connected_gnm(10, 15, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            parallel_mincut(g, rng=0, on_worker_failure="shrug")


class TestCliExitCodes:
    def test_mapping(self):
        from repro.cli import (
            EXIT_NO_PROGRESS,
            EXIT_TIMEOUT,
            EXIT_WORKER_FAILURE,
            exit_code_for,
        )

        assert exit_code_for(WorkerTimeout(0, 1.0)) == EXIT_TIMEOUT
        assert exit_code_for(WorkerCrashed(0, 1)) == EXIT_WORKER_FAILURE
        assert exit_code_for(NoProgressError("x")) == EXIT_NO_PROGRESS
        assert (
            exit_code_for(ExecutorUnavailable("p", "x", [worker_event(0, "timeout")]))
            == EXIT_TIMEOUT
        )
        assert (
            exit_code_for(ExecutorUnavailable("p", "x", [worker_event(0, "crashed")]))
            == EXIT_WORKER_FAILURE
        )

    def test_flags_accepted(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph import from_edges, write_metis

        path = tmp_path / "g.graph"
        write_metis(from_edges(4, [0, 1, 2, 3], [1, 2, 3, 0]), path)
        code = main(
            [
                "--algorithm", "parcut", "--workers", "2",
                "--timeout", "30", "--on-worker-failure", "degrade",
                str(path),
            ]
        )
        assert code == 0
        assert "mincut" in capsys.readouterr().out

    def test_timeout_flag_rejected_for_sequential_solver(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph import from_edges, write_metis

        path = tmp_path / "g.graph"
        write_metis(from_edges(4, [0, 1, 2, 3], [1, 2, 3, 0]), path)
        # stoer-wagner takes no timeout kwarg: invalid usage, exit code 2
        assert main(["--algorithm", "stoer-wagner", "--timeout", "5", str(path)]) == 2
