"""Tests for Nagamochi–Ibaraki sparse certificates (repro.core.certificates)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.certificates import certificate_summary, sparse_certificate
from repro.core.noi import noi_mincut
from repro.generators import connected_gnm, gnm
from repro.graph import check_graph, from_edges

from .conftest import oracle_mincut


class TestBasics:
    def test_invalid_k(self, triangle):
        with pytest.raises(ValueError):
            sparse_certificate(triangle, 0)

    def test_invalid_start(self, triangle):
        with pytest.raises(ValueError):
            sparse_certificate(triangle, 2, start=7)

    def test_empty_graph(self):
        g = from_edges(0, [], [])
        assert sparse_certificate(g, 3).n == 0

    def test_certificate_is_subgraph(self, clique6):
        cert = sparse_certificate(clique6, 2)
        check_graph(cert)
        assert cert.n == clique6.n
        # subgraph: every certificate edge exists in G with >= weight
        for u, v, w in zip(*cert.edge_arrays()):
            assert clique6.edge_weight(int(u), int(v)) >= w

    def test_weight_bound(self):
        rng = np.random.default_rng(0)
        g = connected_gnm(40, 300, rng=rng, weights=(1, 5))
        for k in (1, 2, 3, 5):
            cert = sparse_certificate(g, k)
            assert cert.total_weight() <= k * (g.n - 1)
            assert cert.m <= k * (g.n - 1)

    def test_k1_is_spanning_forest(self):
        rng = np.random.default_rng(1)
        g = connected_gnm(30, 100, rng=rng)
        cert = sparse_certificate(g, 1)
        from repro.graph import is_connected

        assert is_connected(cert)
        assert cert.m == g.n - 1

    def test_large_k_keeps_everything(self, weighted_cycle):
        cert = sparse_certificate(weighted_cycle, 100)
        assert cert == weighted_cycle

    def test_summary(self, clique6):
        cert = sparse_certificate(clique6, 2)
        s = certificate_summary(clique6, cert, 2)
        assert s["certificate_edges"] <= s["original_edges"]
        assert s["bound"] == 2 * 5
        assert 0 < s["edge_ratio"] <= 1.0

    def test_disconnected_input(self, two_triangles_disconnected):
        cert = sparse_certificate(two_triangles_disconnected, 2)
        check_graph(cert)
        assert cert.n == 6


class TestCutPreservation:
    """The defining property: min(k, λ_cert(cut)) == min(k, λ_G(cut))
    for every cut — verified exhaustively on small graphs."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000), k=st.integers(1, 8))
    def test_property_all_cuts_preserved(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 11))
        m = min(int(rng.integers(0, 3 * n)), n * (n - 1) // 2)
        g = gnm(n, m, rng=rng, weights=(1, 5))
        cert = sparse_certificate(g, k, start=int(rng.integers(n)))
        for subset in range(1, 1 << (n - 1)):
            mask = np.array([(subset >> i) & 1 for i in range(n)], dtype=bool)
            orig = g.cut_value(mask)
            kept = cert.cut_value(mask)
            assert kept <= orig
            assert min(kept, k) == min(orig, k), (
                f"cut {subset}: orig={orig} cert={kept} k={k}"
            )

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_property_mincut_preserved_at_k_lambda_plus_1(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 16))
        m = min(int(rng.integers(n - 1, 4 * n)), n * (n - 1) // 2)
        g = connected_gnm(n, m, rng=rng, weights=(1, 6))
        lam = oracle_mincut(g)
        _, delta = g.min_weighted_degree()
        cert = sparse_certificate(g, delta + 1)
        assert oracle_mincut(cert) == lam


class TestSparsifiedNOI:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_property_sparsified_noi_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 20))
        m = min(int(rng.integers(n - 1, 4 * n)), n * (n - 1) // 2)
        g = connected_gnm(n, m, rng=rng, weights=(1, 7))
        res = noi_mincut(g, sparsify=True, rng=rng, compute_side=False)
        assert res.value == oracle_mincut(g)

    def test_sparsify_records_stats(self):
        rng = np.random.default_rng(3)
        g = connected_gnm(60, 600, rng=rng)
        res = noi_mincut(g, sparsify=True, rng=0, compute_side=False)
        assert "sparsified_m" in res.stats
        assert res.stats["sparsified_m"] <= g.m

    def test_sparsify_shrinks_when_bound_small(self):
        # dense graph plus a pendant vertex: λ̂ = 1, so the k=2 certificate
        # keeps at most 2(n-1) of the 4001 edges
        rng = np.random.default_rng(4)
        dense = connected_gnm(200, 4000, rng=rng)
        us, vs, ws = dense.edge_arrays()
        g = from_edges(
            201,
            np.concatenate((us, [0])),
            np.concatenate((vs, [200])),
            np.concatenate((ws, [1])),
        )
        res = noi_mincut(g, sparsify=True, rng=0)
        assert res.value == 1
        assert res.stats["sparsified_m"] <= 2 * 200
        assert res.verify(g)