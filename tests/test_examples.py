"""Smoke tests: the fast example scripts must run to completion.

Only the two quick examples run here (the others are exercised manually /
by the experiment harness — they take tens of seconds by design).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("script", ["quickstart.py", "network_reliability.py"])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout


def test_examples_exist():
    expected = {
        "quickstart.py",
        "network_reliability.py",
        "kcore_pipeline.py",
        "tsp_separation.py",
        "algorithm_comparison.py",
        "parallel_scaling.py",
        "all_pairs_connectivity.py",
    }
    assert expected <= {p.name for p in EXAMPLES.glob("*.py")}
