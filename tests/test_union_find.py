"""Unit and property tests for the sequential union–find."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.datastructures import UnionFind


class TestBasics:
    def test_initially_all_singletons(self):
        uf = UnionFind(5)
        assert uf.count == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_reduces_count(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.count == 3
        assert uf.same(0, 1)
        assert not uf.same(0, 2)

    def test_union_same_set_returns_false(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.count == 2

    def test_transitivity(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.same(0, 2)
        assert not uf.same(0, 3)

    def test_zero_elements(self):
        uf = UnionFind(0)
        assert uf.count == 0
        assert len(uf.labels()) == 0

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_sets_grouping(self):
        uf = UnionFind(5)
        uf.union(0, 2)
        uf.union(3, 4)
        groups = sorted(sorted(m) for m in uf.sets().values())
        assert groups == [[0, 2], [1], [3, 4]]


class TestLabels:
    def test_labels_dense_and_consistent(self):
        uf = UnionFind(6)
        uf.union(0, 3)
        uf.union(1, 4)
        labels = uf.labels()
        assert set(labels) == set(range(uf.count))
        assert labels[0] == labels[3]
        assert labels[1] == labels[4]
        assert labels[0] != labels[1]
        assert labels[2] != labels[5]

    def test_labels_after_chain(self):
        uf = UnionFind(8)
        for i in range(7):
            uf.union(i, i + 1)
        labels = uf.labels()
        assert uf.count == 1
        assert (labels == 0).all()

    def test_labels_idempotent(self):
        uf = UnionFind(5)
        uf.union(1, 2)
        first = uf.labels()
        second = uf.labels()
        assert np.array_equal(first, second)


@given(
    n=st.integers(min_value=1, max_value=60),
    data=st.data(),
)
def test_property_matches_naive_partition(n, data):
    """UnionFind agrees with a brute-force partition refinement."""
    pairs = data.draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=80,
        )
    )
    uf = UnionFind(n)
    naive = {i: {i} for i in range(n)}  # element -> its set (shared objects)
    for x, y in pairs:
        uf.union(x, y)
        if naive[x] is not naive[y]:
            merged = naive[x] | naive[y]
            for e in merged:
                naive[e] = merged
    for x in range(n):
        for y in range(x + 1, n):
            assert uf.same(x, y) == (naive[x] is naive[y])
    # count matches number of distinct sets
    assert uf.count == len({id(s) for s in naive.values()})
    # labels() encodes the same partition
    labels = uf.labels()
    for x, y in pairs:
        assert labels[x] == labels[y]
