"""Tests for the concurrent union–find variants."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datastructures import LockStripedUnionFind, MergeBufferUnionFind, UnionFind


class TestLockStriped:
    def test_basic_union_find(self):
        uf = LockStripedUnionFind(5)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.same(0, 1)
        assert not uf.same(0, 2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            LockStripedUnionFind(-1)
        with pytest.raises(ValueError):
            LockStripedUnionFind(4, stripes=0)

    def test_labels_match_sequential(self):
        pairs = [(0, 1), (2, 3), (1, 3), (5, 6)]
        striped = LockStripedUnionFind(8)
        seq = UnionFind(8)
        for a, b in pairs:
            striped.union(a, b)
            seq.union(a, b)
        la, lb = striped.labels(), seq.labels()
        mapping: dict[int, int] = {}
        for a, b in zip(la.tolist(), lb.tolist()):
            assert mapping.setdefault(int(a), int(b)) == b

    def test_concurrent_unions_consistent(self):
        """Hammer the structure from 4 threads; the final partition must be
        exactly the union of all requested pairs."""
        n = 200
        rng = np.random.default_rng(0)
        all_pairs = [
            [(int(rng.integers(n)), int(rng.integers(n))) for _ in range(300)]
            for _ in range(4)
        ]
        uf = LockStripedUnionFind(n)

        def worker(pairs):
            for a, b in pairs:
                uf.union(a, b)

        threads = [threading.Thread(target=worker, args=(p,)) for p in all_pairs]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        ref = UnionFind(n)
        for pairs in all_pairs:
            for a, b in pairs:
                ref.union(a, b)
        for x in range(n):
            for y in (0, n // 2, n - 1):
                assert uf.same(x, y) == ref.same(x, y)


class TestMergeBuffer:
    def test_buffers_replay(self):
        buffers = [MergeBufferUnionFind(), MergeBufferUnionFind()]
        buffers[0].union(0, 1)
        buffers[1].union(2, 3)
        buffers[1].union(1, 2)
        uf = MergeBufferUnionFind.replay_into(UnionFind(5), buffers)
        assert uf.same(0, 3)
        assert not uf.same(0, 4)

    def test_raw_pair_lists_accepted(self):
        uf = MergeBufferUnionFind.replay_into(UnionFind(4), [[(0, 1)], [(2, 3)]])
        assert uf.same(0, 1) and uf.same(2, 3)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 40),
        data=st.data(),
    )
    def test_property_order_independent(self, n, data):
        """Unions commute: any buffer split/permutation yields one partition
        (paper Lemma 3.2(1))."""
        pairs = data.draw(
            st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=40)
        )
        perm = data.draw(st.permutations(pairs))
        split = data.draw(st.integers(0, len(pairs)))
        direct = UnionFind(n)
        for a, b in pairs:
            direct.union(a, b)
        buffered = MergeBufferUnionFind.replay_into(
            UnionFind(n), [list(perm[:split]), list(perm[split:])]
        )
        # same partition: label values may differ (roots depend on order),
        # the induced equivalence must not
        la, lb = direct.labels(), buffered.labels()
        mapping: dict[int, int] = {}
        reverse: dict[int, int] = {}
        for a, b in zip(la.tolist(), lb.tolist()):
            assert mapping.setdefault(a, b) == b
            assert reverse.setdefault(b, a) == a
