"""Tests for the ``karger-nlt`` tree-packing exact solver (`repro.treepack`).

Layered like the package: the Euler-tour/LCA machinery and the per-tree
1-/2-respecting DP against naive oracles, the greedy packing's certificate
arithmetic, then the full solver — brute-force/oracle parity over the
random gnm sweep the ISSUE prescribes (weighted + unit, n ≤ 64), the
executor ladder (processes included), determinism under a fixed seed,
stats-schema discipline on every return path, trace validation, and the
end-to-end surfaces (engine cache, CLI batch, service).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_mincut
from repro.core.api import minimum_cut
from repro.engine import SolverEngine, UnkeyableRequest
from repro.generators.gnm import connected_gnm
from repro.graph import from_edges
from repro.graph.io import write_metis
from repro.observability import Tracer
from repro.observability.schema import (
    TREEPACK_STATS_KEYS,
    validate_trace_events,
    validate_treepack_stats,
)
from repro.treepack import RootedTree, TreePacking, evaluate_tree, karger_nlt_mincut
from repro.treepack.respect import _INF

from .conftest import CANONICAL_CUTS, oracle_mincut


# ---------------------------------------------------------------------------
# Euler tour + LCA
# ---------------------------------------------------------------------------


def _random_parent(rng: np.random.Generator, n: int) -> np.ndarray:
    """A random tree on [0, n) rooted at 0 (each vertex hangs off an earlier
    one, then labels are shuffled so the parent array is not sorted)."""
    perm = np.concatenate(([0], 1 + rng.permutation(n - 1)))
    parent = np.full(n, -1, dtype=np.int64)
    for i in range(1, n):
        parent[perm[i]] = perm[int(rng.integers(0, i))]
    return parent


def _naive_lca(parent: np.ndarray, u: int, v: int) -> int:
    anc = set()
    while u != -1:
        anc.add(u)
        u = int(parent[u])
    while v not in anc:
        v = int(parent[v])
    return v


class TestRootedTree:
    def test_requires_root_at_zero(self):
        with pytest.raises(ValueError):
            RootedTree(np.array([0, -1], dtype=np.int64))

    def test_subtree_intervals_partition(self):
        rng = np.random.default_rng(0)
        parent = _random_parent(rng, 17)
        t = RootedTree(parent)
        # tin is a permutation of [0, n); every subtree is a contiguous
        # interval containing its own tin
        assert sorted(t.tin.tolist()) == list(range(17))
        for v in range(17):
            mask = t.subtree_mask(v)
            assert mask[v]
            assert mask.sum() == t.tout[v] - t.tin[v] + 1

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_lca_matches_naive(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 30))
        parent = _random_parent(rng, n)
        t = RootedTree(parent)
        us = rng.integers(0, n, size=64)
        vs = rng.integers(0, n, size=64)
        got = t.lca(us, vs)
        for u, v, g in zip(us, vs, got):
            assert int(g) == _naive_lca(parent, int(u), int(v))


# ---------------------------------------------------------------------------
# per-tree 1-/2-respecting DP
# ---------------------------------------------------------------------------


def _naive_respecting(n, us, vs, ws, parent):
    """Oracle: enumerate every subtree and pair of subtrees directly."""
    t = RootedTree(parent)
    masks = [t.subtree_mask(v) for v in range(n)]

    def cut_of(side):
        cross = side[us] != side[vs]
        return int(ws[cross].sum())

    one = min(cut_of(masks[v]) for v in range(1, n))
    two = _INF
    for a in range(1, n):
        for b in range(1, n):
            if a == b:
                continue
            ma, mb = masks[a], masks[b]
            if not (ma & mb).any():
                two = min(two, cut_of(ma | mb))
            elif (mb & ~ma).sum() == 0:  # b nested in a
                two = min(two, cut_of(ma & ~mb))
    return one, two


@pytest.mark.parametrize("seed", range(6))
def test_evaluate_tree_matches_naive(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 14))
    g = connected_gnm(n, min(3 * n, n * (n - 1) // 2), rng=rng,
                      weights=(1, 9) if seed % 2 else None)
    us, vs, ws = g.edge_arrays()
    packing = TreePacking(n, us, vs, ws, np.random.default_rng(seed))
    parent, _key = packing.pack_tree()
    value, side, one, two = evaluate_tree(n, us, vs, ws, parent)
    exp_one, exp_two = _naive_respecting(n, us, vs, ws, parent)
    assert one == exp_one
    assert two == exp_two
    assert value == min(one, two)
    assert g.cut_value(side) == value
    assert 0 < side.sum() < n


def test_evaluate_tree_two_vertices():
    us = np.array([0]); vs = np.array([1]); ws = np.array([7])
    parent = np.array([-1, 0], dtype=np.int64)
    value, side, one, two = evaluate_tree(2, us, vs, ws, parent)
    assert value == one == 7
    assert two == _INF  # no pair of distinct non-root subtrees exists
    assert side.tolist() == [False, True]


# ---------------------------------------------------------------------------
# greedy packing + certificate
# ---------------------------------------------------------------------------


class TestTreePacking:
    def test_spanning_trees_and_loads(self):
        g = connected_gnm(12, 30, rng=0, weights=(1, 5))
        us, vs, ws = g.edge_arrays()
        packing = TreePacking(12, us, vs, ws, np.random.default_rng(0))
        for _ in range(5):
            parent, key = packing.pack_tree()
            assert len(key) == 11 and len(set(key)) == 11
            assert (parent[1:] >= 0).all() and parent[0] == -1
        assert packing.trees_packed == 5
        assert packing.loads.sum() == 5 * 11

    def test_disconnected_raises(self):
        g = from_edges(4, [0, 2], [1, 3])
        us, vs, ws = g.edge_arrays()
        packing = TreePacking(4, us, vs, ws, np.random.default_rng(0))
        with pytest.raises(ValueError, match="disconnected"):
            packing.pack_tree()

    def test_certificate_is_exact_integer_arithmetic(self):
        # C4 unit: λ = 2.  After k trees the max load edge has ℓ*/c* = ?
        g = from_edges(4, [0, 1, 2, 3], [1, 2, 3, 0])
        us, vs, ws = g.edge_arrays()
        packing = TreePacking(4, us, vs, ws, np.random.default_rng(1))
        assert not packing.certifies(2)  # nothing packed yet
        packing.pack_tree()
        # one tree of 3 edges over a 4-cycle: ℓ* = 1, c* = 1 → lb = 1,
        # and 3·1·1 > 2·1 certifies λ̂ = 2
        assert packing.value_lower_bound() == 1.0
        assert packing.certifies(2)
        assert not packing.certifies(3)

    def test_lower_bound_is_feasible(self):
        g = connected_gnm(16, 40, rng=3, weights=(1, 9))
        us, vs, ws = g.edge_arrays()
        packing = TreePacking(16, us, vs, ws, np.random.default_rng(3))
        for _ in range(8):
            packing.pack_tree()
        l_star, c_star = packing.max_relative_load()
        # feasibility of the uniform weighting: load(e)·c*/ℓ* ≤ c(e) ∀e
        assert (packing.loads * c_star <= l_star * ws).all()
        assert packing.value_lower_bound() == pytest.approx(
            packing.trees_packed * c_star / l_star)


# ---------------------------------------------------------------------------
# full solver: parity sweeps
# ---------------------------------------------------------------------------


class TestSolverParity:
    @pytest.mark.parametrize("name", sorted(CANONICAL_CUTS))
    def test_canonical_fixtures(self, name, request):
        g = request.getfixturevalue(name)
        res = karger_nlt_mincut(g, rng=0)
        assert res.value == CANONICAL_CUTS[name]
        assert g.cut_value(res.side) == res.value
        assert res.stats["certified"]
        validate_treepack_stats(res.stats)

    @pytest.mark.parametrize("seed", range(16))
    def test_brute_force_parity_small(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 14))
        m = int(rng.integers(n, min(n * (n - 1) // 2, 3 * n)))
        g = connected_gnm(n, m, rng=seed, weights=(1, 9) if seed % 2 else None)
        expected = brute_force_mincut(g, compute_side=False).value
        res = karger_nlt_mincut(g, rng=seed)
        assert res.value == expected
        assert g.cut_value(res.side) == res.value
        assert res.stats["certified"]

    @pytest.mark.parametrize("seed", range(16, 28))
    def test_oracle_parity_up_to_64(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(16, 65))
        m = int(rng.integers(2 * n, 4 * n))
        g = connected_gnm(n, m, rng=seed, weights=(1, 9) if seed % 2 else None)
        res = karger_nlt_mincut(g, rng=seed)
        assert res.value == oracle_mincut(g)
        assert g.cut_value(res.side) == res.value
        assert res.stats["certified"]

    def test_registry_route(self, dumbbell):
        res = minimum_cut(dumbbell, "karger-nlt", rng=0)
        assert res.value == 1
        assert res.algorithm == "karger-nlt"
        assert sorted(res.smaller_side()) in ([0, 1, 2, 3], [4, 5, 6, 7])

    def test_all_cuts_attaches_cactus(self, weighted_cycle):
        res = minimum_cut(weighted_cycle, "karger-nlt", rng=0, all_cuts=True)
        assert res.value == 2
        assert res.cactus is not None
        assert res.stats["num_min_cuts"] == res.cactus.num_min_cuts() >= 1


# ---------------------------------------------------------------------------
# determinism + stats schema + traces
# ---------------------------------------------------------------------------


class TestSolverContract:
    def test_deterministic_under_int_seed(self):
        g = connected_gnm(24, 70, rng=7, weights=(1, 9))
        a = karger_nlt_mincut(g, rng=5)
        b = karger_nlt_mincut(g, rng=5)
        assert a.value == b.value
        assert np.array_equal(a.side, b.side)
        assert a.stats["rounds"] == b.stats["rounds"]
        assert a.stats["trees_packed"] == b.stats["trees_packed"]
        assert a.stats["seed"] == 5

    def test_stats_keys_identical_on_every_path(self, two_vertices,
                                                two_triangles_disconnected):
        g = connected_gnm(16, 40, rng=1, weights=(1, 5))
        paths = [
            karger_nlt_mincut(g, rng=0),
            karger_nlt_mincut(g, rng=0, compute_side=False),
            karger_nlt_mincut(g, rng=0, executor="threads", workers=2),
            karger_nlt_mincut(two_vertices, rng=0),
            karger_nlt_mincut(two_triangles_disconnected, rng=0),
        ]
        for res in paths:
            validate_treepack_stats(res.stats)
            assert set(res.stats) == TREEPACK_STATS_KEYS

    def test_disconnected_early_exit(self, two_triangles_disconnected):
        res = karger_nlt_mincut(two_triangles_disconnected, rng=0)
        assert res.value == 0
        assert res.stats["certified"]
        assert res.stats["rounds"] == 0
        side = res.side
        assert 0 < side.sum() < 6
        assert two_triangles_disconnected.cut_value(side) == 0

    def test_single_vertex_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            karger_nlt_mincut(from_edges(1, [], []), rng=0)

    def test_bad_executor_and_policy_rejected(self, two_vertices):
        with pytest.raises(ValueError, match="unknown executor"):
            karger_nlt_mincut(two_vertices, executor="gpu")
        with pytest.raises(ValueError, match="on_worker_failure"):
            karger_nlt_mincut(two_vertices, on_worker_failure="ignore")

    def test_trace_validates_and_lands_on_value(self):
        g = connected_gnm(20, 60, rng=4, weights=(1, 9))
        with Tracer() as tracer:
            res = karger_nlt_mincut(g, rng=2, tracer=tracer)
            events = tracer.events()
        summary = validate_trace_events(events)
        assert summary["final_lambda"] == res.value
        by_kind = summary["by_kind"]
        assert by_kind["solve_start"] == by_kind["solve_end"] == 1
        assert by_kind["treepack_round"] == res.stats["rounds"]
        assert by_kind["treepack_tree"] == res.stats["trees_evaluated"]
        rounds = [e for e in events if e["kind"] == "treepack_round"]
        assert rounds[-1]["certified"] is True
        assert rounds[-1]["lambda_hat"] == res.value

    def test_uncertified_when_rounds_capped(self):
        g = connected_gnm(20, 60, rng=4, weights=(1, 9))
        res = karger_nlt_mincut(g, rng=0, max_rounds=0)
        # zero rounds: still exact-shaped stats, but explicitly uncertified
        # and the value is the min-degree upper bound
        assert not res.stats["certified"]
        assert res.value == res.stats["min_degree_bound"]
        validate_treepack_stats(res.stats)


# ---------------------------------------------------------------------------
# executor ladder
# ---------------------------------------------------------------------------


class TestExecutors:
    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_parallel_executors_match_serial(self, executor):
        g = connected_gnm(32, 96, rng=9, weights=(1, 9))
        base = karger_nlt_mincut(g, rng=3)
        res = karger_nlt_mincut(g, rng=3, executor=executor, workers=3,
                                timeout=120)
        assert res.value == base.value
        assert np.array_equal(res.side, base.side)
        assert res.stats["final_executor"] == executor
        assert res.stats["worker_events"] == []

    def test_processes_without_side(self):
        g = connected_gnm(24, 70, rng=2, weights=(1, 9))
        base = karger_nlt_mincut(g, rng=1, compute_side=False)
        res = karger_nlt_mincut(g, rng=1, executor="processes", workers=2,
                                compute_side=False, timeout=120)
        assert res.value == base.value
        assert res.side is None


# ---------------------------------------------------------------------------
# engine: cacheability + seeding contract
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def test_engine_cache_hit_with_int_seed(self):
        g = connected_gnm(20, 55, rng=6, weights=(1, 9))
        with SolverEngine(pool_size=0) as eng:
            a = eng.solve(g, "karger-nlt", rng=4)
            b = eng.solve(g, "karger-nlt", rng=4)
            assert a.value == b.value
            assert eng.stats()["cache"]["hits"] == 1

    def test_live_rng_is_unkeyable(self):
        g = connected_gnm(12, 30, rng=0)
        with SolverEngine(pool_size=0) as eng:
            with pytest.raises(UnkeyableRequest):
                eng.solve(g, "karger-nlt", rng=np.random.default_rng(0),
                          cache=True)

    def test_pooled_solve(self):
        g = connected_gnm(20, 55, rng=6, weights=(1, 9))
        with SolverEngine(pool_size=1) as eng:
            res = eng.solve(g, "karger-nlt", rng=4)
            assert res.value == karger_nlt_mincut(g, rng=4).value


# ---------------------------------------------------------------------------
# CLI + service surfaces
# ---------------------------------------------------------------------------


class TestSurfaces:
    def test_cli_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        g = connected_gnm(24, 70, rng=8, weights=(1, 5))
        path = tmp_path / "g.metis"
        write_metis(g, path)
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        rc = main(["--algorithm", "karger-nlt", "--seed", "3",
                   "--trace", str(trace), "--metrics-json", str(metrics),
                   str(path)])
        assert rc == 0
        expected = karger_nlt_mincut(g, rng=3).value
        assert f"mincut    {expected}" in capsys.readouterr().out
        doc = json.loads(metrics.read_text())
        validate_treepack_stats(doc["stats"])
        assert doc["stats"]["certified"]
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert validate_trace_events(events)["final_lambda"] == expected

    def test_service_solves_karger_nlt(self, dumbbell):
        from repro.service import ServiceClient, ServiceConfig
        from repro.service.testing import ServiceThread

        with ServiceThread(engine_kwargs={"pool_size": 0},
                           config=ServiceConfig()) as st:
            with ServiceClient("127.0.0.1", st.port) as client:
                status, _h, body = client.solve(
                    dumbbell, algorithm="karger-nlt", kwargs={"rng": 0},
                    include_side=True)
                assert status == 200, body
                assert body["value"] == 1
                assert sorted(body["side"]) in ([0, 1, 2, 3], [4, 5, 6, 7])
                assert body["algorithm"] == "karger-nlt"
