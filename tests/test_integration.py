"""Cross-algorithm integration tests: every exact solver, one truth.

The strongest correctness signal in the package: on every instance from a
zoo of structured and random families, all six exact solver configurations
must return one identical value — which also matches the networkx oracle —
and each returned side must certify that value.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import minimum_cut
from repro.core import EXACT_ALGORITHMS
from repro.generators import chung_lu, connected_gnm, rhg, rmat
from repro.graph import largest_component

from .conftest import oracle_mincut


def exact_all(g, seed=0):
    values = {}
    for algo in EXACT_ALGORITHMS:
        res = minimum_cut(g, algorithm=algo, rng=seed)
        assert res.verify(g), f"{algo} returned an uncertified cut"
        values[algo] = res.value
    assert len(set(values.values())) == 1, f"disagreement: {values}"
    return next(iter(values.values()))


class TestStructuredZoo:
    def test_rhg_instance(self):
        g, _ = largest_component(rhg(256, 10, rng=0))
        assert exact_all(g) == oracle_mincut(g)

    def test_rmat_instance(self):
        g, _ = largest_component(rmat(7, 8, rng=1))
        assert exact_all(g) == oracle_mincut(g)

    def test_chung_lu_instance(self):
        g, _ = largest_component(chung_lu(200, 8, communities=4, rng=2))
        assert exact_all(g) == oracle_mincut(g)

    def test_suite_instance_with_pods(self):
        from repro.generators import build_instances
        from repro.generators.worlds import WorldSpec

        spec = WorldSpec("mini", "chung_lu", 256, 12.0, (3,), communities=4, seed=3, pod_attach=(1,))
        insts = build_instances(spec, scale=1.0)
        assert insts
        g = insts[0].graph
        lam = exact_all(g)
        assert lam == oracle_mincut(g)
        assert lam <= 1  # planted pod attachment

    def test_weighted_torus(self):
        # 4x4 torus with heavy horizontal, light vertical rings
        def vid(i, j):
            return 4 * i + j

        us, vs, ws = [], [], []
        for i in range(4):
            for j in range(4):
                us.append(vid(i, j)); vs.append(vid(i, (j + 1) % 4)); ws.append(3)
                us.append(vid(i, j)); vs.append(vid((i + 1) % 4, j)); ws.append(1)
        from repro.graph import from_edges

        g = from_edges(16, us, vs, ws)
        assert exact_all(g) == oracle_mincut(g)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 100_000))
def test_property_all_exact_solvers_agree(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 18))
    m = min(int(rng.integers(n - 1, 3 * n)), n * (n - 1) // 2)
    g = connected_gnm(n, m, rng=rng, weights=(1, 9))
    assert exact_all(g, seed=seed) == oracle_mincut(g)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 100_000))
def test_property_inexact_solvers_bounded_by_exact(seed):
    """viecut/matula/karger-stein always sit in [λ, guarantee]."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 20))
    m = min(int(rng.integers(n, 3 * n)), n * (n - 1) // 2)
    g = connected_gnm(n, m, rng=rng, weights=(1, 6))
    lam = oracle_mincut(g)
    vc = minimum_cut(g, algorithm="viecut", rng=seed)
    assert vc.value >= lam and vc.verify(g)
    mt = minimum_cut(g, algorithm="matula", eps=0.5, rng=seed)
    assert lam <= mt.value <= 2.5 * lam and mt.verify(g)
    ks = minimum_cut(g, algorithm="karger-stein", rng=seed)
    assert ks.value >= lam and ks.verify(g)
