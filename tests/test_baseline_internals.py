"""White-box tests for baseline internals: Hao–Orlin dormant machinery,
push-relabel gap heuristic, Stoer–Wagner phase structure."""

import numpy as np

from repro.baselines import hao_orlin, max_flow, stoer_wagner
from repro.generators import connected_gnm
from repro.graph import from_edges

from .conftest import oracle_mincut


class TestHaoOrlinInternals:
    def test_path_needs_no_dormant_machinery(self):
        # a path drains each phase with a single push: exact BFS heights,
        # zero relabels, zero dormant events
        n = 30
        g = from_edges(n, range(n - 1), range(1, n))
        res = hao_orlin(g)
        assert res.value == 1
        assert res.stats["phases"] == n - 1
        assert res.stats["relabels"] == 0
        assert res.stats["dormant_events"] == 0

    def test_dormant_events_on_star_and_random(self):
        # a star strands excess at leaves every phase: dormant sets engage
        g = from_edges(8, [0] * 7, range(1, 8), [2] * 7)
        res = hao_orlin(g)
        assert res.value == 2
        assert res.stats["dormant_events"] > 0
        rng = np.random.default_rng(0)
        g2 = connected_gnm(25, 40, rng=rng, weights=(1, 6))
        assert hao_orlin(g2).stats["dormant_events"] > 0

    def test_push_and_relabel_counters(self, clique6):
        res = hao_orlin(clique6)
        assert res.stats["pushes"] > 0
        assert res.stats["relabels"] >= 0

    def test_compute_side_false_skips_recovery_flow(self, dumbbell):
        res = hao_orlin(dumbbell, compute_side=False)
        assert res.side is None
        assert res.value == 1

    def test_star_graph_phases(self, star):
        # star: every phase ends at a leaf; value = min leaf weight
        res = hao_orlin(star)
        assert res.value == 2
        assert res.verify(star)

    def test_heavy_asymmetric_weights(self):
        # weights force excess to travel: wide path with one thin rung
        g = from_edges(
            6,
            [0, 1, 2, 0, 4, 3],
            [1, 2, 3, 4, 5, 5],
            [100, 100, 100, 1, 1, 100],
        )
        assert hao_orlin(g).value == oracle_mincut(g)


class TestPushRelabelInternals:
    def test_gap_heuristic_graph(self):
        """A lollipop forces a height gap once the stick saturates."""
        # clique 0-3 + path 3-4-5; flow from 0 to 5 limited by the path
        us = [0, 0, 0, 1, 1, 2, 3, 4]
        vs = [1, 2, 3, 2, 3, 3, 4, 5]
        ws = [5, 5, 5, 5, 5, 5, 2, 2]
        g = from_edges(6, us, vs, ws)
        res = max_flow(g, 0, 5)
        assert res.value == 2
        assert g.cut_value(res.source_side) == 2

    def test_max_flow_saturates_parallel_paths(self):
        # two disjoint s-t paths of bottleneck 3 and 4: flow = 7
        us = [0, 1, 0, 3]
        vs = [1, 2, 3, 2]
        ws = [3, 3, 4, 4]
        g = from_edges(4, us, vs, ws)
        assert max_flow(g, 0, 2).value == 7

    def test_flow_conservation_interior(self):
        rng = np.random.default_rng(0)
        g = connected_gnm(15, 40, rng=rng, weights=(1, 9))
        res = max_flow(g, 0, 14)
        src = g.arc_sources()
        # net outflow per vertex: 0 at interior, +value at source, -value at sink
        net = np.zeros(g.n, dtype=np.int64)
        np.add.at(net, src, res.flow)
        assert net[0] == res.value
        assert net[14] == -res.value
        interior = np.delete(net, [0, 14])
        assert (interior == 0).all()

    def test_capacity_respected(self):
        rng = np.random.default_rng(1)
        g = connected_gnm(12, 30, rng=rng, weights=(1, 7))
        res = max_flow(g, 0, 11)
        assert (res.flow <= g.adjwgt).all()


class TestStoerWagnerInternals:
    def test_phase_cuts_monotone_record(self, dumbbell):
        res = stoer_wagner(dumbbell)
        assert res.stats["phases"] == 7
        assert res.value == 1

    def test_two_vertices_single_phase(self, two_vertices):
        res = stoer_wagner(two_vertices)
        assert res.stats["phases"] == 1
        assert res.value == 7

    def test_merged_supervertex_weights(self):
        """After merging, parallel edges must accumulate: a triangle with a
        heavy pair merges them first and still reports the right cut."""
        g = from_edges(3, [0, 1, 2], [1, 2, 0], [10, 1, 1])
        res = stoer_wagner(g)
        assert res.value == 2
        assert res.verify(g)
