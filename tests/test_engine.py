"""Tests for the persistent solver engine (`repro.engine`).

Covers the four subsystems separately (keys, cache, planes, pool-backed
engine) and the threading surface: API pass-through, harness reuse,
deadline/crash/cancellation semantics, degradation to in-process solving,
and the engine-level trace event contract.

Fault injection uses the pool's deterministic ``test_fault`` task hooks
(``exit``/``hang``), threaded through ``submit(..., _test_fault=...)`` —
the same philosophy as ``tests/test_fault_injection.py``: faults are
planned, never random.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.api import minimum_cut
from repro.core.result import MinCutResult
from repro.engine import (
    EngineClosed,
    RequestCancelled,
    ResultCache,
    SolverEngine,
    UnkeyableRequest,
    graph_digest,
    request_key,
)
from repro.engine.planes import PlaneRegistry
from repro.graph.builder import GraphBuilder
from repro.observability import Tracer
from repro.observability.schema import EVENT_KINDS, validate_trace_events
from repro.runtime.errors import WorkerCrashed, WorkerTimeout


def ring(n: int, w: int = 2):
    b = GraphBuilder(n)
    for i in range(n):
        b.add_edge(i, (i + 1) % n, w)
    return b.build()


# ---------------------------------------------------------------------------
# request keying
# ---------------------------------------------------------------------------


class TestKeys:
    def test_digest_is_content_addressed(self, dumbbell, weighted_cycle):
        assert graph_digest(dumbbell) == graph_digest(dumbbell)
        assert graph_digest(dumbbell) != graph_digest(weighted_cycle)

    def test_digest_distinguishes_weights(self):
        assert graph_digest(ring(8, w=2)) != graph_digest(ring(8, w=3))

    def test_rebuilt_graph_digests_equal(self, dumbbell):
        from repro.graph.csr import Graph

        rebuilt = Graph(
            dumbbell.xadj.copy(), dumbbell.adjncy.copy(), dumbbell.adjwgt.copy()
        )
        assert graph_digest(rebuilt) == graph_digest(dumbbell)

    def test_request_key_canonicalises_kwarg_order(self):
        a = request_key("d", "parcut", {"rng": 1, "pq_kind": "bqueue"})
        b = request_key("d", "parcut", {"pq_kind": "bqueue", "rng": 1})
        assert a == b

    def test_request_key_separates_algorithms_and_kwargs(self):
        base = request_key("d", "parcut", {"rng": 1})
        assert base != request_key("d", "noi", {"rng": 1})
        assert base != request_key("d", "parcut", {"rng": 2})

    def test_live_objects_are_unkeyable(self):
        with pytest.raises(UnkeyableRequest):
            request_key("d", "parcut", {"rng": np.random.default_rng(0)})

    def test_truthy_option_values_coerce_to_bool(self):
        # all_cuts=1 and all_cuts=True are the same output shape; keeping
        # the raw value verbatim used to split the cache between them
        canonical = request_key("d", "noi", {"rng": 0}, {"all_cuts": True})
        assert request_key("d", "noi", {"rng": 0}, {"all_cuts": 1}) == canonical
        assert request_key("d", "noi", {"rng": 0}, {"all_cuts": "yes"}) == canonical

    def test_falsy_options_keep_legacy_key_byte_stable(self):
        legacy = request_key("d", "noi", {"rng": 0})
        assert legacy == 'd:noi:{"rng":0}'  # the historical 3-segment form
        assert request_key(
            "d", "noi", {"rng": 0}, {"all_cuts": False, "most_balanced": 0}
        ) == legacy


# ---------------------------------------------------------------------------
# result cache
# ---------------------------------------------------------------------------


def _result(value: int = 3) -> MinCutResult:
    return MinCutResult(value, None, 8, "test", {"stats_schema": 2})


class TestResultCache:
    def test_hit_returns_equal_result(self):
        cache = ResultCache(4)
        cache.put("k", _result())
        got = cache.get("k")
        assert got is not None and got.value == 3
        assert cache.stats() == {
            "capacity": 4, "entries": 1, "hits": 1, "misses": 0,
            "hit_ratio": 1.0, "miss_ratio": 0.0,
        }

    def test_miss_counts(self):
        cache = ResultCache(4)
        assert cache.get("absent") is None
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["miss_ratio"] == 1.0 and stats["hit_ratio"] == 0.0

    def test_ratios_before_any_lookup_are_zero(self):
        stats = ResultCache(4).stats()
        assert stats["hit_ratio"] == 0.0 and stats["miss_ratio"] == 0.0

    def test_ratios_track_mixed_lookups(self):
        cache = ResultCache(4)
        cache.put("k", _result())
        cache.get("k")
        cache.get("k")
        cache.get("absent")  # 2 hits, 1 miss
        stats = cache.stats()
        assert stats["hit_ratio"] == round(2 / 3, 6)
        assert stats["miss_ratio"] == round(1 / 3, 6)

    def test_clear_resets_counters(self):
        cache = ResultCache(4)
        cache.put("k", _result())
        cache.get("k")
        cache.get("absent")
        cache.clear()
        assert cache.stats() == {
            "capacity": 4, "entries": 0, "hits": 0, "misses": 0,
            "hit_ratio": 0.0, "miss_ratio": 0.0,
        }

    def test_returned_results_are_mutation_isolated(self):
        cache = ResultCache(4)
        cache.put("k", _result())
        first = cache.get("k")
        first.stats["poison"] = True
        second = cache.get("k")
        assert "poison" not in second.stats

    def test_stored_result_is_snapshot_not_reference(self):
        cache = ResultCache(4)
        res = _result()
        cache.put("k", res)
        res.stats["later"] = True
        assert "later" not in cache.get("k").stats

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", _result(1))
        cache.put("b", _result(2))
        assert cache.get("a").value == 1  # refresh "a"; "b" becomes LRU
        cache.put("c", _result(3))
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        cache.put("k", _result())
        assert len(cache) == 0 and cache.get("k") is None


# ---------------------------------------------------------------------------
# plane registry
# ---------------------------------------------------------------------------


class TestPlaneRegistry:
    def test_lease_reuses_one_export_per_digest(self, dumbbell):
        with PlaneRegistry(capacity=4) as reg:
            d = graph_digest(dumbbell)
            p1 = reg.lease(d, dumbbell)
            p2 = reg.lease(d, dumbbell)
            assert p1 is p2
            assert reg.stats()["exports"] == 1 and reg.stats()["reuses"] == 1
            reg.release(d)
            reg.release(d)
            assert reg.leased() == 0 and len(reg) == 1  # parked, not unlinked

    def test_parked_plane_revived_without_reexport(self, dumbbell):
        with PlaneRegistry(capacity=4) as reg:
            d = graph_digest(dumbbell)
            reg.lease(d, dumbbell)
            reg.release(d)
            reg.lease(d, dumbbell)
            assert reg.stats()["exports"] == 1
            reg.release(d)

    def test_eviction_skips_leased_planes(self, dumbbell, weighted_cycle, star):
        with PlaneRegistry(capacity=1) as reg:
            d1 = graph_digest(dumbbell)
            reg.lease(d1, dumbbell)  # leased: may not be evicted
            d2 = graph_digest(weighted_cycle)
            reg.lease(d2, weighted_cycle)
            reg.release(d2)  # parked: evictable
            d3 = graph_digest(star)
            reg.lease(d3, star)
            stats = reg.stats()
            assert stats["leased"] == 2  # d1 and d3 survived over capacity
            reg.release(d1)
            reg.release(d3)

    def test_over_release_raises(self, dumbbell):
        with PlaneRegistry() as reg:
            d = graph_digest(dumbbell)
            reg.lease(d, dumbbell)
            reg.release(d)
            with pytest.raises(ValueError, match="released more"):
                reg.release(d)

    def test_close_is_idempotent_and_final(self, dumbbell):
        reg = PlaneRegistry()
        reg.lease(graph_digest(dumbbell), dumbbell)
        reg.close()
        reg.close()
        with pytest.raises(ValueError, match="closed"):
            reg.lease(graph_digest(dumbbell), dumbbell)


# ---------------------------------------------------------------------------
# the engine: happy paths
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def engine():
    """One pooled engine shared by the happy-path tests (that is the point)."""
    with SolverEngine(pool_size=2, cache_size=32) as eng:
        yield eng


class TestEngineSolving:
    def test_matches_direct_solves_on_fixtures(
        self, engine, dumbbell, weighted_cycle, clique6
    ):
        for g in (dumbbell, weighted_cycle, clique6):
            assert engine.solve(g).value == minimum_cut(g).value

    def test_solve_many_mixed_item_forms(self, engine, dumbbell, weighted_cycle):
        results = engine.solve_many(
            [
                dumbbell,
                (weighted_cycle, "parcut"),
                {"graph": dumbbell, "algorithm": "stoer-wagner"},
            ],
            rng=0,
        )
        assert [r.value for r in results] == [1, 2, 1]
        assert results[1].algorithm.startswith("parcut")

    def test_repeat_solves_hit_cache(self, dumbbell):
        with SolverEngine(pool_size=1) as eng:
            eng.solve(dumbbell)
            hits_before = eng.stats()["cache"]["hits"]
            assert eng.solve(dumbbell).value == 1
            assert eng.stats()["cache"]["hits"] == hits_before + 1

    def test_cache_false_bypasses(self, dumbbell):
        with SolverEngine(pool_size=1) as eng:
            eng.solve(dumbbell, cache=False)
            eng.solve(dumbbell, cache=False)
            assert eng.stats()["cache"]["hits"] == 0
            assert eng.stats()["cache"]["entries"] == 0

    def test_api_engine_passthrough(self, engine, weighted_cycle):
        res = minimum_cut(weighted_cycle, engine=engine)
        assert res.value == 2

    def test_processes_executor_coerced_in_pool(self, engine, dumbbell):
        # daemonic pool workers cannot fork; the engine switches to threads
        res = engine.solve(dumbbell, "parcut", executor="processes", rng=0)
        assert res.value == 1
        assert res.stats["executor"] == "threads"

    def test_distinct_graphs_share_plane_exports(self, engine, path4):
        before = engine.stats()["planes"]["exports"]
        engine.solve(path4, cache=False)
        engine.solve(path4, cache=False)
        planes = engine.stats()["planes"]
        assert planes["exports"] == before + 1  # second solve reused the plane

    def test_solve_many_return_exceptions(self, engine, dumbbell):
        results = engine.solve_many(
            [dumbbell, {"graph": dumbbell, "bogus_kwarg": 1, "cache": False}],
            return_exceptions=True,
        )
        assert results[0].value == 1
        assert isinstance(results[1], Exception)


class TestEngineValidation:
    def test_unknown_algorithm_rejected(self, engine, dumbbell):
        with pytest.raises(ValueError, match="unknown algorithm"):
            engine.submit(dumbbell, "no-such-solver")

    def test_tracer_kwarg_rejected(self, engine, dumbbell):
        with pytest.raises(ValueError, match="tracer"):
            engine.submit(dumbbell, tracer=Tracer())

    def test_live_rng_rejected(self, engine, dumbbell):
        with pytest.raises(UnkeyableRequest):
            engine.submit(dumbbell, rng=np.random.default_rng(0))

    def test_nonpositive_deadline_rejected(self, engine, dumbbell):
        with pytest.raises(ValueError, match="deadline"):
            engine.submit(dumbbell, deadline=0)

    def test_bad_default_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            SolverEngine(pool_size=0, default_algorithm="nope")


# ---------------------------------------------------------------------------
# fault tolerance: deadlines, crashes, degradation, cancellation
# ---------------------------------------------------------------------------


class TestEngineFaults:
    def test_deadline_on_hung_worker_recycles(self, dumbbell):
        with SolverEngine(pool_size=1, max_recycles=4) as eng:
            fut = eng.submit(
                dumbbell, deadline=0.4, cache=False,
                _test_fault={"test_fault": "hang", "sleep_seconds": 60},
            )
            with pytest.raises(WorkerTimeout):
                fut.result(timeout=30)
            assert eng.stats()["pool"]["recycles"] == 1
            # the recycled pool keeps solving
            assert eng.solve(dumbbell).value == 1

    def test_crash_retries_once_then_fails(self, dumbbell):
        with SolverEngine(pool_size=1, max_recycles=4) as eng:
            fut = eng.submit(
                dumbbell, cache=False, _test_fault={"test_fault": "exit", "exit_code": 7}
            )
            with pytest.raises(WorkerCrashed):
                fut.result(timeout=30)
            stats = eng.stats()
            assert stats["retries"] == 1  # one retry, then the crash surfaced
            assert stats["pool"]["recycles"] == 2
            assert eng.solve(dumbbell).value == 1

    def test_recycle_budget_exhaustion_degrades_to_inline(self, dumbbell, path4):
        with SolverEngine(pool_size=1, max_recycles=0) as eng:
            fut = eng.submit(dumbbell, cache=False, _test_fault={"test_fault": "exit"})
            # the pool is abandoned, the request requeued and solved inline
            assert fut.result(timeout=30).value == 1
            stats = eng.stats()
            assert stats["pool_abandoned"] is True
            assert stats["inline_solves"] >= 1
            # degraded engine still serves (and still caches)
            assert eng.solve(path4).value == 1
            assert eng.solve(path4).value == 1
            assert eng.stats()["cache"]["hits"] >= 1

    def test_cancel_queued_request(self, dumbbell, weighted_cycle):
        with SolverEngine(pool_size=1) as eng:
            blocker = eng.submit(
                dumbbell, cache=False,
                _test_fault={"test_fault": "hang", "sleep_seconds": 0.8},
            )
            victim = eng.submit(weighted_cycle, cache=False)
            assert victim.cancel() is True
            assert victim.cancelled() and victim.done()
            with pytest.raises(RequestCancelled):
                victim.result(timeout=5)
            assert blocker.result(timeout=30).value == 1
            assert eng.stats()["cancelled"] == 1

    def test_cancel_after_completion_returns_false(self, dumbbell):
        with SolverEngine(pool_size=0) as eng:
            fut = eng.submit(dumbbell)
            fut.result(timeout=30)
            assert fut.cancel() is False

    def test_queued_deadline_expires_without_running(self, dumbbell, weighted_cycle):
        with SolverEngine(pool_size=1) as eng:
            eng.submit(
                dumbbell, cache=False,
                _test_fault={"test_fault": "hang", "sleep_seconds": 0.8},
            )
            starved = eng.submit(weighted_cycle, deadline=0.2, cache=False)
            with pytest.raises(WorkerTimeout):
                starved.result(timeout=30)
            # the worker was never recycled: the request died in the queue
            assert eng.stats()["pool"]["recycles"] == 0

    def test_queue_expiry_message_names_the_request_not_a_worker(
        self, dumbbell, weighted_cycle
    ):
        # a queue-expired request never touched a worker; its error used to
        # blame "worker -1", which sent operators hunting a phantom crash
        with SolverEngine(pool_size=1) as eng:
            eng.submit(
                dumbbell, cache=False,
                _test_fault={"test_fault": "hang", "sleep_seconds": 0.8},
            )
            starved = eng.submit(weighted_cycle, deadline=0.2, cache=False)
            with pytest.raises(WorkerTimeout) as exc_info:
                starved.result(timeout=30)
            exc = exc_info.value
            assert exc.worker_id is None  # not a real (or phantom) worker
            message = str(exc)
            assert "expired in queue" in message
            assert "never assigned to a worker" in message
            assert starved.digest[:12] in message
            assert starved.algorithm in message
            assert "deadline 0.2s" in message
            assert not message.startswith("worker")  # no "worker -1" blame


class TestEngineLifecycle:
    def test_submit_after_close_raises(self, dumbbell):
        eng = SolverEngine(pool_size=0)
        eng.close()
        with pytest.raises(EngineClosed):
            eng.submit(dumbbell)

    def test_close_drain_false_cancels_pending(self, dumbbell, weighted_cycle):
        eng = SolverEngine(pool_size=1)
        eng.submit(
            dumbbell, cache=False,
            _test_fault={"test_fault": "hang", "sleep_seconds": 0.6},
        )
        pending = eng.submit(weighted_cycle, cache=False)
        eng.close(drain=False)
        assert pending.cancelled()

    def test_close_is_idempotent(self):
        eng = SolverEngine(pool_size=0)
        eng.close()
        eng.close()

    def test_inline_engine_needs_no_pool(self, dumbbell, weighted_cycle):
        with SolverEngine(pool_size=0) as eng:
            values = [r.value for r in eng.solve_many([dumbbell, weighted_cycle])]
            assert values == [1, 2]
            stats = eng.stats()
            assert stats["inline_solves"] == 2
            assert stats["pool"]["size"] == 0

    def test_future_result_timeout(self, dumbbell):
        with SolverEngine(pool_size=1) as eng:
            fut = eng.submit(
                dumbbell, cache=False,
                _test_fault={"test_fault": "hang", "sleep_seconds": 0.5},
            )
            with pytest.raises(TimeoutError):
                fut.result(timeout=0.05)
            assert fut.result(timeout=30).value == 1

    def test_future_timeout_message_carries_request_context(self, dumbbell):
        with SolverEngine(pool_size=1) as eng:
            fut = eng.submit(
                dumbbell, cache=False, deadline=5.0,
                _test_fault={"test_fault": "hang", "sleep_seconds": 0.5},
            )
            with pytest.raises(TimeoutError) as exc_info:
                fut.result(timeout=0.05)
            message = str(exc_info.value)
            # a blown wait must be actionable without the future in hand
            assert fut.digest[:12] in message
            assert fut.algorithm in message
            assert "since submit" in message
            assert "deadline in" in message
            fut.result(timeout=30)

    def test_future_timeout_message_without_deadline(self, dumbbell):
        with SolverEngine(pool_size=1) as eng:
            fut = eng.submit(
                dumbbell, cache=False,
                _test_fault={"test_fault": "hang", "sleep_seconds": 0.5},
            )
            with pytest.raises(TimeoutError, match="no deadline"):
                fut.exception(timeout=0.05)
            fut.result(timeout=30)

    def test_stats_expose_queue_depth_and_inflight(self, dumbbell, weighted_cycle):
        with SolverEngine(pool_size=1) as eng:
            idle = eng.stats()
            assert idle["queue_depth"] == 0 and idle["inflight"] == 0
            blocker = eng.submit(
                dumbbell, cache=False,
                _test_fault={"test_fault": "hang", "sleep_seconds": 0.6},
            )
            queued = eng.submit(weighted_cycle, cache=False)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = eng.stats()
                if stats["inflight"] == 1 and stats["queue_depth"] >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail(f"never observed busy stats: {eng.stats()}")
            assert blocker.result(timeout=30).value == 1
            assert queued.result(timeout=30).value == 2
            settled = eng.stats()
            assert settled["queue_depth"] == 0 and settled["inflight"] == 0


# ---------------------------------------------------------------------------
# concurrent cancellation: half a batch cancelled mid-flight
# ---------------------------------------------------------------------------


def _shm_names() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux: fall back to no leak tracking
        return set()


class TestConcurrentCancellation:
    def test_cancel_half_of_concurrent_batch_pool_stays_healthy(self, dumbbell):
        # 8 distinct graphs through a 1-worker pool: the head request hangs
        # briefly, so the tail sits queued and is cancellable.
        graphs = [ring(8 + i) for i in range(8)]
        shm_before = _shm_names()
        with SolverEngine(pool_size=1, max_recycles=8) as eng:
            head = eng.submit(
                dumbbell, cache=False,
                _test_fault={"test_fault": "hang", "sleep_seconds": 0.6},
            )
            futures = [eng.submit(g, cache=False) for g in graphs]
            victims, survivors = futures[::2], futures[1::2]
            cancelled = [fut.cancel() for fut in victims]
            assert all(cancelled)  # all were still queued behind the hang
            for fut in victims:
                assert fut.cancelled() and fut.done()
                with pytest.raises(RequestCancelled):
                    fut.result(timeout=5)
            # the survivors and the hanging head still complete exactly
            assert head.result(timeout=30).value == 1
            # a weight-2 ring cuts at two edges: λ = 4
            assert [f.result(timeout=30).value for f in survivors] == [4] * 4
            stats = eng.stats()
            assert stats["cancelled"] == len(victims)
            assert stats["pool"]["recycles"] == 0  # cancel is not a crash
            assert stats["queue_depth"] == 0 and stats["inflight"] == 0
        assert _shm_names() <= shm_before  # no orphaned planes after close

    def test_cancellation_with_deadline_recycles_cleanly(self, dumbbell, path4):
        # mix cancellation with a deadline-blown hang: the worker is
        # recycled, queued victims are cancelled, and nothing leaks
        shm_before = _shm_names()
        with SolverEngine(pool_size=1, max_recycles=8) as eng:
            doomed = eng.submit(
                dumbbell, cache=False, deadline=0.3,
                _test_fault={"test_fault": "hang", "sleep_seconds": 60},
            )
            victim = eng.submit(path4, cache=False)
            survivor = eng.submit(path4, cache=False, rng=1)
            assert victim.cancel() is True
            with pytest.raises(WorkerTimeout):
                doomed.result(timeout=30)
            assert survivor.result(timeout=30).value == 1
            stats = eng.stats()
            assert stats["pool"]["recycles"] == 1
            assert stats["cancelled"] == 1
        assert _shm_names() <= shm_before


# ---------------------------------------------------------------------------
# cache accounting: one lookup per request
# ---------------------------------------------------------------------------


class TestCacheAccounting:
    def test_queued_duplicate_served_without_double_count(self, dumbbell, weighted_cycle):
        # a cacheable request misses at submit, waits behind a busy worker,
        # and a twin result lands in the cache meanwhile; assignment must
        # serve it via the counter-neutral peek, NOT a second counted get —
        # the old double-count inflated the hit ratio for every request
        # served from the queue
        tracer = Tracer()
        with SolverEngine(pool_size=1, tracer=tracer) as eng:
            blocker = eng.submit(
                dumbbell, cache=False,
                _test_fault={"test_fault": "hang", "sleep_seconds": 0.6},
            )
            queued = eng.submit(weighted_cycle)  # the submit-time miss
            eng._cache.put(queued._request.key, minimum_cut(weighted_cycle, rng=0))
            assert queued.result(timeout=30).value == 2
            blocker.result(timeout=30)
            stats = eng.stats()["cache"]
        # exactly one counted lookup: the submit-time miss.  Before the fix
        # this read hits=1, misses=1 (ratio 0.5) for a sequence with no
        # counted hit at all.
        assert stats["hits"] == 0
        assert stats["misses"] == 1
        assert stats["hit_ratio"] == 0.0
        # the request really was served from the cache, not re-solved
        statuses = {
            e["req_id"]: e["status"]
            for e in tracer.events() if e["kind"] == "request_end"
        }
        assert statuses[queued.req_id] == "cached"


# ---------------------------------------------------------------------------
# engine traces
# ---------------------------------------------------------------------------


class TestEngineTracing:
    def test_trace_validates_and_covers_lifecycle(self, dumbbell, weighted_cycle):
        tracer = Tracer()
        with SolverEngine(pool_size=1, tracer=tracer) as eng:
            eng.solve(dumbbell)
            eng.solve(dumbbell)  # cache hit
            eng.solve(weighted_cycle)
        events = tracer.events()
        assert all(e["kind"] in EVENT_KINDS for e in events)
        summary = validate_trace_events(events)
        by_kind = summary["by_kind"]
        assert by_kind["engine_start"] == 1
        assert by_kind["engine_stop"] == 1
        assert by_kind["request_start"] == 3
        assert by_kind["request_end"] == 3
        assert by_kind["cache_hit"] == 1

    def test_request_end_statuses(self, dumbbell):
        tracer = Tracer()
        with SolverEngine(pool_size=1, tracer=tracer, max_recycles=4) as eng:
            eng.solve(dumbbell)
            fut = eng.submit(
                dumbbell, deadline=0.3, cache=False,
                _test_fault={"test_fault": "hang", "sleep_seconds": 60},
            )
            with pytest.raises(WorkerTimeout):
                fut.result(timeout=30)
        statuses = {
            e["status"] for e in tracer.events() if e["kind"] == "request_end"
        }
        assert {"ok", "timeout"} <= statuses
        recycles = [e for e in tracer.events() if e["kind"] == "pool_recycle"]
        assert recycles and recycles[0]["reason"] == "deadline"

    def test_jsonl_sink_passes_file_validator(self, tmp_path, dumbbell):
        from repro.observability.schema import validate_trace_file

        sink = tmp_path / "engine.jsonl"
        tracer = Tracer(sink=str(sink))
        with SolverEngine(pool_size=0, tracer=tracer) as eng:
            eng.solve(dumbbell)
        tracer.close()
        assert validate_trace_file(sink)["events"] >= 4


# ---------------------------------------------------------------------------
# harness integration
# ---------------------------------------------------------------------------


class TestHarnessIntegration:
    def test_run_matrix_reuses_one_engine(self, dumbbell, weighted_cycle):
        from repro.experiments import (
            make_engine_variants,
            make_sequential_variants,
            run_matrix,
        )

        instances = [("dumbbell", dumbbell), ("wcycle", weighted_cycle)]
        with SolverEngine(pool_size=1) as eng:
            records = run_matrix(
                make_engine_variants(), instances, repetitions=2, engine=eng
            )
            stats = eng.stats()
        # 2 variants x 2 instances x 2 repetitions, all through one engine
        assert len(records) == 4
        assert stats["submitted"] == 8
        # repetitions vary the seed (distinct cache keys by design), but the
        # shared-memory planes are exported once per instance and reused
        assert stats["planes"]["exports"] == 2
        assert stats["planes"]["reuses"] == 6
        # engine records agree with the classic sequential variants
        seq = run_matrix(
            {"NOIlam-Heap-VieCut": make_sequential_variants()["NOIlam-Heap-VieCut"]},
            instances,
        )
        by_inst = {r.instance: r.value for r in seq}
        for rec in records:
            assert rec.value == by_inst[rec.instance]

    def test_engine_variants_work_without_engine(self, dumbbell):
        from repro.experiments import make_engine_variants, time_variant

        fn = make_engine_variants()["Engine-NOIlam-Heap-VieCut"]
        rec = time_variant("engineless", fn, dumbbell, "dumbbell")
        assert rec.value == 1
