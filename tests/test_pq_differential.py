"""Differential tests: the three priority queues against Python's heapq.

A randomized CAPFOREST-like operation stream (interleaved raises and pops,
priorities clamped at a bound) is replayed against a lazy heapq-based
reference; every pop must return a maximal-key vertex.  Complements the
model check in test_priority_queues.py with much longer streams and a
second, independently written reference.
"""

import heapq
import random

import pytest

from repro.datastructures import make_pq


class HeapqReference:
    """Lazy-deletion max-queue over (vertex, key) built on heapq."""

    def __init__(self, n, bound):
        self._key = [None] * n
        self._heap = []  # (-key, vertex)
        self._bound = bound
        self._size = 0

    def insert_or_raise(self, v, priority):
        new = min(priority, self._bound)
        cur = self._key[v]
        if cur is None:
            self._key[v] = new
            heapq.heappush(self._heap, (-new, v))
            self._size += 1
            return
        if cur >= self._bound or new <= cur:
            return
        self._key[v] = new
        heapq.heappush(self._heap, (-new, v))

    def pop_max(self):
        while True:
            neg, v = heapq.heappop(self._heap)
            if self._key[v] == -neg:
                self._key[v] = None
                self._size -= 1
                return v, -neg
            # stale entry, skip

    def key_of(self, v):
        return self._key[v]

    def __len__(self):
        return self._size


@pytest.mark.parametrize("kind", ["bstack", "bqueue", "heap"])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_long_stream_differential(kind, seed):
    rnd = random.Random(seed)
    n, bound = 400, 50
    pq = make_pq(kind, n, bound=bound)
    ref = HeapqReference(n, bound)
    for step in range(20_000):
        if len(pq) and (rnd.random() < 0.35 or len(pq) == n):
            v, k = pq.pop_max()
            rv, rk = ref.pop_max()
            # keys must match; vertices may differ among ties, but the
            # popped vertex's reference key must equal the popped key
            assert k == rk
            if v != rv:
                # re-file the reference's vertex under our semantics:
                # both must have held the same (maximal) key
                assert ref.key_of(v) == k or (v == rv)
                # put the reference pop back and remove ours instead
                ref._key[rv] = rk
                heapq.heappush(ref._heap, (-rk, rv))
                ref._size += 1
                assert ref.key_of(v) == k
                ref._key[v] = None
                ref._size -= 1
        else:
            v = rnd.randrange(n)
            p = rnd.randrange(0, 80)
            pq.insert_or_raise(v, p)
            ref.insert_or_raise(v, p)
        assert len(pq) == len(ref)
    # drain both; multiset of popped keys must be identical
    ours, theirs = [], []
    while len(pq):
        ours.append(pq.pop_max()[1])
        theirs.append(ref.pop_max()[1])
    assert ours == theirs


@pytest.mark.parametrize("kind", ["bstack", "bqueue", "heap"])
def test_monotone_drain_is_sorted(kind):
    rnd = random.Random(42)
    pq = make_pq(kind, 1000, bound=200)
    for v in range(1000):
        pq.insert_or_raise(v, rnd.randrange(0, 300))
    keys = [pq.pop_max()[1] for _ in range(1000)]
    assert keys == sorted(keys, reverse=True)
    assert max(keys) <= 200  # clamp respected


@pytest.mark.parametrize("kind", ["bstack", "bqueue", "heap"])
def test_interleaved_reinsertion_cycles(kind):
    """Vertices cycle in and out of the queue many times (as they do across
    CAPFOREST rounds on contracted graphs)."""
    pq = make_pq(kind, 8, bound=10)
    for cycle in range(50):
        for v in range(8):
            pq.insert_or_raise(v, (v + cycle) % 11)
        drained = sorted(pq.pop_max() for _ in range(8))
        assert len(drained) == 8
        assert len(pq) == 0
