"""Tests for k-core decomposition and connected-component utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import gnm
from repro.graph import (
    connected_components,
    connected_components_bfs,
    core_numbers,
    degeneracy,
    from_edges,
    induced_subgraph,
    is_connected,
    k_core,
    k_core_largest_component,
    largest_component,
)

from .conftest import graph_to_nx


class TestComponents:
    def test_single_component(self, dumbbell):
        k, labels = connected_components(dumbbell)
        assert k == 1
        assert (labels == 0).all()

    def test_two_components(self, two_triangles_disconnected):
        k, labels = connected_components(two_triangles_disconnected)
        assert k == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_isolated_vertices(self):
        g = from_edges(5, [0], [1])
        k, _ = connected_components(g)
        assert k == 4

    def test_empty_graph(self):
        k, labels = connected_components(from_edges(0, [], []))
        assert k == 0 and len(labels) == 0
        assert not is_connected(from_edges(0, [], []))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_matches_bfs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        m = min(int(rng.integers(0, 2 * n)), n * (n - 1) // 2)
        g = gnm(n, m, rng=rng)
        k1, l1 = connected_components(g)
        k2, l2 = connected_components_bfs(g)
        assert k1 == k2
        # same partition up to renaming
        mapping = {}
        for a, b in zip(l1.tolist(), l2.tolist()):
            assert mapping.setdefault(a, b) == b

    def test_largest_component(self):
        # triangle + edge + isolated vertex
        g = from_edges(6, [0, 1, 2, 3], [1, 2, 0, 4])
        sub, old_ids = largest_component(g)
        assert sub.n == 3
        assert sorted(old_ids.tolist()) == [0, 1, 2]

    def test_induced_subgraph_weights(self, weighted_cycle):
        sub, ids = induced_subgraph(weighted_cycle, np.array([0, 1, 2]))
        assert sub.n == 3
        assert sub.m == 2  # edges 0-1 (w3) and 1-2 (w1)
        assert sub.total_weight() == 4


class TestKCore:
    def test_core_numbers_path(self, path4):
        assert core_numbers(path4).tolist() == [1, 1, 1, 1]

    def test_core_numbers_clique(self, clique6):
        assert core_numbers(clique6).tolist() == [5] * 6

    def test_core_numbers_lollipop(self):
        # K4 with a path of 2 hanging off: clique cores 3, path cores 1
        g = from_edges(
            6, [0, 0, 0, 1, 1, 2, 3, 4], [1, 2, 3, 2, 3, 3, 4, 5]
        )
        cores = core_numbers(g)
        assert cores[:4].tolist() == [3, 3, 3, 3]
        assert cores[4] == 1 and cores[5] == 1

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_matches_networkx(self, seed):
        import networkx as nx

        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 50))
        m = min(int(rng.integers(0, 3 * n)), n * (n - 1) // 2)
        g = gnm(n, m, rng=rng)
        expected = nx.core_number(graph_to_nx(g))
        got = core_numbers(g)
        assert all(got[v] == expected[v] for v in range(n))

    def test_k_core_extraction(self):
        g = from_edges(
            6, [0, 0, 0, 1, 1, 2, 3, 4], [1, 2, 3, 2, 3, 3, 4, 5]
        )
        core, ids = k_core(g, 3)
        assert sorted(ids.tolist()) == [0, 1, 2, 3]
        assert core.degrees().min() >= 3

    def test_k_core_empty(self, path4):
        core, ids = k_core(path4, 5)
        assert core.n == 0 and len(ids) == 0

    def test_k_core_zero_is_whole_graph(self, dumbbell):
        core, ids = k_core(dumbbell, 0)
        assert core.n == dumbbell.n

    def test_k_core_negative_rejected(self, dumbbell):
        with pytest.raises(ValueError):
            k_core(dumbbell, -1)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 6))
    def test_property_k_core_is_maximal(self, seed, k):
        """Every vertex inside has degree >= k; matches networkx.k_core."""
        import networkx as nx

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        m = min(int(rng.integers(0, 3 * n)), n * (n - 1) // 2)
        g = gnm(n, m, rng=rng)
        core, ids = k_core(g, k)
        if core.n:
            assert core.degrees().min() >= k
        expected = nx.k_core(graph_to_nx(g), k)
        assert sorted(ids.tolist()) == sorted(expected.nodes())

    def test_pipeline_matches_manual(self):
        g = from_edges(
            8,
            [0, 0, 0, 1, 1, 2, 3, 4, 6],
            [1, 2, 3, 2, 3, 3, 4, 5, 7],
        )
        inst, ids = k_core_largest_component(g, 3)
        assert sorted(ids.tolist()) == [0, 1, 2, 3]

    def test_degeneracy(self, clique6, path4):
        assert degeneracy(clique6) == 5
        assert degeneracy(path4) == 1
        assert degeneracy(from_edges(0, [], [])) == 0
