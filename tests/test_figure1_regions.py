"""Tests for the Figure 1 region-growth report."""

import numpy as np

from repro.experiments.figure1 import run as figure1_run
from repro.generators import connected_gnm


class TestFigure1:
    def test_rows_and_summary(self):
        rng = np.random.default_rng(0)
        g = connected_gnm(200, 600, rng=rng)
        rows, summary = figure1_run(g, workers=4, seed=1)
        assert len(rows) == 4
        assert summary["vertices_covered"] == g.n
        assert summary["n"] == g.n
        assert summary["marked_edges"] >= 0
        assert summary["modeled_speedup_one_pass"] >= 1.0

    def test_work_shares_sum_to_one(self):
        rng = np.random.default_rng(1)
        g = connected_gnm(150, 400, rng=rng)
        rows, _ = figure1_run(g, workers=3, seed=2)
        shares = [float(r[5].rstrip("%")) for r in rows]
        assert abs(sum(shares) - 100.0) < 0.5

    def test_single_worker_full_region(self):
        rng = np.random.default_rng(2)
        g = connected_gnm(80, 200, rng=rng)
        rows, summary = figure1_run(g, workers=1, seed=0)
        assert len(rows) == 1
        assert rows[0][2] == g.n  # region = whole graph
        assert summary["region_balance_max_over_mean"] == 1.0
