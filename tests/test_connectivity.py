"""Tests for connectivity applications (k-edge-connected components etc.)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.connectivity import (
    edge_connectivity,
    enumerate_minimum_cuts,
    is_k_edge_connected,
    k_edge_connected_subgraphs,
)
from repro.generators import gnm
from repro.graph import from_edges

from .conftest import graph_to_nx


class TestEdgeConnectivity:
    def test_values(self, dumbbell, clique6, two_triangles_disconnected):
        assert edge_connectivity(dumbbell) == 1
        assert edge_connectivity(clique6) == 5
        assert edge_connectivity(two_triangles_disconnected) == 0

    def test_too_small(self):
        with pytest.raises(ValueError):
            edge_connectivity(from_edges(1, [], []))

    def test_is_k_edge_connected(self, clique6):
        assert is_k_edge_connected(clique6, 5)
        assert not is_k_edge_connected(clique6, 6)
        assert is_k_edge_connected(clique6, 0)
        with pytest.raises(ValueError):
            is_k_edge_connected(clique6, -1)

    def test_single_vertex_trivially_connected(self):
        assert is_k_edge_connected(from_edges(1, [], []), 3)


class TestKEdgeComponents:
    def test_dumbbell_splits_at_k2(self, dumbbell):
        # bridge has capacity 1: 2-edge-connected groups are the two K4s
        groups = k_edge_connected_subgraphs(dumbbell, 2)
        assert groups == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_dumbbell_whole_at_k1(self, dumbbell):
        groups = k_edge_connected_subgraphs(dumbbell, 1)
        assert groups == [sorted(range(8))]

    def test_clique_never_splits(self, clique6):
        for k in range(1, 6):
            assert k_edge_connected_subgraphs(clique6, k) == [list(range(6))]

    def test_clique_shatters_above_connectivity(self, clique6):
        groups = k_edge_connected_subgraphs(clique6, 6)
        assert groups == [[v] for v in range(6)]

    def test_path_shatters_at_k2(self, path4):
        assert k_edge_connected_subgraphs(path4, 2) == [[0], [1], [2], [3]]

    def test_disconnected_graph(self, two_triangles_disconnected):
        groups = k_edge_connected_subgraphs(two_triangles_disconnected, 1)
        assert groups == [[0, 1, 2], [3, 4, 5]]

    def test_invalid_k(self, dumbbell):
        with pytest.raises(ValueError):
            k_edge_connected_subgraphs(dumbbell, 0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000), k=st.integers(1, 4))
    def test_property_matches_networkx(self, seed, k):
        """Oracle: networkx k_edge_subgraphs on unweighted graphs."""
        import networkx as nx

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 20))
        m = min(int(rng.integers(0, 3 * n)), n * (n - 1) // 2)
        g = gnm(n, m, rng=rng)
        got = k_edge_connected_subgraphs(g, k)
        expected = sorted(
            (sorted(c) for c in nx.k_edge_subgraphs(graph_to_nx(g), k)),
            key=lambda group: group[0],
        )
        assert got == expected

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_property_groups_internally_connected(self, seed):
        """Each group of size >= 2 must itself be k-edge-connected."""
        from repro.graph import induced_subgraph

        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 18))
        m = min(int(rng.integers(n, 3 * n)), n * (n - 1) // 2)
        g = gnm(n, m, rng=rng, weights=(1, 4))
        k = int(rng.integers(2, 6))
        for group in k_edge_connected_subgraphs(g, k):
            if len(group) >= 2:
                sub, _ = induced_subgraph(g, np.array(group))
                assert edge_connectivity(sub) >= k


class TestEnumerateMinimumCuts:
    def test_weighted_cycle_two_cuts(self, weighted_cycle):
        # C4 weights 3,1,3,1: the unique min cut pairs up the two w=1 edges
        lam, sides = enumerate_minimum_cuts(weighted_cycle)
        assert lam == 2
        assert len(sides) == 1

    def test_unit_cycle_many_cuts(self):
        # C4 unit weights: λ=2, cut = any 2 of 4 edges "opposite" pairs:
        # sides are {v}, {v,v+1} combos -> 6 subsets of size 1..2 actually:
        g = from_edges(4, [0, 1, 2, 3], [1, 2, 3, 0])
        lam, sides = enumerate_minimum_cuts(g)
        assert lam == 2
        # C_n has n(n-1)/2 minimum cuts: 4*3/2 = 6
        assert len(sides) == 6

    def test_dumbbell_unique(self, dumbbell):
        lam, sides = enumerate_minimum_cuts(dumbbell)
        assert lam == 1
        assert len(sides) == 1
        assert sorted(np.flatnonzero(sides[0]).tolist()) == [0, 1, 2, 3]

    def test_sides_all_realize_lambda(self):
        rng = np.random.default_rng(5)
        g = gnm(10, 22, rng=rng, weights=(1, 4))
        lam, sides = enumerate_minimum_cuts(g)
        for side in sides:
            assert g.cut_value(side) == lam
            assert not side[g.n - 1]  # canonical orientation

    def test_size_limits(self):
        with pytest.raises(ValueError):
            enumerate_minimum_cuts(from_edges(1, [], []))
        with pytest.raises(ValueError):
            enumerate_minimum_cuts(gnm(23, 30, rng=0))


class TestSolverSidesAreTrueMinimumCuts:
    """Stronger than value agreement: every exact solver's returned side
    must be one of the exhaustively enumerated minimum-cut sides."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_property_side_membership(self, seed):
        from repro import minimum_cut
        from repro.core import EXACT_ALGORITHMS
        from repro.generators import connected_gnm

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 12))
        m = min(int(rng.integers(n - 1, 3 * n)), n * (n - 1) // 2)
        g = connected_gnm(n, m, rng=rng, weights=(1, 5))
        lam, sides = enumerate_minimum_cuts(g)
        canon = {tuple(s.tolist()) for s in sides}
        for algo in EXACT_ALGORITHMS:
            res = minimum_cut(g, algorithm=algo, rng=seed)
            assert res.value == lam
            side = res.side.copy()
            if side[n - 1]:
                side = ~side  # canonical orientation: vertex n-1 outside
            assert tuple(side.tolist()) in canon, (
                f"{algo} returned a side that is not a minimum cut"
            )
