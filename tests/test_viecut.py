"""Tests for the VieCut stack: label propagation, PR tests, multilevel driver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import connected_gnm
from repro.graph import from_edges
from repro.viecut import (
    cluster_labels,
    padberg_rinaldi_marks,
    pr12_marks,
    pr34_marks,
    propagate_labels,
    viecut,
)

from .conftest import graph_to_nx, oracle_mincut


class TestLabelPropagation:
    def test_dumbbell_clusters_align_with_blobs(self, dumbbell):
        labels = cluster_labels(dumbbell, iterations=3, rng=0)
        # the two K4s are far denser than the bridge; LP must not merge them
        left = {labels[i] for i in range(4)}
        right = {labels[i] for i in range(4, 8)}
        assert len(left) == 1
        assert len(right) == 1
        assert left != right

    def test_labels_dense(self):
        rng = np.random.default_rng(1)
        g = connected_gnm(30, 60, rng=rng)
        labels = cluster_labels(g, rng=2)
        nc = labels.max() + 1
        assert set(labels.tolist()) == set(range(nc))

    def test_clusters_are_connected(self):
        """Every cluster must induce a connected subgraph (contractability)."""
        from repro.graph.components import connected_components_bfs, induced_subgraph

        rng = np.random.default_rng(5)
        for _ in range(5):
            g = connected_gnm(25, 45, rng=rng)
            labels = cluster_labels(g, rng=rng)
            for c in range(labels.max() + 1):
                members = np.flatnonzero(labels == c)
                sub, _ = induced_subgraph(g, members)
                ncomp, _ = connected_components_bfs(sub)
                assert ncomp == 1, f"cluster {c} is disconnected"

    def test_zero_iterations_identity(self, dumbbell):
        labels = cluster_labels(dumbbell, iterations=0, rng=0)
        assert labels.max() + 1 == dumbbell.n

    def test_negative_iterations_rejected(self, dumbbell):
        with pytest.raises(ValueError):
            propagate_labels(dumbbell, iterations=-1)

    def test_isolated_vertex_keeps_own_label(self):
        g = from_edges(3, [0], [1])
        labels = cluster_labels(g, iterations=2, rng=0)
        assert labels[2] not in (labels[0], labels[1])


class TestPadbergRinaldi:
    def test_pr1_marks_heavy_edge(self):
        # edge of weight >= λ̂ is unconditionally contractible
        g = from_edges(4, [0, 1, 2, 3], [1, 2, 3, 0], [10, 1, 10, 1])
        uf = pr12_marks(g, 3)
        assert uf.same(0, 1)
        assert uf.same(2, 3)
        assert not uf.same(1, 2)

    def test_pr2_half_degree(self):
        # path a-b with w=5 and b-c with w=1: 2*5 >= c(a)=5 -> contract (a,b)
        g = from_edges(3, [0, 1], [1, 2], [5, 1])
        uf = pr12_marks(g, 100)
        assert uf.same(0, 1)

    def test_pr34_triangle(self):
        # heavy triangle hanging off a light path: PR3 fires inside it
        g = from_edges(
            5, [0, 1, 2, 0, 3], [1, 2, 0, 3, 4], [10, 10, 10, 1, 1]
        )
        uf = pr34_marks(g, 100, work_budget=10_000)
        assert uf.same(0, 1) and uf.same(1, 2)
        assert not uf.same(0, 3)

    def test_pr4_star_certificate(self):
        # u,v joined (w=2) plus 3 common neighbours (w=2 each):
        # 2 + 3*2 = 8 >= λ̂=8 -> contract
        us = [0, 0, 0, 0, 1, 1, 1]
        vs = [1, 2, 3, 4, 2, 3, 4]
        ws = [2, 2, 2, 2, 2, 2, 2]
        g = from_edges(5, us, vs, ws)
        uf = pr34_marks(g, 8, work_budget=10_000)
        assert uf.same(0, 1)

    def test_pr_marks_never_above_connectivity(self):
        """PR1/PR4 unions certify λ(u,v) >= λ̂ in the input graph."""
        import networkx as nx

        rng = np.random.default_rng(3)
        g = connected_gnm(12, 26, rng=rng, weights=(1, 6))
        lam_hat = int(g.weighted_degrees().min())
        uf = pr12_marks(g, lam_hat)
        # PR1-only check: every weight->=λ̂ edge's endpoints have conn >= λ̂
        G = graph_to_nx(g)
        us, vs, ws = g.edge_arrays()
        for u, v, w in zip(us.tolist(), vs.tolist(), ws.tolist()):
            if w >= lam_hat:
                assert nx.maximum_flow_value(G, u, v) >= lam_hat

    def test_budget_limits_work(self):
        rng = np.random.default_rng(4)
        g = connected_gnm(40, 120, rng=rng)
        # zero budget: no PR3/4 marks at all
        uf = pr34_marks(g, 1_000_000, work_budget=0)
        assert uf.count == g.n


class TestVieCut:
    def test_returns_real_cut(self, dumbbell):
        res = viecut(dumbbell, rng=0)
        assert res.verify(dumbbell)
        assert res.value >= 1

    def test_finds_planted_cut(self, dumbbell):
        res = viecut(dumbbell, rng=0)
        assert res.value == 1  # LP contracts the K4s, exposing the bridge

    def test_two_vertices(self, two_vertices):
        res = viecut(two_vertices, rng=0)
        assert res.value == 7

    def test_disconnected(self, two_triangles_disconnected):
        res = viecut(two_triangles_disconnected, rng=0)
        assert res.value == 0

    def test_single_vertex_rejected(self):
        with pytest.raises(ValueError):
            viecut(from_edges(1, [], []))

    def test_stats(self, dumbbell):
        res = viecut(dumbbell, rng=0)
        assert "levels" in res.stats
        assert "final_exact_n" in res.stats

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_property_upper_bound_and_certified(self, seed):
        """VieCut's value is always >= λ and always a real cut's capacity."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 30))
        m = min(int(rng.integers(n - 1, 3 * n)), n * (n - 1) // 2)
        g = connected_gnm(n, m, rng=rng, weights=(1, 8))
        res = viecut(g, rng=rng)
        assert res.verify(g)
        assert res.value >= oracle_mincut(g)

    def test_usually_exact(self):
        """Statistically: VieCut finds the exact cut on a large majority of
        random instances (the paper's empirical claim)."""
        rng = np.random.default_rng(9)
        hits = total = 0
        for _ in range(30):
            n = int(rng.integers(8, 40))
            m = min(int(rng.integers(2 * n, 4 * n)), n * (n - 1) // 2)
            g = connected_gnm(n, m, rng=rng, weights=(1, 6))
            total += 1
            hits += viecut(g, rng=rng).value == oracle_mincut(g)
        assert hits / total >= 0.8, f"VieCut exact on only {hits}/{total}"
