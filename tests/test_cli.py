"""Tests for the repro-mincut command-line interface."""

import pytest

from repro.cli import main
from repro.graph import write_edge_list, write_metis


@pytest.fixture
def metis_file(tmp_path, dumbbell):
    path = tmp_path / "g.graph"
    write_metis(dumbbell, path)
    return str(path)


class TestCli:
    def test_basic_run(self, metis_file, capsys):
        assert main([metis_file]) == 0
        out = capsys.readouterr().out
        assert "mincut    1" in out
        assert "n=8 m=13" in out

    def test_edgelist_format(self, tmp_path, weighted_cycle, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(weighted_cycle, path)
        assert main(["--format", "edgelist", str(path)]) == 0
        assert "mincut    2" in capsys.readouterr().out

    def test_algorithm_selection(self, metis_file, capsys):
        assert main(["--algorithm", "stoer-wagner", metis_file]) == 0
        assert "stoer-wagner" in capsys.readouterr().out

    def test_parcut_options(self, metis_file, capsys):
        assert main(["--algorithm", "parcut", "--workers", "2", "--pq", "bqueue", metis_file]) == 0
        assert "parcut-bqueue" in capsys.readouterr().out

    def test_print_side(self, metis_file, capsys):
        assert main(["--print-side", metis_file]) == 0
        out = capsys.readouterr().out
        assert "side      " in out
        side = sorted(int(x) for x in out.split("side")[1].split())
        assert side in ([0, 1, 2, 3], [4, 5, 6, 7])

    def test_stats_flag(self, metis_file, capsys):
        assert main(["--stats", metis_file]) == 0
        assert "stat      " in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent.graph"]) == 2
        assert "error reading" in capsys.readouterr().err

    def test_bad_option_combo(self, metis_file, capsys):
        # workers is not a valid kwarg for stoer-wagner
        assert main(["--algorithm", "stoer-wagner", "--workers", "2", metis_file]) == 2
        assert "error" in capsys.readouterr().err


class TestCliBatch:
    @pytest.fixture
    def manifest(self, tmp_path, dumbbell, weighted_cycle):
        import json

        g1 = tmp_path / "dumbbell.graph"
        g2 = tmp_path / "wcycle.graph"
        write_metis(dumbbell, g1)
        write_metis(weighted_cycle, g2)
        path = tmp_path / "manifest.jsonl"
        items = [
            {"path": str(g1)},
            {"path": str(g2), "algorithm": "parcut"},
            {"path": str(g1)},  # repeat: served from the engine cache
        ]
        path.write_text("".join(json.dumps(i) + "\n" for i in items))
        return path

    def test_batch_solves_manifest_through_one_engine(self, manifest, capsys):
        assert main(["--batch", str(manifest), "--pool-size", "1"]) == 0
        out = capsys.readouterr().out
        assert "batch[0]" in out and "mincut=1" in out
        assert "batch[1]" in out and "mincut=2" in out
        assert "3 items, 0 failed" in out
        # the repeat item is served from the cache either at submit (counted
        # hit) or at assignment (counter-neutral peek) depending on timing;
        # the summary line reports whichever accounting applied
        assert "cache hits" in out

    def test_batch_inline_pool_size_zero(self, manifest, capsys):
        assert main(["--batch", str(manifest), "--pool-size", "0"]) == 0
        assert "0 failed" in capsys.readouterr().out

    def test_batch_per_item_exit_status(self, tmp_path, dumbbell, capsys):
        import json

        g1 = tmp_path / "g.graph"
        write_metis(dumbbell, g1)
        path = tmp_path / "manifest.jsonl"
        items = [
            {"path": str(g1)},
            {"path": str(tmp_path / "missing.graph")},
            {"path": str(g1), "bogus_kwarg": 1},
        ]
        path.write_text("".join(json.dumps(i) + "\n" for i in items))
        # the batch keeps going; overall exit is the first failing item's code
        assert main(["--batch", str(path), "--pool-size", "1"]) == 2
        out = capsys.readouterr().out
        assert "batch[0]" in out and "exit=0" in out
        assert "batch[1]" in out and "batch[2]" in out
        assert "3 items, 2 failed" in out

    def test_batch_json_array_manifest(self, tmp_path, dumbbell, capsys):
        import json

        g1 = tmp_path / "g.graph"
        write_metis(dumbbell, g1)
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps([{"path": str(g1)}]))
        assert main(["--batch", str(path), "--pool-size", "0"]) == 0
        assert "1 items, 0 failed" in capsys.readouterr().out

    def test_batch_trace_validates(self, manifest, tmp_path, capsys):
        from repro.observability.schema import validate_trace_file

        sink = tmp_path / "engine.jsonl"
        assert main(["--batch", str(manifest), "--pool-size", "1",
                     "--trace", str(sink)]) == 0
        summary = validate_trace_file(sink)
        assert summary["by_kind"]["request_start"] == 3
        assert summary["by_kind"]["cache_hit"] == 1
        assert summary["by_kind"]["engine_stop"] == 1

    def test_batch_bad_manifest(self, tmp_path, capsys):
        path = tmp_path / "broken.jsonl"
        path.write_text("{not json\n")
        assert main(["--batch", str(path)]) == 2
        assert "error reading manifest" in capsys.readouterr().err

    def test_batch_requires_exactly_one_input(self, manifest, capsys):
        assert main([]) == 2
        assert main(["--batch", str(manifest), "also-a-path"]) == 2

    def test_batch_rejects_single_solve_flags(self, manifest, capsys):
        assert main(["--batch", str(manifest), "--print-side"]) == 2
        assert "single-solve only" in capsys.readouterr().err


class TestCliUpdates:
    @pytest.fixture
    def stream(self, tmp_path):
        import json

        path = tmp_path / "stream.jsonl"
        batches = [
            {"inserts": [[3, 4, 2]]},           # bridge 1 → 3: λ climbs
            {"deletes": [[3, 4]]},              # sever the bridge: λ = 0
            {"inserts": [[0, 4, 1], [1, 5, 1]]},  # reconnect: λ = 2
        ]
        path.write_text("".join(json.dumps(b) + "\n" for b in batches))
        return path

    def test_stream_resolves_warm_per_batch(self, metis_file, stream, capsys):
        assert main(["--updates", str(stream), "--pool-size", "0",
                     metis_file]) == 0
        out = capsys.readouterr().out
        assert "initial exit=0 mode=cold mincut=1" in out
        assert "update[0] exit=0" in out and "mincut=3" in out
        assert "update[1] exit=0" in out and "mincut=0" in out
        assert "update[2] exit=0" in out and "mincut=2" in out
        assert "3 batches, 0 failed" in out

    def test_stream_json_array_form(self, metis_file, tmp_path, capsys):
        import json

        path = tmp_path / "stream.json"
        path.write_text(json.dumps([{"inserts": [[0, 4, 5]]}]))
        assert main(["--updates", str(path), "--pool-size", "0",
                     metis_file]) == 0
        assert "1 batches, 0 failed" in capsys.readouterr().out

    def test_stream_per_batch_exit_status(self, metis_file, tmp_path, capsys):
        import json

        path = tmp_path / "stream.jsonl"
        batches = [
            {"inserts": [[3, 4, 2]]},
            {"deletes": [[0, 7]]},  # absent edge: this batch fails
            {"inserts": [[0, 4, 1]]},  # the stream keeps going
        ]
        path.write_text("".join(json.dumps(b) + "\n" for b in batches))
        assert main(["--updates", str(path), "--pool-size", "0",
                     metis_file]) == 2
        out = capsys.readouterr().out
        assert "update[1] exit=2" in out and "absent" in out
        assert "update[2] exit=0" in out
        assert "3 batches, 1 failed" in out

    def test_stream_trace_validates(self, metis_file, stream, tmp_path):
        from repro.observability.schema import validate_trace_file

        sink = tmp_path / "updates.jsonl"
        assert main(["--updates", str(stream), "--pool-size", "0",
                     "--trace", str(sink), metis_file]) == 0
        summary = validate_trace_file(sink)
        assert summary["by_kind"]["graph_update"] == 4  # initial no-op + 3
        assert summary["by_kind"]["warm_solve"] == 4
        assert summary["by_kind"]["engine_stop"] == 1

    def test_updates_usage_errors(self, metis_file, stream, capsys):
        assert main(["--updates", str(stream)]) == 2  # no input PATH
        assert main(["--updates", str(stream), "--batch", "x.jsonl",
                     metis_file]) == 2
        err = capsys.readouterr().err
        assert "needs an input PATH" in err

    def test_updates_bad_stream_file(self, metis_file, tmp_path, capsys):
        path = tmp_path / "broken.jsonl"
        path.write_text("{not json\n")
        assert main(["--updates", str(path), metis_file]) == 2
        assert "error" in capsys.readouterr().err
