"""Tests for the repro-mincut command-line interface."""

import pytest

from repro.cli import main
from repro.graph import write_edge_list, write_metis


@pytest.fixture
def metis_file(tmp_path, dumbbell):
    path = tmp_path / "g.graph"
    write_metis(dumbbell, path)
    return str(path)


class TestCli:
    def test_basic_run(self, metis_file, capsys):
        assert main([metis_file]) == 0
        out = capsys.readouterr().out
        assert "mincut    1" in out
        assert "n=8 m=13" in out

    def test_edgelist_format(self, tmp_path, weighted_cycle, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(weighted_cycle, path)
        assert main(["--format", "edgelist", str(path)]) == 0
        assert "mincut    2" in capsys.readouterr().out

    def test_algorithm_selection(self, metis_file, capsys):
        assert main(["--algorithm", "stoer-wagner", metis_file]) == 0
        assert "stoer-wagner" in capsys.readouterr().out

    def test_parcut_options(self, metis_file, capsys):
        assert main(["--algorithm", "parcut", "--workers", "2", "--pq", "bqueue", metis_file]) == 0
        assert "parcut-bqueue" in capsys.readouterr().out

    def test_print_side(self, metis_file, capsys):
        assert main(["--print-side", metis_file]) == 0
        out = capsys.readouterr().out
        assert "side      " in out
        side = sorted(int(x) for x in out.split("side")[1].split())
        assert side in ([0, 1, 2, 3], [4, 5, 6, 7])

    def test_stats_flag(self, metis_file, capsys):
        assert main(["--stats", metis_file]) == 0
        assert "stat      " in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent.graph"]) == 2
        assert "error reading" in capsys.readouterr().err

    def test_bad_option_combo(self, metis_file, capsys):
        # workers is not a valid kwarg for stoer-wagner
        assert main(["--algorithm", "stoer-wagner", "--workers", "2", metis_file]) == 2
        assert "error" in capsys.readouterr().err
