"""Shape tests: the paper's qualitative experimental claims, as assertions.

These encode the reproduction contract of DESIGN.md §4 at test scale —
direction and ordering claims that must hold regardless of machine:

* bounded priority queues never do more update work than unbounded, and
  the gap is large on hub-heavy (power-law) graphs, small on RHG (§4.2);
* a tighter λ̂ never decreases the number of contractible edges one
  CAPFOREST pass certifies (§3.1.1);
* the modeled parallel speedup grows with the worker count (§4.3);
* the flow-based baseline (Hao–Orlin) and Stoer–Wagner are slower than
  engineered NOI on a representative instance (Figure 4's ordering);
* parallel CAPFOREST's total work grows with p (region-boundary
  duplication) while the makespan work shrinks — the trade Figure 5 rides.
"""

import time

import pytest

from repro.baselines import hao_orlin, stoer_wagner
from repro.core.capforest import capforest
from repro.core.mincut import parallel_mincut
from repro.core.noi import noi_mincut
from repro.core.parallel_capforest import parallel_capforest
from repro.generators import chung_lu, rhg
from repro.graph import largest_component


@pytest.fixture(scope="module")
def hub_graph():
    g, _ = largest_component(chung_lu(1500, 20, gamma=2.1, communities=12, mu=0.5, rng=3))
    return g


@pytest.fixture(scope="module")
def rhg_graph():
    g, _ = largest_component(rhg(1024, 16, rng=3))
    return g


class TestBoundedQueueShape:
    def test_clamp_never_increases_updates(self, hub_graph, rhg_graph):
        for g in (hub_graph, rhg_graph):
            _, delta = g.min_weighted_degree()
            unb = capforest(g, int(delta), bounded=False, start=0)
            bnd = capforest(g, int(delta), bounded=True, pq_kind="heap", start=0)
            assert bnd.pq_stats.updates <= unb.pq_stats.updates

    def test_clamp_gap_larger_on_hub_graph(self, hub_graph, rhg_graph):
        """§4.2: 'in these [high-degree] vertices NOI-HNSS often reaches
        priority values much higher than λ̂' — the savings ratio on the
        power-law graph must clearly exceed the RHG one."""

        def savings(g):
            _, delta = g.min_weighted_degree()
            unb = capforest(g, int(delta), bounded=False, start=0)
            bnd = capforest(g, int(delta), bounded=True, pq_kind="heap", start=0)
            return bnd.pq_stats.updates / max(unb.pq_stats.updates, 1)

        hub_ratio = savings(hub_graph)  # smaller = more savings
        rhg_ratio = savings(rhg_graph)
        assert hub_ratio < rhg_ratio, (hub_ratio, rhg_ratio)

    def test_skipped_updates_positive_on_hubs(self, hub_graph):
        _, delta = hub_graph.min_weighted_degree()
        res = capforest(hub_graph, int(delta), bounded=True, pq_kind="heap", start=0)
        assert res.pq_stats.skipped_updates > 0


class TestBoundQualityShape:
    def test_tighter_bound_more_marks(self, hub_graph):
        """§3.1.1: lowering λ̂ lets CAPFOREST certify more contractions."""
        lam = noi_mincut(hub_graph, rng=0, compute_side=False).value
        _, delta = hub_graph.min_weighted_degree()
        marks = []
        for bound in sorted({max(lam, 1), int(delta), 2 * int(delta)}):
            res = capforest(hub_graph, bound, pq_kind="heap", start=0, fixed_bound=True)
            marks.append((bound, res.n_marked))
        for (b1, m1), (b2, m2) in zip(marks, marks[1:]):
            assert m1 >= m2, f"bound {b1}->{b2} marks {m1}->{m2}"


class TestParallelShape:
    def test_modeled_speedup_grows_with_p(self, hub_graph):
        speedups = []
        for p in (1, 2, 4):
            res = parallel_mincut(
                hub_graph, workers=p, use_viecut=False, rng=1, compute_side=False
            )
            speedups.append(res.stats.get("modeled_speedup", 1.0))
        assert speedups[0] <= speedups[1] <= speedups[2]
        assert speedups[2] > 2.0

    def test_total_work_grows_makespan_shrinks(self, hub_graph):
        _, delta = hub_graph.min_weighted_degree()
        r1 = parallel_capforest(hub_graph, int(delta), workers=1, rng=2)
        r4 = parallel_capforest(hub_graph, int(delta), workers=4, rng=2)
        assert r4.total_work >= r1.total_work  # boundary duplication
        assert r4.makespan_work < r1.makespan_work  # but the critical path shrinks

    def test_region_coverage_balanced(self, hub_graph):
        _, delta = hub_graph.min_weighted_degree()
        res = parallel_capforest(hub_graph, int(delta), workers=4, pq_kind="bqueue", rng=3)
        sizes = [w.vertices_scanned for w in res.workers]
        assert sum(sizes) == hub_graph.n
        assert max(sizes) <= 3 * (hub_graph.n / 4), f"unbalanced regions {sizes}"


class TestSolverOrderingShape:
    """Figure 4's ranking at miniature scale: engineered NOI beats the
    flow-based and Stoer–Wagner baselines by a wide margin."""

    def test_noi_beats_hao_orlin(self, hub_graph):
        t0 = time.perf_counter()
        noi = noi_mincut(hub_graph, rng=0, compute_side=False)
        t_noi = time.perf_counter() - t0
        t0 = time.perf_counter()
        ho = hao_orlin(hub_graph, compute_side=False)
        t_ho = time.perf_counter() - t0
        assert noi.value == ho.value
        assert t_ho > 2 * t_noi, f"HO {t_ho:.3f}s vs NOI {t_noi:.3f}s"

    def test_noi_beats_stoer_wagner(self, rhg_graph):
        t0 = time.perf_counter()
        noi = noi_mincut(rhg_graph, rng=0, compute_side=False)
        t_noi = time.perf_counter() - t0
        t0 = time.perf_counter()
        sw = stoer_wagner(rhg_graph, compute_side=False)
        t_sw = time.perf_counter() - t0
        assert noi.value == sw.value
        assert t_sw > 3 * t_noi, f"SW {t_sw:.3f}s vs NOI {t_noi:.3f}s"
