"""Tests for METIS and edge-list IO round-trips and error handling."""

import pytest

from repro.generators import gnm
from repro.graph import (
    GraphValidationError,
    from_edges,
    read_dimacs,
    read_edge_list,
    read_metis,
    write_edge_list,
    write_metis,
)


class TestMetis:
    def test_roundtrip_unweighted(self, tmp_path, dumbbell):
        path = tmp_path / "g.graph"
        write_metis(dumbbell, path)
        assert read_metis(path) == dumbbell

    def test_roundtrip_weighted(self, tmp_path, weighted_cycle):
        path = tmp_path / "g.graph"
        write_metis(weighted_cycle, path)
        assert read_metis(path) == weighted_cycle

    def test_roundtrip_random(self, tmp_path):
        g = gnm(40, 120, rng=1, weights=(1, 9))
        path = tmp_path / "r.graph"
        write_metis(g, path)
        assert read_metis(path) == g

    def test_roundtrip_isolated_vertices(self, tmp_path):
        g = from_edges(5, [0], [1])
        path = tmp_path / "iso.graph"
        write_metis(g, path)
        assert read_metis(path) == g

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.graph"
        path.write_text("% a comment\n\n3 2\n2 3\n1\n1\n")
        g = read_metis(path)
        assert g.n == 3 and g.m == 2

    def test_explicit_fmt_codes(self, tmp_path):
        path = tmp_path / "f.graph"
        path.write_text("2 1 001\n2 5\n1 5\n")
        g = read_metis(path)
        assert g.edge_weight(0, 1) == 5

    def test_vertex_weight_fmt_rejected(self, tmp_path):
        path = tmp_path / "vw.graph"
        path.write_text("2 1 011\n1 2\n1 1\n")
        with pytest.raises(ValueError):
            read_metis(path)

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("3 5\n2\n1\n\n")
        with pytest.raises(ValueError):
            read_metis(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.graph"
        path.write_text("")
        with pytest.raises(ValueError):
            read_metis(path)


class TestEdgeList:
    def test_roundtrip(self, tmp_path, weighted_cycle):
        path = tmp_path / "g.txt"
        write_edge_list(weighted_cycle, path)
        assert read_edge_list(path) == weighted_cycle

    def test_header_preserves_isolated(self, tmp_path):
        g = from_edges(6, [0], [1], [3])
        path = tmp_path / "iso.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).n == 6

    def test_unweighted_lines(self, tmp_path):
        path = tmp_path / "u.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.m == 2 and g.is_unweighted()

    def test_explicit_n(self, tmp_path):
        path = tmp_path / "n.txt"
        path.write_text("0 1 4\n")
        g = read_edge_list(path, n=10)
        assert g.n == 10


class TestValidationErrors:
    """Malformed inputs fail at the boundary, naming the file and line."""

    def test_metis_bad_token_names_line(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("3 2\n2 x\n1 3\n2\n")
        with pytest.raises(GraphValidationError) as ei:
            read_metis(path)
        assert ei.value.line == 2
        assert str(path) in str(ei.value) and ":2:" in str(ei.value)

    def test_metis_neighbour_out_of_range(self, tmp_path):
        path = tmp_path / "oob.graph"
        path.write_text("2 1\n2\n9\n")
        with pytest.raises(GraphValidationError) as ei:
            read_metis(path)
        assert ei.value.line == 3

    def test_metis_is_a_value_error(self, tmp_path):
        # backward compatibility: callers catching ValueError still work
        path = tmp_path / "bad.graph"
        path.write_text("not a header\n")
        with pytest.raises(ValueError):
            read_metis(path)

    def test_edge_list_negative_weight(self, tmp_path):
        path = tmp_path / "neg.txt"
        path.write_text("0 1 2\n1 2 -3\n")
        with pytest.raises(GraphValidationError) as ei:
            read_edge_list(path)
        assert ei.value.line == 2

    def test_edge_list_short_line(self, tmp_path):
        path = tmp_path / "short.txt"
        path.write_text("0 1\n7\n")
        with pytest.raises(GraphValidationError) as ei:
            read_edge_list(path)
        assert ei.value.line == 2

    def test_edge_list_endpoint_beyond_explicit_n(self, tmp_path):
        path = tmp_path / "big.txt"
        path.write_text("0 5\n")
        with pytest.raises(GraphValidationError):
            read_edge_list(path, n=3)

    def test_dimacs_edge_before_problem_line(self, tmp_path):
        path = tmp_path / "bad.dimacs"
        path.write_text("c comment\na 1 2 3\n")
        with pytest.raises(GraphValidationError) as ei:
            read_dimacs(path)
        assert ei.value.line == 2

    def test_dimacs_nonpositive_weight(self, tmp_path):
        path = tmp_path / "w.dimacs"
        path.write_text("p cut 3 2\na 1 2 0\n")
        with pytest.raises(GraphValidationError) as ei:
            read_dimacs(path)
        assert ei.value.line == 2
