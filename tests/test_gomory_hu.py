"""Tests for the Gomory–Hu cut tree (all-pairs minimum cuts)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.gomory_hu import gomory_hu_tree
from repro.generators import connected_gnm
from repro.graph import from_edges

from .conftest import graph_to_nx, oracle_mincut


class TestStructure:
    def test_tree_shape(self, dumbbell):
        tree = gomory_hu_tree(dumbbell)
        assert tree.n == 8
        assert tree.parent[0] == 0
        # every non-root parent pointer decreases toward the root eventually
        for v in range(1, 8):
            x, hops = v, 0
            while x != 0:
                x = int(tree.parent[x])
                hops += 1
                assert hops <= 8

    def test_dumbbell_pairs(self, dumbbell):
        tree = gomory_hu_tree(dumbbell)
        # across the bridge: λ = 1; inside a K4: λ = 3
        assert tree.min_cut_value(0, 7) == 1
        assert tree.min_cut_value(0, 1) == 3
        assert tree.min_cut_value(4, 6) == 3

    def test_global_min_cut(self, dumbbell, weighted_cycle):
        assert gomory_hu_tree(dumbbell).global_min_cut()[0] == 1
        assert gomory_hu_tree(weighted_cycle).global_min_cut()[0] == 2

    def test_same_vertex_rejected(self, triangle):
        tree = gomory_hu_tree(triangle)
        with pytest.raises(ValueError):
            tree.min_cut_value(1, 1)

    def test_disconnected_rejected(self, two_triangles_disconnected):
        with pytest.raises(ValueError):
            gomory_hu_tree(two_triangles_disconnected)

    def test_tiny_rejected(self):
        with pytest.raises(ValueError):
            gomory_hu_tree(from_edges(1, [], []))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_all_pairs_match_maxflow(seed):
    import networkx as nx

    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 14))
    m = min(int(rng.integers(n - 1, 3 * n)), n * (n - 1) // 2)
    g = connected_gnm(n, m, rng=rng, weights=(1, 8))
    tree = gomory_hu_tree(g)
    G = graph_to_nx(g)
    for u, v in itertools.combinations(range(n), 2):
        assert tree.min_cut_value(u, v) == nx.maximum_flow_value(G, u, v)
    assert tree.global_min_cut()[0] == oracle_mincut(g)
