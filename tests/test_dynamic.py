"""Tests for the dynamic-graph update path (`repro.dynamic` + engine wiring).

Three layers, matching the subsystem's own structure:

* the **incremental CSR merge** (:func:`repro.dynamic.graph.apply_updates`)
  must be indistinguishable from a from-scratch rebuild — same digest, so
  the content-addressed cache/plane machinery can't tell them apart;
* the **handle** (:class:`repro.dynamic.DynamicGraph`) must version
  atomically and reject malformed batches without mutating;
* **warm re-solves** (:meth:`repro.engine.SolverEngine.update`) must be
  bit-identical to cold re-solves over randomized update streams — value
  always, side/num_min_cuts whenever the cactus is requested — across
  λ-increasing, λ-decreasing, and disconnecting batches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import minimum_cut
from repro.dynamic import (
    DynamicGraph,
    EdgeUpdateError,
    apply_updates,
    make_warm_state,
    warm_solve,
)
from repro.engine import ResultCache, SolverEngine, graph_digest, request_key
from repro.graph import from_edges
from repro.observability import Tracer
from repro.observability.schema import validate_trace_events

from .conftest import oracle_mincut


def _edge_dict(graph) -> dict[tuple[int, int], int]:
    us, vs, ws = graph.edge_arrays()
    return {
        (min(int(u), int(v)), max(int(u), int(v))): int(w)
        for u, v, w in zip(us, vs, ws)
    }


def _rebuild(n: int, edges: dict[tuple[int, int], int]):
    if not edges:
        return from_edges(n, [], [], [])
    us, vs = zip(*edges)
    return from_edges(n, us, vs, [edges[k] for k in edges])


def _random_batch(rng, n: int, edges: dict, *, p_insert: float = 0.6,
                  max_ops: int = 6):
    """A well-formed random batch against the current edge set."""
    inserts: list[tuple[int, int, int]] = []
    deletes: list[tuple[int, int]] = []
    deletable = list(edges)
    inserted: set[tuple[int, int]] = set()
    deleted: set[tuple[int, int]] = set()
    for _ in range(int(rng.integers(1, max_ops + 1))):
        if rng.random() < p_insert or not deletable:
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in deleted:
                continue  # never insert+delete one edge in the same batch
            inserts.append((u, v, int(rng.integers(1, 9))))
            inserted.add(key)
            if key in deletable:
                deletable.remove(key)
        else:
            key = deletable.pop(int(rng.integers(0, len(deletable))))
            if key in inserted:
                continue
            deletes.append(key)
            deleted.add(key)
    return inserts, deletes


def _apply_to_dict(edges: dict, inserts, deletes) -> dict:
    out = dict(edges)
    for key in deletes:
        del out[key]
    for u, v, w in inserts:
        key = (min(u, v), max(u, v))
        out[key] = out.get(key, 0) + w
    return out


# ---------------------------------------------------------------------------
# incremental CSR merge == from-scratch rebuild
# ---------------------------------------------------------------------------


class TestApplyUpdates:
    def test_insert_new_edge_matches_rebuild(self, weighted_cycle):
        new, *_ = apply_updates(weighted_cycle, [(0, 2, 5)], ())
        expect = _rebuild(4, _apply_to_dict(_edge_dict(weighted_cycle),
                                            [(0, 2, 5)], ()))
        assert graph_digest(new) == graph_digest(expect)

    def test_insert_existing_edge_bumps_weight(self, weighted_cycle):
        new, *_ = apply_updates(weighted_cycle, [(1, 0, 4)], ())
        assert _edge_dict(new)[(0, 1)] == 3 + 4
        assert new.m == weighted_cycle.m  # no new arcs, just a heavier one

    def test_delete_edge_matches_rebuild(self, dumbbell):
        new, *rest = apply_updates(dumbbell, (), [(0, 1)])
        expect = _rebuild(8, _apply_to_dict(_edge_dict(dumbbell), (), [(0, 1)]))
        assert graph_digest(new) == graph_digest(expect)
        del_w = rest[-1]
        assert del_w.sum() == 1  # the deleted weight is reported

    def test_batch_duplicate_inserts_merge(self, weighted_cycle):
        new, *_ = apply_updates(weighted_cycle, [(0, 2, 2), (2, 0, 3)], ())
        assert _edge_dict(new)[(0, 2)] == 5

    def test_fuzz_merge_equals_rebuild(self):
        rng = np.random.default_rng(7)
        for _ in range(15):
            n = int(rng.integers(4, 32))
            edges = {}
            graph = _rebuild(n, edges)
            for _ in range(8):
                inserts, deletes = _random_batch(rng, n, edges)
                graph, *_ = apply_updates(graph, inserts, deletes)
                edges = _apply_to_dict(edges, inserts, deletes)
                assert graph_digest(graph) == graph_digest(_rebuild(n, edges))

    @pytest.mark.parametrize(
        "inserts, deletes, match",
        [
            ([(0, 0, 1)], (), "self-loop"),
            ([(0, 1, 0)], (), "positive"),
            ([(0, 9, 1)], (), "out of range"),
            ((), [(0, 2)], "absent"),
            ((), [(0, 1), (1, 0)], "duplicate"),
            ([(0, 1, 2)], [(0, 1)], "one batch"),
        ],
    )
    def test_malformed_batches_raise(self, weighted_cycle, inserts, deletes, match):
        with pytest.raises(EdgeUpdateError, match=match):
            apply_updates(weighted_cycle, inserts, deletes)


class TestDynamicGraph:
    def test_versions_and_digests_track_batches(self, weighted_cycle):
        dyn = DynamicGraph(weighted_cycle)
        d0 = dyn.digest
        delta = dyn.apply(inserts=[(0, 2, 5)])
        assert dyn.version == 1
        assert delta.old_digest == d0 and delta.new_digest == dyn.digest
        assert dyn.digest != d0

    def test_noop_batch_keeps_version_and_object(self, weighted_cycle):
        dyn = DynamicGraph(weighted_cycle)
        delta = dyn.apply()
        assert delta.is_noop and dyn.version == 0
        assert dyn.graph is weighted_cycle

    def test_failed_batch_leaves_handle_untouched(self, weighted_cycle):
        dyn = DynamicGraph(weighted_cycle)
        with pytest.raises(EdgeUpdateError):
            dyn.apply(inserts=[(0, 2, 5)], deletes=[(0, 2)])
        assert dyn.version == 0 and dyn.graph is weighted_cycle

    def test_delta_crossing_weights(self, dumbbell):
        dyn = DynamicGraph(dumbbell)
        side = np.zeros(8, dtype=bool)
        side[4:] = True  # the λ=1 bridge cut
        delta = dyn.apply(inserts=[(0, 7, 3), (1, 2, 2)], deletes=[(3, 4)])
        ins_cross, del_cross = delta.crossing_weights(side)
        assert ins_cross == 3  # only (0,7) crosses
        assert del_cross == 1  # the bridge


# ---------------------------------------------------------------------------
# warm-solve unit behavior (direct, engine-free)
# ---------------------------------------------------------------------------


class TestWarmSolve:
    def test_fast_path_on_intra_side_insert(self, dumbbell):
        digest = graph_digest(dumbbell)
        res = minimum_cut(dumbbell, algorithm="noi-viecut", rng=0)
        state = make_warm_state(dumbbell, digest, res)
        dyn = DynamicGraph(dumbbell)
        delta = dyn.apply(inserts=[(0, 1, 5)])  # inside one K4: cut untouched
        out = warm_solve(dyn.graph, state, delta, algorithm="noi-viecut")
        assert out is not None
        result, info = out
        assert info["mode"] == "fast-path" and result.value == 1
        assert result.verify(dyn.graph)

    def test_non_warmable_algorithm_returns_none(self, dumbbell):
        digest = graph_digest(dumbbell)
        res = minimum_cut(dumbbell, algorithm="noi-viecut", rng=0)
        state = make_warm_state(dumbbell, digest, res)
        dyn = DynamicGraph(dumbbell)
        delta = dyn.apply(inserts=[(0, 1, 5)])
        assert warm_solve(dyn.graph, state, delta, algorithm="stoer-wagner") is None


# ---------------------------------------------------------------------------
# engine.update: randomized streams, warm bit-identical to cold
# ---------------------------------------------------------------------------


def _stream_check(engine, base_edges: dict, n: int, batches, *,
                  check_cactus_every: int = 0):
    """Drive one stream through engine.update, cold-checking every step."""
    dyn = DynamicGraph(_rebuild(n, base_edges))
    engine.update(dyn, rng=0)  # install warm state via the initial cold solve
    edges = dict(base_edges)
    for step, (inserts, deletes) in enumerate(batches):
        warm = engine.update(dyn, inserts, deletes, rng=0)
        edges = _apply_to_dict(edges, inserts, deletes)
        cold_graph = _rebuild(n, edges)
        assert graph_digest(cold_graph) == dyn.digest
        cold = minimum_cut(cold_graph, algorithm="noi-viecut", rng=0)
        assert warm.value == cold.value, (
            f"step {step}: warm {warm.value} != cold {cold.value} "
            f"({warm.stats.get('warm')})"
        )
        if warm.side is not None:
            assert warm.verify(cold_graph)
        if check_cactus_every and step % check_cactus_every == 0:
            wboth = engine.update(dyn, all_cuts=True, most_balanced=True, rng=0)
            cboth = minimum_cut(cold_graph, algorithm="noi-viecut", rng=0,
                                all_cuts=True, most_balanced=True)
            assert wboth.num_min_cuts() == cboth.num_min_cuts()
            assert np.array_equal(wboth.side, cboth.side)
    return dyn


class TestEngineUpdateStreams:
    @pytest.fixture()
    def inline_engine(self):
        with SolverEngine(pool_size=0) as eng:
            yield eng

    def test_mixed_random_streams_match_cold(self, inline_engine):
        rng = np.random.default_rng(11)
        for trial in range(4):
            n = int(rng.integers(6, 65))
            # seed a connected base: a ring
            edges = {(i, (i + 1) % n): 2 for i in range(n - 1)}
            edges[(0, n - 1)] = 2
            edges = {(min(u, v), max(u, v)): w for (u, v), w in edges.items()}
            batches = []
            cur = dict(edges)
            for _ in range(6):
                batch = _random_batch(rng, n, cur)
                batches.append(batch)
                cur = _apply_to_dict(cur, *batch)
            _stream_check(inline_engine, edges, n, batches,
                          check_cactus_every=3 if trial == 0 else 0)

    def test_lambda_increasing_stream(self, inline_engine):
        # a sparse ring, then inserts only: λ climbs, seeds stay upper bounds
        n = 12
        edges = {(i, (i + 1) % n): 1 for i in range(n)}
        edges = {(min(u, v), max(u, v)): w for (u, v), w in edges.items()}
        batches = [
            ([(i, (i + 2) % n, 2) for i in range(0, n, 2)], ()),
            ([(i, (i + 3) % n, 1) for i in range(0, n, 3)], ()),
            ([(0, 6, 4), (1, 7, 4), (2, 8, 4)], ()),
        ]
        _stream_check(inline_engine, edges, n, batches)

    def test_lambda_decreasing_and_disconnecting_stream(self, inline_engine):
        # K4–K4 dumbbell with a weight-3 bridge: thin the bridge to 0
        edges = {}
        for base in (0, 4):
            for i in range(4):
                for j in range(i + 1, 4):
                    edges[(base + i, base + j)] = 2
        edges[(3, 4)] = 3
        batches = [
            ((), [(3, 4)]),          # λ: 3 → 0 (disconnected)
            ([(3, 4, 1)], ()),       # reconnect: λ = 1
            ((), [(0, 1), (2, 3)]),  # thin one K4
        ]
        dyn = _stream_check(inline_engine, edges, 8, batches)
        assert dyn.version == 3

    def test_oracle_agreement_on_connected_steps(self, inline_engine):
        rng = np.random.default_rng(3)
        n = 10
        edges = {(i, (i + 1) % n): 3 for i in range(n)}
        edges = {(min(u, v), max(u, v)): w for (u, v), w in edges.items()}
        dyn = DynamicGraph(_rebuild(n, edges))
        inline_engine.update(dyn, rng=0)
        for _ in range(5):
            inserts, _ = _random_batch(rng, n, edges, p_insert=1.0)
            res = inline_engine.update(dyn, inserts, (), rng=0)
            edges = _apply_to_dict(edges, inserts, ())
            assert res.value == oracle_mincut(_rebuild(n, edges))

    def test_update_counters_and_cache_lineage(self, dumbbell):
        with SolverEngine(pool_size=0) as eng:
            dyn = DynamicGraph(dumbbell)
            eng.update(dyn, rng=0)  # cold
            eng.update(dyn, inserts=[(0, 1, 5)], rng=0)  # fast-path
            eng.update(dyn, rng=0)  # no-op batch: cache hit, no invalidation
            stats = eng.stats()
            assert stats["updates"] == 3
            assert stats["updates_cold"] == 1
            assert stats["updates_fast_path"] == 1
            # one real batch evicted the superseded digest's entry
            assert stats["cache_invalidated"] == 1
            assert stats["cache"]["entries"] == 1  # only the live digest

    def test_update_trace_events_validate(self, dumbbell):
        tracer = Tracer()
        with SolverEngine(pool_size=0, tracer=tracer) as eng:
            dyn = DynamicGraph(dumbbell)
            eng.update(dyn, rng=0)
            eng.update(dyn, inserts=[(0, 7, 1)], rng=0)
        summary = validate_trace_events(tracer.events())
        by_kind = summary["by_kind"]
        assert by_kind["graph_update"] == 2
        assert by_kind["warm_solve"] == 2

    def test_bad_batch_surfaces_without_mutation(self, dumbbell):
        with SolverEngine(pool_size=0) as eng:
            dyn = DynamicGraph(dumbbell)
            eng.update(dyn, rng=0)
            with pytest.raises(EdgeUpdateError):
                eng.update(dyn, deletes=[(0, 7)], rng=0)
            assert dyn.version == 0
            # the handle still updates warm afterwards
            res = eng.update(dyn, inserts=[(0, 4, 2)], rng=0)
            assert res.value == minimum_cut(dyn.graph, rng=0).value

    def test_pooled_engine_update_works(self, dumbbell):
        with SolverEngine(pool_size=1) as eng:
            dyn = DynamicGraph(dumbbell)
            assert eng.update(dyn, rng=0).value == 1
            assert eng.update(dyn, inserts=[(3, 4, 2)], rng=0).value == 3


# ---------------------------------------------------------------------------
# cache lineage invalidation + counter-neutral peek
# ---------------------------------------------------------------------------


def _mk(value=3):
    from repro.core.result import MinCutResult

    return MinCutResult(value, None, 8, "test", {"stats_schema": 2})


class TestCacheLineage:
    def test_invalidate_digest_scopes_to_lineage(self):
        cache = ResultCache(8)
        k_old1 = request_key("a" * 32, "noi", {"rng": 0})
        k_old2 = request_key("a" * 32, "noi", {"rng": 1})
        k_other = request_key("b" * 32, "noi", {"rng": 0})
        for k in (k_old1, k_old2, k_other):
            cache.put(k, _mk())
        assert cache.invalidate_digest("a" * 32) == 2
        assert k_old1 not in cache and k_old2 not in cache
        assert k_other in cache  # unrelated graph untouched

    def test_invalidate_digest_is_counter_neutral(self):
        cache = ResultCache(8)
        cache.put(request_key("a" * 32, "noi", {}), _mk())
        cache.invalidate_digest("a" * 32)
        cache.invalidate_digest("a" * 32)  # second call finds nothing
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_peek_returns_clone_without_counting(self):
        cache = ResultCache(8)
        cache.put("k", _mk())
        got = cache.peek("k")
        assert got is not None and got.value == 3
        got.stats["poison"] = True
        assert "poison" not in cache.peek("k").stats  # mutation-isolated
        assert cache.peek("absent") is None
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_peek_does_not_refresh_lru(self):
        cache = ResultCache(2)
        cache.put("a", _mk(1))
        cache.put("b", _mk(2))
        cache.peek("a")  # must NOT promote "a"
        cache.put("c", _mk(3))
        assert "a" not in cache and "b" in cache and "c" in cache
