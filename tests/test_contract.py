"""Tests for graph contraction: sequential, by-union-find, and parallel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datastructures import UnionFind
from repro.generators import gnm
from repro.graph import (
    check_graph,
    compose_labels,
    contract_by_labels,
    contract_by_union_find,
    contract_edge,
    from_edges,
)
from repro.graph.parallel_contract import parallel_contract_by_labels


class TestContractByLabels:
    def test_triangle_merge_two(self, triangle):
        # merge vertices 0 and 1 -> two vertices, parallel edges summed
        labels = np.array([0, 0, 1])
        g, _ = contract_by_labels(triangle, labels)
        assert g.n == 2
        assert g.m == 1
        # edge (0,2) w3 and (1,2) w2 merge into w5
        assert g.edge_weight(0, 1) == 5
        check_graph(g)

    def test_identity_labels(self, dumbbell):
        labels = np.arange(8)
        g, _ = contract_by_labels(dumbbell, labels)
        assert g == dumbbell

    def test_all_into_one(self, clique6):
        g, _ = contract_by_labels(clique6, np.zeros(6, dtype=np.int64))
        assert g.n == 1
        assert g.m == 0

    def test_intra_block_edges_vanish(self, dumbbell):
        labels = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        g, _ = contract_by_labels(dumbbell, labels)
        assert g.n == 2
        assert g.total_weight() == 1  # only the bridge survives

    def test_weights_accumulate(self):
        g0 = from_edges(4, [0, 1, 0, 1], [2, 2, 3, 3], [1, 2, 3, 4])
        labels = np.array([0, 0, 1, 2])
        g, _ = contract_by_labels(g0, labels)
        assert g.edge_weight(0, 1) == 3  # 1+2
        assert g.edge_weight(0, 2) == 7  # 3+4

    def test_cut_preservation(self):
        """Cuts that do not split any block keep their exact value."""
        rng = np.random.default_rng(1)
        g = gnm(12, 30, rng=rng, weights=(1, 5))
        labels = np.array([0, 0, 1, 1, 1, 2, 2, 3, 3, 3, 3, 4])
        gc, _ = contract_by_labels(g, labels)
        for block_subset in range(1, 1 << 4):
            side_orig = np.array([(block_subset >> labels[v]) & 1 for v in range(12)], dtype=bool)
            side_new = np.array([(block_subset >> b) & 1 for b in range(5)], dtype=bool)
            assert g.cut_value(side_orig) == gc.cut_value(side_new)

    def test_wrong_label_length(self, triangle):
        with pytest.raises(ValueError):
            contract_by_labels(triangle, np.array([0, 1]))


class TestContractHelpers:
    def test_contract_edge(self, weighted_cycle):
        g, labels = contract_edge(weighted_cycle, 0, 1)
        assert g.n == 3
        assert labels[0] == labels[1]
        check_graph(g)

    def test_contract_self_loop_rejected(self, triangle):
        with pytest.raises(ValueError):
            contract_edge(triangle, 1, 1)

    def test_contract_by_union_find(self, dumbbell):
        uf = UnionFind(8)
        for i in range(3):
            uf.union(i, i + 1)
            uf.union(i + 4, i + 5)
        g, labels = contract_by_union_find(dumbbell, uf)
        assert g.n == 2
        assert g.total_weight() == 1

    def test_union_find_size_mismatch(self, triangle):
        with pytest.raises(ValueError):
            contract_by_union_find(triangle, UnionFind(5))

    def test_compose_labels(self):
        outer = np.array([0, 0, 1, 2])
        inner = np.array([1, 1, 0])
        composed = compose_labels(outer, inner)
        assert composed.tolist() == [1, 1, 1, 0]


class TestParallelContract:
    def test_matches_sequential_small(self, dumbbell):
        labels = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        seq, _ = contract_by_labels(dumbbell, labels)
        par, _ = parallel_contract_by_labels(dumbbell, labels, workers=3)
        assert seq == par

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), workers=st.integers(1, 6))
    def test_property_matches_sequential(self, seed, workers):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 50))
        m = min(int(rng.integers(0, 4 * n)), n * (n - 1) // 2)
        g = gnm(n, m, rng=rng, weights=(1, 9))
        nc = int(rng.integers(1, n + 1))
        raw = rng.integers(0, nc, size=n)
        _, labels = np.unique(raw, return_inverse=True)
        seq, _ = contract_by_labels(g, labels.astype(np.int64))
        par, _ = parallel_contract_by_labels(g, labels.astype(np.int64), workers=workers)
        assert seq == par

    def test_large_graph_goes_parallel(self):
        """Above the arc threshold the chunked path runs and still matches."""
        rng = np.random.default_rng(3)
        g = gnm(300, 20_000, rng=rng, weights=(1, 3))
        assert g.num_arcs >= 1 << 15
        labels = (np.arange(300) // 3).astype(np.int64)
        seq, _ = contract_by_labels(g, labels)
        par, _ = parallel_contract_by_labels(g, labels, workers=4)
        assert seq == par

    def test_invalid_workers(self, triangle):
        with pytest.raises(ValueError):
            parallel_contract_by_labels(triangle, np.zeros(3, dtype=np.int64), workers=0)
