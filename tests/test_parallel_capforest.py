"""Tests for parallel CAPFOREST (Algorithm 1): safety, coverage, executors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.parallel_capforest import parallel_capforest
from repro.generators import connected_gnm
from repro.graph import from_edges

from .conftest import graph_to_nx


class TestInterface:
    def test_unknown_executor(self, dumbbell):
        with pytest.raises(ValueError):
            parallel_capforest(dumbbell, 3, executor="gpu")

    def test_invalid_workers(self, dumbbell):
        with pytest.raises(ValueError):
            parallel_capforest(dumbbell, 3, workers=0)

    def test_negative_bound(self, dumbbell):
        with pytest.raises(ValueError):
            parallel_capforest(dumbbell, -1)

    def test_empty_graph(self):
        res = parallel_capforest(from_edges(0, [], []), 3)
        assert res.n_marked == 0
        assert res.workers == []

    def test_workers_capped_at_n(self, triangle):
        res = parallel_capforest(triangle, 2, workers=10, rng=0)
        assert len(res.workers) == 3


class TestCoverage:
    """Every vertex of a connected graph is scanned by exactly one worker."""

    @pytest.mark.parametrize("workers", [1, 2, 3, 5])
    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_all_vertices_scanned_once(self, workers, executor):
        rng = np.random.default_rng(1)
        g = connected_gnm(40, 90, rng=rng)
        res = parallel_capforest(g, 5, workers=workers, executor=executor, rng=2)
        total = sum(w.vertices_scanned for w in res.workers)
        assert total == g.n

    def test_serial_deterministic(self):
        rng = np.random.default_rng(3)
        g = connected_gnm(30, 60, rng=rng)
        r1 = parallel_capforest(g, 4, workers=3, executor="serial", rng=9)
        r2 = parallel_capforest(g, 4, workers=3, executor="serial", rng=9)
        assert r1.n_marked == r2.n_marked
        assert np.array_equal(r1.uf.labels(), r2.uf.labels())
        assert [w.vertices_scanned for w in r1.workers] == [
            w.vertices_scanned for w in r2.workers
        ]

    def test_worker_reports_have_starts(self):
        rng = np.random.default_rng(5)
        g = connected_gnm(20, 40, rng=rng)
        res = parallel_capforest(g, 4, workers=4, rng=1)
        starts = [w.start_vertex for w in res.workers]
        assert len(set(starts)) == 4  # sampled without replacement

    def test_work_accounting(self):
        rng = np.random.default_rng(6)
        g = connected_gnm(30, 70, rng=rng)
        res = parallel_capforest(g, 5, workers=3, rng=2)
        assert res.total_work >= res.makespan_work > 0
        assert res.total_work == sum(w.work for w in res.workers)


class TestSafety:
    """Marks never cross a cut smaller than the final λ̂ (Lemma 3.2)."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        workers=st.integers(1, 5),
        pq=st.sampled_from(["bstack", "bqueue", "heap"]),
    )
    def test_property_marks_never_cross_mincut(self, seed, workers, pq):
        import networkx as nx

        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 16))
        m = min(int(rng.integers(n, 3 * n)), n * (n - 1) // 2)
        g = connected_gnm(n, m, rng=rng, weights=(1, 5))
        _, deg0 = g.min_weighted_degree()
        res = parallel_capforest(g, deg0, workers=workers, pq_kind=pq, rng=rng)
        lam_true, (side_a, _) = nx.stoer_wagner(graph_to_nx(g))
        assert res.lambda_hat >= lam_true  # λ̂ stays a valid upper bound
        if res.lambda_hat <= lam_true:
            return
        side = np.zeros(g.n, dtype=bool)
        side[list(side_a)] = True
        labels = res.uf.labels()
        for b in range(labels.max() + 1):
            block = labels == b
            assert not ((block & side).any() and (block & ~side).any())

    def test_best_side_is_real_cut(self):
        rng = np.random.default_rng(11)
        g = connected_gnm(30, 45, rng=rng)
        _, deg0 = g.min_weighted_degree()
        res = parallel_capforest(g, deg0 + 3, workers=3, rng=4)
        if res.best_side is not None:
            assert g.cut_value(res.best_side) == res.lambda_hat


class TestExecutorEquivalence:
    """All executors produce *safe* marks; serial/threads also agree on
    coverage.  (Mark sets may differ — scan interleaving is scheduling-
    dependent — but every executor's output must be usable by ParCut.)"""

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_marks_progress_dumbbell(self, dumbbell, executor):
        res = parallel_capforest(dumbbell, 1, workers=2, executor=executor, rng=0)
        # bound λ̂=1: nothing to mark is legal, but coverage must hold
        total = sum(w.vertices_scanned for w in res.workers)
        assert total == dumbbell.n

    def test_processes_executor_safety(self):
        rng = np.random.default_rng(13)
        g = connected_gnm(40, 80, rng=rng, weights=(1, 4))
        _, deg0 = g.min_weighted_degree()
        res = parallel_capforest(g, deg0, workers=3, executor="processes", rng=5)
        total = sum(w.vertices_scanned for w in res.workers)
        assert total == g.n
        assert res.lambda_hat <= deg0

    def test_threads_union_find_merges(self):
        rng = np.random.default_rng(17)
        g = connected_gnm(50, 150, rng=rng)
        _, deg0 = g.min_weighted_degree()
        res = parallel_capforest(g, deg0, workers=4, executor="threads", rng=6)
        assert res.n_marked == g.n - res.uf.count
