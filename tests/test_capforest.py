"""Tests for sequential CAPFOREST: certificates, marking safety, bounds.

The central invariants (paper §2.3, Lemma 3.1):

1. every q(e) is a lower bound on the edge connectivity λ(G, u, v);
2. every marked edge satisfies λ(G, u, v) ≥ λ̂ at its scan (safety);
3. bounding the priority queue changes *which* safe edges are found, never
   marks an unsafe one;
4. every scan cut α is the capacity of a real cut (the scanned prefix).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.capforest import capforest
from repro.generators import connected_gnm
from repro.graph import from_edges

from .conftest import graph_to_nx


def exact_pair_connectivity(g, u, v) -> int:
    import networkx as nx

    return int(nx.maximum_flow_value(graph_to_nx(g), u, v))


class TestBasics:
    def test_empty_graph(self):
        g = from_edges(0, [], [])
        res = capforest(g, 5)
        assert res.n_marked == 0
        assert res.vertices_scanned == 0

    def test_single_vertex(self):
        g = from_edges(1, [], [])
        res = capforest(g, 5, start=0)
        assert res.vertices_scanned == 1
        assert res.n_marked == 0
        # a 1-vertex graph has no proper prefix, so no scan cut
        assert res.min_alpha is None

    def test_two_vertices_marks_edge(self, two_vertices):
        res = capforest(two_vertices, 7, start=0)
        assert res.n_marked == 1
        assert res.uf.same(0, 1)

    def test_scans_every_vertex_connected(self, dumbbell):
        res = capforest(dumbbell, 3, start=0)
        assert res.vertices_scanned == 8
        assert sorted(res.scan_order) == list(range(8))

    def test_each_edge_scanned_once(self, clique6):
        res = capforest(clique6, 5, start=0)
        assert res.edges_scanned == clique6.m

    def test_invalid_lambda_hat(self, triangle):
        with pytest.raises(ValueError):
            capforest(triangle, -1)

    def test_invalid_start(self, triangle):
        with pytest.raises(ValueError):
            capforest(triangle, 3, start=5)

    def test_unbounded_requires_heap(self, triangle):
        with pytest.raises(ValueError):
            capforest(triangle, 3, bounded=False, pq_kind="bstack")

    def test_deterministic_given_start(self, dumbbell):
        r1 = capforest(dumbbell, 3, start=2, pq_kind="bstack")
        r2 = capforest(dumbbell, 3, start=2, pq_kind="bstack")
        assert r1.scan_order == r2.scan_order
        assert r1.n_marked == r2.n_marked


class TestScanCuts:
    def test_alpha_tracks_real_cut(self, dumbbell):
        res = capforest(dumbbell, 7, start=0, pq_kind="heap")
        # the dumbbell's λ=1 bridge cut must be discovered as a scan cut
        assert res.lambda_hat == 1
        mask = res.best_cut_mask(8)
        assert mask is not None
        assert dumbbell.cut_value(mask) == 1

    def test_min_alpha_is_real_cut_value(self, weighted_cycle):
        res = capforest(weighted_cycle, 10, start=0)
        mask = res.best_cut_mask(4)
        if mask is not None:
            assert weighted_cycle.cut_value(mask) == res.min_alpha

    def test_disconnected_restart_records_zero_cut(self, two_triangles_disconnected):
        res = capforest(two_triangles_disconnected, 2, start=0, scan_all=True)
        assert res.min_alpha == 0
        assert res.lambda_hat == 0
        assert res.vertices_scanned == 6
        mask = res.best_cut_mask(6)
        assert two_triangles_disconnected.cut_value(mask) == 0

    def test_no_scan_all_stops_at_component(self, two_triangles_disconnected):
        res = capforest(two_triangles_disconnected, 2, start=0, scan_all=False)
        assert res.vertices_scanned == 3

    def test_fixed_bound_does_not_tighten(self, dumbbell):
        res = capforest(dumbbell, 7, start=0, fixed_bound=True)
        assert res.lambda_hat == 7  # untouched
        assert res.min_alpha == 1  # still observed


class TestMarkingSafety:
    """No marked edge may have connectivity below λ̂-at-scan."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_unbounded_certificates_are_lower_bounds(self, seed):
        """Classic NOI invariant: with a true maximum-adjacency order
        (unbounded heap), every q(e) lower-bounds λ(G, u, v)."""
        rng = np.random.default_rng(seed)
        g = connected_gnm(14, 25, rng=rng, weights=(1, 6))
        v0, deg0 = g.min_weighted_degree()
        res = capforest(g, deg0, bounded=False, rng=rng, record_certificates=True)
        for u, v, q, lam_at_scan, marked in res.certificates:
            conn = exact_pair_connectivity(g, u, v)
            assert q <= conn, f"certificate q({u},{v})={q} exceeds λ={conn}"
            if marked:
                assert conn >= lam_at_scan

    @pytest.mark.parametrize("pq_kind", ["bstack", "bqueue", "heap"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bounded_certificates_lemma31(self, pq_kind, seed):
        """Lemma 3.1: with clamped priorities, raw q values may exceed the
        true connectivity, but every *marked* edge (q crossed λ̂ from below)
        still has connectivity at least λ̂-at-scan — that is the whole
        content of the lemma, and all the driver relies on."""
        rng = np.random.default_rng(seed)
        g = connected_gnm(14, 25, rng=rng, weights=(1, 6))
        v0, deg0 = g.min_weighted_degree()
        res = capforest(g, deg0, pq_kind=pq_kind, rng=rng, record_certificates=True)
        for u, v, q, lam_at_scan, marked in res.certificates:
            if marked:
                conn = exact_pair_connectivity(g, u, v)
                assert conn >= lam_at_scan, (
                    f"marked edge ({u},{v}) has λ={conn} < λ̂={lam_at_scan}"
                )

    @pytest.mark.parametrize("bounded", [True, False])
    def test_marked_blocks_have_high_connectivity(self, bounded):
        rng = np.random.default_rng(7)
        g = connected_gnm(16, 30, rng=rng, weights=(1, 5))
        _, deg0 = g.min_weighted_degree()
        res = capforest(
            g, deg0, pq_kind="heap", bounded=bounded, rng=rng, record_certificates=True
        )
        # final λ̂ after the scan; every union happened at λ̂ >= this
        lam_final = res.lambda_hat
        labels = res.uf.labels()
        for u, v, q, lam_at_scan, marked in res.certificates:
            if marked:
                assert exact_pair_connectivity(g, u, v) >= lam_final

    def test_contraction_preserves_cuts_below_bound(self):
        """Exhaustive: every cut strictly below λ̂_final survives contraction."""
        rng = np.random.default_rng(3)
        for _ in range(10):
            g = connected_gnm(10, 16, rng=rng, weights=(1, 4))
            _, deg0 = g.min_weighted_degree()
            res = capforest(g, deg0, rng=rng)
            labels = res.uf.labels()
            n = g.n
            lam = res.lambda_hat
            for subset in range(1, 1 << (n - 1)):
                mask = np.array([(subset >> i) & 1 for i in range(n)], dtype=bool)
                value = g.cut_value(mask)
                if value < lam:
                    # no marked block may straddle this cut
                    for b in range(labels.max() + 1):
                        block = labels == b
                        assert (
                            not (block & mask).any() or not (block & ~mask).any()
                        ), f"block {b} straddles a cut of value {value} < {lam}"


class TestBoundedVsUnbounded:
    def test_bounded_skips_updates_on_hub(self, star):
        # hub r-value reaches 20; bound λ̂=2 skips almost everything
        unb = capforest(star, 2, bounded=False, start=1)
        bnd = capforest(star, 2, bounded=True, pq_kind="heap", start=1)
        assert bnd.pq_stats.skipped_updates >= 0
        assert (
            bnd.pq_stats.updates <= unb.pq_stats.updates
        ), "bounding must not increase queue updates"

    @pytest.mark.parametrize("pq_kind", ["bstack", "bqueue", "heap"])
    def test_bounded_variants_still_make_progress(self, pq_kind, dumbbell):
        res = capforest(dumbbell, 3, pq_kind=pq_kind, start=0)
        assert res.n_marked >= 1


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000), pq=st.sampled_from(["bstack", "bqueue", "heap"]))
def test_property_marks_never_cross_mincut(seed, pq):
    """A marked block never straddles *the* minimum cut when λ̂ > λ is the
    trivial bound — the exact-solver safety property."""
    import networkx as nx

    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 14))
    m = min(max(int(rng.integers(6, 24)), n - 1), n * (n - 1) // 2)
    g = connected_gnm(n, m, rng=rng, weights=(1, 5))
    _, deg0 = g.min_weighted_degree()
    res = capforest(g, deg0, pq_kind=pq, rng=rng)
    lam_true = None
    G = graph_to_nx(g)
    lam_true, (side_a, _) = nx.stoer_wagner(G)
    if res.lambda_hat <= lam_true:
        return  # bound closed to optimal; contracting across the cut is legal
    side = np.zeros(g.n, dtype=bool)
    side[list(side_a)] = True
    labels = res.uf.labels()
    for b in range(labels.max() + 1):
        block = labels == b
        assert not ((block & side).any() and (block & ~side).any())


class TestScanOrderBehaviour:
    """§3.1.3: the pop tie-breaking changes the *scan pattern* — BStack keeps
    revisiting the vertex it just raised (depth-first-ish), BQueue explores
    vertices discovered earliest (breadth-first-ish)."""

    @staticmethod
    def _long_path(k):
        # unit path: every unscanned neighbour enters the top bucket at 1
        return from_edges(k, range(k - 1), range(1, k), [1] * (k - 1))

    def test_bstack_walks_the_path(self):
        g = self._long_path(12)
        res = capforest(g, 1, pq_kind="bstack", start=0)
        # the vertex just inserted is always popped next -> exact path order
        assert res.scan_order == list(range(12))

    def test_bqueue_walks_the_path_too(self):
        # a path from an endpoint leaves only one frontier vertex; both
        # orders agree — the *difference* needs a branching frontier
        g = self._long_path(12)
        res = capforest(g, 1, pq_kind="bqueue", start=0)
        assert res.scan_order == list(range(12))

    def test_orders_diverge_on_star_of_paths(self):
        # hub 0 with three unit paths hanging off: BStack dives down one
        # path; BQueue rotates between the three
        edges = [(0, 1), (0, 2), (0, 3)]
        nxt = 4
        tails = {1: 1, 2: 2, 3: 3}
        for arm in (1, 2, 3):
            cur = arm
            for _ in range(3):
                edges.append((cur, nxt))
                cur = nxt
                nxt += 1
        us, vs = zip(*edges)
        g = from_edges(nxt, us, vs)
        stack_order = capforest(g, 1, pq_kind="bstack", start=0).scan_order
        queue_order = capforest(g, 1, pq_kind="bqueue", start=0).scan_order
        assert stack_order != queue_order
        # BStack: after popping arm vertex 3 (pushed last), it follows that
        # arm to its end before returning
        i = stack_order.index(3)
        assert stack_order[i : i + 2] == [3, stack_order[i + 1]]
        # BQueue: the first three non-hub pops are the three arm heads in
        # insertion order
        assert queue_order[1:4] == [1, 2, 3]

    def test_all_variants_same_marks_on_uniform_cycle(self):
        # fully symmetric instance: mark COUNT must agree across queues
        g = from_edges(8, range(8), [(i + 1) % 8 for i in range(8)])
        counts = {
            pq: capforest(g, 2, pq_kind=pq, start=0).n_marked
            for pq in ("bstack", "bqueue", "heap")
        }
        assert len(set(counts.values())) == 1


class TestBoundEdgeCases:
    def test_bound_zero(self, dumbbell):
        res = capforest(dumbbell, 0, pq_kind="bstack", start=0)
        assert res.n_marked == 0  # nothing can be certified at bound 0
        assert res.vertices_scanned == 8  # scan still covers the graph

    def test_huge_bound_falls_back_to_heap(self, dumbbell):
        from repro.core.capforest import MAX_BUCKET_BOUND

        res = capforest(dumbbell, MAX_BUCKET_BOUND + 5, pq_kind="bstack", start=0)
        # correctness unaffected; the λ=1 scan cut is still found
        assert res.lambda_hat == 1

    def test_weighted_q_accumulates_across_edges(self):
        # triangle with weights 2,3,4: scanning from 0 sets r correctly
        g = from_edges(3, [0, 0, 1], [1, 2, 2], [2, 4, 3])
        res = capforest(g, 100, bounded=False, start=0, record_certificates=True)
        qs = {(min(u, v), max(u, v)): q for u, v, q, _, _ in res.certificates}
        # from 0: q(0,1)=2, q(0,2)=4; vertex 2 popped next (r=4): q(2,1)=2+3=5
        assert qs[(0, 1)] == 2
        assert qs[(0, 2)] == 4
        assert qs[(1, 2)] == 5

    def test_certificates_off_by_default(self, dumbbell):
        res = capforest(dumbbell, 3, start=0)
        assert res.certificates == []
