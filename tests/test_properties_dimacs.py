"""Tests for graph profiling utilities and DIMACS IO."""

import math

import numpy as np
import pytest

from repro.generators import chung_lu, gnm, rhg
from repro.graph import (
    conductance_of_cut,
    degree_histogram,
    diameter_lower_bound,
    from_edges,
    powerlaw_exponent_estimate,
    profile,
    read_dimacs,
    write_dimacs,
)


class TestProfile:
    def test_clique(self, clique6):
        p = profile(clique6)
        assert p.n == 6 and p.m == 15
        assert p.min_degree == p.max_degree == 5
        assert p.avg_degree == 5.0
        assert p.diameter_lower_bound == 1
        assert p.degree_skew == 1.0

    def test_path_diameter(self, path4):
        assert diameter_lower_bound(path4) == 3

    def test_profile_empty_rejected(self):
        with pytest.raises(ValueError):
            profile(from_edges(0, [], []))

    def test_as_dict_keys(self, dumbbell):
        d = profile(dumbbell).as_dict()
        assert {"n", "m", "min_degree", "degree_skew"} <= set(d)

    def test_degree_histogram(self, star):
        hist = degree_histogram(star)
        assert hist[1] == 5  # five leaves
        assert hist[5] == 1  # the hub

    def test_powerlaw_estimate_on_powerlaw_graph(self):
        g = chung_lu(6000, 12, gamma=2.5, rng=0)
        est = powerlaw_exponent_estimate(g, d_min=3)
        assert 1.8 <= est <= 3.5, f"estimate {est} implausible for gamma=2.5"

    def test_powerlaw_estimate_recovers_generator_exponents(self):
        """With d_min in the genuine tail (above the mean degree), the MLE
        recovers the generators' target exponents: RHG α=2 ⇒ γ = 5 (the
        paper's setting), Chung–Lu γ = 2.2."""
        g_rhg = rhg(4096, 16, alpha=2.0, rng=1)
        g_cl = chung_lu(4096, 16, gamma=2.2, rng=1)
        est_rhg = powerlaw_exponent_estimate(g_rhg, 32)
        est_cl = powerlaw_exponent_estimate(g_cl, 32)
        assert 4.0 <= est_rhg <= 6.5, f"RHG tail exponent {est_rhg} != ~5"
        assert 2.0 <= est_cl <= 3.0, f"Chung-Lu tail exponent {est_cl} != ~2.2"

    def test_powerlaw_estimate_tiny_graph_nan(self, triangle):
        assert math.isnan(powerlaw_exponent_estimate(triangle))

    def test_conductance(self, dumbbell):
        side = np.zeros(8, dtype=bool)
        side[:4] = True
        # bridge weight 1, side volume 2*6+1 = 13
        assert conductance_of_cut(dumbbell, side) == 1 / 13

    def test_conductance_invalid_side(self, dumbbell):
        with pytest.raises(ValueError):
            conductance_of_cut(dumbbell, np.zeros(8, dtype=bool))
        with pytest.raises(ValueError):
            conductance_of_cut(dumbbell, np.ones(3, dtype=bool))


class TestDimacs:
    def test_roundtrip(self, tmp_path, weighted_cycle):
        path = tmp_path / "g.dimacs"
        write_dimacs(weighted_cycle, path)
        assert read_dimacs(path) == weighted_cycle

    def test_roundtrip_random(self, tmp_path):
        g = gnm(30, 120, rng=2, weights=(1, 9))
        path = tmp_path / "r.dimacs"
        write_dimacs(g, path)
        assert read_dimacs(path) == g

    def test_reads_e_designator_and_comments(self, tmp_path):
        path = tmp_path / "e.dimacs"
        path.write_text("c hello\np edge 3 2\ne 1 2\ne 2 3 4\n")
        g = read_dimacs(path)
        assert g.m == 2
        assert g.edge_weight(1, 2) == 4

    def test_symmetric_duplicates_merge(self, tmp_path):
        path = tmp_path / "d.dimacs"
        path.write_text("p max 2 2\na 1 2 5\na 2 1 5\n")
        g = read_dimacs(path)
        assert g.m == 1 and g.edge_weight(0, 1) == 5

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "s.dimacs"
        path.write_text("p cut 2 2\na 1 1 3\na 1 2 1\n")
        g = read_dimacs(path)
        assert g.m == 1

    def test_errors(self, tmp_path):
        bad = tmp_path / "bad.dimacs"
        bad.write_text("a 1 2 3\n")
        with pytest.raises(ValueError, match="edge before problem"):
            read_dimacs(bad)
        bad.write_text("p cut 2 1\nz 1 2\n")
        with pytest.raises(ValueError, match="unknown designator"):
            read_dimacs(bad)
        bad.write_text("p cut 2 1\na 1 5 1\n")
        with pytest.raises(ValueError, match="out of range"):
            read_dimacs(bad)
        bad.write_text("c only comments\n")
        with pytest.raises(ValueError, match="missing problem"):
            read_dimacs(bad)
        bad.write_text("p cut 4 4\na 1 2 1\n")
        with pytest.raises(ValueError, match="declares"):
            read_dimacs(bad)


class TestParallelLabelPropagation:
    def test_parallel_matches_quality(self, dumbbell):
        from repro.viecut import cluster_labels

        labels = cluster_labels(dumbbell, iterations=3, rng=0, workers=3)
        left = {labels[i] for i in range(4)}
        right = {labels[i] for i in range(4, 8)}
        assert len(left) == 1 and len(right) == 1 and left != right

    def test_parallel_viecut_still_valid(self):
        from repro.generators import connected_gnm
        from repro.viecut import viecut

        rng = np.random.default_rng(3)
        g = connected_gnm(120, 420, rng=rng, weights=(1, 5))
        res = viecut(g, rng=1, workers=4)
        assert res.verify(g)

    def test_invalid_workers(self, dumbbell):
        from repro.viecut import propagate_labels_parallel

        with pytest.raises(ValueError):
            propagate_labels_parallel(dumbbell, workers=0)
        with pytest.raises(ValueError):
            propagate_labels_parallel(dumbbell, iterations=-1)
