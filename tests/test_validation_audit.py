"""Tests for the Monte-Carlo solver audit module."""

from repro.experiments.validation import main, run_audit


class TestAudit:
    def test_audit_passes(self):
        report = run_audit(trials=8, n_max=18, seed=1)
        assert report["passed"]
        assert report["disagreements"] == []
        assert report["uncertified"] == []
        assert report["guarantee_violations"] == []
        assert sum(report["value_histogram"].values()) == 8

    def test_audit_restricted_algorithms(self):
        report = run_audit(trials=5, n_max=14, seed=2, algorithms=("noi", "stoer-wagner"))
        assert report["passed"]
        assert report["algorithms"] == ["noi", "stoer-wagner"]

    def test_main_exit_zero(self, capsys):
        rc = main(["--trials", "5", "--n-max", "14", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert "disagreements: 0" in out

    def test_connected_only_mode(self):
        report = run_audit(trials=6, n_max=14, seed=4, include_disconnected=False)
        assert report["passed"]
        assert 0 not in report["value_histogram"]
