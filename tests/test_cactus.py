"""Tests for the cactus of all minimum cuts (`repro.cactus`).

The ground truth is :func:`repro.baselines.brute_force_all_mincuts`,
which enumerates every bipartition — independent of every solver and of
the cactus construction itself.  Parity means three things at once: the
cactus *counts* the min cuts exactly, its ``cut_masks()`` are the same
*set* of canonical sides, and ``most_balanced_cut()`` achieves the
exhaustive optimum imbalance.  On top of parity: the engine plumbing
(cache-key separation of output shapes, pooled workers shipping the
cactus across the process boundary), the service and CLI surfaces, and
the trace taxonomy for the new event kinds.
"""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.baselines import brute_force_all_mincuts
from repro.cactus import Cactus, CactusError, build_cactus
from repro.cli import main as cli_main
from repro.core.api import minimum_cut
from repro.engine import SolverEngine
from repro.engine.keys import request_key
from repro.generators import connected_gnm
from repro.graph import from_edges, write_metis
from repro.observability import Tracer
from repro.observability.schema import validate_trace_events
from repro.service import ServiceClient, graph_payload
from repro.service.testing import ServiceThread


def assert_cactus_parity(graph) -> Cactus:
    """Cactus vs exhaustive enumeration: value, cut set, balance."""
    value, expected = brute_force_all_mincuts(graph)
    cactus = build_cactus(graph, verify=True)
    assert cactus.lam == value
    got = cactus.cut_masks()
    assert cactus.num_min_cuts() == len(expected)
    assert {m.tobytes() for m in got} == {m.tobytes() for m in expected}

    mask, info = cactus.most_balanced_cut()
    best = min(abs(graph.n - 2 * int(m.sum())) for m in expected)
    assert info["imbalance"] == best
    assert abs(graph.n - 2 * int(mask.sum())) == best
    assert info["smaller_side_size"] + info["larger_side_size"] == graph.n

    in_cut = cactus.in_cut(mask)
    assert in_cut.dtype == np.uint8 and in_cut.shape == (graph.n,)
    assert np.array_equal(in_cut.astype(bool), mask)
    return cactus


class TestCactusParity:
    def test_two_vertices(self, two_vertices):
        cactus = assert_cactus_parity(two_vertices)
        assert cactus.num_min_cuts() == 1

    def test_triangle(self, triangle):
        assert_cactus_parity(triangle)

    def test_path4(self, path4):
        # every edge of a path is a min cut: 3 cuts, pure tree cactus
        cactus = assert_cactus_parity(path4)
        assert cactus.num_min_cuts() == 3
        assert not cactus.cycles

    def test_unit_cycle(self):
        # C5: all 5*(5-1)/2 = 10 pair cuts, one 5-cycle in the cactus
        g = from_edges(5, [0, 1, 2, 3, 4], [1, 2, 3, 4, 0])
        cactus = assert_cactus_parity(g)
        assert cactus.num_min_cuts() == 10
        assert len(cactus.cycles) == 1 and len(cactus.cycles[0]) == 5

    def test_weighted_cycle(self, weighted_cycle):
        # weights 3,1,3,1: exactly one min cut (the two weight-1 edges)
        cactus = assert_cactus_parity(weighted_cycle)
        assert cactus.num_min_cuts() == 1

    def test_star(self, star):
        cactus = assert_cactus_parity(star)
        assert cactus.num_min_cuts() == 1

    def test_dumbbell(self, dumbbell):
        cactus = assert_cactus_parity(dumbbell)
        assert cactus.num_min_cuts() == 1
        mask, info = cactus.most_balanced_cut()
        assert info["imbalance"] == 0
        assert sorted(np.flatnonzero(mask).tolist()) in ([0, 1, 2, 3], [4, 5, 6, 7])

    def test_clique6(self, clique6):
        # K6: the 6 singleton cuts
        cactus = assert_cactus_parity(clique6)
        assert cactus.num_min_cuts() == 6

    def test_dumbbell_chain(self):
        # three K3s in a path, unit bridges: two crossing-free cuts
        edges = []
        for base in (0, 3, 6):
            edges += [(base, base + 1, 2), (base + 1, base + 2, 2), (base, base + 2, 2)]
        edges += [(2, 3, 1), (5, 6, 1)]
        us, vs, ws = zip(*edges)
        cactus = assert_cactus_parity(from_edges(9, us, vs, ws))
        assert cactus.num_min_cuts() == 2

    @pytest.mark.parametrize("seed", range(12))
    def test_random_gnm_weighted(self, seed):
        rng = np.random.default_rng(900 + seed)
        n = int(rng.integers(4, 12))
        m = min(n - 1 + int(rng.integers(0, 2 * n)), n * (n - 1) // 2)
        assert_cactus_parity(connected_gnm(n, m, rng=rng, weights=(1, 4)))

    @pytest.mark.parametrize("seed", range(12))
    def test_random_gnm_unit(self, seed):
        # unit weights produce ties, hence rich cactus structure (cycles)
        rng = np.random.default_rng(7000 + seed)
        n = int(rng.integers(4, 12))
        m = min(n - 1 + int(rng.integers(0, n)), n * (n - 1) // 2)
        assert_cactus_parity(connected_gnm(n, m, rng=rng))


class TestCactusStructure:
    def test_node_membership_partitions_vertices(self, dumbbell):
        cactus = build_cactus(dumbbell)
        seen = sorted(v for members in cactus.node_members for v in members)
        assert seen == list(range(dumbbell.n))
        node_of = cactus.node_of()
        for v in range(dumbbell.n):
            assert v in cactus.node_members[node_of[v]]

    def test_empty_nodes_allowed(self):
        # C4 unit: canonical cactus is a 4-cycle of the 4 singleton nodes;
        # larger even cycles keep all vertices but structure stays a cycle
        g = from_edges(4, [0, 1, 2, 3], [1, 2, 3, 0])
        cactus = build_cactus(g)
        assert len(cactus.cycles) == 1
        assert cactus.num_min_cuts() == 6

    def test_in_cut_defaults_to_most_balanced(self, dumbbell):
        cactus = build_cactus(dumbbell)
        default = cactus.in_cut()
        mask, _ = cactus.most_balanced_cut()
        # default marks the smaller side of the most balanced cut
        marked = np.flatnonzero(default).tolist()
        small = sorted(np.flatnonzero(mask).tolist())
        large = sorted(set(range(dumbbell.n)) - set(small))
        assert marked in (small, large)
        assert len(marked) <= dumbbell.n - len(marked)

    def test_pickle_roundtrip(self, dumbbell):
        cactus = build_cactus(dumbbell)
        clone = pickle.loads(pickle.dumps(cactus))
        assert clone.num_min_cuts() == cactus.num_min_cuts()
        assert [m.tobytes() for m in clone.cut_masks()] == [
            m.tobytes() for m in cactus.cut_masks()
        ]

    def test_stats_recorded(self, dumbbell):
        cactus = build_cactus(dumbbell)
        assert cactus.stats["num_cuts"] == 1
        assert cactus.stats["contracted_n"] <= dumbbell.n
        assert cactus.stats["capforest_passes"] >= 1

    def test_disconnected_star_degenerate(self, two_triangles_disconnected):
        # λ = 0: star cactus over components; represents the
        # component-isolating cuts only (documented degenerate case)
        cactus = build_cactus(two_triangles_disconnected)
        assert cactus.lam == 0
        assert cactus.stats.get("degenerate_disconnected") is True
        masks = cactus.cut_masks()
        assert cactus.num_min_cuts() == 1  # two components, symmetric sides
        assert sorted(np.flatnonzero(masks[0]).tolist()) == [3, 4, 5]

    def test_single_vertex_rejected(self):
        with pytest.raises((ValueError, CactusError)):
            build_cactus(from_edges(1, [], [], []))


class TestApiIntegration:
    def test_minimum_cut_all_cuts(self, dumbbell):
        res = minimum_cut(dumbbell, all_cuts=True)
        assert res.value == 1
        assert res.cactus is not None
        assert res.num_min_cuts() == 1
        assert res.stats["num_min_cuts"] == 1

    def test_minimum_cut_default_has_no_cactus(self, dumbbell):
        res = minimum_cut(dumbbell)
        assert res.cactus is None
        assert res.num_min_cuts() is None

    def test_most_balanced_sets_side(self, dumbbell):
        res = minimum_cut(dumbbell, most_balanced=True)  # implies all_cuts
        assert res.cactus is not None
        assert res.stats["most_balanced"]["imbalance"] == 0
        assert len(res.smaller_side()) == 4

    def test_smaller_side_helper(self, dumbbell):
        res = minimum_cut(dumbbell)
        small = res.smaller_side()
        assert small in (list(range(4)), list(range(4, 8)))

    def test_all_cuts_rejects_heuristics(self, dumbbell):
        with pytest.raises(ValueError, match="all_cuts"):
            minimum_cut(dumbbell, algorithm="karger-stein", all_cuts=True)

    def test_trace_events_validate(self, dumbbell):
        tracer = Tracer()
        minimum_cut(dumbbell, most_balanced=True, tracer=tracer)
        events = tracer.events()
        kinds = [e["kind"] for e in events]
        assert "cactus_build_start" in kinds
        assert "cactus_build_end" in kinds
        assert "cactus_query" in kinds
        validate_trace_events(events)
        end = next(e for e in events if e["kind"] == "cactus_build_end")
        assert end["num_cuts"] == 1


class TestRequestKeyOptions:
    def test_legacy_three_arg_form_unchanged(self):
        assert request_key("d", "parcut", {"rng": 1}) == request_key(
            "d", "parcut", {"rng": 1}, None
        )

    def test_falsy_options_equal_absent(self):
        base = request_key("d", "noi", {})
        assert request_key("d", "noi", {}, {"all_cuts": False}) == base
        assert request_key("d", "noi", {}, {}) == base

    def test_output_shape_changes_key(self):
        base = request_key("d", "noi", {})
        all_cuts = request_key("d", "noi", {}, {"all_cuts": True})
        balanced = request_key("d", "noi", {}, {"all_cuts": True, "most_balanced": True})
        assert len({base, all_cuts, balanced}) == 3


class TestEngineIntegration:
    def test_inline_all_cuts(self, dumbbell):
        with SolverEngine(pool_size=0) as eng:
            res = eng.solve(dumbbell, all_cuts=True)
            assert res.cactus is not None and res.num_min_cuts() == 1

    def test_cache_never_serves_value_only_for_all_cuts(self, dumbbell):
        # the satellite regression: a cached value-only result must not
        # satisfy an all_cuts request (and vice versa)
        with SolverEngine(pool_size=0, cache_size=16) as eng:
            plain = eng.solve(dumbbell)
            assert plain.cactus is None
            rich = eng.solve(dumbbell, all_cuts=True)
            assert rich.cactus is not None
            assert len(eng._cache) == 2  # distinct keys, no cross-talk
            assert eng._cache.hits == 0
            again = eng.solve(dumbbell, all_cuts=True)
            assert eng._cache.hits == 1
            assert again.cactus is not None
            plain2 = eng.solve(dumbbell)
            assert eng._cache.hits == 2
            assert plain2.cactus is None

    @pytest.mark.parametrize("start_method", multiprocessing.get_all_start_methods())
    def test_pooled_cactus_crosses_process_boundary(self, dumbbell, start_method):
        if start_method == "forkserver":
            pytest.skip("forkserver adds nothing over spawn here")
        with SolverEngine(pool_size=1, start_method=start_method) as eng:
            res = eng.solve(dumbbell, most_balanced=True)
            assert res.cactus is not None
            assert res.num_min_cuts() == 1
            assert res.stats["most_balanced"]["imbalance"] == 0
            assert len(res.smaller_side()) == 4


class TestServiceIntegration:
    def test_solve_all_cuts(self, dumbbell):
        with ServiceThread() as svc, ServiceClient("127.0.0.1", svc.port) as client:
            status, _headers, body = client.solve(dumbbell, all_cuts=True)
            assert status == 200
            assert body["value"] == 1
            assert body["num_min_cuts"] == 1

    def test_solve_most_balanced_partition_arrays(self, dumbbell):
        with ServiceThread() as svc, ServiceClient("127.0.0.1", svc.port) as client:
            status, _headers, body = client.solve(dumbbell, most_balanced=True)
            assert status == 200
            mb = body["most_balanced"]
            assert mb["imbalance"] == 0
            assert sorted(mb["side"]) in ([0, 1, 2, 3], [4, 5, 6, 7])
            in_cut = mb["in_cut"]
            assert len(in_cut) == 8 and sum(in_cut) == 4
            assert all(v in (0, 1) for v in in_cut)

    def test_solve_many_mixed_options(self, dumbbell):
        with ServiceThread() as svc, ServiceClient("127.0.0.1", svc.port) as client:
            status, _headers, body = client.solve_many([
                {"graph": graph_payload(dumbbell)},
                {"graph": graph_payload(dumbbell), "all_cuts": True},
            ])
            assert status == 200
            results = body["results"]
            assert "num_min_cuts" not in results[0]
            assert results[1]["num_min_cuts"] == 1

    def test_bad_all_cuts_type_rejected(self, dumbbell):
        with ServiceThread() as svc, ServiceClient("127.0.0.1", svc.port) as client:
            status, _headers, body = client.request(
                "POST", "/v1/solve",
                {"graph": graph_payload(dumbbell), "all_cuts": "yes"},
            )
            assert status == 400


class TestCliIntegration:
    @pytest.fixture
    def metis_file(self, tmp_path, dumbbell):
        path = tmp_path / "g.graph"
        write_metis(dumbbell, path)
        return str(path)

    def test_all_cuts_flag(self, metis_file, capsys):
        assert cli_main(["--all-cuts", metis_file]) == 0
        assert "min-cuts  1" in capsys.readouterr().out

    def test_most_balanced_flag(self, metis_file, capsys):
        assert cli_main(["--most-balanced", "--print-side", metis_file]) == 0
        out = capsys.readouterr().out
        assert "balance   4/4 (imbalance 0)" in out
        side = sorted(int(x) for x in out.split("side")[1].split())
        assert side in ([0, 1, 2, 3], [4, 5, 6, 7])

    def test_trace_file_validates(self, metis_file, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert cli_main(["--all-cuts", "--trace", str(trace), metis_file]) == 0
        from repro.observability.schema import validate_trace_file

        summary = validate_trace_file(str(trace))
        assert summary["by_kind"].get("cactus_build_end") == 1
