"""Shared fixtures and helpers for the test suite.

``networkx`` serves strictly as an *oracle* (known-good minimum cut,
max-flow, core numbers); every algorithm under test is this package's own
implementation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import from_edges
from repro.graph.csr import Graph


def nx_to_graph(G) -> Graph:
    """Convert a networkx graph (optional 'weight' attributes) to CSR."""
    n = G.number_of_nodes()
    mapping = {v: i for i, v in enumerate(G.nodes())}
    us, vs, ws = [], [], []
    for u, v, data in G.edges(data=True):
        us.append(mapping[u])
        vs.append(mapping[v])
        ws.append(int(data.get("weight", 1)))
    return from_edges(n, us, vs, ws)


def graph_to_nx(g: Graph):
    """Convert CSR to networkx (for oracle calls)."""
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.n))
    for u, v, w in zip(*g.edge_arrays()):
        G.add_edge(int(u), int(v), weight=int(w), capacity=int(w))
    return G


def oracle_mincut(g: Graph) -> int:
    """Exact minimum cut via networkx Stoer–Wagner (connected graphs)."""
    import networkx as nx

    value, _ = nx.stoer_wagner(graph_to_nx(g))
    return value


def random_connected_weighted(rng: np.random.Generator, n_max: int = 40, w_max: int = 10) -> Graph:
    """A random connected weighted graph for oracle comparisons."""
    from repro.generators import connected_gnm

    n = int(rng.integers(2, n_max))
    extra = int(rng.integers(0, max(1, n)))
    m = n - 1 + extra
    m = min(m, n * (n - 1) // 2)
    return connected_gnm(n, m, rng=rng, weights=(1, w_max))


# -- canonical small graphs ---------------------------------------------------


@pytest.fixture
def triangle() -> Graph:
    return from_edges(3, [0, 1, 2], [1, 2, 0], [1, 2, 3])


@pytest.fixture
def dumbbell() -> Graph:
    """Two K4s joined by one unit edge: λ = 1, sides {0..3} / {4..7}."""
    edges = []
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                edges.append((base + i, base + j, 1))
    edges.append((3, 4, 1))
    us, vs, ws = zip(*edges)
    return from_edges(8, us, vs, ws)


@pytest.fixture
def weighted_cycle() -> Graph:
    """C4 with weights 3,1,3,1: λ = 2 (the two weight-1 edges)."""
    return from_edges(4, [0, 1, 2, 3], [1, 2, 3, 0], [3, 1, 3, 1])


@pytest.fixture
def star() -> Graph:
    """Star K1,5 with distinct weights: λ = min leaf weight = 2."""
    return from_edges(6, [0] * 5, [1, 2, 3, 4, 5], [2, 3, 4, 5, 6])


@pytest.fixture
def clique6() -> Graph:
    """K6 unit weights: λ = 5."""
    us, vs = [], []
    for i in range(6):
        for j in range(i + 1, 6):
            us.append(i)
            vs.append(j)
    return from_edges(6, us, vs)


@pytest.fixture
def path4() -> Graph:
    """P4: λ = 1."""
    return from_edges(4, [0, 1, 2], [1, 2, 3])


@pytest.fixture
def two_triangles_disconnected() -> Graph:
    """Two disjoint triangles: disconnected, λ = 0."""
    return from_edges(6, [0, 1, 2, 3, 4, 5], [1, 2, 0, 4, 5, 3])


@pytest.fixture
def two_vertices() -> Graph:
    return from_edges(2, [0], [1], [7])


CANONICAL_CUTS = {
    "dumbbell": 1,
    "weighted_cycle": 2,
    "star": 2,
    "clique6": 5,
    "path4": 1,
    "two_vertices": 7,
}
