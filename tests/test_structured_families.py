"""Exact minimum cuts on structured graph families with known closed forms.

Each family has a provable λ; every exact solver must hit it.  These
complement the random-oracle tests with instances whose structure stresses
specific code paths: perfect symmetry (tie-breaking), long paths (queue
depth), bipartite completeness (dense scans), hypercubes (uniform cuts),
trees (λ = min edge weight), and weight-scaled copies (integer handling).
"""

import pytest

from repro import minimum_cut
from repro.core import EXACT_ALGORITHMS
from repro.graph import from_edges

SOLVERS = sorted(EXACT_ALGORITHMS)


def complete_bipartite(a, b):
    us, vs = [], []
    for i in range(a):
        for j in range(b):
            us.append(i)
            vs.append(a + j)
    return from_edges(a + b, us, vs)


def hypercube(dim):
    n = 1 << dim
    us, vs = [], []
    for v in range(n):
        for d in range(dim):
            u = v ^ (1 << d)
            if u > v:
                us.append(v)
                vs.append(u)
    return from_edges(n, us, vs)


def binary_tree(depth, weight=1):
    n = (1 << (depth + 1)) - 1
    us = list(range(1, n))
    vs = [(i - 1) // 2 for i in range(1, n)]
    return from_edges(n, vs, us, [weight] * (n - 1))


def wheel(k):
    """Hub 0 + cycle 1..k."""
    us = [0] * k + list(range(1, k + 1))
    vs = list(range(1, k + 1)) + [i % k + 1 for i in range(1, k + 1)]
    return from_edges(k + 1, us, vs)


class TestCompleteBipartite:
    @pytest.mark.parametrize("algo", SOLVERS)
    def test_k33(self, algo):
        # λ(K_{3,3}) = 3 (isolate one vertex)
        g = complete_bipartite(3, 3)
        assert minimum_cut(g, algorithm=algo, rng=0).value == 3

    @pytest.mark.parametrize("algo", SOLVERS)
    def test_k25(self, algo):
        # λ(K_{2,5}) = 2 (isolate a degree-2 vertex on the large side)
        g = complete_bipartite(2, 5)
        assert minimum_cut(g, algorithm=algo, rng=0).value == 2


class TestHypercube:
    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_lambda_equals_dimension(self, dim):
        g = hypercube(dim)
        for algo in ("noi", "parcut", "stoer-wagner"):
            res = minimum_cut(g, algorithm=algo, rng=0)
            assert res.value == dim
            assert res.verify(g)


class TestTrees:
    @pytest.mark.parametrize("algo", SOLVERS)
    def test_unit_tree_lambda_one(self, algo):
        g = binary_tree(3)
        assert minimum_cut(g, algorithm=algo, rng=0).value == 1

    def test_weighted_tree_min_edge(self):
        # tree with distinct weights: λ = the smallest edge weight and the
        # cut side is that edge's subtree
        us = [0, 0, 1, 1]
        vs = [1, 2, 3, 4]
        ws = [7, 5, 3, 9]
        g = from_edges(5, us, vs, ws)
        res = minimum_cut(g, rng=0)
        assert res.value == 3
        assert sorted(min(res.partition(), key=len)) == [3]


class TestWheel:
    @pytest.mark.parametrize("k", [4, 6, 9])
    def test_rim_vertex_cut(self, k):
        # every rim vertex has degree 3; λ = 3
        g = wheel(k)
        for algo in ("noi", "hao-orlin"):
            assert minimum_cut(g, algorithm=algo, rng=0).value == 3


class TestWeightScaling:
    """λ(c·G) = c·λ(G): scaling all weights scales the cut exactly."""

    @pytest.mark.parametrize("scale", [2, 10, 1000, 10**7])
    def test_scaled_dumbbell(self, dumbbell, scale):
        us, vs, ws = dumbbell.edge_arrays()
        g = from_edges(dumbbell.n, us, vs, ws * scale)
        for algo in ("noi", "noi-hnss", "stoer-wagner", "hao-orlin"):
            assert minimum_cut(g, algorithm=algo, rng=0).value == scale

    def test_large_weights_no_overflow(self):
        # weights near 2^40: int64 arithmetic must hold up everywhere
        w = 1 << 40
        g = from_edges(4, [0, 1, 2, 3], [1, 2, 3, 0], [3 * w, w, 3 * w, w])
        for algo in ("noi", "noi-hnss", "stoer-wagner", "hao-orlin", "parcut"):
            assert minimum_cut(g, algorithm=algo, rng=0).value == 2 * w


class TestSymmetricTieBreaking:
    """Perfectly symmetric instances: all queue variants must agree on λ
    even though tie-breaking differs."""

    def test_cycle_all_queues(self):
        g = from_edges(10, range(10), [(i + 1) % 10 for i in range(10)])
        values = {
            pq: minimum_cut(g, algorithm="noi", pq_kind=pq, rng=0).value
            for pq in ("bstack", "bqueue", "heap")
        }
        assert set(values.values()) == {2}

    def test_complete_graph_all_queues(self):
        us, vs = [], []
        for i in range(7):
            for j in range(i + 1, 7):
                us.append(i)
                vs.append(j)
        g = from_edges(7, us, vs)
        for pq in ("bstack", "bqueue", "heap"):
            assert minimum_cut(g, algorithm="noi", pq_kind=pq, rng=0).value == 6


class TestSparsifiedFacade:
    def test_sparsify_via_facade(self, dumbbell):
        res = minimum_cut(dumbbell, algorithm="noi", sparsify=True, rng=0)
        assert res.value == 1
        assert res.verify(dumbbell)
