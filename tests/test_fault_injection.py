"""End-to-end fault-injection tests: crashed, hung and lying workers.

The safety argument is Lemma 3.2(1): every contraction mark a worker emits
is individually safe, and unions commute — so dropping a lost worker's
marks costs progress, never correctness.  These tests kill, hang, starve
and corrupt workers mid-scan and check that ParCut still returns the
*exact* minimum cut (against the networkx Stoer–Wagner oracle), records
what happened in ``stats``, and honours the requested failure policy.
"""

import time

import numpy as np
import pytest

from repro.baselines.matula import matula_approx
from repro.core.mincut import parallel_mincut
from repro.core.parallel_capforest import parallel_capforest
from repro.generators import connected_gnm
from repro.runtime import (
    ExecutorUnavailable,
    FaultPlan,
    RuntimeFault,
    WorkerFault,
)

from .conftest import oracle_mincut


@pytest.fixture(scope="module")
def fault_graph():
    """A graph big enough that 4 regions all get real work."""
    g = connected_gnm(48, 120, rng=np.random.default_rng(7), weights=(1, 6))
    return g, oracle_mincut(g)


class TestProcessFaults:
    def test_kill_one_of_four_mid_scan(self, fault_graph):
        """Acceptance: one worker dies mid-scan; exact value, crash recorded."""
        g, truth = fault_graph
        plan = FaultPlan.kill([1], after_pops=3, executors=("processes",))
        t0 = time.perf_counter()
        res = parallel_mincut(
            g, workers=4, executor="processes", rng=0, timeout=30.0, fault_plan=plan
        )
        elapsed = time.perf_counter() - t0
        assert elapsed < 30.0  # completed within its deadline, no hang
        assert res.value == truth
        kinds = [ev["kind"] for ev in res.stats["worker_events"]]
        assert "crashed" in kinds
        crashed = [ev for ev in res.stats["worker_events"] if ev["kind"] == "crashed"]
        assert crashed[0]["worker_id"] == 1
        assert all("round" in ev for ev in res.stats["worker_events"])
        # partial results were merged: the surviving executor is unchanged
        assert res.stats["final_executor"] == "processes"

    def test_kill_all_workers_degrades_and_stays_exact(self, fault_graph):
        """Acceptance: every process worker dies; the ladder still delivers."""
        g, truth = fault_graph
        plan = FaultPlan.kill(range(4), executors=("processes",))
        res = parallel_mincut(
            g, workers=4, executor="processes", rng=0, timeout=30.0, fault_plan=plan
        )
        assert res.value == truth
        assert res.stats["degradations"], "expected a recorded degradation"
        hop = res.stats["degradations"][0]
        assert (hop["from"], hop["to"]) == ("processes", "threads")
        assert res.stats["final_executor"] in ("threads", "serial")

    def test_hung_worker_times_out_not_hangs(self, fault_graph):
        """The old unconditional ``out.get()`` would block forever here."""
        g, truth = fault_graph
        plan = FaultPlan.hang([2], after_pops=2)
        t0 = time.perf_counter()
        res = parallel_capforest(
            g, truth, workers=4, executor="processes", rng=0, timeout=2.0, fault_plan=plan
        )
        elapsed = time.perf_counter() - t0
        assert elapsed < 15.0
        kinds = {ev["kind"] for ev in res.events}
        assert "timeout" in kinds

    def test_all_hung_raises_executor_unavailable(self, fault_graph):
        g, truth = fault_graph
        plan = FaultPlan.hang(range(2), after_pops=1)
        with pytest.raises(ExecutorUnavailable) as ei:
            parallel_capforest(
                g, truth, workers=2, executor="processes", rng=0,
                timeout=1.5, fault_plan=plan,
            )
        assert ei.value.dominant_kind == "timeout"

    def test_dropped_result_recorded_as_lost(self, fault_graph):
        g, truth = fault_graph
        plan = FaultPlan(
            faults={3: WorkerFault("drop_result")}, executors=("processes",)
        )
        res = parallel_mincut(
            g, workers=4, executor="processes", rng=0, timeout=30.0, fault_plan=plan
        )
        assert res.value == truth
        kinds = {ev["kind"] for ev in res.stats["worker_events"]}
        assert "lost" in kinds

    def test_corrupt_payload_rejected_before_merge(self, fault_graph):
        """Out-of-range pairs must never reach the shared union–find."""
        g, truth = fault_graph
        plan = FaultPlan(
            faults={0: WorkerFault("corrupt_pairs")}, executors=("processes",)
        )
        res = parallel_mincut(
            g, workers=4, executor="processes", rng=0, timeout=30.0, fault_plan=plan
        )
        assert res.value == truth
        kinds = {ev["kind"] for ev in res.stats["worker_events"]}
        assert "corrupt" in kinds

    def test_fail_policy_raises(self, fault_graph):
        g, _ = fault_graph
        plan = FaultPlan.kill([1], executors=("processes",))
        with pytest.raises(RuntimeFault):
            parallel_mincut(
                g, workers=4, executor="processes", rng=0,
                timeout=30.0, fault_plan=plan, on_worker_failure="fail",
            )


class TestThreadAndSerialFaults:
    def test_thread_crash_tolerated(self, fault_graph):
        g, truth = fault_graph
        plan = FaultPlan.kill([0], after_pops=2, executors=("threads",))
        res = parallel_mincut(
            g, workers=4, executor="threads", rng=0, fault_plan=plan
        )
        assert res.value == truth
        kinds = {ev["kind"] for ev in res.stats["worker_events"]}
        assert "crashed" in kinds

    def test_all_threads_crash_degrades_to_serial(self, fault_graph):
        g, truth = fault_graph
        plan = FaultPlan.kill(range(4), executors=("threads",))
        res = parallel_mincut(
            g, workers=4, executor="threads", rng=0, fault_plan=plan
        )
        assert res.value == truth
        hops = [(d["from"], d["to"]) for d in res.stats["degradations"]]
        assert ("threads", "serial") in hops
        assert res.stats["final_executor"] == "serial"

    def test_serial_crash_tolerated_and_deterministic(self, fault_graph):
        g, truth = fault_graph
        plan = FaultPlan.kill([1], after_pops=1, executors=("serial",))
        values = set()
        for _ in range(2):
            res = parallel_mincut(g, workers=4, executor="serial", rng=0, fault_plan=plan)
            values.add(res.value)
            assert {ev["kind"] for ev in res.stats["worker_events"]} == {"crashed"}
        assert values == {truth}  # deterministic under injection

    def test_no_fault_plan_leaves_stats_clean(self, fault_graph):
        g, truth = fault_graph
        res = parallel_mincut(g, workers=4, executor="serial", rng=0)
        assert res.value == truth
        assert res.stats["worker_events"] == []
        assert res.stats["degradations"] == []


class TestMatulaFaults:
    def test_parallel_matula_survives_worker_loss(self, fault_graph):
        g, truth = fault_graph
        plan = FaultPlan.kill(range(4), executors=("threads",))
        res = matula_approx(
            g, eps=0.5, workers=4, executor="threads", rng=0, fault_plan=plan
        )
        # approximation guarantee must hold even after degradation
        assert truth <= res.value <= (2 + 0.5) * truth
        assert res.stats["degradations"]


class TestViecutDegradation:
    def test_lp_failure_falls_back_to_sequential(self, fault_graph, monkeypatch):
        """A dead label-propagation chunk worker must not sink the seed."""
        import importlib

        vc_mod = importlib.import_module("repro.viecut.viecut")
        viecut = vc_mod.viecut

        def boom(graph, *, iterations, rng, workers, method):
            if workers > 1 or method == "parallel":
                raise ExecutorUnavailable(
                    "threads", "label-propagation chunk worker died"
                )
            return real_cluster_labels(
                graph, iterations=iterations, rng=rng, workers=workers, method=method
            )

        real_cluster_labels = vc_mod.cluster_labels
        monkeypatch.setattr(vc_mod, "cluster_labels", boom)
        g, truth = fault_graph
        res = viecut(g, rng=0, workers=4, small_threshold=8)
        # viecut is inexact but always returns a *valid* cut
        assert res.value >= truth
        assert res.stats["lp_degradations"] >= 1
        assert "chunk worker died" in res.stats["lp_degradation_reason"]
