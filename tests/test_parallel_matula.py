"""Tests for the parallel Matula approximation (the paper's §5 future work)
and the frozen-bound parallel CAPFOREST it is built on."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.matula import matula_approx
from repro.core.parallel_capforest import parallel_capforest
from repro.generators import connected_gnm

from .conftest import oracle_mincut


class TestFrozenBoundParallelCapforest:
    def test_bound_not_tightened(self, dumbbell):
        # scan cuts of value 1 exist; the frozen threshold must stay at 3
        res = parallel_capforest(dumbbell, 3, workers=2, rng=0, fixed_bound=True)
        assert res.lambda_hat == 3

    def test_scan_cuts_still_reported(self, dumbbell):
        res = parallel_capforest(dumbbell, 3, workers=2, rng=0, fixed_bound=True)
        alphas = [w.best_alpha for w in res.workers if w.best_alpha is not None]
        assert alphas, "workers must report their scan cuts"
        assert min(alphas) >= 1

    def test_coverage_unaffected(self):
        rng = np.random.default_rng(2)
        g = connected_gnm(40, 90, rng=rng)
        res = parallel_capforest(g, 3, workers=3, rng=1, fixed_bound=True)
        assert sum(w.vertices_scanned for w in res.workers) == g.n

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_marks_respect_frozen_threshold(self, executor):
        """With a frozen threshold t, every marked edge has connectivity >= t
        in the scanned-subgraph sense; spot-check via the exact solver on a
        graph where the threshold sits below δ."""
        rng = np.random.default_rng(3)
        g = connected_gnm(20, 60, rng=rng, weights=(1, 4))
        res = parallel_capforest(g, 2, workers=2, executor=executor, rng=4, fixed_bound=True)
        # contracting these marks must never produce a multigraph whose min
        # cut is below min(2, λ): cuts smaller than the threshold survive
        from repro.graph.contract import contract_by_union_find

        lam = oracle_mincut(g)
        gc, _ = contract_by_union_find(g, res.uf)
        if gc.n >= 2:
            assert oracle_mincut(gc) >= min(2, lam)


class TestParallelMatula:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100_000), workers=st.integers(2, 4))
    def test_property_guarantee_holds_parallel(self, seed, workers):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 26))
        m = min(int(rng.integers(n, 4 * n)), n * (n - 1) // 2)
        g = connected_gnm(n, m, rng=rng, weights=(1, 7))
        lam = oracle_mincut(g)
        res = matula_approx(g, eps=0.5, rng=rng, workers=workers)
        assert res.verify(g)
        assert lam <= res.value <= 2.5 * lam

    def test_parallel_matches_quality_statistically(self):
        rng = np.random.default_rng(7)
        seq_exact = par_exact = total = 0
        for _ in range(12):
            g = connected_gnm(30, 120, rng=rng, weights=(1, 5))
            lam = oracle_mincut(g)
            total += 1
            seq_exact += matula_approx(g, rng=rng, workers=1).value == lam
            par_exact += matula_approx(g, rng=rng, workers=3).value == lam
        # both modes should usually land on the exact cut on easy instances
        assert seq_exact >= total - 3
        assert par_exact >= total - 3

    def test_disconnected_parallel(self, two_triangles_disconnected):
        res = matula_approx(two_triangles_disconnected, rng=0, workers=3)
        assert res.value == 0

    def test_stats_rounds(self):
        rng = np.random.default_rng(8)
        g = connected_gnm(50, 200, rng=rng)
        res = matula_approx(g, rng=0, workers=2)
        assert res.stats["rounds"] >= 1
        assert res.stats["edges_scanned"] > 0
