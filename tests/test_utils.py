"""Tests for timers and statistics helpers."""

import math
import time

import pytest

from repro.utils import (
    RepeatTimer,
    Timer,
    geometric_mean,
    performance_profile,
    speedup,
    summarize,
)


class TestTimer:
    def test_phase_accumulates(self):
        t = Timer()
        with t.phase("a"):
            time.sleep(0.001)
        with t.phase("a"):
            time.sleep(0.001)
        assert t.total("a") >= 0.002
        assert t.total("missing") == 0.0

    def test_totals_snapshot(self):
        t = Timer()
        with t.phase("x"):
            pass
        snap = t.totals()
        assert "x" in snap
        snap["x"] = 999  # mutating the copy must not affect the timer
        assert t.total("x") != 999

    def test_nested_phases(self):
        t = Timer()
        with t.phase("outer"):
            with t.phase("inner"):
                time.sleep(0.001)
        assert t.total("outer") >= t.total("inner")


class TestRepeatTimer:
    def test_mean_and_best(self):
        rt = RepeatTimer(repetitions=3)
        mean, result = rt.measure(lambda: 42)
        assert result == 42
        assert len(rt.times) == 3
        assert rt.best <= rt.mean

    def test_warmup_not_timed(self):
        calls = []
        rt = RepeatTimer(repetitions=2, warmup=3)
        rt.measure(lambda: calls.append(1))
        assert len(calls) == 5
        assert len(rt.times) == 2

    def test_unmeasured_raises(self):
        with pytest.raises(ValueError):
            RepeatTimer().mean


class TestStats:
    def test_geometric_mean(self):
        assert math.isclose(geometric_mean([2, 8]), 4.0)
        assert math.isclose(geometric_mean([5]), 5.0)

    def test_geometric_mean_errors(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s == {"min": 1.0, "mean": 2.0, "max": 3.0}
        with pytest.raises(ValueError):
            summarize([])

    def test_performance_profile_basic(self):
        times = {"fast": [1.0, 2.0], "slow": [2.0, 2.0]}
        profile = performance_profile(times)
        assert profile["fast"] == [1.0, 1.0]
        assert profile["slow"] == [0.5, 1.0]

    def test_performance_profile_missing_instance(self):
        times = {"a": [1.0, None], "b": [2.0, 3.0]}
        profile = performance_profile(times)
        # instance 0: a is best (1.0 vs 2.0); instance 1: a missing -> -0.1,
        # b is the only observation -> ratio 1.0
        assert profile["a"] == [-0.1, 1.0]
        assert profile["b"] == [0.5, 1.0]

    def test_performance_profile_shape_errors(self):
        with pytest.raises(ValueError):
            performance_profile({"a": [1.0], "b": [1.0, 2.0]})
        assert performance_profile({}) == {}


class TestReport:
    def test_format_table_alignment(self):
        from repro.experiments.report import format_table

        out = format_table(["col", "x"], [["a", 1], ["bb", 2.5]])
        lines = out.splitlines()
        assert lines[0].startswith("col")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_format_csv(self):
        from repro.experiments.report import format_csv

        out = format_csv(["a", "b"], [[1, None]])
        assert out == "a,b\n1,-\n"
