"""Tests for the workload generators (G(n,m), RMAT, Chung–Lu, RHG, worlds)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import (
    DEFAULT_WORLDS,
    build_instances,
    build_suite,
    build_world,
    chung_lu,
    connected_gnm,
    gnm,
    powerlaw_weights,
    radius_for_avg_degree,
    rhg,
    rmat,
    sample_points,
)
from repro.graph import check_graph, connected_components, is_connected


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm(50, 200, rng=0)
        assert g.n == 50 and g.m == 200
        check_graph(g)

    def test_dense_regime(self):
        g = gnm(20, 150, rng=1)
        assert g.m == 150
        check_graph(g)

    def test_full_graph(self):
        g = gnm(8, 28, rng=2)
        assert g.m == 28  # K8

    def test_zero_edges(self):
        g = gnm(5, 0, rng=0)
        assert g.m == 0

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gnm(4, 7)

    def test_weights_in_range(self):
        g = gnm(30, 100, rng=3, weights=(2, 5))
        assert g.adjwgt.min() >= 2 and g.adjwgt.max() <= 5

    def test_invalid_weight_range(self):
        with pytest.raises(ValueError):
            gnm(5, 4, weights=(0, 3))

    def test_seed_reproducible(self):
        assert gnm(30, 80, rng=7) == gnm(30, 80, rng=7)


class TestConnectedGnm:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 40))
    def test_property_connected_exact_m(self, seed, n):
        rng = np.random.default_rng(seed)
        m = min(n - 1 + int(rng.integers(0, n + 1)), n * (n - 1) // 2)
        g = connected_gnm(n, m, rng=rng)
        check_graph(g)
        assert g.m == m
        if n >= 1:
            assert is_connected(g)

    def test_m_too_small_rejected(self):
        with pytest.raises(ValueError):
            connected_gnm(5, 3)


class TestRmat:
    def test_shape(self):
        g = rmat(10, 8, rng=0)
        check_graph(g)
        assert g.n == 1024
        # duplicates merge, so realized degree is somewhat below target
        assert 3 <= 2 * g.m / g.n <= 8

    def test_skew_produces_hubs(self):
        g = rmat(11, 16, rng=1)
        degs = g.degrees()
        assert degs.max() > 15 * max(1, int(np.median(degs[degs > 0])))

    def test_uniform_rmat_no_hubs(self):
        g = rmat(10, 16, a=0.25, b=0.25, c=0.25, rng=1)
        assert g.degrees().max() < 60

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat(5, 4, a=0.9, b=0.2, c=0.2)

    def test_zero_degree(self):
        g = rmat(4, 0, rng=0)
        assert g.m == 0


class TestChungLu:
    def test_powerlaw_weights_monotone(self):
        w = powerlaw_weights(100, 2.5)
        assert (np.diff(w) <= 0).all()
        with pytest.raises(ValueError):
            powerlaw_weights(10, 1.0)

    def test_degree_target(self):
        g = chung_lu(2000, 12, gamma=2.5, rng=0)
        check_graph(g)
        realized = 2 * g.m / g.n
        assert 7 <= realized <= 12.5  # duplicate merging loses some

    def test_pure_communities_disconnect(self):
        """mu=1.0 confines every edge within a community: the communities
        can never merge, so the graph has at least that many components."""
        g = chung_lu(800, 12, gamma=2.5, communities=8, mu=1.0, rng=1)
        ncomp, _ = connected_components(g)
        assert ncomp >= 8

    def test_communities_add_structure(self):
        """With strong planted communities, label propagation finds clusters
        substantially coarser than singletons but finer than one blob."""
        from repro.viecut import cluster_labels

        comm = chung_lu(800, 12, gamma=2.5, communities=8, mu=0.8, rng=1)
        nc = cluster_labels(comm, iterations=2, rng=0).max() + 1
        assert 2 <= nc <= comm.n // 4

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            chung_lu(10, 3, mu=1.5)


class TestRhg:
    def test_invariants(self):
        g = rhg(512, 8, rng=0)
        check_graph(g)

    def test_degree_calibration(self):
        g = rhg(2048, 16, rng=1)
        realized = 2 * g.m / g.n
        assert 10 <= realized <= 24, f"calibration off: {realized}"

    def test_matches_bruteforce_small(self):
        """Band pruning is exact: same edge set as the O(n²) check."""
        n, k = 150, 10
        g, r, theta = rhg(n, k, rng=3, return_coords=True)
        R = radius_for_avg_degree(n, k, 2.0)
        edges = set()
        for i in range(n):
            dth = np.abs(theta - theta[i])
            dth = np.minimum(dth, 2 * math.pi - dth)
            coshd = np.cosh(r[i]) * np.cosh(r) - np.sinh(r[i]) * np.sinh(r) * np.cos(dth)
            for j in np.flatnonzero(coshd <= math.cosh(R)):
                if j > i:
                    edges.add((i, int(j)))
        us, vs, _ = g.edge_arrays()
        assert set(zip(us.tolist(), vs.tolist())) == edges

    def test_powerlaw_tail(self):
        """γ = 2α+1 = 5: hubs exist but are milder than γ=2.2 RMAT hubs."""
        g = rhg(4096, 16, alpha=2.0, rng=2)
        degs = np.sort(g.degrees())[::-1]
        assert degs[0] > 3 * 16  # heavy tail present
        assert degs[0] < g.n // 4  # but no star-like hub

    def test_radius_formula_monotone(self):
        assert radius_for_avg_degree(1024, 8, 2.0) > radius_for_avg_degree(1024, 32, 2.0)
        with pytest.raises(ValueError):
            radius_for_avg_degree(1024, 8, 0.4)

    def test_sample_points_in_disk(self):
        rng = np.random.default_rng(0)
        r, theta = sample_points(500, 10.0, 2.0, rng)
        assert (r >= 0).all() and (r <= 10.0).all()
        assert (theta >= 0).all() and (theta < 2 * math.pi).all()

    def test_tiny_graphs(self):
        assert rhg(0, 4, rng=0).n == 0
        assert rhg(1, 4, rng=0).n == 1


class TestWorlds:
    def test_suite_builds(self):
        suite = build_suite(scale=0.25)
        assert len(suite) >= 12
        for inst in suite:
            check_graph(inst.graph)
            assert is_connected(inst.graph)
            assert inst.graph.degrees().min() >= inst.k

    def test_pods_create_nontrivial_cuts(self):
        """The planted pods force λ <= attachment width < k <= δ."""
        from repro.core.noi import noi_mincut

        spec = DEFAULT_WORLDS[2]  # uk-web-like, pod_attach=(1, 1)
        insts = build_instances(spec, scale=0.35)
        assert insts, "suite world produced no instances"
        for inst in insts:
            lam = noi_mincut(inst.graph, rng=0, compute_side=False).value
            delta = int(inst.graph.weighted_degrees().min())
            assert lam <= min(spec.pod_attach)
            assert lam < delta

    def test_world_seed_reproducible(self):
        spec = DEFAULT_WORLDS[0]
        assert build_world(spec, scale=0.25) == build_world(spec, scale=0.25)

    def test_unknown_kind_rejected(self):
        from repro.generators.worlds import WorldSpec

        with pytest.raises(ValueError):
            build_world(WorldSpec("x", "nope", 64, 4.0, (2,)))
