"""Tests for the NOI exact minimum-cut driver (all paper variants)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.noi import noi_mincut
from repro.generators import connected_gnm, gnm
from repro.graph import from_edges

from .conftest import oracle_mincut

VARIANTS = [
    dict(pq_kind="heap", bounded=True),
    dict(pq_kind="bstack", bounded=True),
    dict(pq_kind="bqueue", bounded=True),
    dict(pq_kind="heap", bounded=False),
]


class TestCanonicalGraphs:
    @pytest.mark.parametrize("kw", VARIANTS)
    def test_dumbbell(self, dumbbell, kw):
        res = noi_mincut(dumbbell, rng=0, **kw)
        assert res.value == 1
        assert res.verify(dumbbell)
        assert sorted(res.partition()[0]) in ([0, 1, 2, 3], [4, 5, 6, 7])

    @pytest.mark.parametrize("kw", VARIANTS)
    def test_weighted_cycle(self, weighted_cycle, kw):
        res = noi_mincut(weighted_cycle, rng=0, **kw)
        assert res.value == 2
        assert res.verify(weighted_cycle)

    @pytest.mark.parametrize("kw", VARIANTS)
    def test_star(self, star, kw):
        res = noi_mincut(star, rng=0, **kw)
        assert res.value == 2
        assert res.verify(star)

    @pytest.mark.parametrize("kw", VARIANTS)
    def test_clique(self, clique6, kw):
        res = noi_mincut(clique6, rng=0, **kw)
        assert res.value == 5
        assert res.verify(clique6)

    @pytest.mark.parametrize("kw", VARIANTS)
    def test_path(self, path4, kw):
        res = noi_mincut(path4, rng=0, **kw)
        assert res.value == 1
        assert res.verify(path4)

    def test_two_vertices(self, two_vertices):
        res = noi_mincut(two_vertices, rng=0)
        assert res.value == 7
        assert res.verify(two_vertices)

    def test_disconnected_returns_zero(self, two_triangles_disconnected):
        res = noi_mincut(two_triangles_disconnected, rng=0)
        assert res.value == 0
        assert res.verify(two_triangles_disconnected)

    def test_single_vertex_rejected(self):
        with pytest.raises(ValueError):
            noi_mincut(from_edges(1, [], []))

    def test_parallel_input_edges_merge(self):
        g = from_edges(3, [0, 0, 1, 1], [1, 1, 2, 2], [1, 1, 1, 2])
        res = noi_mincut(g, rng=0)
        assert res.value == 2
        assert res.verify(g)


class TestSeeding:
    def test_initial_bound_preserves_exactness(self, dumbbell):
        # any valid upper bound keeps the solver exact
        for bound in (1, 2, 5, 13):
            side = np.zeros(8, dtype=bool)
            side[:4] = True  # the real λ=1 side (valid for bound>=1)
            res = noi_mincut(dumbbell, initial_bound=bound, initial_side=side, rng=0)
            assert res.value == 1

    def test_tight_bound_uses_given_side(self, dumbbell):
        side = np.zeros(8, dtype=bool)
        side[:4] = True
        res = noi_mincut(dumbbell, initial_bound=1, initial_side=side, rng=0)
        assert res.value == 1
        assert res.verify(dumbbell)

    def test_negative_bound_rejected(self, dumbbell):
        with pytest.raises(ValueError):
            noi_mincut(dumbbell, initial_bound=-1)


class TestOutputs:
    def test_compute_side_false(self, dumbbell):
        res = noi_mincut(dumbbell, rng=0, compute_side=False)
        assert res.side is None
        assert res.value == 1
        with pytest.raises(ValueError):
            res.partition()

    def test_stats_populated(self, dumbbell):
        res = noi_mincut(dumbbell, rng=0)
        assert res.stats["rounds"] >= 1
        assert res.stats["pq_pops"] > 0
        assert res.stats["edges_scanned"] > 0

    def test_algorithm_names(self, dumbbell):
        assert noi_mincut(dumbbell, rng=0).algorithm == "noi-lambda-heap"
        assert noi_mincut(dumbbell, rng=0, bounded=False).algorithm == "noi-hnss"
        assert (
            noi_mincut(dumbbell, rng=0, pq_kind="bstack").algorithm == "noi-lambda-bstack"
        )
        assert (
            noi_mincut(dumbbell, rng=0, initial_bound=2).algorithm
            == "noi-lambda-heap-viecut"
        )

    def test_rng_seed_reproducible(self, dumbbell):
        r1 = noi_mincut(dumbbell, rng=42)
        r2 = noi_mincut(dumbbell, rng=42)
        assert r1.value == r2.value
        assert np.array_equal(r1.side, r2.side)


class TestStructuredFamilies:
    def test_cycle_of_cliques(self):
        """Ring of 4 K5s connected by single edges: λ = 2 (two ring edges)."""
        edges = []
        for c in range(4):
            base = 5 * c
            for i in range(5):
                for j in range(i + 1, 5):
                    edges.append((base + i, base + j))
            edges.append((base + 4, (base + 5) % 20))
        us, vs = zip(*edges)
        g = from_edges(20, us, vs)
        res = noi_mincut(g, rng=0)
        assert res.value == 2
        assert res.verify(g)

    def test_grid_graph(self):
        """5x5 grid: λ = 2 (corner)."""
        def vid(i, j):
            return 5 * i + j

        us, vs = [], []
        for i in range(5):
            for j in range(5):
                if i + 1 < 5:
                    us.append(vid(i, j)); vs.append(vid(i + 1, j))
                if j + 1 < 5:
                    us.append(vid(i, j)); vs.append(vid(i, j + 1))
        g = from_edges(25, us, vs)
        res = noi_mincut(g, rng=1)
        assert res.value == 2
        assert res.verify(g)

    def test_heavy_bridge_light_blob(self):
        """Bridge weight below clique connectivity but above a leaf edge."""
        # K4 (unit) -- w=2 bridge -- K4 (unit), plus a pendant leaf w=1
        edges = []
        for base in (0, 4):
            for i in range(4):
                for j in range(i + 1, 4):
                    edges.append((base + i, base + j, 1))
        edges.append((3, 4, 2))
        edges.append((0, 8, 1))  # pendant vertex 8
        us, vs, ws = zip(*edges)
        g = from_edges(9, us, vs, ws)
        res = noi_mincut(g, rng=0)
        assert res.value == 1
        side_small = min(res.partition(), key=len)
        assert side_small == [8]

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_k_edge_connected_circulant(self, k):
        """Circulant C(12; 1..k) is 2k-edge-connected: λ = 2k."""
        n = 12
        us, vs = [], []
        for v in range(n):
            for d in range(1, k + 1):
                us.append(v)
                vs.append((v + d) % n)
        g = from_edges(n, us, vs)
        res = noi_mincut(g, rng=0)
        assert res.value == 2 * k
        assert res.verify(g)


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    variant=st.sampled_from(range(len(VARIANTS))),
    weighted=st.booleans(),
)
def test_property_matches_oracle(seed, variant, weighted):
    """NOI agrees with networkx Stoer–Wagner on random connected graphs."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 22))
    m = min(int(rng.integers(n - 1, 3 * n)), n * (n - 1) // 2)
    g = connected_gnm(n, m, rng=rng, weights=(1, 9) if weighted else None)
    res = noi_mincut(g, rng=rng, **VARIANTS[variant])
    assert res.value == oracle_mincut(g)
    assert res.verify(g)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_property_disconnected_graphs(seed):
    """Possibly-disconnected G(n, m): NOI reports 0 with a certified side."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 20))
    m = min(int(rng.integers(0, n)), n * (n - 1) // 2)
    g = gnm(n, m, rng=rng)
    from repro.graph import is_connected

    res = noi_mincut(g, rng=rng)
    if not is_connected(g):
        assert res.value == 0
        assert res.verify(g)
    else:
        assert res.value == oracle_mincut(g)


class TestTrace:
    def test_trace_records_rounds(self):
        rng = np.random.default_rng(4)
        g = connected_gnm(80, 240, rng=rng, weights=(1, 5))
        res = noi_mincut(g, rng=0, trace=True)
        trace = res.stats["trace"]
        assert len(trace) == res.stats["rounds"]
        for entry in trace:
            assert entry["n"] >= 2
            assert entry["lambda_out"] <= entry["lambda_in"]
            assert entry["marks"] >= 0

    def test_trace_off_by_default(self, dumbbell):
        res = noi_mincut(dumbbell, rng=0)
        assert "trace" not in res.stats

    def test_trace_shrinking_n(self):
        rng = np.random.default_rng(5)
        g = connected_gnm(120, 300, rng=rng)
        res = noi_mincut(g, rng=1, trace=True)
        ns = [e["n"] for e in res.stats["trace"]]
        assert ns == sorted(ns, reverse=True)
