"""Tests for the compiled kernel tier (`repro.kernels`).

Four concerns, matching the satellites of the compiled-tier PR:

* **registry centralization** — `KERNELS` / `check_kernel` live in one
  place and every consumer (capforest, parallel_capforest, CLI, API)
  uses that copy, so the advertised set cannot drift; every advertised
  kernel actually solves a fixture through the public API.
* **fallback** — `kernel="compiled"` without numba degrades to the
  vector kernel *visibly*: `kernel_fallback` stats key, one
  `kernel_fallback` trace event, and the tier state in
  `engine.stats()["kernels"]` / `GET /v1/stats`.
* **pure-Python parity** — with ``REPRO_COMPILED_PUREPY=1`` the jitted
  kernels run as interpreted Python, so the label-propagation and
  contraction twins are provably bit-equal to their references without
  the dependency (the CAPFOREST twin is covered by
  ``test_kernel_parity.py``).
* **warmup** — idempotent, counted, and wired into pooled engine
  workers; the real JIT-compilation assertions skip cleanly when numba
  is absent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import minimum_cut
from repro.core.mincut import parallel_mincut
from repro.core.noi import noi_mincut
from repro.generators.gnm import connected_gnm, gnm
from repro.kernels import (
    COMPILED_FALLBACK,
    KERNEL_CROSSOVERS,
    KERNELS,
    NUMBA_AVAILABLE,
    check_kernel,
    compile_count,
    compiled_available,
    compiled_status,
    resolve_kernel,
    warmup,
)
from repro.observability import Tracer
from repro.observability.schema import (
    EVENT_KINDS,
    PARCUT_STATS_KEYS,
    validate_parcut_stats,
    validate_trace_events,
)


@pytest.fixture
def purepy(monkeypatch):
    """Force the compiled tier to run as interpreted Python."""
    monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")


@pytest.fixture
def no_tier(monkeypatch):
    """Guarantee the compiled tier is unavailable (skip when numba is)."""
    if NUMBA_AVAILABLE:
        pytest.skip("numba installed: the fallback path cannot be exercised")
    monkeypatch.delenv("REPRO_COMPILED_PUREPY", raising=False)


# ---------------------------------------------------------------------------
# registry centralization
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_single_source_of_truth(self):
        # `repro.core.capforest` the *attribute* is the capforest function
        # (re-exported by the package), so import the names directly
        from repro.core.capforest import KERNELS as cf_kernels
        from repro.core.capforest import check_kernel as cf_check
        from repro.core.parallel_capforest import resolve_kernel as pcf_resolve

        assert KERNELS == ("scalar", "vector", "compiled")
        assert cf_kernels is KERNELS
        assert cf_check is check_kernel
        assert pcf_resolve is resolve_kernel

    def test_cli_choices_come_from_registry(self):
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        kernel_action = next(
            a for a in parser._actions
            if isinstance(a, argparse.Action) and a.dest == "kernel"
        )
        assert tuple(kernel_action.choices) == KERNELS

    def test_check_kernel_rejects_unknowns(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            check_kernel("simd")
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("simd")

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("algorithm", ["noi", "parcut", "noi-viecut"])
    def test_every_advertised_kernel_solves(self, kernel, algorithm):
        # no purepy forcing: this must hold in *any* environment — a
        # compiled request without numba resolves to vector and still solves
        g = connected_gnm(60, 180, rng=2, weights=(1, 7))
        expected = minimum_cut(g, algorithm="stoer-wagner")
        res = minimum_cut(g, algorithm=algorithm, rng=4, kernel=kernel)
        assert res.value == expected.value

    def test_crossover_constants_are_tier_aware(self):
        from repro.core.capforest import MIN_BATCH, POP_VECTOR_MIN_DEGREE

        assert set(KERNEL_CROSSOVERS) == {"vector", "compiled"}
        for tier in KERNEL_CROSSOVERS.values():
            assert set(tier) == {"min_batch", "pop_vector_min_degree"}
        # the module-level constants are the vector tier's entries
        assert MIN_BATCH == KERNEL_CROSSOVERS["vector"]["min_batch"]
        assert POP_VECTOR_MIN_DEGREE == KERNEL_CROSSOVERS["vector"]["pop_vector_min_degree"]
        # machine-code loops have no per-call overhead to amortize
        assert KERNEL_CROSSOVERS["compiled"]["min_batch"] <= 1
        assert KERNEL_CROSSOVERS["compiled"]["pop_vector_min_degree"] == 0


# ---------------------------------------------------------------------------
# resolution and fallback visibility
# ---------------------------------------------------------------------------


class TestFallback:
    def test_resolve_passthrough(self, purepy):
        assert compiled_available()
        assert resolve_kernel("scalar") == ("scalar", None)
        assert resolve_kernel("vector") == ("vector", None)
        assert resolve_kernel("compiled") == ("compiled", None)

    def test_resolve_degrades_without_tier(self, no_tier):
        resolved, reason = resolve_kernel("compiled")
        assert resolved == COMPILED_FALLBACK == "vector"
        assert reason is not None and "compiled tier unavailable" in reason

    def test_fallback_event_is_in_taxonomy(self):
        assert "kernel_fallback" in EVENT_KINDS

    def test_noi_stats_and_trace_surface_fallback(self, no_tier):
        g = connected_gnm(50, 140, rng=1)
        tr = Tracer()
        res = noi_mincut(g, rng=3, kernel="compiled", tracer=tr)
        assert res.stats["kernel"] == "compiled"
        assert res.stats["kernel_resolved"] == "vector"
        assert res.stats["kernel_fallback"] is not None
        events = tr.events("kernel_fallback")
        assert len(events) == 1  # resolved once per solve, not per round
        assert events[0]["requested"] == "compiled"
        assert events[0]["resolved"] == "vector"
        validate_trace_events(tr.events())

    def test_parcut_stats_schema_covers_kernel_keys(self, no_tier):
        g = connected_gnm(80, 250, rng=5, weights=(1, 5))
        assert {"kernel_resolved", "kernel_fallback"} <= PARCUT_STATS_KEYS
        res = parallel_mincut(g, workers=2, rng=7, kernel="compiled")
        validate_parcut_stats(res.stats)
        assert res.stats["kernel"] == "compiled"
        assert res.stats["kernel_resolved"] == "vector"
        assert res.stats["kernel_fallback"] is not None
        # a native-kernel run emits the same keys with a null fallback
        res2 = parallel_mincut(g, workers=2, rng=7, kernel="vector")
        validate_parcut_stats(res2.stats)
        assert res2.stats["kernel_resolved"] == "vector"
        assert res2.stats["kernel_fallback"] is None

    def test_resolved_runs_match_requested_fallback(self, no_tier):
        # compiled-with-fallback must equal an explicit vector run exactly
        g = connected_gnm(90, 300, rng=8, weights=(1, 9))
        a = parallel_mincut(g, workers=3, rng=2, kernel="vector")
        b = parallel_mincut(g, workers=3, rng=2, kernel="compiled")
        assert a.value == b.value
        assert a.stats["pq_pops"] == b.stats["pq_pops"]
        assert a.stats["total_work"] == b.stats["total_work"]


# ---------------------------------------------------------------------------
# pure-Python parity of the LP and contraction twins
# ---------------------------------------------------------------------------


class TestPurePythonParity:
    def test_label_propagation_bit_equal_to_async(self, purepy):
        from repro.viecut.label_propagation import (
            propagate_labels,
            propagate_labels_compiled,
        )

        for seed in range(6):
            g = connected_gnm(100, 400, rng=seed, weights=(1, 8))
            for iters in (1, 3):
                rng_a = np.random.default_rng(seed * 10 + iters)
                rng_b = np.random.default_rng(seed * 10 + iters)
                a = propagate_labels(g, iterations=iters, rng=rng_a)
                b = propagate_labels_compiled(g, iterations=iters, rng=rng_b)
                assert np.array_equal(a, b), (seed, iters)

    def test_label_propagation_isolated_vertices(self, purepy):
        from repro.viecut.label_propagation import (
            propagate_labels,
            propagate_labels_compiled,
        )

        g = gnm(40, 25, rng=3)  # sparse: some isolated vertices
        a = propagate_labels(g, rng=np.random.default_rng(0))
        b = propagate_labels_compiled(g, rng=np.random.default_rng(0))
        assert np.array_equal(a, b)

    def test_cluster_labels_accepts_compiled_method(self, purepy):
        from repro.viecut.label_propagation import cluster_labels

        g = connected_gnm(80, 300, rng=4)
        dense = cluster_labels(g, rng=1, method="compiled")
        nc = int(dense.max()) + 1
        assert sorted(set(dense.tolist())) == list(range(nc))
        with pytest.raises(ValueError, match="unknown method"):
            cluster_labels(g, rng=1, method="jit")

    def test_compiled_unavailable_raises(self, no_tier):
        from repro.viecut.label_propagation import propagate_labels_compiled

        with pytest.raises(RuntimeError, match="compiled kernel tier"):
            propagate_labels_compiled(gnm(10, 15, rng=0))

    def test_contraction_element_identical(self, purepy):
        from repro.graph.contract import contract_by_labels, contract_by_union_find
        from repro.datastructures.union_find import UnionFind

        rng = np.random.default_rng(7)
        for seed in range(5):
            g = connected_gnm(90, 500, rng=seed, weights=(1, 9))
            raw = rng.integers(0, 12, size=g.n)
            _, labels = np.unique(raw, return_inverse=True)
            a, _ = contract_by_labels(g, labels)
            b, _ = contract_by_labels(g, labels, kernel="compiled")
            assert np.array_equal(a.xadj, b.xadj), seed
            assert np.array_equal(a.adjncy, b.adjncy), seed
            assert np.array_equal(a.adjwgt, b.adjwgt), seed
        uf = UnionFind(g.n)
        for v in range(0, g.n - 1, 3):
            uf.union(v, v + 1)
        a, _ = contract_by_union_find(g, uf)
        b, _ = contract_by_union_find(g, uf, kernel="compiled")
        assert np.array_equal(a.adjwgt, b.adjwgt)

    def test_parallel_contract_threads_kernel(self, purepy):
        from repro.graph.contract import contract_by_labels
        from repro.graph.parallel_contract import parallel_contract_by_labels

        g = connected_gnm(100, 600, rng=2, weights=(1, 6))
        labels = np.arange(g.n, dtype=np.int64) % 9
        a, _ = contract_by_labels(g, labels)
        b, _ = parallel_contract_by_labels(g, labels, workers=4, kernel="compiled")
        assert np.array_equal(a.xadj, b.xadj)
        assert np.array_equal(a.adjncy, b.adjncy)
        assert np.array_equal(a.adjwgt, b.adjwgt)


# ---------------------------------------------------------------------------
# warmup and engine observability
# ---------------------------------------------------------------------------


class TestWarmupAndStats:
    def test_warmup_idempotent(self, purepy):
        first = warmup()
        assert first >= 0.0
        before = compile_count()
        assert warmup() == 0.0  # second call is a no-op
        assert compile_count() == before

    def test_compile_count_zero_without_numba(self):
        if NUMBA_AVAILABLE:
            pytest.skip("numba installed: dispatchers have real signatures")
        assert compile_count() == 0

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="requires numba")
    def test_jit_warmup_compiles_once(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED_PUREPY", raising=False)
        warmup()
        status = compiled_status()
        assert status["warmed"] is True
        # every jitted dispatcher has at least one signature after warmup,
        # and re-warming adds none (compile-once per process)
        count = compile_count()
        assert count > 0
        assert warmup() == 0.0
        assert compile_count() == count

    def test_compiled_status_shape(self, purepy):
        status = compiled_status()
        assert status["registry"] == list(KERNELS)
        assert status["compiled_available"] is True
        assert status["pure_python_forced"] is True
        assert status["fallback"] is None
        assert isinstance(status["compile_count"], int)

    def test_engine_stats_expose_kernel_tier(self):
        from repro.engine import SolverEngine

        with SolverEngine(pool_size=1) as eng:
            g = connected_gnm(40, 100, rng=1)
            res = eng.solve(g, "noi", rng=0, kernel="compiled")
            assert res.value == minimum_cut(g, algorithm="stoer-wagner").value
            stats = eng.stats()
        kernels = stats["kernels"]
        assert kernels["registry"] == list(KERNELS)
        assert kernels["numba"] is NUMBA_AVAILABLE
        if not compiled_available():
            assert kernels["fallback"] is not None

    def test_service_stats_expose_kernel_tier(self):
        from repro.service import ServiceClient, ServiceConfig
        from repro.service.testing import ServiceThread

        with ServiceThread(
            engine_kwargs={"pool_size": 1},
            config=ServiceConfig(max_inflight=4, per_client_inflight=4),
        ) as st:
            with ServiceClient("127.0.0.1", st.port) as client:
                payload = client.stats()
        kernels = payload["engine"]["kernels"]
        assert kernels["registry"] == list(KERNELS)
        assert "compile_count" in kernels and "warmup_seconds" in kernels
