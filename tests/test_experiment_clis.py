"""End-to-end tests of the experiment scripts' command-line mains.

Each ``python -m repro.experiments.<name>`` entry point runs at miniature
scale and must emit its table(s) — protecting the argparse wiring and the
printed formats EXPERIMENTS.md quotes."""



class TestExperimentMains:
    def test_figure1_main(self, capsys):
        from repro.experiments.figure1 import main

        main(["--workers", "3", "--scale", "0.2"])
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "region_size" in out
        assert "vertices_covered" in out

    def test_figure1_main_rhg(self, capsys):
        from repro.experiments.figure1 import main

        main(["--workers", "2", "--rhg"])
        assert "rhg" in capsys.readouterr().out

    def test_figure2_main(self, capsys):
        from repro.experiments.figure2 import main

        main(["--n-exp", "9", "--deg-exp", "3"])
        out = capsys.readouterr().out
        assert "Figure 2 panel: average degree 2^3" in out
        assert "ns_per_edge" in out

    def test_figure2_main_csv(self, capsys):
        from repro.experiments.figure2 import main

        main(["--n-exp", "9", "--deg-exp", "3", "--csv"])
        out = capsys.readouterr().out
        assert "instance,n,m,algorithm" in out

    def test_figure3_main(self, capsys):
        from repro.experiments.figure3 import main

        main(["--scale", "0.15", "--speedups"])
        out = capsys.readouterr().out
        assert "slowdown_vs_ref" in out
        assert "geometric-mean speedups" in out

    def test_figure4_main(self, capsys):
        from repro.experiments.figure4 import main

        main(["--scale", "0.15", "--no-rhg"])
        out = capsys.readouterr().out
        assert "performance profile" in out
        assert "NOIlam-Heap" in out

    def test_figure5_main(self, capsys):
        from repro.experiments.figure5 import main

        main(["--workers", "1", "2", "--scale", "0.15", "--count", "1"])
        out = capsys.readouterr().out
        assert "ParCut scaling" in out
        assert "modeled_speedup" in out

    def test_table1_main(self, capsys):
        from repro.experiments.table1 import main

        main(["--scale", "0.15"])
        out = capsys.readouterr().out
        assert "lambda" in out
        assert "core_n" in out

    def test_ablation_main(self, capsys):
        from repro.experiments.ablation import main

        main(["--scale", "0.15"])
        out = capsys.readouterr().out
        assert "Ablation 1" in out
        assert "Ablation 4" in out
