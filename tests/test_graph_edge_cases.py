"""Edge-case tests for the graph layer that the main suites skim over."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import gnm
from repro.graph import (
    Graph,
    check_graph,
    connected_components,
    from_edges,
    induced_subgraph,
    largest_component,
)


class TestExtremes:
    def test_single_edge_maximal_weight(self):
        w = (1 << 62) - 1
        g = from_edges(2, [0], [1], [w])
        assert g.total_weight() == w
        assert g.weighted_degree(0) == w
        check_graph(g)

    def test_many_parallel_edges_aggregate(self):
        k = 500
        g = from_edges(2, [0] * k, [1] * k, list(range(1, k + 1)))
        assert g.m == 1
        assert g.edge_weight(0, 1) == k * (k + 1) // 2

    def test_all_self_loops(self):
        g = from_edges(3, [0, 1, 2], [0, 1, 2], [5, 5, 5])
        assert g.m == 0
        assert g.total_weight() == 0

    def test_star_center_adjacency_sorted(self):
        g = from_edges(6, [0] * 5, [5, 3, 1, 4, 2])
        assert list(g.neighbors(0)) == [1, 2, 3, 4, 5]

    def test_arc_sources_empty_graph(self):
        g = from_edges(3, [], [])
        assert len(g.arc_sources()) == 0

    def test_cut_value_full_graph_zero_crossing(self):
        g = from_edges(4, [0, 1, 2], [1, 2, 3])
        # cut with a single crossing at either end
        side = np.array([True, True, True, False])
        assert g.cut_value(side) == 1

    def test_eq_and_copy_semantics(self):
        g = from_edges(3, [0, 1], [1, 2], [2, 3])
        h = g.copy()
        assert g == h
        assert g != from_edges(3, [0, 1], [1, 2], [2, 4])
        assert not (g == "not a graph")

    def test_repr(self):
        g = from_edges(3, [0], [1], [5])
        assert "n=3" in repr(g) and "m=1" in repr(g)


class TestConstructorValidation:
    def test_xadj_must_be_nonempty(self):
        with pytest.raises(ValueError):
            Graph(np.array([], dtype=np.int64), np.array([]), np.array([]))

    def test_arc_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 1]), np.array([0]), np.array([1, 2]))

    def test_xadj_tail_mismatch(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 3]), np.array([0]), np.array([1]))


class TestInducedSubgraph:
    def test_duplicate_ids_deduplicated(self, dumbbell):
        sub, ids = induced_subgraph(dumbbell, np.array([0, 1, 1, 0, 2]))
        assert sub.n == 3
        assert sorted(ids.tolist()) == [0, 1, 2]

    def test_empty_selection(self, dumbbell):
        sub, ids = induced_subgraph(dumbbell, np.array([], dtype=np.int64))
        assert sub.n == 0

    def test_whole_graph_identity(self, dumbbell):
        sub, ids = induced_subgraph(dumbbell, np.arange(8))
        assert sub == dumbbell

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_subgraph_edges_are_original(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 30))
        m = min(int(rng.integers(0, 3 * n)), n * (n - 1) // 2)
        g = gnm(n, m, rng=rng, weights=(1, 9))
        keep = rng.choice(n, size=max(1, n // 2), replace=False)
        sub, ids = induced_subgraph(g, keep)
        check_graph(sub)
        for u, v, w in zip(*sub.edge_arrays()):
            assert g.edge_weight(int(ids[u]), int(ids[v])) == w


class TestLargestComponent:
    def test_tie_breaking_deterministic(self):
        # two equal components: must deterministically pick one
        g = from_edges(6, [0, 1, 3, 4], [1, 2, 4, 5])
        a, ids_a = largest_component(g)
        b, ids_b = largest_component(g)
        assert np.array_equal(ids_a, ids_b)
        assert a.n == 3

    def test_isolated_vertex_component(self):
        g = from_edges(4, [0], [1])
        comp, ids = largest_component(g)
        assert comp.n == 2
        assert sorted(ids.tolist()) == [0, 1]

    def test_connected_graph_identity(self, dumbbell):
        comp, ids = largest_component(dumbbell)
        assert comp == dumbbell
        assert np.array_equal(ids, np.arange(8))


class TestComponentsFromArcs:
    def test_asymmetric_arc_input(self):
        from repro.graph.components import components_from_arcs

        # one-directional arcs must still union both endpoints
        k, labels = components_from_arcs(4, np.array([0, 2]), np.array([1, 3]))
        assert k == 2
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_empty_arcs(self):
        from repro.graph.components import components_from_arcs

        k, labels = components_from_arcs(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert k == 3


class TestSortedInvariant:
    def test_builder_output_sorted(self):
        rng = np.random.default_rng(3)
        g = gnm(40, 200, rng=rng, weights=(1, 6))
        check_graph(g, require_sorted=True)

    def test_contraction_output_sorted(self, dumbbell):
        from repro.graph import contract_by_labels

        labels = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        gc, _ = contract_by_labels(dumbbell, labels)
        check_graph(gc, require_sorted=True)

    def test_unsorted_rejected_when_required(self):
        # valid symmetric triangle arcs, but slice of vertex 0 reversed
        g = Graph(
            np.array([0, 2, 4, 6]),
            np.array([2, 1, 0, 2, 0, 1]),
            np.array([1, 1, 1, 1, 1, 1]),
        )
        check_graph(g)  # fine without the strict flag
        import pytest as _pytest

        with _pytest.raises(Exception):
            check_graph(g, require_sorted=True)
