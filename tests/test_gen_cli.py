"""Tests for the instance-generator CLI."""


from repro.gen_cli import main
from repro.graph import check_graph, is_connected, read_dimacs, read_edge_list, read_metis


class TestGenCli:
    def test_rhg_metis(self, tmp_path, capsys):
        out = tmp_path / "g.graph"
        assert main(["-o", str(out), "rhg", "--n", "256", "--avg-degree", "8"]) == 0
        g = read_metis(out)
        check_graph(g)
        assert g.n == 256
        assert "wrote" in capsys.readouterr().out

    def test_rmat_dimacs(self, tmp_path):
        out = tmp_path / "g.dimacs"
        assert main(["-o", str(out), "--format", "dimacs", "rmat", "--scale", "7", "--avg-degree", "6"]) == 0
        g = read_dimacs(out)
        assert g.n == 128

    def test_chung_lu_edgelist(self, tmp_path):
        out = tmp_path / "g.txt"
        rc = main(
            ["-o", str(out), "--format", "edgelist", "chung-lu", "--n", "200",
             "--avg-degree", "6", "--communities", "4"]
        )
        assert rc == 0
        check_graph(read_edge_list(out))

    def test_gnm_connected_weighted(self, tmp_path):
        out = tmp_path / "g.graph"
        rc = main(
            ["-o", str(out), "gnm", "--n", "50", "--m", "80", "--connected",
             "--weights", "1", "9"]
        )
        assert rc == 0
        g = read_metis(out)
        assert g.m == 80 and is_connected(g)
        assert not g.is_unweighted()

    def test_world_instance(self, tmp_path):
        out = tmp_path / "core.graph"
        rc = main(["-o", str(out), "world", "--name", "uk-web-like", "--k", "6", "--scale", "0.35"])
        assert rc == 0
        g = read_metis(out)
        assert g.degrees().min() >= 6

    def test_world_missing_k(self, tmp_path, capsys):
        out = tmp_path / "x.graph"
        rc = main(["-o", str(out), "world", "--name", "uk-web-like", "--k", "99"])
        assert rc == 2
        assert "no k=99" in capsys.readouterr().err

    def test_seed_reproducible(self, tmp_path):
        a, b = tmp_path / "a.graph", tmp_path / "b.graph"
        for path in (a, b):
            main(["-o", str(path), "--seed", "5", "gnm", "--n", "30", "--m", "60"])
        assert a.read_text() == b.read_text()
