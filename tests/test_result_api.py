"""Tests for MinCutResult and the public minimum_cut facade."""

import numpy as np
import pytest

from repro import minimum_cut
from repro.core import ALGORITHMS, EXACT_ALGORITHMS, MinCutResult
from repro.generators import connected_gnm

from .conftest import oracle_mincut


class TestMinCutResult:
    def test_partition(self, dumbbell):
        side = np.zeros(8, dtype=bool)
        side[:4] = True
        res = MinCutResult(1, side, 8, "test")
        a, b = res.partition()
        assert a == [0, 1, 2, 3] and b == [4, 5, 6, 7]

    def test_verify_true(self, dumbbell):
        side = np.zeros(8, dtype=bool)
        side[:4] = True
        assert MinCutResult(1, side, 8, "t").verify(dumbbell)

    def test_verify_wrong_value(self, dumbbell):
        side = np.zeros(8, dtype=bool)
        side[:4] = True
        assert not MinCutResult(2, side, 8, "t").verify(dumbbell)

    def test_verify_empty_side_invalid(self, dumbbell):
        assert not MinCutResult(0, np.zeros(8, dtype=bool), 8, "t").verify(dumbbell)
        assert not MinCutResult(0, np.ones(8, dtype=bool), 8, "t").verify(dumbbell)

    def test_no_side_raises(self, dumbbell):
        res = MinCutResult(1, None, 8, "t")
        with pytest.raises(ValueError):
            res.partition()
        with pytest.raises(ValueError):
            res.verify(dumbbell)

    def test_repr(self):
        r = repr(MinCutResult(3, None, 5, "x"))
        assert "value=3" in r and "x" in r


class TestFacade:
    def test_default_algorithm(self, dumbbell):
        res = minimum_cut(dumbbell, rng=0)
        assert res.value == 1
        assert res.algorithm == "noi-lambda-heap-viecut"

    def test_unknown_algorithm(self, dumbbell):
        with pytest.raises(ValueError, match="unknown algorithm"):
            minimum_cut(dumbbell, algorithm="quantum")

    @pytest.mark.parametrize("algo", sorted(ALGORITHMS))
    def test_every_algorithm_runs(self, dumbbell, algo):
        res = minimum_cut(dumbbell, algorithm=algo, rng=0)
        assert res.value >= 1
        if algo in EXACT_ALGORITHMS:
            assert res.value == 1

    @pytest.mark.parametrize("algo", sorted(EXACT_ALGORITHMS))
    def test_exact_algorithms_agree_random(self, algo):
        rng = np.random.default_rng(5)
        g = connected_gnm(20, 45, rng=rng, weights=(1, 7))
        expected = oracle_mincut(g)
        assert minimum_cut(g, algorithm=algo, rng=1).value == expected

    def test_kwargs_forwarded(self, dumbbell):
        res = minimum_cut(dumbbell, algorithm="parcut", workers=2, pq_kind="bstack", rng=0)
        assert res.value == 1
        assert res.algorithm == "parcut-bstack"

    def test_lazy_top_level_import(self):
        import repro

        assert callable(repro.minimum_cut)
        with pytest.raises(AttributeError):
            repro.does_not_exist  # noqa: B018

    def test_quickstart_docstring_example(self):
        from repro import GraphBuilder

        g = (
            GraphBuilder(4)
            .add_edge(0, 1, 3)
            .add_edge(1, 2, 1)
            .add_edge(2, 3, 3)
            .add_edge(3, 0, 1)
            .build()
        )
        assert minimum_cut(g).value == 2
