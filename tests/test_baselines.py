"""Tests for the baseline solvers: Stoer–Wagner, Hao–Orlin, push-relabel,
Karger–Stein, and Matula's (2+ε)-approximation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import hao_orlin, karger_stein, matula_approx, max_flow, stoer_wagner
from repro.baselines.push_relabel import reverse_arcs
from repro.generators import connected_gnm
from repro.graph import from_edges

from .conftest import CANONICAL_CUTS, graph_to_nx, oracle_mincut


def canonical(request, name):
    return request.getfixturevalue(name), CANONICAL_CUTS[name]


CANONICAL_NAMES = sorted(CANONICAL_CUTS)


class TestStoerWagner:
    @pytest.mark.parametrize("name", CANONICAL_NAMES)
    def test_canonical(self, request, name):
        g, lam = canonical(request, name)
        res = stoer_wagner(g)
        assert res.value == lam
        assert res.verify(g)

    def test_disconnected(self, two_triangles_disconnected):
        assert stoer_wagner(two_triangles_disconnected).value == 0

    def test_single_vertex_rejected(self):
        with pytest.raises(ValueError):
            stoer_wagner(from_edges(1, [], []))

    def test_phase_count(self, clique6):
        res = stoer_wagner(clique6)
        assert res.stats["phases"] == 5  # n - 1 phases

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_property_oracle(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 24))
        m = min(int(rng.integers(n - 1, 3 * n)), n * (n - 1) // 2)
        g = connected_gnm(n, m, rng=rng, weights=(1, 9))
        res = stoer_wagner(g)
        assert res.value == oracle_mincut(g)
        assert res.verify(g)


class TestPushRelabel:
    def test_reverse_arcs_involution(self):
        rng = np.random.default_rng(0)
        g = connected_gnm(20, 50, rng=rng)
        rev = reverse_arcs(g)
        assert np.array_equal(rev[rev], np.arange(g.num_arcs))
        src = g.arc_sources()
        assert np.array_equal(src[rev], g.adjncy)

    def test_source_equals_sink_rejected(self, triangle):
        with pytest.raises(ValueError):
            max_flow(triangle, 0, 0)

    def test_out_of_range(self, triangle):
        with pytest.raises(ValueError):
            max_flow(triangle, 0, 9)

    def test_path_flow(self, path4):
        res = max_flow(path4, 0, 3)
        assert res.value == 1
        assert res.source_side[0] and not res.source_side[3]

    def test_bottleneck(self):
        # 0 =3= 1 =1= 2 =3= 3 : flow 0->3 limited by middle edge
        g = from_edges(4, [0, 1, 2], [1, 2, 3], [3, 1, 3])
        assert max_flow(g, 0, 3).value == 1

    def test_disconnected_flow_zero(self, two_triangles_disconnected):
        res = max_flow(two_triangles_disconnected, 0, 5)
        assert res.value == 0

    def test_flow_antisymmetric(self, clique6):
        res = max_flow(clique6, 0, 5)
        rev = reverse_arcs(clique6)
        assert np.array_equal(res.flow, -res.flow[rev])

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_property_matches_networkx(self, seed):
        import networkx as nx

        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 22))
        m = min(int(rng.integers(n - 1, 3 * n)), n * (n - 1) // 2)
        g = connected_gnm(n, m, rng=rng, weights=(1, 9))
        s, t = 0, n - 1
        expected = nx.maximum_flow_value(graph_to_nx(g), s, t)
        res = max_flow(g, s, t)
        assert res.value == expected
        assert g.cut_value(res.source_side) == res.value


class TestHaoOrlin:
    @pytest.mark.parametrize("name", CANONICAL_NAMES)
    def test_canonical(self, request, name):
        g, lam = canonical(request, name)
        res = hao_orlin(g)
        assert res.value == lam
        assert res.verify(g)

    def test_disconnected(self, two_triangles_disconnected):
        assert hao_orlin(two_triangles_disconnected).value == 0

    def test_source_choice_irrelevant(self, dumbbell):
        for s in range(8):
            assert hao_orlin(dumbbell, source=s).value == 1

    def test_phase_count(self, clique6):
        res = hao_orlin(clique6)
        assert res.stats["phases"] == 5

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 100_000), weighted=st.booleans())
    def test_property_oracle(self, seed, weighted):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 24))
        m = min(int(rng.integers(n - 1, 3 * n)), n * (n - 1) // 2)
        g = connected_gnm(n, m, rng=rng, weights=(1, 9) if weighted else None)
        res = hao_orlin(g, source=int(rng.integers(n)))
        assert res.value == oracle_mincut(g)
        assert res.verify(g)


class TestKargerStein:
    @pytest.mark.parametrize("name", CANONICAL_NAMES)
    def test_canonical(self, request, name):
        g, lam = canonical(request, name)
        res = karger_stein(g, rng=0)
        assert res.value == lam  # tiny graphs: recursion bottoms out exactly
        assert res.verify(g)

    def test_disconnected(self, two_triangles_disconnected):
        assert karger_stein(two_triangles_disconnected, rng=0).value == 0

    def test_never_below_mincut(self):
        """Monte Carlo: may exceed λ, can never go below (any output is a cut)."""
        rng = np.random.default_rng(1)
        for _ in range(10):
            g = connected_gnm(16, 30, rng=rng, weights=(1, 6))
            res = karger_stein(g, trials=1, rng=rng)
            assert res.value >= oracle_mincut(g)
            assert res.verify(g)

    def test_default_trials_whp_exact(self):
        rng = np.random.default_rng(2)
        hits = total = 0
        for _ in range(15):
            g = connected_gnm(18, 40, rng=rng, weights=(1, 5))
            total += 1
            hits += karger_stein(g, rng=rng).value == oracle_mincut(g)
        assert hits >= total - 1, f"exact only {hits}/{total} with default trials"

    def test_invalid_trials(self, triangle):
        with pytest.raises(ValueError):
            karger_stein(triangle, trials=0)


class TestMatula:
    @pytest.mark.parametrize("eps", [0.1, 0.5, 1.0])
    def test_approximation_guarantee(self, eps):
        rng = np.random.default_rng(5)
        for _ in range(15):
            n = int(rng.integers(4, 28))
            m = min(int(rng.integers(n, 4 * n)), n * (n - 1) // 2)
            g = connected_gnm(n, m, rng=rng, weights=(1, 7))
            lam = oracle_mincut(g)
            res = matula_approx(g, eps=eps, rng=rng)
            assert res.verify(g)
            assert lam <= res.value <= (2 + eps) * lam

    def test_canonical_dumbbell(self, dumbbell):
        res = matula_approx(dumbbell, rng=0)
        assert 1 <= res.value <= 3  # (2+0.5)*1 rounded up by integrality

    def test_invalid_eps(self, triangle):
        with pytest.raises(ValueError):
            matula_approx(triangle, eps=0)

    def test_disconnected(self, two_triangles_disconnected):
        assert matula_approx(two_triangles_disconnected, rng=0).value == 0

    def test_linear_work_shape(self):
        """Matula must scan far fewer edges than exact NOI on the same input
        when λ̂ has to fall a long way (many NOI rounds)."""
        rng = np.random.default_rng(8)
        g = connected_gnm(300, 2000, rng=rng)
        res = matula_approx(g, eps=0.5, rng=1)
        # edges scanned is O(m · rounds) with rounds small and bounded
        assert res.stats["rounds"] <= 12
