"""Unit and property tests for BStack / BQueue / Heap priority queues.

Covers: addressability, monotone key raises, the λ̂ bound clamp with skipped
updates (paper Lemma 3.1 machinery), the pop-order contracts that distinguish
BStack (LIFO in top bucket) from BQueue (FIFO in top bucket), and a
hypothesis model check against a reference implementation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastructures import BQueuePQ, BStackPQ, HeapPQ, make_pq
from repro.datastructures.pq import PQ_NAMES

ALL_KINDS = ["bstack", "bqueue", "heap"]


def make(kind, n, bound):
    return make_pq(kind, n, bound=bound)


class TestFactory:
    def test_names(self):
        assert set(PQ_NAMES) == set(ALL_KINDS)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_factory_types(self, kind):
        q = make(kind, 4, 10)
        expected = {"bstack": BStackPQ, "bqueue": BQueuePQ, "heap": HeapPQ}[kind]
        assert isinstance(q, expected)

    def test_bucket_requires_bound(self):
        with pytest.raises(ValueError):
            make_pq("bstack", 4, bound=None)
        with pytest.raises(ValueError):
            make_pq("bqueue", 4, bound=None)

    def test_heap_allows_unbounded(self):
        q = make_pq("heap", 4, bound=None)
        q.insert_or_raise(0, 10**12)
        assert q.pop_max() == (0, 10**12)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_pq("fibonacci", 4, bound=3)


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestCommonBehaviour:
    def test_insert_pop_single(self, kind):
        q = make(kind, 3, 10)
        q.insert_or_raise(1, 5)
        assert len(q) == 1
        assert 1 in q
        assert q.pop_max() == (1, 5)
        assert len(q) == 0
        assert 1 not in q

    def test_pop_empty_raises(self, kind):
        q = make(kind, 3, 10)
        with pytest.raises(IndexError):
            q.pop_max()

    def test_max_order(self, kind):
        q = make(kind, 5, 10)
        for v, p in [(0, 3), (1, 7), (2, 1), (3, 9), (4, 5)]:
            q.insert_or_raise(v, p)
        popped = [q.pop_max() for _ in range(5)]
        assert popped == [(3, 9), (1, 7), (4, 5), (0, 3), (2, 1)]

    def test_raise_key(self, kind):
        q = make(kind, 3, 100)
        q.insert_or_raise(0, 1)
        q.insert_or_raise(1, 50)
        q.insert_or_raise(0, 60)  # raise 0 above 1
        assert q.pop_max()[0] == 0

    def test_lower_key_is_noop(self, kind):
        q = make(kind, 2, 100)
        q.insert_or_raise(0, 50)
        q.insert_or_raise(0, 10)
        assert q.key_of(0) == 50

    def test_clamped_to_bound(self, kind):
        q = make(kind, 2, 7)
        q.insert_or_raise(0, 100)
        assert q.key_of(0) == 7
        assert q.pop_max() == (0, 7)

    def test_update_at_bound_skipped(self, kind):
        q = make(kind, 2, 7)
        q.insert_or_raise(0, 7)
        before = q.stats.updates
        q.insert_or_raise(0, 100)
        assert q.stats.updates == before
        assert q.stats.skipped_updates == 1

    def test_negative_priority_rejected(self, kind):
        q = make(kind, 2, 7)
        with pytest.raises(ValueError):
            q.insert_or_raise(0, -1)

    def test_key_of_absent_raises(self, kind):
        q = make(kind, 2, 7)
        with pytest.raises(KeyError):
            q.key_of(1)

    def test_reinsert_after_pop(self, kind):
        q = make(kind, 2, 10)
        q.insert_or_raise(0, 5)
        q.pop_max()
        q.insert_or_raise(0, 3)
        assert q.pop_max() == (0, 3)

    def test_stats_counts(self, kind):
        q = make(kind, 4, 10)
        q.insert_or_raise(0, 1)
        q.insert_or_raise(1, 2)
        q.insert_or_raise(0, 5)
        q.pop_max()
        assert q.stats.pushes == 2
        assert q.stats.updates == 1
        assert q.stats.pops == 1
        assert q.stats.total == 4

    def test_zero_priority(self, kind):
        q = make(kind, 2, 10)
        q.insert_or_raise(0, 0)
        assert q.pop_max() == (0, 0)


class TestBucketTieBreaking:
    """The defining difference between BStack and BQueue (paper §3.1.3)."""

    def test_bstack_lifo_within_bucket(self):
        q = BStackPQ(4, bound=5)
        for v in (0, 1, 2):
            q.insert_or_raise(v, 5)
        assert [q.pop_max()[0] for _ in range(3)] == [2, 1, 0]

    def test_bqueue_fifo_within_bucket(self):
        q = BQueuePQ(4, bound=5)
        for v in (0, 1, 2):
            q.insert_or_raise(v, 5)
        assert [q.pop_max()[0] for _ in range(3)] == [0, 1, 2]

    def test_bstack_pops_just_updated(self):
        # the "always revisit the vertex whose priority was just raised" bias
        q = BStackPQ(5, bound=9)
        q.insert_or_raise(0, 9)
        q.insert_or_raise(1, 9)
        q.insert_or_raise(2, 4)
        q.insert_or_raise(2, 9)  # raise 2 into top bucket last
        assert q.pop_max()[0] == 2

    def test_bqueue_prefers_oldest_in_top_bucket(self):
        q = BQueuePQ(5, bound=9)
        q.insert_or_raise(0, 9)
        q.insert_or_raise(1, 4)
        q.insert_or_raise(2, 9)
        q.insert_or_raise(1, 9)
        assert q.pop_max()[0] == 0

    def test_removal_from_bucket_middle(self):
        # raise the middle element of a 3-element bucket; list must stay intact
        q = BQueuePQ(5, bound=9)
        for v in (0, 1, 2):
            q.insert_or_raise(v, 3)
        q.insert_or_raise(1, 6)
        assert q.pop_max() == (1, 6)
        assert [q.pop_max()[0] for _ in range(2)] == [0, 2]


class TestHeapInternals:
    def test_heap_property_maintained(self):
        q = HeapPQ(50)
        import random

        rng = random.Random(7)
        for v in range(50):
            q.insert_or_raise(v, rng.randint(0, 100))
            assert q._check_heap_property()
        for v in range(0, 50, 3):
            q.insert_or_raise(v, q.key_of(v) + rng.randint(0, 50))
            assert q._check_heap_property()
        prev = None
        while len(q):
            _, k = q.pop_max()
            assert q._check_heap_property()
            if prev is not None:
                assert k <= prev
            prev = k


@settings(max_examples=200)
@given(
    kind=st.sampled_from(ALL_KINDS),
    bound=st.integers(min_value=0, max_value=20),
    ops=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 40), st.booleans()),
        max_size=60,
    ),
)
def test_property_model_check(kind, bound, ops):
    """Compare against a dict-based reference model.

    For every pop, the returned key must be the model's maximum clamped key;
    the returned vertex must be *some* vertex holding that key (tie order is
    implementation-defined and tested separately above).
    """
    q = make(kind, 10, bound)
    model: dict[int, int] = {}
    for v, prio, do_pop in ops:
        if do_pop and model:
            vertex, key = q.pop_max()
            assert key == max(model.values())
            assert model[vertex] == key
            del model[vertex]
        else:
            clamped = min(prio, bound)
            if v in model:
                if model[v] < bound:
                    model[v] = max(model[v], clamped)
            else:
                model[v] = clamped
            q.insert_or_raise(v, prio)
        assert len(q) == len(model)
        for vertex, key in model.items():
            assert vertex in q
            assert q.key_of(vertex) == key
