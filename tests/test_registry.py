"""Registry-consistency tests: the algorithm lists can never silently skew.

A new solver registration touches three lists (``ALGORITHMS``,
``EXACT_ALGORITHMS``, ``TRACEABLE_ALGORITHMS``); these tests make a missed
list a test failure instead of a latent gap: every claimed-exact algorithm
is checked against brute force on the shared fixture set, the subset
relations between the lists are asserted, and the ``UnknownAlgorithmError``
contract is pinned on every surface (facade, engine, CLI batch, service →
HTTP 400) so the error type cannot drift apart again.
"""

from __future__ import annotations

import json

import pytest

from repro.baselines.brute_force import brute_force_mincut
from repro.core.api import (
    ALGORITHMS,
    EXACT_ALGORITHMS,
    TRACEABLE_ALGORITHMS,
    UnknownAlgorithmError,
    minimum_cut,
)
from repro.engine import SolverEngine

from .conftest import CANONICAL_CUTS

#: per-algorithm kwargs needed for a deterministic small-fixture solve
_SOLVE_KWARGS = {
    "parcut": {"workers": 2, "executor": "threads"},
    "karger-nlt": {"rng": 0},
}


class TestRegistryConsistency:
    def test_exact_algorithms_are_registered(self):
        assert set(EXACT_ALGORITHMS) <= set(ALGORITHMS)

    def test_traceable_algorithms_are_registered(self):
        assert set(TRACEABLE_ALGORITHMS) <= set(ALGORITHMS)

    @pytest.mark.parametrize("algorithm", sorted(EXACT_ALGORITHMS))
    @pytest.mark.parametrize("name", sorted(CANONICAL_CUTS))
    def test_every_exact_algorithm_matches_brute_force(self, algorithm, name,
                                                       request):
        g = request.getfixturevalue(name)
        expected = brute_force_mincut(g, compute_side=False).value
        assert expected == CANONICAL_CUTS[name]
        res = minimum_cut(g, algorithm, **_SOLVE_KWARGS.get(algorithm, {}))
        assert res.value == expected, (algorithm, name)
        if res.side is not None:
            assert g.cut_value(res.side) == expected


class TestUnknownAlgorithmError:
    def test_facade_raises_one_type(self, two_vertices):
        with pytest.raises(UnknownAlgorithmError, match="unknown algorithm"):
            minimum_cut(two_vertices, "nope")
        # the type is a ValueError so legacy callers keep working
        with pytest.raises(ValueError):
            minimum_cut(two_vertices, "nope")

    def test_engine_surfaces_raise_same_type(self, two_vertices):
        with pytest.raises(UnknownAlgorithmError):
            SolverEngine(default_algorithm="nope")
        with SolverEngine(pool_size=0) as eng:
            with pytest.raises(UnknownAlgorithmError):
                eng.submit(two_vertices, algorithm="nope")

    def test_package_root_exports_the_type(self):
        import repro

        assert repro.UnknownAlgorithmError is UnknownAlgorithmError

    def test_cli_batch_maps_to_invalid_input_exit(self, tmp_path, capsys):
        from repro.cli import EXIT_INVALID_INPUT, main
        from repro.generators.gnm import connected_gnm
        from repro.graph.io import write_metis

        write_metis(connected_gnm(8, 16, rng=0), tmp_path / "g.metis")
        manifest = tmp_path / "manifest.jsonl"
        manifest.write_text(json.dumps(
            {"path": str(tmp_path / "g.metis"), "algorithm": "nope"}) + "\n")
        rc = main(["--batch", str(manifest), "--pool-size", "0"])
        assert rc == EXIT_INVALID_INPUT
        assert "unknown algorithm" in capsys.readouterr().out

    def test_service_maps_to_http_400(self, two_vertices):
        from repro.service import ServiceClient, ServiceConfig, classify_failure
        from repro.service.testing import ServiceThread

        kind, status = classify_failure(UnknownAlgorithmError("nope"))
        assert (kind, status) == ("invalid", 400)

        with ServiceThread(engine_kwargs={"pool_size": 0},
                           config=ServiceConfig()) as st:
            with ServiceClient("127.0.0.1", st.port) as client:
                status, _h, body = client.solve(two_vertices,
                                                algorithm="nope")
                assert status == 400
                assert "unknown algorithm" in body["error"]
