"""Shared-memory graph plane: lifecycle, zero-copy attach, and cleanup.

Covers the three segment types of :mod:`repro.graph.shm`, the process
executor running over them under both ``fork`` and ``spawn`` start methods,
and the supervisor-owned cleanup guarantee: killed workers must not leak
``/dev/shm`` segments.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.core.mincut import parallel_mincut
from repro.core.noi import noi_mincut
from repro.core.parallel_capforest import default_start_method, parallel_capforest
from repro.generators.gnm import connected_gnm
from repro.graph.shm import SharedBytes, SharedGraph, SharedPairsBuffer
from repro.runtime.errors import ExecutorUnavailable
from repro.runtime.faults import FaultPlan, WorkerFault

START_METHODS = [m for m in ("fork", "spawn") if m in mp.get_all_start_methods()]


def _shm_names() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux: fall back to no leak tracking
        return set()


# ---------------------------------------------------------------------------
# segment lifecycle
# ---------------------------------------------------------------------------


def test_shared_graph_roundtrip_and_zero_copy():
    g = connected_gnm(60, 200, rng=0, weights=(1, 9))
    with SharedGraph.export(g) as sg:
        name = sg.name
        assert sg.n == g.n and sg.num_arcs == g.num_arcs
        attached = SharedGraph.attach(sg.name)
        try:
            h = attached.graph()
            assert np.array_equal(h.xadj, g.xadj)
            assert np.array_equal(h.adjncy, g.adjncy)
            assert np.array_equal(h.adjwgt, g.adjwgt)
            # zero-copy: the arrays are views into the mapped segment
            assert not h.xadj.flags.owndata
            assert not h.adjncy.flags.owndata
        finally:
            # views must be dropped before close (BufferError otherwise)
            del h
            attached.close()
    # owner context exit unlinked the segment: re-attach must fail
    with pytest.raises(FileNotFoundError):
        SharedGraph.attach(name)


def test_shared_graph_close_then_use_raises():
    g = connected_gnm(10, 20, rng=1)
    sg = SharedGraph.export(g)
    sg.unlink()
    with pytest.raises(ValueError, match="closed"):
        sg.graph()
    sg.unlink()  # idempotent
    sg.close()  # idempotent


def test_shared_pairs_buffer_roundtrip():
    buf = SharedPairsBuffer.create(3, 10)
    try:
        assert buf.read_pairs(0).shape == (0, 2)
        buf.write_pairs(1, [(2, 3), (4, 5)])
        got = SharedPairsBuffer.attach(buf.name, 3, 10)
        try:
            assert got.read_pairs(1).tolist() == [[2, 3], [4, 5]]
            assert got.read_pairs(0).shape == (0, 2)
        finally:
            got.close()
        # a full row (the dedup bound: n-1 pairs) fits exactly
        buf.write_pairs(2, [(i, i + 1) for i in range(9)])
        assert len(buf.read_pairs(2)) == 9
        with pytest.raises(ValueError, match="exceed"):
            buf.write_pairs(2, [(i, i + 1) for i in range(10)])
    finally:
        buf.unlink()


def test_shared_pairs_buffer_clamps_corrupt_count():
    buf = SharedPairsBuffer.create(1, 5)
    try:
        buf._rows[0, 0] = 10**6  # scribbled count from a corrupt worker
        assert len(buf.read_pairs(0)) <= SharedPairsBuffer.row_len(5) // 2
        buf._rows[0, 0] = -3
        assert buf.read_pairs(0).shape == (0, 2)
    finally:
        buf.unlink()


def test_shared_bytes_zeroed_and_shared():
    b = SharedBytes.create(16)
    try:
        assert bytes(b.buf[:16]) == bytes(16)
        other = SharedBytes.attach(b.name, 16)
        try:
            other.buf[3] = 7
            assert b.buf[3] == 7
        finally:
            other.close()
    finally:
        b.unlink()


def test_no_segments_leaked_by_lifecycle():
    before = _shm_names()
    g = connected_gnm(40, 100, rng=2)
    sg = SharedGraph.export(g)
    pb = SharedPairsBuffer.create(2, g.n)
    sb = SharedBytes.create(g.n)
    for seg in (sg, pb, sb):
        seg.unlink()
    assert _shm_names() <= before


# ---------------------------------------------------------------------------
# process executor over the shared plane
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("start_method", START_METHODS)
@pytest.mark.parametrize("kernel", ["scalar", "vector", "compiled"])
def test_processes_executor_exact_under_both_start_methods(start_method, kernel, monkeypatch):
    if kernel == "compiled":
        from repro.kernels import NUMBA_AVAILABLE

        if not NUMBA_AVAILABLE:
            # genuinely execute the compiled code paths (as pure Python) in
            # worker processes: fork and spawn children inherit the env var
            monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")
    g = connected_gnm(120, 500, rng=3, weights=(1, 9))
    expected = noi_mincut(g, rng=0).value
    before = _shm_names()
    res = parallel_mincut(
        g, workers=3, executor="processes", rng=5, kernel=kernel,
        start_method=start_method, timeout=120.0,
    )
    assert res.value == expected
    assert res.stats["start_method"] == start_method
    assert _shm_names() <= before


@pytest.mark.parametrize("start_method", START_METHODS)
def test_parallel_capforest_processes_reports_start_method(start_method):
    g = connected_gnm(80, 300, rng=4)
    lam = g.min_weighted_degree()[1]
    res = parallel_capforest(
        g, lam, workers=2, executor="processes", rng=1,
        start_method=start_method, timeout=120.0,
    )
    assert res.start_method == start_method
    assert res.lambda_hat <= lam
    assert len(res.workers) == 2
    # marks came back through the shared pair buffer, deduplicated: the
    # merged partition can never exceed the n-1 pair bound per worker
    assert res.n_marked <= g.n - 1


def test_default_start_method_matches_platform(monkeypatch):
    methods = mp.get_all_start_methods()
    monkeypatch.delenv("REPRO_START_METHOD", raising=False)
    assert default_start_method() == ("fork" if "fork" in methods else "spawn")
    g = connected_gnm(60, 150, rng=6)
    lam = g.min_weighted_degree()[1]
    res = parallel_capforest(g, lam, workers=2, executor="processes", rng=2, timeout=120.0)
    assert res.start_method == default_start_method()


def test_start_method_env_override(monkeypatch):
    # CI's start-method matrix axis drives the parallel suites through this
    for method in mp.get_all_start_methods():
        monkeypatch.setenv("REPRO_START_METHOD", method)
        assert default_start_method() == method
    monkeypatch.setenv("REPRO_START_METHOD", "no-such-method")
    with pytest.raises(ValueError, match="REPRO_START_METHOD"):
        default_start_method()


# ---------------------------------------------------------------------------
# fault tolerance: killed workers leave no shm segments behind
# ---------------------------------------------------------------------------


def test_killed_workers_leak_no_segments():
    g = connected_gnm(100, 400, rng=7)
    lam = g.min_weighted_degree()[1]
    before = _shm_names()
    plan = FaultPlan.kill(range(3), after_pops=2, executors=("processes",))
    with pytest.raises(ExecutorUnavailable):
        parallel_capforest(
            g, lam, workers=3, executor="processes", rng=3,
            fault_plan=plan, timeout=60.0,
        )
    # supervisor-owned cleanup: the coordinator unlinks every segment even
    # when every worker was hard-killed mid-scan
    assert _shm_names() <= before


def test_partial_kill_keeps_survivors_and_cleans_up():
    g = connected_gnm(100, 400, rng=8, weights=(1, 9))
    lam = g.min_weighted_degree()[1]
    before = _shm_names()
    plan = FaultPlan.kill([0], after_pops=1, executors=("processes",))
    res = parallel_capforest(
        g, lam, workers=3, executor="processes", rng=4,
        fault_plan=plan, timeout=60.0,
    )
    assert any(ev["kind"] == "crashed" for ev in res.events)
    assert len(res.workers) == 2  # survivors only
    assert _shm_names() <= before


def test_corrupt_pair_row_rejected_not_merged():
    g = connected_gnm(60, 200, rng=9)
    lam = g.min_weighted_degree()[1]
    plan = FaultPlan(faults={0: WorkerFault("corrupt_pairs")}, executors=("processes",))
    res = parallel_capforest(
        g, lam, workers=2, executor="processes", rng=6,
        fault_plan=plan, timeout=60.0,
    )
    assert any(ev["kind"] == "corrupt" for ev in res.events)
    # the corrupt worker's report is discarded along with its pairs
    assert len(res.workers) == 1


def test_engine_cancellation_storm_leaks_no_segments():
    # the engine's plane registry exports one shm segment per distinct
    # graph; cancelling half a concurrent batch mid-flight (while the
    # head request blows its deadline and recycles the worker) must
    # still release and unlink every plane by close()
    from repro.engine import RequestCancelled, SolverEngine

    graphs = [connected_gnm(30 + i, 90, rng=10 + i) for i in range(6)]
    before = _shm_names()
    with SolverEngine(pool_size=1, max_recycles=8) as eng:
        doomed = eng.submit(
            graphs[0], cache=False, deadline=0.3,
            _test_fault={"test_fault": "hang", "sleep_seconds": 60},
        )
        futures = [eng.submit(g, cache=False) for g in graphs[1:]]
        for fut in futures[::2]:
            assert fut.cancel() is True
        with pytest.raises(Exception) as exc_info:
            doomed.result(timeout=30)
        assert "deadline" in str(exc_info.value)
        for fut in futures[1::2]:
            assert fut.result(timeout=60).value >= 1
        for fut in futures[::2]:
            with pytest.raises(RequestCancelled):
                fut.result(timeout=5)
    assert _shm_names() <= before
