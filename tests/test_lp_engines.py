"""Tests for the three label-propagation engines and their agreement."""

import numpy as np
import pytest

from repro.generators import chung_lu, connected_gnm
from repro.viecut import cluster_labels
from repro.viecut.label_propagation import (
    propagate_labels,
    propagate_labels_parallel,
    propagate_labels_sync,
)


class TestSyncEngine:
    def test_zero_iterations_identity(self, dumbbell):
        labels = propagate_labels_sync(dumbbell, iterations=0, rng=0)
        assert labels.tolist() == list(range(8))

    def test_empty_graph(self):
        from repro.graph import from_edges

        labels = propagate_labels_sync(from_edges(0, [], []), rng=0)
        assert len(labels) == 0

    def test_negative_iterations_rejected(self, dumbbell):
        with pytest.raises(ValueError):
            propagate_labels_sync(dumbbell, iterations=-1)

    def test_dumbbell_blobs_separate(self, dumbbell):
        labels = cluster_labels(dumbbell, iterations=3, rng=0, method="sync")
        left = {labels[i] for i in range(4)}
        right = {labels[i] for i in range(4, 8)}
        assert len(left) == 1 and len(right) == 1 and left != right

    def test_stability_tiebreak_keeps_label(self):
        """On a single edge both endpoints see equal gain for either label;
        the stability tie-break must keep their own labels (no oscillation)."""
        from repro.graph import from_edges

        g = from_edges(2, [0], [1])
        labels = propagate_labels_sync(g, iterations=5, rng=0)
        # vertex 1 adopts vertex 0's smaller... either converged state or
        # original labels is fine, but it must be a fixpoint, not a flip:
        again = propagate_labels_sync(g, iterations=6, rng=0)
        assert labels.tolist() == again.tolist()

    def test_heavier_label_wins(self):
        # vertex 2 sees label(0) via weight 5 and label(1) via weight 1
        from repro.graph import from_edges

        g = from_edges(3, [0, 1], [2, 2], [5, 1])
        labels = propagate_labels_sync(g, iterations=1, rng=0)
        assert labels[2] == 0

    def test_isolated_vertices_unchanged(self):
        from repro.graph import from_edges

        g = from_edges(4, [0], [1])
        labels = propagate_labels_sync(g, iterations=3, rng=0)
        assert labels[2] == 2 and labels[3] == 3


class TestEngineAgreement:
    """The engines are different heuristics; they must agree on *structure*
    (cluster quality on community graphs), not on exact labels."""

    @pytest.mark.parametrize("method", ["async", "sync", "parallel"])
    def test_community_graph_coarsens(self, method):
        g = chung_lu(600, 14, gamma=2.5, communities=6, mu=0.8, rng=2)
        kwargs = {"workers": 3} if method == "parallel" else {}
        labels = cluster_labels(g, iterations=3, rng=0, method=method, **kwargs)
        nc = labels.max() + 1
        assert 2 <= nc <= g.n // 3, f"{method}: {nc} clusters"

    @pytest.mark.parametrize("method", ["async", "sync", "parallel"])
    def test_clusters_connected(self, method):
        from repro.graph.components import connected_components_bfs, induced_subgraph

        rng = np.random.default_rng(4)
        g = connected_gnm(40, 90, rng=rng)
        kwargs = {"workers": 2} if method == "parallel" else {}
        labels = cluster_labels(g, iterations=2, rng=1, method=method, **kwargs)
        for c in range(labels.max() + 1):
            sub, _ = induced_subgraph(g, np.flatnonzero(labels == c))
            ncomp, _ = connected_components_bfs(sub)
            assert ncomp == 1

    def test_unknown_method_rejected(self, dumbbell):
        with pytest.raises(ValueError):
            cluster_labels(dumbbell, method="quantum")

    def test_viecut_async_engine_still_works(self):
        from repro.viecut import viecut

        rng = np.random.default_rng(6)
        g = connected_gnm(80, 240, rng=rng, weights=(1, 5))
        res = viecut(g, rng=0, lp_method="async")
        assert res.verify(g)
