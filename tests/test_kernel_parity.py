"""Property test: every CAPFOREST kernel in the registry is interchangeable.

A kernel is only admissible as a *kernel registry* entry because it is
observationally identical to the scalar reference — same λ̂, same marked
partition, same priority-queue operation counts — on every configuration.
These tests check that equivalence on random GNM and RMAT instances, for the
sequential kernel, the full NOI/ParCut drivers, and the serial-executor
parallel pass (whose round-robin pop interleaving makes worker-level parity
deterministic).

The compiled tier is exercised *genuinely* even without numba: the autouse
fixture sets ``REPRO_COMPILED_PUREPY=1`` so the jitted kernels run as plain
Python instead of resolving to the vector fallback — the same code paths,
branch for branch, that numba compiles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.capforest import KERNELS, capforest, check_kernel
from repro.core.mincut import parallel_mincut
from repro.core.noi import noi_mincut
from repro.core.parallel_capforest import parallel_capforest
from repro.generators.gnm import connected_gnm, gnm
from repro.generators.rmat import rmat


@pytest.fixture(autouse=True)
def _force_compiled_pure_python(monkeypatch):
    """Run ``kernel="compiled"`` as interpreted Python so parity is provable
    in environments without numba (the default CI jobs).  With numba present
    the kernels run as real machine code — same assertions, harder proof."""
    from repro.kernels import NUMBA_AVAILABLE

    if not NUMBA_AVAILABLE:
        monkeypatch.setenv("REPRO_COMPILED_PUREPY", "1")


def _instances():
    for seed in range(6):
        r = np.random.default_rng(seed)
        n = int(r.integers(2, 120))
        m = int(r.integers(0, min(n * (n - 1) // 2, 4 * n) + 1))
        yield f"gnm-{seed}", gnm(n, m, rng=seed, weights=None if seed % 2 else (1, 9))
    yield "rmat", rmat(8, 1500, rng=3)
    yield "gnm-dense", connected_gnm(150, 2000, rng=9, weights=(1, 100))


def test_kernel_registry():
    assert KERNELS == ("scalar", "vector", "compiled")
    assert check_kernel("vector") == "vector"
    assert check_kernel("compiled") == "compiled"
    with pytest.raises(ValueError, match="unknown kernel"):
        check_kernel("simd")
    with pytest.raises(ValueError, match="unknown kernel"):
        capforest(gnm(4, 3, rng=0), 1, kernel="simd")
    with pytest.raises(ValueError, match="unknown kernel"):
        parallel_capforest(gnm(4, 3, rng=0), 1, kernel="simd")


@pytest.mark.parametrize("pq_kind", ["bqueue", "bstack", "heap"])
def test_sequential_kernels_identical(pq_kind):
    for name, g in _instances():
        lam = g.min_weighted_degree()[1] if g.n else 0
        runs = {
            kern: capforest(g, lam, pq_kind=pq_kind, rng=11, kernel=kern)
            for kern in KERNELS
        }
        a = runs["scalar"]
        for kern in KERNELS[1:]:
            b = runs[kern]
            assert a.lambda_hat == b.lambda_hat, (name, kern)
            assert a.n_marked == b.n_marked, (name, kern)
            assert a.min_alpha == b.min_alpha, (name, kern)
            assert a.scan_order == b.scan_order, (name, kern)
            # pop counts (and every PQ counter) must match event-for-event
            assert a.pq_stats.as_dict() == b.pq_stats.as_dict(), (name, kern)
            # identical union–find partitions: same labels, same block count
            assert np.array_equal(a.uf.labels(), b.uf.labels()), (name, kern)


def test_sequential_kernels_identical_fixed_bound():
    g = connected_gnm(120, 700, rng=2, weights=(1, 9))
    lam = g.min_weighted_degree()[1]
    a = capforest(g, lam, pq_kind="bqueue", rng=5, fixed_bound=True, kernel="scalar")
    for kern in KERNELS[1:]:
        b = capforest(g, lam, pq_kind="bqueue", rng=5, fixed_bound=True, kernel=kern)
        assert a.lambda_hat == b.lambda_hat == lam, kern
        assert a.scan_order == b.scan_order, kern
        assert a.pq_stats.as_dict() == b.pq_stats.as_dict(), kern
        assert np.array_equal(a.uf.labels(), b.uf.labels()), kern


@pytest.mark.parametrize("pq_kind", ["bqueue", "bstack"])
def test_parallel_serial_executor_kernels_identical(pq_kind):
    """Serial-executor parity: per-pop vectorization must not change the
    deterministic round-robin interleaving, so every worker-level counter
    and the merged partition agree bit-for-bit."""
    for name, g in [("a", connected_gnm(200, 900, rng=1, weights=(1, 9))),
                    ("b", connected_gnm(80, 200, rng=4)),
                    ("c", rmat(8, 1200, rng=7))]:
        lam = g.min_weighted_degree()[1]
        runs = {
            kern: parallel_capforest(
                g, lam, workers=4, pq_kind=pq_kind, executor="serial", rng=13, kernel=kern
            )
            for kern in KERNELS
        }
        a = runs["scalar"]
        for kern in KERNELS[1:]:
            b = runs[kern]
            assert a.lambda_hat == b.lambda_hat, (name, kern)
            assert a.n_marked == b.n_marked, (name, kern)
            assert np.array_equal(a.uf.labels(), b.uf.labels()), (name, kern)
            for wa, wb in zip(a.workers, b.workers):
                assert wa.start_vertex == wb.start_vertex, (name, kern)
                assert wa.vertices_scanned == wb.vertices_scanned, (name, kern)
                assert wa.edges_scanned == wb.edges_scanned, (name, kern)
                assert wa.blacklisted == wb.blacklisted, (name, kern)
                assert wa.best_alpha == wb.best_alpha, (name, kern)
                assert wa.best_prefix == wb.best_prefix, (name, kern)
                assert wa.pq_stats.as_dict() == wb.pq_stats.as_dict(), (name, kern)


def test_noi_driver_kernels_identical():
    for name, g in _instances():
        if g.n < 2:
            continue
        vals = {
            kern: noi_mincut(g, pq_kind="bqueue", rng=3, kernel=kern)
            for kern in KERNELS
        }
        a = vals["scalar"]
        for kern in KERNELS[1:]:
            b = vals[kern]
            assert a.value == b.value, (name, kern)
            assert a.stats["rounds"] == b.stats["rounds"], (name, kern)
            assert a.stats["pq_pops"] == b.stats["pq_pops"], (name, kern)
            if a.side is not None:
                assert np.array_equal(a.side, b.side), (name, kern)


def test_parcut_driver_kernels_identical():
    g = connected_gnm(150, 600, rng=6, weights=(1, 9))
    runs = {
        kern: parallel_mincut(g, workers=3, executor="serial", rng=8, kernel=kern)
        for kern in KERNELS
    }
    a = runs["scalar"]
    for kern in KERNELS[1:]:
        b = runs[kern]
        assert a.value == b.value, kern
        assert a.stats["rounds"] == b.stats["rounds"], kern
        assert a.stats["pq_pops"] == b.stats["pq_pops"], kern
        assert a.stats["total_work"] == b.stats["total_work"], kern
