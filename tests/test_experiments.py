"""Smoke tests for the experiment harness and the figure/table scripts.

Each figure script runs end-to-end at miniature scale, emits the expected
row shape, and — where the paper's qualitative claims are scale-free —
asserts the *shape* (e.g. bounded queues never do more PQ work; exact
variants all agree)."""

import numpy as np
import pytest

from repro.experiments import (
    make_parallel_variants,
    make_sequential_variants,
    run_matrix,
    time_variant,
)
from repro.experiments.figure3 import REFERENCE, slowdown_rows, speedup_summary
from repro.experiments.figure4 import profile_columns
from repro.generators import connected_gnm


@pytest.fixture(scope="module")
def small_records():
    variants = make_sequential_variants()
    rng = np.random.default_rng(0)
    instances = [
        (f"g{i}", connected_gnm(60, 180, rng=rng, weights=(1, 4))) for i in range(2)
    ]
    return run_matrix(variants, instances, seed=0)


class TestHarness:
    def test_variant_registry_names(self):
        names = set(make_sequential_variants())
        assert names == {
            "HO-CGKLS",
            "NOI-CGKLS",
            "NOI-HNSS",
            "NOIlam-BStack",
            "NOIlam-BQueue",
            "NOIlam-Heap",
            "NOI-HNSS-VieCut",
            "NOIlam-Heap-VieCut",
        }
        assert set(make_parallel_variants(2)) == {
            "ParCutlam-BStack",
            "ParCutlam-BQueue",
            "ParCutlam-Heap",
        }

    def test_run_matrix_records(self, small_records):
        assert len(small_records) == 16  # 8 variants x 2 instances
        for rec in small_records:
            assert rec.seconds > 0
            assert rec.ns_per_edge > 0

    def test_exact_agreement_enforced(self, small_records):
        values = {}
        for rec in small_records:
            values.setdefault(rec.instance, set()).add(rec.value)
        assert all(len(v) == 1 for v in values.values())

    def test_time_variant_repetitions(self):
        variants = make_sequential_variants()
        rng = np.random.default_rng(1)
        g = connected_gnm(30, 60, rng=rng)
        rec = time_variant("NOIlam-Heap", variants["NOIlam-Heap"], g, "x", repetitions=2)
        assert rec.algorithm == "NOIlam-Heap"

    def test_bounded_never_more_pq_work(self, small_records):
        """Paper §3.1.2 shape: the λ̂ clamp cannot increase PQ update work."""
        by = {(r.algorithm, r.instance): r for r in small_records}
        for inst in {r.instance for r in small_records}:
            unbounded = by[("NOI-HNSS", inst)].stats
            bounded = by[("NOIlam-Heap", inst)].stats
            # identical seeds -> identical round structure; updates can only shrink
            assert (
                bounded["pq_updates"] <= unbounded["pq_updates"]
            ), f"bounding increased updates on {inst}"


class TestFigureScripts:
    def test_figure2_runs(self):
        from repro.experiments.figure2 import run

        panels = run((9,), (3,), seed=0)
        assert set(panels) == {3}
        assert len(panels[3]) == 8

    def test_figure3_rows_and_speedups(self, small_records):
        rows = slowdown_rows(small_records)
        assert len(rows) == len(small_records)
        ref_rows = [r for r in rows if r[3] == REFERENCE]
        assert all(abs(r[4] - 1.0) < 1e-9 for r in ref_rows)
        summary = speedup_summary(small_records)
        assert len(summary) == 6

    def test_figure4_profile(self, small_records):
        headers, rows = profile_columns(small_records)
        assert headers[0] == "rank"
        assert len(headers) == 9
        # every ratio in (0, 1]
        for row in rows:
            for cell in row[1:]:
                assert cell is None or 0 < cell <= 1.0

    def test_figure5_runs(self):
        from repro.experiments.figure5 import run

        rows = run(workers=(1, 2), scale=0.2, count=1, executor="serial", seed=0)
        assert len(rows) == 6  # 3 pq kinds x 2 worker counts
        for r in rows:
            if r["p"] == 2:
                assert r["modeled_speedup"] >= 1.0

    def test_table1_runs(self):
        from repro.experiments.table1 import run

        rows = run(scale=0.2, seed=0)
        assert rows
        for row in rows:
            lam, delta = row[6], row[7]
            assert lam <= delta  # λ never exceeds the minimum degree


class TestInstances:
    def test_rhg_instance_cached(self):
        from repro.experiments.instances import rhg_instance

        a = rhg_instance(9, 3, 0)
        b = rhg_instance(9, 3, 0)
        assert a is b

    def test_largest_web_instances_sorted(self):
        from repro.experiments.instances import largest_web_instances

        got = largest_web_instances(3, scale=0.2)
        sizes = [g.m for _, g in got]
        assert sizes == sorted(sizes, reverse=True)
