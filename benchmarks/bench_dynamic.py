"""Dynamic-update benchmark: warm re-solves vs cold re-solves per batch.

Measures the reason the warm path exists: a stream of small edge-update
batches against one graph, re-solved after every batch.  The **cold** side
rebuilds nothing but solves each post-update graph from scratch
(:func:`~repro.core.api.minimum_cut`); the **warm** side goes through
:meth:`~repro.engine.SolverEngine.update`, which re-prices the carried cut
across the batch (fast path), seeds NOI with the certified bound on the
certificate-contracted graph (seeded), or falls back cold.

Both sides of each batch run adjacent in time so shared-runner noise moves
them together; the headline ``warm_over_cold_speedup_median`` is the
median per-batch ``cold_wall / warm_wall`` ratio.  A correctness
cross-check makes the speedup unfakeable: every warm value must equal the
cold value on the same post-update graph.

Two variants land in ``BENCH_dynamic.json``:

* ``cold-resolve`` — a from-scratch exact solve per batch (baseline);
* ``engine-warm-update`` — the engine's incremental path (headline).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.api import minimum_cut
from repro.dynamic import DynamicGraph
from repro.engine import SolverEngine
from repro.generators.gnm import connected_gnm
from repro.observability import BENCH_SCHEMA_VERSION, validate_bench_payload

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_dynamic.json"

GRAPH_SPEC = {"n": 300, "m": 1200, "rng": 0, "weights": (1, 9)}
GRAPH_NAME = "gnm-300-1200-w1-9"

#: update batches per measured stream
BATCHES = 40

ALGORITHM = "noi-viecut"
SOLVE_KWARGS = {"rng": 0}


def _make_batches(n: int, rng: np.random.Generator):
    """Mixed batches: mostly inserts (cheap fast-path checks), some
    deletes of previously inserted edges (forces re-seeding)."""
    batches = []
    inserted: list[tuple[int, int]] = []
    present: set[tuple[int, int]] = set()
    for step in range(BATCHES):
        inserts, deletes = [], []
        for _ in range(int(rng.integers(1, 4))):
            u, v = (int(x) for x in rng.integers(0, n, 2))
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in present:
                continue
            inserts.append((u, v, int(rng.integers(1, 6))))
            inserted.append(key)
            present.add(key)
        if step % 5 == 4 and inserted:
            key = inserted.pop(0)
            present.discard(key)
            deletes.append(key)
        batches.append((inserts, deletes))
    return batches


def test_record_dynamic_update_throughput():
    base = connected_gnm(**GRAPH_SPEC)
    rng = np.random.default_rng(42)
    batches = _make_batches(base.n, rng)

    # warm-up solves: first-call numpy effects land outside every pair
    minimum_cut(base, algorithm=ALGORITHM, **SOLVE_KWARGS)

    cold_walls, warm_walls, ratios = [], [], []
    with SolverEngine(pool_size=0, default_algorithm=ALGORITHM) as engine:
        dyn = DynamicGraph(base)
        engine.update(dyn, **SOLVE_KWARGS)  # initial cold solve seeds state
        modes: dict[str, int] = {}
        for inserts, deletes in batches:
            t0 = time.perf_counter()
            warm = engine.update(dyn, inserts, deletes, **SOLVE_KWARGS)
            warm_wall = time.perf_counter() - t0

            t0 = time.perf_counter()
            cold = minimum_cut(dyn.graph, algorithm=ALGORITHM, **SOLVE_KWARGS)
            cold_wall = time.perf_counter() - t0

            # speed may never buy a wrong answer
            assert warm.value == cold.value
            mode = warm.stats["warm"]["mode"]
            modes[mode] = modes.get(mode, 0) + 1
            warm_walls.append(warm_wall)
            cold_walls.append(cold_wall)
            ratios.append(cold_wall / warm_wall)

    speedup = float(np.median(ratios))
    records = [
        {
            "variant": "cold-resolve",
            "graph": GRAPH_NAME,
            "kernel": "scalar",
            "executor": "inline",
            "wall_s": round(sum(cold_walls), 6),
            "batches": BATCHES,
            "solves_per_s": round(BATCHES / sum(cold_walls), 1),
        },
        {
            "variant": "engine-warm-update",
            "graph": GRAPH_NAME,
            "kernel": "scalar",
            "executor": "inline",
            "wall_s": round(sum(warm_walls), 6),
            "batches": BATCHES,
            "solves_per_s": round(BATCHES / sum(warm_walls), 1),
        },
    ]
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "dynamic-updates",
        "headline_metric": "warm_over_cold_speedup_median",
        "graph": {"name": GRAPH_NAME, "spec": GRAPH_SPEC},
        "batches": BATCHES,
        "algorithm": ALGORITHM,
        "warm_over_cold_speedup_median": round(speedup, 3),
        "warm_modes": modes,
        "records": records,
    }
    validate_bench_payload(payload)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # the acceptance floor; the honest (usually much larger) number is in
    # the JSON — the floor stays low so shared CI runners do not flake
    assert speedup > 1.0, f"warm updates regressed below cold: {speedup:.2f}x"
