"""Cactus construction overhead benchmark: all-cuts solve vs value-only solve.

Measures what the ``all_cuts=True`` output shape costs on top of the plain
minimum-cut value: each measured pair runs the value-only solve and the
cactus-building solve adjacent in time on the same graph, so shared-runner
noise moves both walls together.  The headline,
``cactus_relative_throughput_median``, is the median per-pair ratio
``value_only_wall / all_cuts_wall`` — 1.0 would mean the cactus is free;
the gate watches it the usual way (a drop means construction got slower
relative to the solver it rides on).

A correctness cross-check makes the number unfakeable: every cactus run
must report the same cut value as the value-only run, and its min-cut
count must be stable across repetitions of the same graph.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.api import minimum_cut
from repro.generators.gnm import connected_gnm
from repro.graph import from_edges
from repro.observability import BENCH_SCHEMA_VERSION, validate_bench_payload

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_cactus.json"

#: weighted gnm instances contract hard (λ is near-unique), unit cycles
#: keep many crossing cuts alive — both regimes are measured
GRAPH_SPECS = [
    {"n": 120, "m": 480, "rng": 0, "weights": (1, 9)},
    {"n": 200, "m": 800, "rng": 1, "weights": (1, 9)},
    {"n": 300, "m": 1200, "rng": 2, "weights": (1, 9)},
]
GRAPH_NAME = "gnm-120-300-w1-9-plus-c32"

#: adjacent (value-only, all-cuts) measurement pairs for the headline median
PAIRS = 3

SOLVE_KWARGS = {"rng": 0}


def _cycle(n: int):
    idx = list(range(n))
    return from_edges(n, idx, [(i + 1) % n for i in idx], [1] * n)


def test_record_cactus_overhead():
    graphs = [connected_gnm(**spec) for spec in GRAPH_SPECS]
    # the structured instance: C32 has n(n-1)/2 = 496 min cuts in one
    # cactus cycle, the worst case for enumeration-heavy construction
    graphs.append(_cycle(32))

    # warm-up outside every pair
    warm = [minimum_cut(g, all_cuts=True, **SOLVE_KWARGS) for g in graphs]
    expected_counts = [r.num_min_cuts() for r in warm]

    samples: dict[str, list[float]] = {"value-only": [], "all-cuts": []}
    ratios = []
    for _ in range(PAIRS):
        t0 = time.perf_counter()
        base = [minimum_cut(g, **SOLVE_KWARGS) for g in graphs]
        base_wall = time.perf_counter() - t0
        samples["value-only"].append(base_wall)

        t0 = time.perf_counter()
        rich = [minimum_cut(g, all_cuts=True, **SOLVE_KWARGS) for g in graphs]
        rich_wall = time.perf_counter() - t0
        samples["all-cuts"].append(rich_wall)

        # overhead may never buy a wrong answer
        for b, r, count in zip(base, rich, expected_counts):
            assert r.value == b.value
            assert r.num_min_cuts() == count
        ratios.append(base_wall / rich_wall)

    relative = float(np.median(ratios))
    records = []
    for variant, walls in samples.items():
        best = min(walls)
        records.append({
            "variant": variant,
            "graph": GRAPH_NAME,
            "kernel": "scalar",
            "executor": "serial",
            "wall_s": round(best, 6),
            "solves": len(graphs),
        })

    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "cactus-all-cuts",
        "headline_metric": "cactus_relative_throughput_median",
        "graph": {"name": GRAPH_NAME, "specs": GRAPH_SPECS, "cycle_n": 32},
        "pairs": PAIRS,
        "min_cut_counts": expected_counts,
        "cactus_relative_throughput_median": round(relative, 4),
        "cactus_relative_throughput_per_pair": [round(r, 4) for r in ratios],
        "records": records,
    }
    validate_bench_payload(payload)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # loose acceptance floor (the gate does the real comparison): building
    # the full cactus must stay within ~100x of the value-only solve
    assert relative >= 0.01, f"cactus overhead blew up: {relative:.4f}"
