"""Figure 2 benchmarks: sequential variants on RHG graphs.

Regenerates the figure's measurement (running time of each sequential
variant on random hyperbolic graphs) at one miniature grid point per
density; ``python -m repro.experiments.figure2`` sweeps the full grid.

Expected shape (paper §4.2): on RHG graphs the bounded and unbounded heap
variants nearly tie (few priorities exceed λ̂), bucket queues are within a
few percent, and HO-CGKLS trails badly.
"""

import pytest

from repro.experiments.harness import make_sequential_variants

VARIANTS = make_sequential_variants()
FAST_VARIANTS = [k for k in VARIANTS if k != "HO-CGKLS"]


@pytest.mark.parametrize("variant", FAST_VARIANTS)
def test_rhg_sparse(benchmark, rhg_small, variant):
    fn = VARIANTS[variant]
    result = benchmark.pedantic(fn, args=(rhg_small, 0), rounds=3, iterations=1)
    benchmark.group = "figure2-rhg-sparse"
    benchmark.extra_info["cut"] = result.value
    benchmark.extra_info["n"] = rhg_small.n
    benchmark.extra_info["m"] = rhg_small.m


@pytest.mark.parametrize("variant", FAST_VARIANTS)
def test_rhg_dense(benchmark, rhg_dense, variant):
    fn = VARIANTS[variant]
    result = benchmark.pedantic(fn, args=(rhg_dense, 0), rounds=3, iterations=1)
    benchmark.group = "figure2-rhg-dense"
    benchmark.extra_info["cut"] = result.value


def test_rhg_hao_orlin(benchmark, rhg_small):
    """The flow-based baseline, benchmarked once (it is the slow end of the
    figure; see the paper's HO-CGKLS series)."""
    fn = VARIANTS["HO-CGKLS"]
    result = benchmark.pedantic(fn, args=(rhg_small, 0), rounds=1, iterations=1)
    benchmark.group = "figure2-rhg-sparse"
    benchmark.extra_info["cut"] = result.value
