"""Table 1 benchmark: the instance pipeline (k-core → component → λ).

Times the full pipeline for one world and records the resulting table rows
in ``extra_info``; ``python -m repro.experiments.table1`` prints the
complete table.
"""

from repro.core.api import minimum_cut
from repro.generators.worlds import DEFAULT_WORLDS, build_instances


def test_table1_pipeline(benchmark):
    spec = DEFAULT_WORLDS[2]  # uk-web-like

    def run():
        rows = []
        for inst in build_instances(spec, scale=0.25):
            lam = minimum_cut(inst.graph, algorithm="noi-viecut", rng=0, compute_side=False).value
            delta = int(inst.graph.weighted_degrees().min())
            rows.append((inst.k, inst.n, inst.m, lam, delta))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.group = "table1-pipeline"
    benchmark.extra_info["rows"] = rows
    assert rows, "pipeline produced no instances"
    for k, n, m, lam, delta in rows:
        assert lam <= delta


def test_kcore_decomposition(benchmark):
    """The Batagelj–Zaversnik O(m) peeling on the largest world."""
    from repro.generators.worlds import build_world
    from repro.graph.kcore import core_numbers

    g = build_world(DEFAULT_WORLDS[4], scale=0.5)  # gsh-host-like
    cores = benchmark.pedantic(core_numbers, args=(g,), rounds=2, iterations=1)
    benchmark.group = "table1-pipeline"
    benchmark.extra_info["degeneracy"] = int(cores.max())
