"""Figure 5 benchmarks: ParCut scaling over worker counts.

Times ParCutλ̂-BQueue (the paper's best parallel variant) at p ∈ {1, 2, 4}
with the deterministic serial executor and records the modeled speedup
(total work / busiest worker) in ``extra_info`` — the load-balance signal
behind the paper's near-linear scaling.  One process-executor round is also
timed for real-parallel wall clock.
"""

import pytest

from repro.core.mincut import parallel_mincut

WORKER_COUNTS = (1, 2, 4)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("pq", ["bstack", "bqueue", "heap"])
def test_parcut_serial(benchmark, web_largest, workers, pq):
    name, g = web_largest

    def run():
        return parallel_mincut(
            g, workers=workers, pq_kind=pq, executor="serial", rng=0, compute_side=False
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.group = f"figure5-parcut-{pq}"
    benchmark.extra_info["instance"] = name
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["modeled_speedup"] = round(
        result.stats.get("modeled_speedup", 1.0), 2
    )
    benchmark.extra_info["cut"] = result.value


def test_parcut_processes(benchmark, web_largest):
    """Real-parallel wall clock at p=4 (fork executor)."""
    name, g = web_largest

    def run():
        return parallel_mincut(
            g, workers=4, pq_kind="bqueue", executor="processes", rng=0, compute_side=False
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.group = "figure5-processes"
    benchmark.extra_info["instance"] = name
    benchmark.extra_info["cut"] = result.value
