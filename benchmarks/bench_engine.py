"""Solver-engine throughput benchmark: one persistent engine vs per-solve calls.

Measures the engine's reason to exist: 50 repeated mixed-size solves
through one warm :class:`~repro.engine.SolverEngine` (persistent worker
pool, resident shared-memory planes, digest-keyed result cache) against
the same 50 solves as independent :func:`~repro.core.mincut.parallel_mincut`
calls.  Like ``bench_kernels.py``, the two sides of each measurement pair
run adjacent in time so shared-runner noise moves both together, and the
headline is the median per-pair ratio.

Three variants land in ``BENCH_engine.json``:

* ``per-solve-parcut`` — the baseline: a fresh solver invocation per item;
* ``engine-warm`` — the engine with its cache on (repeats hit in O(1));
  this is the headline pairing, because repeated solves of recurring
  graphs are exactly the workload the engine is for;
* ``engine-nocache`` — the honest pool-only number (``cache=False``): what
  process/plane reuse alone buys, recorded but not gated.

A correctness cross-check makes throughput unfakeable: every engine result
must equal the per-solve result on the same item.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.mincut import parallel_mincut
from repro.engine import SolverEngine
from repro.generators.gnm import connected_gnm
from repro.observability import BENCH_SCHEMA_VERSION, validate_bench_payload

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: the mixed-size instance pool, cycled to SOLVES requests
GRAPH_SPECS = [
    {"n": 120, "m": 480, "rng": 0, "weights": (1, 9)},
    {"n": 200, "m": 900, "rng": 1, "weights": (1, 9)},
    {"n": 300, "m": 1500, "rng": 2, "weights": (1, 9)},
    {"n": 400, "m": 2000, "rng": 3, "weights": (1, 9)},
    {"n": 500, "m": 2500, "rng": 4, "weights": (1, 9)},
]
GRAPH_NAME = "gnm-mixed-120-500-w1-9"

#: total solve requests per measured pass (each graph recurs SOLVES/5 times)
SOLVES = 50

#: adjacent (per-solve, engine) measurement pairs for the headline median
PAIRS = 3

#: solver configuration shared by both sides of every pair
SOLVE_KWARGS = {"executor": "serial", "compute_side": False, "rng": 0}


def _items(graphs):
    return [graphs[i % len(graphs)] for i in range(SOLVES)]


def test_record_engine_throughput():
    graphs = [connected_gnm(**spec) for spec in GRAPH_SPECS]
    items = _items(graphs)

    # warm-up: first-call numpy/alloc effects land outside every pair
    baseline_values = [
        parallel_mincut(g, **SOLVE_KWARGS).value for g in graphs
    ]

    samples: dict[str, list[float]] = {
        "per-solve-parcut": [], "engine-warm": [], "engine-nocache": [],
    }
    ratios = []
    with SolverEngine(pool_size=2, default_algorithm="parcut") as engine:
        # engine warm-up: export the planes and populate the cache once,
        # so pair 1 measures the steady state the engine is built for
        engine.solve_many(graphs, **SOLVE_KWARGS)

        for _ in range(PAIRS):
            t0 = time.perf_counter()
            base_results = [parallel_mincut(g, **SOLVE_KWARGS) for g in items]
            base_wall = time.perf_counter() - t0
            samples["per-solve-parcut"].append(base_wall)

            t0 = time.perf_counter()
            engine_results = engine.solve_many(items, **SOLVE_KWARGS)
            engine_wall = time.perf_counter() - t0
            samples["engine-warm"].append(engine_wall)

            # throughput may never buy a wrong answer
            for base, eng in zip(base_results, engine_results):
                assert eng.value == base.value
            ratios.append(base_wall / engine_wall)

        t0 = time.perf_counter()
        nocache_results = engine.solve_many(
            [{"graph": g, "cache": False} for g in items], **SOLVE_KWARGS
        )
        samples["engine-nocache"].append(time.perf_counter() - t0)
        for g_idx, res in enumerate(nocache_results):
            assert res.value == baseline_values[g_idx % len(graphs)]

        engine_stats = engine.stats()
    assert engine_stats["cache"]["hits"] >= PAIRS * SOLVES

    speedup = float(np.median(ratios))
    executors = {
        "per-solve-parcut": "serial",
        "engine-warm": "engine-pool",
        "engine-nocache": "engine-pool",
    }
    records = []
    for variant, walls in samples.items():
        best = min(walls)
        records.append({
            "variant": variant,
            "graph": GRAPH_NAME,
            "kernel": "scalar",
            "executor": executors[variant],
            "wall_s": round(best, 6),
            "solves": SOLVES,
            "solves_per_s": round(SOLVES / best, 1),
        })

    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "solver-engine",
        "headline_metric": "engine_speedup_median",
        "graph": {"name": GRAPH_NAME, "specs": GRAPH_SPECS},
        "solves": SOLVES,
        "pairs": PAIRS,
        "engine_speedup_median": round(speedup, 3),
        "engine_speedup_per_pair": [round(r, 3) for r in ratios],
        "records": records,
    }
    validate_bench_payload(payload)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # the acceptance floor; the honest (usually much larger) number is in
    # the JSON — the floor stays low so shared CI runners do not flake
    assert speedup >= 1.5, f"engine throughput regressed: {speedup:.2f}x"
