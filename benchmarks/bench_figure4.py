"""Figure 4 benchmark: the performance-profile matrix.

Times the full variants × instances matrix once and records the resulting
t_best/t_algo profile in ``extra_info`` — the exact series of the paper's
Figure 4, at miniature scale.  Expected shape: NOIλ̂-Heap-VieCut at or near
ratio 1.0 on most instances; HO far below.
"""

from collections import defaultdict

from repro.experiments.harness import make_sequential_variants, run_matrix
from repro.experiments.instances import rhg_instance
from repro.utils.stats import performance_profile


def test_performance_profile(benchmark, web_suite_small):
    variants = make_sequential_variants()
    instances = list(web_suite_small) + [("rhg", rhg_instance(9, 3, 0))]

    def run():
        return run_matrix(variants, instances, seed=0)

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.group = "figure4-profile"

    per_algo: dict[str, dict[str, float]] = defaultdict(dict)
    order: list[str] = []
    for r in records:
        if r.instance not in order:
            order.append(r.instance)
        per_algo[r.algorithm][r.instance] = r.seconds
    profile = performance_profile(
        {a: [per_algo[a].get(i) for i in order] for a in per_algo}
    )
    benchmark.extra_info["profile"] = {a: [round(x, 3) for x in v] for a, v in profile.items()}
