"""Figure 3 benchmarks: sequential variants on web-like k-core instances.

Expected shape (paper §4.2): on hub-heavy graphs the λ̂-bounded variants
beat NOI-HNSS (priority clamping skips hub updates), BStack edges out the
other queues sequentially, and the VieCut-seeded variant wins overall
except where λ ≈ δ makes the seed pointless.
"""

import pytest

from repro.experiments.harness import make_sequential_variants

VARIANTS = make_sequential_variants()
FAST_VARIANTS = [k for k in VARIANTS if k not in ("HO-CGKLS",)]


@pytest.mark.parametrize("variant", FAST_VARIANTS)
def test_web_instances(benchmark, web_suite_small, variant):
    fn = VARIANTS[variant]

    def run_all():
        return [fn(g, 0).value for _, g in web_suite_small]

    values = benchmark.pedantic(run_all, rounds=3, iterations=1)
    benchmark.group = "figure3-web"
    benchmark.extra_info["cuts"] = values
    benchmark.extra_info["instances"] = [name for name, _ in web_suite_small]


def test_web_hao_orlin(benchmark, web_suite_small):
    fn = VARIANTS["HO-CGKLS"]
    name, g = web_suite_small[0]
    result = benchmark.pedantic(fn, args=(g, 0), rounds=1, iterations=1)
    benchmark.group = "figure3-web"
    benchmark.extra_info["cut"] = result.value
    benchmark.extra_info["instance"] = name
