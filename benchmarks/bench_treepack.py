"""NOI-vs-tree-packing crossover benchmark for the ``karger-nlt`` solver.

The point of a second exact algorithm family is different scaling, so the
benchmark measures exactly that: a paired size ladder where each rung runs
``noi-viecut`` and ``karger-nlt`` adjacent in time on the same graph
(shared-runner noise moves both walls together), recording both walls per
rung.  The committed ``BENCH_treepack.json`` is the honest crossover
record — per-rung ``noi_wall / treepack_wall`` ratios chart where the
dense 2-respecting scan stands against the contraction loop.

The headline, ``treepack_relative_throughput_median``, is the median of
those per-rung ratios; the gate watches it the usual way (a drop means
the tree-packing path got slower relative to the solver it diversifies).

A correctness cross-check makes the number unfakeable: both solvers must
report the same λ on every rung, and the treepack run must carry its
packing certificate (``stats["certified"]``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.api import minimum_cut
from repro.generators.gnm import connected_gnm
from repro.observability import BENCH_SCHEMA_VERSION, validate_bench_payload

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_treepack.json"

#: the size ladder: m = 4n keeps density fixed so the rungs chart pure
#: n-scaling, the regime where the O(n·(n+m)) DP and the contraction loop
#: diverge
GRAPH_SPECS = [
    {"n": 64, "m": 256, "rng": 0, "weights": (1, 9)},
    {"n": 128, "m": 512, "rng": 1, "weights": (1, 9)},
    {"n": 192, "m": 768, "rng": 2, "weights": (1, 9)},
    {"n": 256, "m": 1024, "rng": 3, "weights": (1, 9)},
]
GRAPH_NAME = "gnm-64-256-m4n-w1-9"

#: adjacent (noi, treepack) measurement pairs per rung for the median
PAIRS = 3

SOLVE_KWARGS = {"rng": 0}


def test_record_treepack_crossover():
    graphs = [connected_gnm(**spec) for spec in GRAPH_SPECS]

    # warm-up outside every measured pair
    for g in graphs:
        minimum_cut(g, "noi-viecut", **SOLVE_KWARGS)
        minimum_cut(g, "karger-nlt", **SOLVE_KWARGS)

    records = []
    ratios = []
    crossover = []
    for spec, g in zip(GRAPH_SPECS, graphs):
        noi_walls, tp_walls = [], []
        for _ in range(PAIRS):
            t0 = time.perf_counter()
            noi = minimum_cut(g, "noi-viecut", **SOLVE_KWARGS)
            noi_walls.append(time.perf_counter() - t0)

            t0 = time.perf_counter()
            tp = minimum_cut(g, "karger-nlt", **SOLVE_KWARGS)
            tp_walls.append(time.perf_counter() - t0)

            # two exact families must agree, and the treepack answer must
            # carry its packing certificate — else the wall is meaningless
            assert tp.value == noi.value, (spec, tp.value, noi.value)
            assert tp.stats["certified"], spec
        rung_ratio = float(np.median(noi_walls) / np.median(tp_walls))
        ratios.append(rung_ratio)
        crossover.append({"n": spec["n"], "m": spec["m"],
                          "noi_over_treepack": round(rung_ratio, 4)})
        for variant, walls in (("noi-viecut", noi_walls),
                               ("karger-nlt", tp_walls)):
            records.append({
                "variant": variant,
                "graph": f"gnm-{spec['n']}-{spec['m']}",
                "kernel": "scalar",
                "executor": "serial",
                "wall_s": round(min(walls), 6),
                "n": spec["n"],
                "m": spec["m"],
            })

    headline = float(np.median(ratios))
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "treepack-crossover",
        "headline_metric": "treepack_relative_throughput_median",
        "graph": {"name": GRAPH_NAME, "specs": GRAPH_SPECS},
        "pairs": PAIRS,
        "treepack_relative_throughput_median": round(headline, 4),
        "crossover_curve": crossover,
        "records": records,
    }
    validate_bench_payload(payload)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # loose acceptance floor (the gate does the real comparison): treepack
    # must stay within ~100x of NOI on the charted ladder
    assert headline >= 0.01, f"treepack fell off the chart: {headline:.4f}"
