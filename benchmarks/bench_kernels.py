"""CAPFOREST kernel benchmarks: scalar reference vs vector vs compiled tier.

Two jobs in one file.  The ``benchmark``-fixture tests feed the ordinary
pytest-benchmark tables (``--benchmark-only``), one group per executor.  On
top of that, ``test_record_kernel_trajectory`` measures the kernels in
*interleaved tuples* — scalar/vector[/compiled] per round, with per-round
throughput ratios and the median taken across rounds — and writes the
result to ``BENCH_parcut.json`` at the repository root.  Interleaving is
deliberate: wall-clock noise on shared machines dwarfs the effect size, but
it moves every kernel of a round together, so the paired ratio is stable
where the raw timings are not.

The compiled tier is timed only when numba is importable — pure-Python
forcing is a parity device, not a performance tier — so a regeneration on a
numba-free machine carries the previous record's ``compiled_*`` headline
forward (marked ``compiled_source: carried-forward``) instead of posting a
meaningless number; the CI ``compiled`` job is where fresh compiled numbers
come from.

The trajectory test also re-checks the observational-equivalence contract
(same λ̂, same mark count, identical union–find labels) so a kernel that got
fast by dropping marks can never post a number.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.capforest import KERNELS, capforest
from repro.core.parallel_capforest import parallel_capforest
from repro.generators.gnm import connected_gnm
from repro.kernels import KERNEL_CROSSOVERS, NUMBA_AVAILABLE, warmup
from repro.observability import BENCH_SCHEMA_VERSION, validate_bench_payload

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parcut.json"

#: the acceptance instance: connected GNM, n=5000, m=40000, weighted
GRAPH_SPEC = {"n": 5000, "m": 40_000, "rng": 0, "weights": (1, 9)}
GRAPH_NAME = "gnm-5000-40000-w1-9"

#: interleaved measurement rounds for the trajectory record
PAIRS = 11

#: kernels actually *timed* in this environment (compiled only under numba)
TIMED_KERNELS = tuple(
    k for k in KERNELS if k != "compiled" or NUMBA_AVAILABLE
)

#: acceptance floor for the compiled tier when it is measured
COMPILED_FLOOR = 2.0


@pytest.fixture(scope="module")
def kernel_graph():
    return connected_gnm(
        GRAPH_SPEC["n"], GRAPH_SPEC["m"], rng=GRAPH_SPEC["rng"],
        weights=GRAPH_SPEC["weights"],
    )


def _run_sequential(g, kernel, lam=None):
    # λ̂ is an *input* to CAPFOREST (the current cut upper bound); callers
    # that time the kernel pass it in so the degree scan is not charged to
    # either kernel's clock
    if lam is None:
        lam = g.min_weighted_degree()[1]
    return capforest(g, lam, pq_kind="bqueue", rng=0, kernel=kernel)


def _run_processes(g, kernel):
    lam = g.min_weighted_degree()[1]
    return parallel_capforest(
        g, lam, workers=4, executor="processes", rng=0, kernel=kernel, timeout=120.0
    )


@pytest.mark.parametrize("kernel", TIMED_KERNELS)
def test_capforest_kernel_sequential(benchmark, kernel_graph, kernel):
    if kernel == "compiled":
        warmup()  # JIT compilation must never be on the timed path
    lam = kernel_graph.min_weighted_degree()[1]
    res = benchmark.pedantic(
        lambda: _run_sequential(kernel_graph, kernel, lam), rounds=3, iterations=1
    )
    benchmark.group = "capforest-kernel-sequential"
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["edges_scanned"] = res.edges_scanned


@pytest.mark.parametrize("kernel", TIMED_KERNELS)
def test_capforest_kernel_processes(benchmark, kernel_graph, kernel):
    res = benchmark.pedantic(
        lambda: _run_processes(kernel_graph, kernel), rounds=2, iterations=1
    )
    benchmark.group = "capforest-kernel-processes"
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["start_method"] = res.start_method


def _prior_compiled_headline() -> dict:
    """The committed record's compiled headline, for carry-forward."""
    try:
        prior = json.loads(BENCH_PATH.read_text())
    except (OSError, ValueError):
        return {}
    out = {}
    for key in ("compiled_over_vector_speedup_median",
                "compiled_over_vector_speedup_per_pair"):
        if key in prior:
            out[key] = prior[key]
    return out


def test_record_kernel_trajectory(kernel_graph):
    g = kernel_graph
    lam = g.min_weighted_degree()[1]

    if "compiled" in TIMED_KERNELS:
        warmup()  # pay JIT compilation before any timed run

    # warm-up (first-call numpy/alloc effects hit whichever kernel runs first)
    for kern in TIMED_KERNELS:
        _run_sequential(g, kern, lam)

    samples: dict[str, list[dict]] = {k: [] for k in TIMED_KERNELS}
    ratios: dict[str, list[float]] = {"vector": [], "compiled": []}
    results = {}
    for _ in range(PAIRS):
        pair_rate = {}
        for kern in TIMED_KERNELS:
            # best of two back-to-back runs: scheduler noise bursts on shared
            # machines last about one run, so the min absorbs them without
            # biasing either kernel (both get the same treatment, adjacent
            # in time)
            wall = float("inf")
            for _rep in range(2):
                t0 = time.perf_counter()
                res = _run_sequential(g, kern, lam)
                wall = min(wall, time.perf_counter() - t0)
            rate = res.edges_scanned / wall
            samples[kern].append({"wall_s": wall, "edges_scanned_per_s": rate})
            pair_rate[kern] = rate
            results[kern] = res
        ratios["vector"].append(pair_rate["vector"] / pair_rate["scalar"])
        if "compiled" in pair_rate:
            ratios["compiled"].append(pair_rate["compiled"] / pair_rate["vector"])

    # observational equivalence: a kernel may only be faster, never different
    a = results["scalar"]
    for kern in TIMED_KERNELS[1:]:
        b = results[kern]
        assert a.lambda_hat == b.lambda_hat, kern
        assert a.n_marked == b.n_marked, kern
        assert a.scan_order == b.scan_order, kern
        assert np.array_equal(a.uf.labels(), b.uf.labels()), kern

    speedup = float(np.median(ratios["vector"]))
    records = []
    for kern in TIMED_KERNELS:
        best = min(samples[kern], key=lambda s: s["wall_s"])
        records.append({
            "variant": "capforest",
            "graph": GRAPH_NAME,
            "kernel": kern,
            "executor": "sequential",
            "wall_s": round(best["wall_s"], 6),
            "edges_scanned": results[kern].edges_scanned,
            "edges_scanned_per_s": round(best["edges_scanned_per_s"]),
            "lambda_hat": results[kern].lambda_hat,
            "n_marked": results[kern].n_marked,
        })

    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "capforest-kernels",
        "headline_metric": "vector_over_scalar_speedup_median",
        "graph": {"name": GRAPH_NAME, **{k: v for k, v in GRAPH_SPEC.items()}},
        "pairs": PAIRS,
        "vector_over_scalar_speedup_median": round(speedup, 3),
        "vector_over_scalar_speedup_per_pair": [
            round(r, 3) for r in ratios["vector"]
        ],
        # the per-tier batching thresholds in force for these numbers
        "batch_crossovers": KERNEL_CROSSOVERS,
    }
    if ratios["compiled"]:
        compiled_speedup = float(np.median(ratios["compiled"]))
        payload["compiled_over_vector_speedup_median"] = round(compiled_speedup, 3)
        payload["compiled_over_vector_speedup_per_pair"] = [
            round(r, 3) for r in ratios["compiled"]
        ]
        payload["compiled_source"] = "measured (numba present)"
    else:
        # keep the committed headline stable on numba-free regenerations —
        # dropping the key would make the compiled CI job's gate baseline
        # vanish whenever a numba-free machine refreshed the record
        carried = _prior_compiled_headline()
        payload.update(carried)
        payload["compiled_source"] = (
            "carried-forward (numba unavailable in this run; measured by the "
            "CI compiled job)" if carried else
            "unmeasured (numba unavailable and no prior record)"
        )
    payload["records"] = records
    validate_bench_payload(payload)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # sanity floors, deliberately below the paired-median headlines so shared
    # CI runners do not flake; the honest numbers are in the JSON
    assert speedup >= 1.5, f"vector kernel regressed: {speedup:.2f}x"
    if ratios["compiled"]:
        compiled_speedup = float(np.median(ratios["compiled"]))
        assert compiled_speedup >= COMPILED_FLOOR, (
            f"compiled tier below the {COMPILED_FLOOR}x acceptance floor: "
            f"{compiled_speedup:.2f}x over vector"
        )
