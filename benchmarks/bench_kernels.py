"""CAPFOREST kernel benchmarks: scalar reference vs vectorized batch kernel.

Two jobs in one file.  The ``benchmark``-fixture tests feed the ordinary
pytest-benchmark tables (``--benchmark-only``), one group per executor.  On
top of that, ``test_record_kernel_trajectory`` measures the two kernels in
*interleaved pairs* — scalar/vector/scalar/vector … with a per-pair
throughput ratio and the median taken across pairs — and writes the result
to ``BENCH_parcut.json`` at the repository root.  Interleaved pairing is
deliberate: wall-clock noise on shared machines dwarfs the effect size, but
it moves both kernels of a pair together, so the paired ratio is stable
where the raw timings are not.

The trajectory test also re-checks the observational-equivalence contract
(same λ̂, same mark count, identical union–find labels) so a kernel that got
fast by dropping marks can never post a number.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.capforest import KERNELS, capforest
from repro.core.parallel_capforest import parallel_capforest
from repro.generators.gnm import connected_gnm
from repro.observability import BENCH_SCHEMA_VERSION, validate_bench_payload

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parcut.json"

#: the acceptance instance: connected GNM, n=5000, m=40000, weighted
GRAPH_SPEC = {"n": 5000, "m": 40_000, "rng": 0, "weights": (1, 9)}
GRAPH_NAME = "gnm-5000-40000-w1-9"

#: interleaved scalar/vector measurement pairs for the trajectory record
PAIRS = 11


@pytest.fixture(scope="module")
def kernel_graph():
    return connected_gnm(
        GRAPH_SPEC["n"], GRAPH_SPEC["m"], rng=GRAPH_SPEC["rng"],
        weights=GRAPH_SPEC["weights"],
    )


def _run_sequential(g, kernel, lam=None):
    # λ̂ is an *input* to CAPFOREST (the current cut upper bound); callers
    # that time the kernel pass it in so the degree scan is not charged to
    # either kernel's clock
    if lam is None:
        lam = g.min_weighted_degree()[1]
    return capforest(g, lam, pq_kind="bqueue", rng=0, kernel=kernel)


def _run_processes(g, kernel):
    lam = g.min_weighted_degree()[1]
    return parallel_capforest(
        g, lam, workers=4, executor="processes", rng=0, kernel=kernel, timeout=120.0
    )


@pytest.mark.parametrize("kernel", KERNELS)
def test_capforest_kernel_sequential(benchmark, kernel_graph, kernel):
    lam = kernel_graph.min_weighted_degree()[1]
    res = benchmark.pedantic(
        lambda: _run_sequential(kernel_graph, kernel, lam), rounds=3, iterations=1
    )
    benchmark.group = "capforest-kernel-sequential"
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["edges_scanned"] = res.edges_scanned


@pytest.mark.parametrize("kernel", KERNELS)
def test_capforest_kernel_processes(benchmark, kernel_graph, kernel):
    res = benchmark.pedantic(
        lambda: _run_processes(kernel_graph, kernel), rounds=2, iterations=1
    )
    benchmark.group = "capforest-kernel-processes"
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["start_method"] = res.start_method


def test_record_kernel_trajectory(kernel_graph):
    g = kernel_graph
    lam = g.min_weighted_degree()[1]

    # warm-up (first-call numpy/alloc effects hit whichever kernel runs first)
    for kern in KERNELS:
        _run_sequential(g, kern, lam)

    samples: dict[str, list[dict]] = {k: [] for k in KERNELS}
    ratios = []
    results = {}
    for _ in range(PAIRS):
        pair_rate = {}
        for kern in KERNELS:
            # best of two back-to-back runs: scheduler noise bursts on shared
            # machines last about one run, so the min absorbs them without
            # biasing either kernel (both get the same treatment, adjacent
            # in time)
            wall = float("inf")
            for _rep in range(2):
                t0 = time.perf_counter()
                res = _run_sequential(g, kern, lam)
                wall = min(wall, time.perf_counter() - t0)
            rate = res.edges_scanned / wall
            samples[kern].append({"wall_s": wall, "edges_scanned_per_s": rate})
            pair_rate[kern] = rate
            results[kern] = res
        ratios.append(pair_rate["vector"] / pair_rate["scalar"])

    # observational equivalence: a kernel may only be faster, never different
    a, b = results["scalar"], results["vector"]
    assert a.lambda_hat == b.lambda_hat
    assert a.n_marked == b.n_marked
    assert a.scan_order == b.scan_order
    assert np.array_equal(a.uf.labels(), b.uf.labels())

    speedup = float(np.median(ratios))
    records = []
    for kern in KERNELS:
        best = min(samples[kern], key=lambda s: s["wall_s"])
        records.append({
            "variant": "capforest",
            "graph": GRAPH_NAME,
            "kernel": kern,
            "executor": "sequential",
            "wall_s": round(best["wall_s"], 6),
            "edges_scanned": results[kern].edges_scanned,
            "edges_scanned_per_s": round(best["edges_scanned_per_s"]),
            "lambda_hat": results[kern].lambda_hat,
            "n_marked": results[kern].n_marked,
        })

    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "capforest-kernels",
        "graph": {"name": GRAPH_NAME, **{k: v for k, v in GRAPH_SPEC.items()}},
        "pairs": PAIRS,
        "vector_over_scalar_speedup_median": round(speedup, 3),
        "vector_over_scalar_speedup_per_pair": [round(r, 3) for r in ratios],
        "records": records,
    }
    validate_bench_payload(payload)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # sanity floor, deliberately below the paired-median headline so shared
    # CI runners do not flake the job; the honest number is in the JSON
    assert speedup >= 1.5, f"vector kernel regressed: {speedup:.2f}x"
