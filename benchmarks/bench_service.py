"""Service load benchmark: the HTTP front end under three traffic mixes.

Drives a real :class:`~repro.service.server.MinCutService` on a real
socket (via the in-process :class:`~repro.service.testing.ServiceThread`
harness) with the load shapes the ISSUE names:

* ``steady-uncached`` — many small graphs, ``cache=False``, moderate
  concurrency: the honest cost of the HTTP/JSON/admission path per solve.
  This is also the **paired** side of the headline metric: each pass is
  preceded, adjacent in time, by the same workload pushed straight into
  the same engine via :meth:`SolverEngine.solve_many` — so the headline
  ``service_relative_throughput_median`` (service wall / direct wall,
  inverted to higher-is-better) is a machine-independent overhead ratio,
  not a raw rps number that flakes on shared CI runners.
* ``steady-hot`` — the same graphs replayed with the result cache on:
  hot repeats should be dominated by wire overhead, not solving.
* ``heavy`` — a few large graphs at low concurrency.
* ``overload`` — concurrency far above a deliberately tiny admission
  budget, with the budget pre-occupied: the service must *shed* (429 +
  ``Retry-After``), never queue unboundedly; the shed rate is recorded.

Latency percentiles (p50/p99) and throughput land per-variant in
``BENCH_service.json`` under the shared bench-record schema, gated in CI
on the headline ratio with the standard warn-then-fail tolerances.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.generators.gnm import connected_gnm
from repro.observability import BENCH_SCHEMA_VERSION, validate_bench_payload
from repro.service import ServiceConfig, fire_concurrent, graph_payload
from repro.service.testing import ServiceThread

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: the small-graph pool for the steady mixes (cycled to SOLVES requests)
SMALL_SPECS = [
    {"n": 60, "m": 220, "rng": 0, "weights": (1, 9)},
    {"n": 90, "m": 340, "rng": 1, "weights": (1, 9)},
    {"n": 120, "m": 460, "rng": 2, "weights": (1, 9)},
    {"n": 150, "m": 600, "rng": 3, "weights": (1, 9)},
]

#: the few-huge-graphs pool for the heavy mix
HEAVY_SPECS = [
    {"n": 700, "m": 3500, "rng": 10, "weights": (1, 9)},
    {"n": 900, "m": 4500, "rng": 11, "weights": (1, 9)},
]

GRAPH_NAME = "gnm-service-mix-60-900-w1-9"

#: requests per steady pass; each small graph recurs SOLVES/4 times
SOLVES = 32

#: adjacent (direct-engine, service) pairs for the headline median
PAIRS = 3

SOLVE_KWARGS = {"executor": "serial", "compute_side": False, "rng": 0}

#: the overload mix: budget of 2 units, pre-occupied, then this many shots
OVERLOAD_SHOTS = 24
OVERLOAD_CONCURRENCY = 12


def _percentiles(latencies: list[float]) -> dict:
    arr = np.asarray(latencies, dtype=np.float64)
    return {
        "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 3),
    }


def _solve_requests(graphs, *, cache: bool, repeat: int) -> list[dict]:
    payloads = [graph_payload(g) for g in graphs]
    return [
        {"path": "/v1/solve",
         "payload": {"graph": payloads[i % len(payloads)], "cache": cache,
                     "kwargs": SOLVE_KWARGS}}
        for i in range(repeat)
    ]


def _run_mix(port: int, requests: list[dict], *, concurrency: int):
    t0 = time.perf_counter()
    records = fire_concurrent("127.0.0.1", port, requests,
                              concurrency=concurrency, timeout=120.0)
    wall = time.perf_counter() - t0
    assert len(records) == len(requests)
    return wall, records


def _record(variant: str, wall: float, records: list[dict], *,
            executor: str, extra: dict | None = None) -> dict:
    ok = [r for r in records if r["status"] == 200]
    entry = {
        "variant": variant,
        "graph": GRAPH_NAME,
        "kernel": "scalar",
        "executor": executor,
        "wall_s": round(wall, 6),
        "requests": len(records),
        "ok": len(ok),
        "requests_per_s": round(len(records) / wall, 1),
        **_percentiles([r["latency_s"] for r in records]),
    }
    entry.update(extra or {})
    return entry


def test_record_service_load():
    small = [connected_gnm(**spec) for spec in SMALL_SPECS]
    heavy = [connected_gnm(**spec) for spec in HEAVY_SPECS]
    expected = {}

    records_out = []
    ratios = []
    with ServiceThread(
        engine_kwargs={"pool_size": 2, "default_algorithm": "parcut"},
        config=ServiceConfig(max_inflight=32, per_client_inflight=32),
    ) as st:
        engine = st.engine
        # warm-up both sides: planes exported, workers warm, numpy loaded
        for g, res in zip(small, engine.solve_many(small, **SOLVE_KWARGS)):
            expected[g.n] = res.value

        uncached = [{"graph": g, "cache": False} for g in
                    (small[i % len(small)] for i in range(SOLVES))]
        wire = _solve_requests(small, cache=False, repeat=SOLVES)

        # -- steady-uncached, paired against the direct engine ------------
        direct_walls, service_walls = [], []
        last_records = None
        for _ in range(PAIRS):
            t0 = time.perf_counter()
            direct_results = engine.solve_many(uncached, **SOLVE_KWARGS)
            direct_walls.append(time.perf_counter() - t0)

            wall, recs = _run_mix(st.port, wire, concurrency=4)
            service_walls.append(wall)
            last_records = recs

            # throughput may never buy a wrong answer: every HTTP result
            # must equal the direct engine's on the same graph
            for rec, direct in zip(recs, direct_results):
                assert rec["status"] == 200, rec
                assert rec["body"]["value"] == direct.value
            ratios.append(direct_walls[-1] / wall)

        records_out.append(_record(
            "steady-uncached", min(service_walls), last_records,
            executor="http-pool",
        ))
        records_out.append({
            "variant": "direct-engine-uncached",
            "graph": GRAPH_NAME,
            "kernel": "scalar",
            "executor": "engine-pool",
            "wall_s": round(min(direct_walls), 6),
            "requests": SOLVES,
            "requests_per_s": round(SOLVES / min(direct_walls), 1),
        })

        # -- steady-hot: repeats served from the result cache --------------
        hot = _solve_requests(small, cache=True, repeat=SOLVES)
        _run_mix(st.port, hot, concurrency=4)  # populate
        hot_wall, hot_recs = _run_mix(st.port, hot, concurrency=4)
        for rec in hot_recs:
            assert rec["status"] == 200
            assert rec["body"]["value"] == expected[rec["body"]["n"]]
        records_out.append(_record("steady-hot", hot_wall, hot_recs,
                                   executor="http-pool"))

        # -- heavy: few huge graphs, low concurrency -----------------------
        heavy_reqs = _solve_requests(heavy, cache=False, repeat=len(heavy) * 2)
        heavy_wall, heavy_recs = _run_mix(st.port, heavy_reqs, concurrency=2)
        assert all(r["status"] == 200 for r in heavy_recs)
        records_out.append(_record("heavy", heavy_wall, heavy_recs,
                                   executor="http-pool"))

    # -- overload: a tiny budget, pre-occupied, then a burst ---------------
    with ServiceThread(
        engine_kwargs={"pool_size": 1, "max_recycles": 8},
        config=ServiceConfig(max_inflight=2, per_client_inflight=2,
                             allow_test_faults=True, drain_grace_s=2.0),
    ) as st:
        occupy = [
            {"path": "/v1/solve",
             "payload": {"graph": graph_payload(small[0]), "cache": False,
                         "timeout_ms": 3_000,
                         "kwargs": {"_test_fault": {
                             "test_fault": "hang", "sleep_seconds": 60}}}}
            for _ in range(2)
        ]
        import threading

        occupiers = [
            threading.Thread(target=fire_concurrent,
                             args=("127.0.0.1", st.port, [req]),
                             kwargs={"concurrency": 1, "timeout": 30.0})
            for req in occupy
        ]
        for t in occupiers:
            t.start()
        deadline = time.monotonic() + 5.0
        while (st.service.admission.inflight < 2
               and time.monotonic() < deadline):
            time.sleep(0.01)

        burst = _solve_requests(small, cache=False, repeat=OVERLOAD_SHOTS)
        burst_wall, burst_recs = _run_mix(st.port, burst,
                                          concurrency=OVERLOAD_CONCURRENCY)
        for t in occupiers:
            t.join()

        shed = [r for r in burst_recs if r["status"] == 429]
        # the budget was fully occupied: the burst must shed, and every
        # shed must carry the retry/backpressure contract
        assert shed, "overloaded service never shed a request"
        for rec in shed:
            assert rec["retry_after"] is not None
            assert rec["body"]["shed_reason"] in ("global_inflight",
                                                  "client_queue")
            assert "queue_depth" in rec["body"]
        shed_rate = len(shed) / len(burst_recs)
        records_out.append(_record(
            "overload", burst_wall, burst_recs, executor="http-pool",
            extra={"shed": len(shed), "shed_rate": round(shed_rate, 4)},
        ))

    headline = float(np.median(ratios))
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "mincut-service",
        "headline_metric": "service_relative_throughput_median",
        "graph": {"name": GRAPH_NAME,
                  "small_specs": SMALL_SPECS, "heavy_specs": HEAVY_SPECS},
        "solves": SOLVES,
        "pairs": PAIRS,
        "service_relative_throughput_median": round(headline, 4),
        "service_relative_throughput_per_pair": [round(r, 4) for r in ratios],
        "records": records_out,
    }
    validate_bench_payload(payload)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # loose floor: the HTTP path on small graphs costs JSON encode/decode
    # per request, so it is slower than the in-process engine — but it must
    # stay within an order of magnitude or the front end is broken
    assert headline >= 0.05, (
        f"service overhead blew up: {headline:.3f}x of direct engine"
    )
