"""Session-scoped instance fixtures shared by the benchmark files.

Benchmarks use miniature instances (the experiment scripts in
``repro.experiments`` regenerate the full-scale series); every graph is
generated once per session.
"""

from __future__ import annotations

import pytest

from repro.experiments.instances import rhg_instance, web_instances


@pytest.fixture(scope="session")
def rhg_small():
    """RHG n=2^10, deg≈2^4 — one Figure 2 grid point."""
    return rhg_instance(10, 4, 0)


@pytest.fixture(scope="session")
def rhg_dense():
    """RHG n=2^10, deg≈2^5 — the denser regime where VieCut seeding wins."""
    return rhg_instance(10, 5, 0)


@pytest.fixture(scope="session")
def web_suite_small():
    """Three representative web-like k-core instances."""
    insts = web_instances(scale=0.25)
    picked = {}
    for name, g in insts:
        world = name.rsplit("-", 1)[0]
        if world not in picked:
            picked[world] = (name, g)
    return list(picked.values())[:3]


@pytest.fixture(scope="session")
def web_largest():
    """The largest small-scale suite instance (Figure 5 input)."""
    from repro.experiments.instances import largest_web_instances

    return largest_web_instances(1, scale=0.35)[0]
