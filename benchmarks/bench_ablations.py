"""Ablation benchmarks for the paper's individual design choices.

Each group isolates one claim from §3:

* **pq-operations** — the three queue implementations under the CAPFOREST
  access pattern (many raises near the bound, pops interleaved): §3.1.3.
* **bounded-vs-unbounded** — one CAPFOREST pass with and without the
  Lemma 3.1 clamp on a hub-heavy graph: §3.1.2.
* **viecut-seed** — NOI with vs without the VieCut bound on a dense RHG
  (the regime where the paper reports up to 4× from the seed): §3.1.1.
* **contraction** — sequential vs chunked-parallel contraction: §3.2.
"""

import numpy as np
import pytest

from repro.core.capforest import capforest
from repro.core.noi import noi_mincut
from repro.datastructures import make_pq
from repro.generators import chung_lu
from repro.graph.contract import contract_by_labels
from repro.graph.parallel_contract import parallel_contract_by_labels
from repro.viecut.viecut import viecut


@pytest.fixture(scope="module")
def hub_graph():
    """Power-law graph with strong hubs: the bounded-queue showcase."""
    return chung_lu(4000, 24, gamma=2.1, communities=16, mu=0.5, rng=0)


@pytest.fixture(scope="module")
def pq_workload():
    """A recorded CAPFOREST-like op sequence: (vertex, priority) raises."""
    rng = np.random.default_rng(1)
    n = 20_000
    ops = []
    for _ in range(120_000):
        ops.append((int(rng.integers(n)), int(rng.integers(0, 64))))
    return n, ops


@pytest.mark.parametrize("kind", ["bstack", "bqueue", "heap"])
def test_pq_operations(benchmark, pq_workload, kind):
    n, ops = pq_workload

    def run():
        pq = make_pq(kind, n, bound=32)
        insert = pq.insert_or_raise
        pop = pq.pop_max
        for i, (v, p) in enumerate(ops):
            insert(v, p)
            if i % 4 == 3:
                pop()
        while len(pq):
            pop()
        return pq.stats.pops

    pops = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.group = "ablation-pq-operations"
    benchmark.extra_info["pops"] = pops


@pytest.mark.parametrize("bounded", [True, False], ids=["bounded", "unbounded"])
def test_capforest_bound(benchmark, hub_graph, bounded):
    _, deg0 = hub_graph.min_weighted_degree()

    def run():
        return capforest(
            hub_graph, deg0, pq_kind="heap", bounded=bounded, start=0
        )

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.group = "ablation-bounded-queue"
    benchmark.extra_info["pq_updates"] = res.pq_stats.updates
    benchmark.extra_info["pq_skipped"] = res.pq_stats.skipped_updates


@pytest.mark.parametrize("seeded", [True, False], ids=["viecut-seed", "no-seed"])
def test_viecut_seed(benchmark, seeded):
    from repro.experiments.instances import rhg_instance

    g = rhg_instance(10, 5, 0)

    def run():
        rng = np.random.default_rng(0)
        if seeded:
            seed_cut = viecut(g, rng=rng)
            return noi_mincut(
                g, initial_bound=seed_cut.value, rng=rng, compute_side=False
            )
        return noi_mincut(g, rng=rng, compute_side=False)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.group = "ablation-viecut-seed"
    benchmark.extra_info["rounds"] = res.stats["rounds"]
    benchmark.extra_info["cut"] = res.value


@pytest.mark.parametrize("workers", [1, 4])
def test_contraction(benchmark, hub_graph, workers):
    labels = (np.arange(hub_graph.n) // 7).astype(np.int64)

    def run():
        if workers == 1:
            return contract_by_labels(hub_graph, labels)[0]
        return parallel_contract_by_labels(hub_graph, labels, workers=workers)[0]

    g = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.group = "ablation-contraction"
    benchmark.extra_info["contracted_n"] = g.n
