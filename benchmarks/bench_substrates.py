"""Substrate benchmarks: the infrastructure under the minimum-cut solvers.

Not a paper figure — these isolate the cost of each building block so a
regression in one shows up independently of the full-solver benchmarks:
generators, CSR construction, k-core peeling, connected components,
contraction, reverse-arc computation, the NI sparse certificate, and the
Gomory–Hu tree.
"""

import numpy as np
import pytest

from repro.baselines.gomory_hu import gomory_hu_tree
from repro.baselines.push_relabel import reverse_arcs
from repro.core.certificates import sparse_certificate
from repro.generators import chung_lu, connected_gnm, gnm, rhg, rmat
from repro.graph import connected_components, core_numbers, from_edges, k_core
from repro.graph.contract import contract_by_labels


@pytest.fixture(scope="module")
def medium_graph():
    return connected_gnm(5000, 40_000, rng=0, weights=(1, 8))


class TestGenerators:
    def test_gen_gnm(self, benchmark):
        benchmark.pedantic(lambda: gnm(5000, 40_000, rng=1), rounds=3, iterations=1)
        benchmark.group = "substrate-generators"

    def test_gen_rmat(self, benchmark):
        benchmark.pedantic(lambda: rmat(12, 16, rng=1), rounds=3, iterations=1)
        benchmark.group = "substrate-generators"

    def test_gen_chung_lu(self, benchmark):
        benchmark.pedantic(
            lambda: chung_lu(4096, 16, communities=16, rng=1), rounds=3, iterations=1
        )
        benchmark.group = "substrate-generators"

    def test_gen_rhg(self, benchmark):
        benchmark.pedantic(lambda: rhg(2048, 16, rng=1), rounds=2, iterations=1)
        benchmark.group = "substrate-generators"


class TestGraphOps:
    def test_csr_construction(self, benchmark):
        rng = np.random.default_rng(0)
        us = rng.integers(0, 5000, size=40_000)
        vs = rng.integers(0, 5000, size=40_000)
        benchmark.pedantic(lambda: from_edges(5000, us, vs), rounds=3, iterations=1)
        benchmark.group = "substrate-graph-ops"

    def test_connected_components(self, benchmark, medium_graph):
        benchmark.pedantic(lambda: connected_components(medium_graph), rounds=3, iterations=1)
        benchmark.group = "substrate-graph-ops"

    def test_core_numbers(self, benchmark, medium_graph):
        benchmark.pedantic(lambda: core_numbers(medium_graph), rounds=2, iterations=1)
        benchmark.group = "substrate-graph-ops"

    def test_k_core_extraction(self, benchmark, medium_graph):
        benchmark.pedantic(lambda: k_core(medium_graph, 8), rounds=3, iterations=1)
        benchmark.group = "substrate-graph-ops"

    def test_contraction(self, benchmark, medium_graph):
        labels = (np.arange(medium_graph.n) // 5).astype(np.int64)
        benchmark.pedantic(
            lambda: contract_by_labels(medium_graph, labels), rounds=3, iterations=1
        )
        benchmark.group = "substrate-graph-ops"

    def test_reverse_arcs(self, benchmark, medium_graph):
        benchmark.pedantic(lambda: reverse_arcs(medium_graph), rounds=3, iterations=1)
        benchmark.group = "substrate-graph-ops"


class TestExtensions:
    def test_sparse_certificate(self, benchmark, medium_graph):
        cert = benchmark.pedantic(
            lambda: sparse_certificate(medium_graph, 8), rounds=2, iterations=1
        )
        benchmark.group = "substrate-extensions"
        benchmark.extra_info["certificate_edges"] = cert.m

    def test_gomory_hu_tree(self, benchmark):
        g = connected_gnm(60, 300, rng=2, weights=(1, 8))
        tree = benchmark.pedantic(lambda: gomory_hu_tree(g), rounds=1, iterations=1)
        benchmark.group = "substrate-extensions"
        benchmark.extra_info["global_min_cut"] = tree.global_min_cut()[0]
