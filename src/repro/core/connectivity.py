"""Connectivity applications built on the minimum-cut solver.

Two consumers of exact minimum cuts that the paper's introduction motivates
(network reliability, subroutine use):

* :func:`edge_connectivity` — λ(G) as a number (the "edge connectivity"
  framing of §1).
* :func:`k_edge_connected_subgraphs` — maximal vertex sets that cannot be
  separated by fewer than k edge deletions: recursively split the graph
  along any cut of capacity < k found by the exact solver.  This is the
  network-reliability decomposition: components that survive any k-1 link
  failures.
* :func:`enumerate_minimum_cuts` — *all* minimum cuts of a small graph
  (exhaustive; the substrate for studying cut structure, and the ground
  truth for tests).
"""

from __future__ import annotations

import numpy as np

from ..graph.components import connected_components, induced_subgraph
from ..graph.csr import Graph
from .api import minimum_cut


def edge_connectivity(graph: Graph, **kwargs) -> int:
    """λ(G): the weight of a minimum cut (0 for disconnected graphs)."""
    if graph.n < 2:
        raise ValueError("edge connectivity needs at least 2 vertices")
    kwargs.setdefault("compute_side", False)
    return minimum_cut(graph, **kwargs).value


def k_edge_connected_subgraphs(
    graph: Graph, k: int, *, rng: np.random.Generator | int | None = None
) -> list[list[int]]:
    """Maximal vertex groups whose *induced subgraph* is k-edge-connected
    (capacity semantics on weighted graphs: removing less than k capacity
    cannot disconnect a group's induced subgraph).

    Recursively: if the (sub)graph has a cut of capacity < k, split along it
    and recurse on both sides; otherwise the whole component is one group —
    the classic decomposition, networkx's ``k_edge_subgraphs`` semantics.
    Singleton vertices are k-edge-connected by convention.

    Note this is *subgraph* connectivity: for connectivity measured in the
    original graph (``k_edge_components`` semantics) the groups can be
    coarser, because two vertices may be k-connected through paths that
    leave their group.

    Returns the groups as sorted vertex lists, sorted by first member.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    result: list[list[int]] = []
    # stack of (subgraph, original ids)
    stack: list[tuple[Graph, np.ndarray]] = [(graph, np.arange(graph.n, dtype=np.int64))]
    while stack:
        g, ids = stack.pop()
        if g.n == 1:
            result.append([int(ids[0])])
            continue
        ncomp, comp_labels = connected_components(g)
        if ncomp > 1:
            for c in range(ncomp):
                members = np.flatnonzero(comp_labels == c)
                sub, sub_ids = induced_subgraph(g, members)
                stack.append((sub, ids[sub_ids]))
            continue
        res = minimum_cut(g, algorithm="noi", rng=rng)
        if res.value >= k:
            result.append(sorted(int(v) for v in ids))
            continue
        side = res.side
        for mask in (side, ~side):
            members = np.flatnonzero(mask)
            sub, sub_ids = induced_subgraph(g, members)
            stack.append((sub, ids[sub_ids]))
    result.sort(key=lambda group: group[0])
    return result


def enumerate_minimum_cuts(graph: Graph) -> tuple[int, list[np.ndarray]]:
    """All minimum cuts of a small graph (``n <= 22``), exhaustively.

    Returns ``(λ, sides)`` where each side is the boolean mask of the cut
    side *not* containing vertex ``n-1`` (one canonical representative per
    cut, so complementary masks are not repeated).
    """
    n = graph.n
    if n < 2:
        raise ValueError("minimum cut requires at least 2 vertices")
    if n > 22:
        raise ValueError(f"exhaustive enumeration limited to n <= 22, got {n}")

    W = np.zeros((n, n), dtype=np.int64)
    src = graph.arc_sources()
    W[src, graph.adjncy] = graph.adjwgt
    powers = 1 << np.arange(n, dtype=np.int64)

    best: int | None = None
    sides: list[np.ndarray] = []
    for subset in range(1, 1 << (n - 1)):
        mask = (subset & powers) != 0
        value = int(W[np.ix_(mask, ~mask)].sum())
        if best is None or value < best:
            best = value
            sides = [mask]
        elif value == best:
            sides.append(mask)
    assert best is not None
    return best, sides


def is_k_edge_connected(graph: Graph, k: int, **kwargs) -> bool:
    """True iff every cut has capacity at least ``k``."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0:
        return True
    if graph.n < 2:
        return True
    return edge_connectivity(graph, **kwargs) >= k
