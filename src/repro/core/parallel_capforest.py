"""Parallel CAPFOREST (Algorithm 1 of the paper).

``p`` workers each pick a random start vertex and grow a scan region.  A
shared visited table ``T`` ensures every vertex is *scanned* by exactly one
worker: when a worker pops a vertex another worker already claimed, it
blacklists it locally (its certificates then ignore that vertex, which
Lemma 3.2(3) shows keeps every mark safe) and moves on.  ``T`` is written
without locks — the paper explicitly accepts the benign race where two
workers claim the same vertex nearly simultaneously (a vertex scanned twice
costs time, never correctness).

Each worker maintains its own ``r`` values, priority queue, and scan cut
``α`` (the capacity of the cut between its scanned region and the rest of
the graph — a real cut of G, so it may lower ``λ̂``).  Contractible edges
are recorded as unions; depending on the executor these go to a shared
lock-striped union–find (threads), a plain union–find (serial), or
per-worker merge buffers replayed afterwards (processes) — all equivalent
because unions commute (Lemma 3.2(1)).

Executors
---------
``serial``
    Runs the ``p`` workers round-robin, one vertex pop per turn, in one
    thread.  Deterministic given the seed; the reference semantics used by
    most tests, and the work counters it produces drive the *modeled*
    speedups of the Figure 5 experiment.
``threads``
    Real ``threading`` workers sharing ``T`` (a ``bytearray``; single-byte
    writes are atomic under the GIL).  Faithful structure, but CPython's
    GIL serializes the scan loops, so wall-clock scaling is limited — this
    is the documented Python-vs-C++ substitution (DESIGN.md §2).
``processes``
    ``fork``-based workers.  ``T`` lives in a ``multiprocessing.RawArray``;
    ``λ̂`` in a ``Value``; marked pairs return through a queue.  True
    parallelism for wall-clock scaling experiments.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..datastructures.pq import PQStats, make_pq
from ..datastructures.union_find import UnionFind
from ..graph.csr import Graph
from .capforest import MAX_BUCKET_BOUND

EXECUTORS = ("serial", "threads", "processes")


@dataclass
class WorkerReport:
    """Per-worker work counters (the raw material for modeled speedups)."""

    worker_id: int
    start_vertex: int
    vertices_scanned: int = 0
    edges_scanned: int = 0
    blacklisted: int = 0
    pq_stats: PQStats = field(default_factory=PQStats)
    best_alpha: int | None = None
    best_prefix: list[int] = field(default_factory=list)

    @property
    def work(self) -> int:
        """Abstract work units: one per scanned edge plus one per pop."""
        return self.edges_scanned + self.vertices_scanned + self.blacklisted


@dataclass
class ParallelCapforestResult:
    """Outcome of one parallel CAPFOREST pass."""

    uf: UnionFind
    n_marked: int
    lambda_hat: int
    workers: list[WorkerReport]
    #: side mask of the best scan cut found by any worker (None if no worker
    #: improved the input bound)
    best_side: np.ndarray | None

    @property
    def total_work(self) -> int:
        return sum(w.work for w in self.workers)

    @property
    def makespan_work(self) -> int:
        """Work of the busiest worker — the modeled parallel critical path."""
        return max((w.work for w in self.workers), default=0)


class _SharedBound:
    """Monotonically decreasing shared λ̂ with a lock only on updates."""

    __slots__ = ("value", "_lock")

    def __init__(self, value: int) -> None:
        self.value = value
        self._lock = threading.Lock()

    def minimize(self, candidate: int) -> None:
        if candidate < self.value:
            with self._lock:
                if candidate < self.value:
                    self.value = candidate


class _FrozenBound:
    """A λ̂ box that never tightens — for fixed-threshold scans (Matula).

    Workers still *report* their scan cuts through their ``best_alpha``
    fields; only the shared marking threshold stays put.
    """

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def minimize(self, candidate: int) -> None:  # noqa: ARG002 - by design
        return


def _make_worker(graph_arrays, worker_id, start, pq_kind, bound, T, lam_box, union):
    """Build (generator, report) for one worker over prepared graph arrays."""
    xadj, adjncy, adjwgt, wdeg, n = graph_arrays
    report = WorkerReport(worker_id=worker_id, start_vertex=start)
    gen = _region_worker_with_prefix(
        xadj, adjncy, adjwgt, wdeg, n, T, lam_box, union, start, pq_kind, bound, report
    )
    return gen, report


def _region_worker_with_prefix(
    xadj, adjncy, adjwgt, wdeg, n, T, lam_box, union, start, pq_kind, bound, report
):
    """Generator scanning one region; yields after every pop (round-robin).

    ``T`` is any byte-indexable shared visited table; ``lam_box`` exposes
    ``.value`` and ``.minimize``; ``union`` is a callable ``(u, v)``.
    Records the exact scan prefix realising the worker's best α so the
    coordinator can output a cut *side*, not just its value.
    """
    pq = make_pq(pq_kind if bound <= MAX_BUCKET_BOUND else "heap", n, bound=bound)
    report.pq_stats = pq.stats
    blacklist = bytearray(n)
    local_visited = bytearray(n)
    r = [0] * n
    alpha = 0
    scan_order: list[int] = []
    best_len = 0
    insert = pq.insert_or_raise
    pop = pq.pop_max

    insert(start, 0)
    while len(pq):
        x, _ = pop()
        if T[x]:
            blacklist[x] = 1
            report.blacklisted += 1
            yield
            continue
        T[x] = 1
        local_visited[x] = 1
        alpha += wdeg[x] - 2 * r[x]
        scan_order.append(x)
        report.vertices_scanned += 1
        if report.vertices_scanned < n and (report.best_alpha is None or alpha < report.best_alpha):
            report.best_alpha = alpha
            best_len = len(scan_order)
            lam_box.minimize(alpha)
        lam = lam_box.value
        lo, hi = xadj[x], xadj[x + 1]
        nbrs = adjncy[lo:hi].tolist()
        wgts = adjwgt[lo:hi].tolist()
        for y, w in zip(nbrs, wgts):
            if blacklist[y] or local_visited[y]:
                continue
            report.edges_scanned += 1
            ry = r[y]
            q = ry + w
            if ry < lam <= q:
                union(x, y)
            r[y] = q
            insert(y, q)
        yield
    report.best_prefix = scan_order[:best_len]


def parallel_capforest(
    graph: Graph,
    lambda_hat: int,
    *,
    workers: int = 4,
    pq_kind: str = "bqueue",
    executor: str = "serial",
    rng: np.random.Generator | int | None = None,
    fixed_bound: bool = False,
) -> ParallelCapforestResult:
    """One parallel CAPFOREST pass over ``graph`` with bound ``λ̂``.

    Returns the merged union–find of contractible-edge marks, the improved
    bound, the best scan-cut side, and per-worker work reports.  May mark
    nothing (early termination, §3.2) — callers fall back to sequential
    CAPFOREST, as Algorithm 2 does.

    ``fixed_bound=True`` freezes the shared marking threshold at the input
    value (workers still report their scan cuts) — the configuration the
    parallel Matula approximation needs, where ``λ̂`` is deliberately below
    the true minimum cut and must not be "tightened" by real cuts.
    """
    if lambda_hat < 0:
        raise ValueError(f"lambda_hat must be non-negative, got {lambda_hat}")
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    n = graph.n
    if n == 0:
        return ParallelCapforestResult(UnionFind(0), 0, lambda_hat, [], None)
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    p = min(workers, n)
    starts = rng.choice(n, size=p, replace=False).tolist()
    graph_arrays = (
        graph.xadj.tolist(),
        graph.adjncy,
        graph.adjwgt,
        graph.weighted_degrees().tolist(),
        n,
    )

    if executor == "processes":
        return _run_processes(graph_arrays, lambda_hat, starts, pq_kind, fixed_bound)

    T = bytearray(n)
    lam_box = _FrozenBound(lambda_hat) if fixed_bound else _SharedBound(lambda_hat)
    if executor == "serial":
        uf = UnionFind(n)
        union = uf.union
        pairs: list = []
    else:
        from ..datastructures.concurrent_union_find import LockStripedUnionFind

        striped = LockStripedUnionFind(n)
        union = striped.union

    gens_reports = [
        _make_worker(graph_arrays, i, s, pq_kind, lambda_hat, T, lam_box, union)
        for i, s in enumerate(starts)
    ]
    reports = [rep for _, rep in gens_reports]

    if executor == "serial":
        live = [gen for gen, _ in gens_reports]
        while live:
            nxt = []
            for gen in live:
                try:
                    next(gen)
                    nxt.append(gen)
                except StopIteration:
                    pass
            live = nxt
    else:
        threads = [
            threading.Thread(target=_drain, args=(gen,), daemon=True) for gen, _ in gens_reports
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        uf = striped.to_sequential()

    return _finalize(uf, lambda_hat, lam_box.value, reports, n)


def _drain(gen) -> None:
    for _ in gen:
        pass


def _finalize(
    uf: UnionFind, lam_in: int, lam_out: int, reports: list[WorkerReport], n: int
) -> ParallelCapforestResult:
    n_marked = n - uf.count
    best_side = None
    if lam_out < lam_in:
        winner = min(
            (r for r in reports if r.best_alpha is not None),
            key=lambda r: r.best_alpha,
            default=None,
        )
        if winner is not None and winner.best_alpha == lam_out and winner.best_prefix:
            best_side = np.zeros(n, dtype=bool)
            best_side[winner.best_prefix] = True
    return ParallelCapforestResult(uf, n_marked, min(lam_in, lam_out), reports, best_side)


# ---------------------------------------------------------------------------
# process executor
# ---------------------------------------------------------------------------


def _run_processes(
    graph_arrays, lambda_hat, starts, pq_kind, fixed_bound=False
) -> ParallelCapforestResult:
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    n = graph_arrays[4]
    T = ctx.RawArray("B", n)  # zero-initialised shared visited table
    lam_val = ctx.Value("q", lambda_hat, lock=False)
    lam_lock = ctx.Lock()
    out: mp.SimpleQueue = ctx.SimpleQueue()

    procs = [
        ctx.Process(
            target=_process_worker,
            args=(
                graph_arrays, i, s, pq_kind, lambda_hat, T, lam_val, lam_lock, out, fixed_bound,
            ),
            daemon=True,
        )
        for i, s in enumerate(starts)
    ]
    for pr in procs:
        pr.start()
    results = [out.get() for _ in procs]
    for pr in procs:
        pr.join()

    uf = UnionFind(n)
    reports: list[WorkerReport] = []
    lam_out = lambda_hat
    for worker_id, pairs, rep_dict in sorted(results):
        for u, v in pairs:
            uf.union(u, v)
        rep = WorkerReport(
            worker_id=worker_id,
            start_vertex=rep_dict["start_vertex"],
            vertices_scanned=rep_dict["vertices_scanned"],
            edges_scanned=rep_dict["edges_scanned"],
            blacklisted=rep_dict["blacklisted"],
            pq_stats=PQStats(**rep_dict["pq_stats"]),
            best_alpha=rep_dict["best_alpha"],
            best_prefix=rep_dict["best_prefix"],
        )
        reports.append(rep)
        if not fixed_bound and rep.best_alpha is not None and rep.best_alpha < lam_out:
            lam_out = rep.best_alpha
    return _finalize(uf, lambda_hat, lam_out, reports, n)


class _ProcessBound:
    """λ̂ box over a multiprocessing Value (lock only for updates)."""

    __slots__ = ("_val", "_lock")

    def __init__(self, val, lock) -> None:
        self._val = val
        self._lock = lock

    @property
    def value(self) -> int:
        return self._val.value

    def minimize(self, candidate: int) -> None:
        if candidate < self._val.value:
            with self._lock:
                if candidate < self._val.value:
                    self._val.value = candidate


def _process_worker(
    graph_arrays, worker_id, start, pq_kind, bound, T, lam_val, lam_lock, out, fixed_bound=False
) -> None:  # pragma: no cover - exercised via subprocesses
    pairs: list[tuple[int, int]] = []
    report = WorkerReport(worker_id=worker_id, start_vertex=start)
    lam_box = _FrozenBound(bound) if fixed_bound else _ProcessBound(lam_val, lam_lock)
    gen = _region_worker_with_prefix(
        graph_arrays[0],
        graph_arrays[1],
        graph_arrays[2],
        graph_arrays[3],
        graph_arrays[4],
        T,
        lam_box,
        lambda u, v: pairs.append((u, v)),
        start,
        pq_kind,
        bound,
        report,
    )
    for _ in gen:
        pass
    out.put(
        (
            worker_id,
            pairs,
            {
                "start_vertex": report.start_vertex,
                "vertices_scanned": report.vertices_scanned,
                "edges_scanned": report.edges_scanned,
                "blacklisted": report.blacklisted,
                "pq_stats": report.pq_stats.as_dict(),
                "best_alpha": report.best_alpha,
                "best_prefix": report.best_prefix,
            },
        )
    )
