"""Parallel CAPFOREST (Algorithm 1 of the paper).

``p`` workers each pick a random start vertex and grow a scan region.  A
shared visited table ``T`` ensures every vertex is *scanned* by exactly one
worker: when a worker pops a vertex another worker already claimed, it
blacklists it locally (its certificates then ignore that vertex, which
Lemma 3.2(3) shows keeps every mark safe) and moves on.  ``T`` is written
without locks — the paper explicitly accepts the benign race where two
workers claim the same vertex nearly simultaneously (a vertex scanned twice
costs time, never correctness).

Each worker maintains its own ``r`` values, priority queue, and scan cut
``α`` (the capacity of the cut between its scanned region and the rest of
the graph — a real cut of G, so it may lower ``λ̂``).  Contractible edges
are recorded as unions; depending on the executor these go to a shared
lock-striped union–find (threads), a plain union–find (serial), or
per-worker merge buffers replayed afterwards (processes) — all equivalent
because unions commute (Lemma 3.2(1)).

Workers run the ``scalar`` relaxation kernel (one Python iteration per
arc — the reference), the ``vector`` kernel (each popped vertex's whole
arc slice relaxed with numpy array expressions), or the ``compiled``
kernel (the arc loop and the flat-array queue jitted by numba — see
:mod:`repro.kernels`; resolves to ``vector`` when numba is unavailable).
The vector and compiled workers stay *per-pop* — they never batch across
pops the way the sequential vector kernel does — so the pop/claim
interleaving, and with it the round-robin semantics of the serial
executor, is identical between kernels.

Executors
---------
``serial``
    Runs the ``p`` workers round-robin, one vertex pop per turn, in one
    thread.  Deterministic given the seed; the reference semantics used by
    most tests, and the work counters it produces drive the *modeled*
    speedups of the Figure 5 experiment.
``threads``
    Real ``threading`` workers sharing ``T`` (a ``bytearray``; single-byte
    writes are atomic under the GIL).  Faithful structure, but CPython's
    GIL serializes the scan loops, so wall-clock scaling is limited — this
    is the documented Python-vs-C++ substitution (DESIGN.md §2).
``processes``
    Process workers over a zero-copy shared-memory plane
    (:mod:`repro.graph.shm`): the CSR graph is exported once into a named
    segment that every worker maps read-only style (no per-worker graph
    copy, under ``fork`` *and* ``spawn``), ``T`` is a shared byte plane,
    ``λ̂`` a ``multiprocessing.Value``, and marked pairs come back through
    a preallocated shared int64 buffer — each worker deduplicates its marks
    through a local union–find, so its row never exceeds ``n - 1`` pairs.
    The start method defaults to ``fork`` where the platform offers it and
    falls back to ``spawn`` otherwise (overridable via ``start_method=``);
    the method used is surfaced on the result.  True parallelism for
    wall-clock scaling experiments.

All three executors run under the supervised execution runtime
(:mod:`~repro.runtime`): the process executor collects results through a
bounded supervisor (crashed, wedged, or silent workers become structured
events instead of a hung coordinator), thread workers have their uncaught
exceptions captured, and a deterministic :class:`~repro.runtime.FaultPlan`
can be injected on any executor for testing.  Losing a worker only drops
its contraction marks, which Lemma 3.2(1) shows is always safe — the
survivors' merged result stays exact.  Shared-memory segments are owned by
the coordinator and unlinked in a ``finally`` block, so even a round whose
workers were all killed leaves nothing behind in ``/dev/shm``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..datastructures.pq import PQStats, make_pq
from ..datastructures.union_find import UnionFind
from ..graph.csr import Graph
from ..runtime.errors import ExecutorUnavailable, NoProgressError, WorkerCrashed
from ..runtime.faults import FaultClock, FaultPlan
from ..runtime.supervisor import supervise_processes, worker_event
from .capforest import MAX_BUCKET_BOUND, resolve_kernel

EXECUTORS = ("serial", "threads", "processes")


@dataclass
class WorkerReport:
    """Per-worker work counters (the raw material for modeled speedups)."""

    worker_id: int
    start_vertex: int
    vertices_scanned: int = 0
    edges_scanned: int = 0
    blacklisted: int = 0
    pq_stats: PQStats = field(default_factory=PQStats)
    best_alpha: int | None = None
    best_prefix: list[int] = field(default_factory=list)

    @property
    def work(self) -> int:
        """Abstract work units: one per scanned edge plus one per pop."""
        return self.edges_scanned + self.vertices_scanned + self.blacklisted


@dataclass
class ParallelCapforestResult:
    """Outcome of one parallel CAPFOREST pass."""

    uf: UnionFind
    n_marked: int
    lambda_hat: int
    workers: list[WorkerReport]
    #: side mask of the best scan cut found by any worker (None if no worker
    #: improved the input bound)
    best_side: np.ndarray | None
    #: structured worker-failure events recorded by the supervisor (empty
    #: when every worker completed cleanly); see :func:`repro.runtime.worker_event`
    events: list[dict] = field(default_factory=list)
    #: multiprocessing start method actually used ("fork"/"spawn"/...);
    #: None for the in-process executors
    start_method: str | None = None

    @property
    def total_work(self) -> int:
        return sum(w.work for w in self.workers)

    @property
    def makespan_work(self) -> int:
        """Work of the busiest worker — the modeled parallel critical path."""
        return max((w.work for w in self.workers), default=0)


class _SharedBound:
    """Monotonically decreasing shared λ̂ with a lock only on updates."""

    __slots__ = ("value", "_lock")

    def __init__(self, value: int) -> None:
        self.value = value
        self._lock = threading.Lock()

    def minimize(self, candidate: int) -> None:
        if candidate < self.value:
            with self._lock:
                if candidate < self.value:
                    self.value = candidate


class _FrozenBound:
    """A λ̂ box that never tightens — for fixed-threshold scans (Matula).

    Workers still *report* their scan cuts through their ``best_alpha``
    fields; only the shared marking threshold stays put.
    """

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def minimize(self, candidate: int) -> None:  # noqa: ARG002 - by design
        return


def _make_worker(graph_arrays, worker_id, start, pq_kind, bound, T, lam_box, union, kernel):
    """Build (generator, report) for one worker over prepared graph arrays."""
    xadj, adjncy, adjwgt, wdeg, n = graph_arrays
    report = WorkerReport(worker_id=worker_id, start_vertex=start)
    region = _REGION_WORKERS.get(kernel, _region_worker_with_prefix)
    gen = region(
        xadj, adjncy, adjwgt, wdeg, n, T, lam_box, union, start, pq_kind, bound, report
    )
    return gen, report


def _region_worker_with_prefix(
    xadj, adjncy, adjwgt, wdeg, n, T, lam_box, union, start, pq_kind, bound, report
):
    """Generator scanning one region; yields after every pop (round-robin).

    ``T`` is any byte-indexable shared visited table; ``lam_box`` exposes
    ``.value`` and ``.minimize``; ``union`` is a callable ``(u, v)``.
    Records the exact scan prefix realising the worker's best α so the
    coordinator can output a cut *side*, not just its value.
    """
    pq = make_pq(pq_kind if bound <= MAX_BUCKET_BOUND else "heap", n, bound=bound)
    report.pq_stats = pq.stats
    blacklist = bytearray(n)
    local_visited = bytearray(n)
    r = [0] * n
    alpha = 0
    scan_order: list[int] = []
    best_len = 0
    insert = pq.insert_or_raise
    pop = pq.pop_max

    insert(start, 0)
    pops = 0
    while len(pq):
        x, _ = pop()
        pops += 1
        if pops > n:
            # each vertex enters this worker's queue at most once, so a
            # scan that pops more than n times is running on corrupt state
            raise NoProgressError(
                f"worker {report.worker_id} popped {pops} vertices from a {n}-vertex graph"
            )
        if T[x]:
            blacklist[x] = 1
            report.blacklisted += 1
            yield
            continue
        T[x] = 1
        local_visited[x] = 1
        alpha += wdeg[x] - 2 * r[x]
        scan_order.append(x)
        report.vertices_scanned += 1
        if report.vertices_scanned < n and (report.best_alpha is None or alpha < report.best_alpha):
            report.best_alpha = alpha
            best_len = len(scan_order)
            lam_box.minimize(alpha)
        lam = lam_box.value
        lo, hi = xadj[x], xadj[x + 1]
        nbrs = adjncy[lo:hi].tolist()
        wgts = adjwgt[lo:hi].tolist()
        for y, w in zip(nbrs, wgts):
            if blacklist[y] or local_visited[y]:
                continue
            report.edges_scanned += 1
            ry = r[y]
            q = ry + w
            if ry < lam <= q:
                union(x, y)
            r[y] = q
            insert(y, q)
        yield
    report.best_prefix = scan_order[:best_len]


def _region_worker_vector(
    xadj, adjncy, adjwgt, wdeg, n, T, lam_box, union, start, pq_kind, bound, report
):
    """Vector-kernel twin of :func:`_region_worker_with_prefix`.

    Relaxes each popped vertex's arc slice with array expressions — the
    dead-neighbour filter, ``q = r + w``, the mark test, and the queue
    updates (:meth:`increase_many`, which preserves per-event
    classification, statistics, and FIFO order) are all vectorized.
    Deliberately per-pop: yielding after every pop and claiming ``T``
    one vertex at a time keeps the interleaving identical to the scalar
    worker, so the serial executor produces bit-identical results under
    either kernel.  Graphs are simple by invariant (``validate.py``), so
    an arc slice never names a neighbour twice and ``r`` reads within one
    slice cannot go stale.
    """
    pq = make_pq(
        pq_kind if bound <= MAX_BUCKET_BOUND else "heap", n, bound=bound,
        array_keys=True,
    )
    report.pq_stats = pq.stats
    dead = np.zeros(n, dtype=bool)  # blacklisted-or-locally-visited, merged
    r = np.zeros(n, dtype=np.int64)
    alpha = 0
    scan_order: list[int] = []
    best_len = 0

    pq.insert_or_raise(start, 0)
    pops = 0
    while len(pq):
        x, _ = pq.pop_max()
        pops += 1
        if pops > n:
            raise NoProgressError(
                f"worker {report.worker_id} popped {pops} vertices from a {n}-vertex graph"
            )
        if T[x]:
            dead[x] = True
            report.blacklisted += 1
            yield
            continue
        T[x] = 1
        dead[x] = True
        alpha += wdeg[x] - 2 * int(r[x])
        scan_order.append(x)
        report.vertices_scanned += 1
        if report.vertices_scanned < n and (report.best_alpha is None or alpha < report.best_alpha):
            report.best_alpha = alpha
            best_len = len(scan_order)
            lam_box.minimize(alpha)
        lam = lam_box.value
        lo, hi = xadj[x], xadj[x + 1]
        ys = adjncy[lo:hi]
        keep = np.flatnonzero(~dead[ys])
        m = len(keep)
        report.edges_scanned += m
        if m:
            ys = ys[keep]
            ry = r[ys]
            q = ry + adjwgt[lo:hi][keep]
            marks = np.flatnonzero((ry < lam) & (lam <= q))
            if len(marks):
                # scalar union calls, in arc order, so a shared union–find
                # sees the same sequence the scalar worker would produce
                for y in ys[marks].tolist():
                    union(x, y)
            r[ys] = q
            pq.increase_many(ys, q)
        yield
    report.best_prefix = scan_order[:best_len]


def _region_worker_compiled(
    xadj, adjncy, adjwgt, wdeg, n, T, lam_box, union, start, pq_kind, bound, report
):
    """Compiled-kernel twin of :func:`_region_worker_with_prefix`.

    The queue lives in flat arrays (:mod:`repro.kernels.flat_pq`) and each
    popped vertex's arc loop runs through one jitted
    :func:`~repro.kernels.capforest_kernel.region_relax` call.  The pop /
    ``T``-claim / yield interleaving stays in Python, one vertex per turn,
    so the serial executor's round-robin — and with it every observable
    output — is bit-identical to the scalar worker.  Marked heads come
    back through ``mark_buf`` and are replayed through ``union`` in arc
    order, exactly the scalar worker's union sequence.
    """
    from ..kernels.capforest_kernel import region_relax
    from ..kernels.flat_pq import (
        PQ_CODES,
        SC_POPS,
        SC_PUSHES,
        SC_SIZE,
        SC_SKIPPED,
        SC_UPDATES,
        alloc_pq,
        pq_insert,
        pq_pop,
    )

    code = PQ_CODES[pq_kind if bound <= MAX_BUCKET_BOUND else "heap"]
    key, evn, enext, eprev, bhead, btail, pos, heap, sc = alloc_pq(
        code, n, bound, n + len(adjncy) + 1
    )
    dead = np.zeros(n, dtype=np.uint8)  # blacklisted-or-locally-visited, merged
    r = np.zeros(n, dtype=np.int64)
    max_deg = int(np.max(xadj[1:] - xadj[:-1])) if n > 0 else 0
    mark_buf = np.empty(max(max_deg, 1), dtype=np.int64)
    alpha = 0
    scan_order: list[int] = []
    best_len = 0
    stats = report.pq_stats

    def sync_stats() -> None:
        # the scalar worker exposes its queue's live stats object; here the
        # counters live in the flat state block and are copied out at every
        # yield point so partially-consumed generators stay observable
        stats.pushes = int(sc[SC_PUSHES])
        stats.updates = int(sc[SC_UPDATES])
        stats.skipped_updates = int(sc[SC_SKIPPED])
        stats.pops = int(sc[SC_POPS])

    pq_insert(code, bound, start, 0, key, evn, enext, eprev, bhead, btail, pos, heap, sc)
    pops = 0
    while sc[SC_SIZE]:
        x = int(pq_pop(code, key, evn, enext, eprev, bhead, btail, pos, heap, sc))
        pops += 1
        if pops > n:
            raise NoProgressError(
                f"worker {report.worker_id} popped {pops} vertices from a {n}-vertex graph"
            )
        if T[x]:
            dead[x] = 1
            report.blacklisted += 1
            sync_stats()
            yield
            continue
        T[x] = 1
        dead[x] = 1
        alpha += int(wdeg[x]) - 2 * int(r[x])
        scan_order.append(x)
        report.vertices_scanned += 1
        if report.vertices_scanned < n and (report.best_alpha is None or alpha < report.best_alpha):
            report.best_alpha = alpha
            best_len = len(scan_order)
            lam_box.minimize(alpha)
        lam = lam_box.value
        edges, cnt = region_relax(
            x, lam, xadj, adjncy, adjwgt, dead, r, mark_buf,
            code, bound, key, evn, enext, eprev, bhead, btail, pos, heap, sc,
        )
        report.edges_scanned += int(edges)
        for j in range(int(cnt)):
            union(x, int(mark_buf[j]))
        sync_stats()
        yield
    sync_stats()
    report.best_prefix = scan_order[:best_len]


_REGION_WORKERS = {
    "scalar": _region_worker_with_prefix,
    "vector": _region_worker_vector,
    "compiled": _region_worker_compiled,
}


def parallel_capforest(
    graph: Graph,
    lambda_hat: int,
    *,
    workers: int = 4,
    pq_kind: str = "bqueue",
    executor: str = "serial",
    kernel: str = "scalar",
    rng: np.random.Generator | int | None = None,
    fixed_bound: bool = False,
    start_method: str | None = None,
    timeout: float | None = None,
    fault_plan: FaultPlan | None = None,
    tracer=None,
) -> ParallelCapforestResult:
    """One parallel CAPFOREST pass over ``graph`` with bound ``λ̂``.

    Returns the merged union–find of contractible-edge marks, the improved
    bound, the best scan-cut side, and per-worker work reports.  May mark
    nothing (early termination, §3.2) — callers fall back to sequential
    CAPFOREST, as Algorithm 2 does.

    ``kernel`` selects the per-worker relaxation kernel (``"scalar"``,
    ``"vector"``, or ``"compiled"`` — registry
    :data:`repro.kernels.KERNELS`); all produce identical results on every
    executor.  A ``"compiled"`` request resolves through
    :func:`repro.kernels.resolve_kernel` (falling back to ``"vector"``
    with a ``kernel_fallback`` trace note when numba is unavailable).

    ``fixed_bound=True`` freezes the shared marking threshold at the input
    value (workers still report their scan cuts) — the configuration the
    parallel Matula approximation needs, where ``λ̂`` is deliberately below
    the true minimum cut and must not be "tightened" by real cuts.

    ``start_method`` pins the multiprocessing start method for the
    ``processes`` executor (default: ``fork`` where available, else
    ``spawn``); the method used is reported in ``result.start_method``.

    ``timeout`` bounds the whole pass for the process executor (a finite
    backstop applies even when ``None`` — see
    :data:`repro.runtime.DEFAULT_TIMEOUT`); ``fault_plan`` injects
    deterministic worker failures for testing.  Lost workers' marks are
    dropped (safe, Lemma 3.2(1)) and recorded in ``result.events``; if no
    worker survives, :class:`~repro.runtime.ExecutorUnavailable` is raised
    so callers can degrade to a simpler executor.

    ``tracer`` (optional :class:`repro.observability.Tracer`) receives one
    ``parallel_pass`` summary, one ``worker_report`` per surviving worker,
    and a ``worker_event`` per lost worker — all emitted at pass
    granularity on the coordinator, never inside the scan loops.
    """
    if lambda_hat < 0:
        raise ValueError(f"lambda_hat must be non-negative, got {lambda_hat}")
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    kernel, _ = resolve_kernel(kernel, tracer=tracer)
    n = graph.n
    if n == 0:
        return ParallelCapforestResult(UnionFind(0), 0, lambda_hat, [], None)
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    p = min(workers, n)
    starts = rng.choice(n, size=p, replace=False).tolist()

    if executor == "processes":
        res = _run_processes(graph, lambda_hat, starts, pq_kind, fixed_bound, kernel,
                             start_method, timeout=timeout, fault_plan=fault_plan)
        _emit_pass_trace(tracer, res, "processes", pq_kind, kernel, lambda_hat)
        return res

    if kernel == "compiled":
        # the jitted region step wants numpy int64 views, not Python lists
        graph_arrays = (
            graph.xadj,
            graph.adjncy,
            graph.adjwgt,
            graph.weighted_degrees(),
            n,
        )
    else:
        graph_arrays = (
            graph.xadj.tolist(),
            graph.adjncy,
            graph.adjwgt,
            graph.weighted_degrees().tolist(),
            n,
        )
    T = bytearray(n)
    lam_box = _FrozenBound(lambda_hat) if fixed_bound else _SharedBound(lambda_hat)
    if executor == "serial":
        uf = UnionFind(n)
        union = uf.union
    else:
        from ..datastructures.concurrent_union_find import LockStripedUnionFind

        striped = LockStripedUnionFind(n)
        union = striped.union

    gens_reports = [
        _make_worker(graph_arrays, i, s, pq_kind, lambda_hat, T, lam_box, union, kernel)
        for i, s in enumerate(starts)
    ]
    reports = [rep for _, rep in gens_reports]
    events: list[dict] = []

    if executor == "serial":
        live = [(i, gen) for i, (gen, _) in enumerate(gens_reports)]
        clocks = {i: FaultClock(fault_plan.for_worker(i, "serial") if fault_plan else None)
                  for i, _ in live}
        while live:
            nxt = []
            for i, gen in live:
                fault = clocks[i].tick()
                if fault is not None and fault.kind == "crash":
                    # abandon this worker's scan; marks so far stay (safe)
                    events.append(worker_event(i, "crashed", detail="injected"))
                    continue
                try:
                    next(gen)
                    nxt.append((i, gen))
                except StopIteration:
                    clock = clocks[i]
                    if clock.fault is not None and clock.fault.kind == "crash" and not clock.fired:
                        # scan ended before the pop trigger: fire anyway
                        # (the completed scan's marks stay — still safe)
                        events.append(worker_event(i, "crashed", detail="injected"))
            live = nxt
    else:
        threads = [
            threading.Thread(
                target=_drain,
                args=(gen, i, fault_plan, events),
                daemon=True,
            )
            for i, (gen, _) in enumerate(gens_reports)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        uf = striped.to_sequential()
        if len(events) == len(threads) and threads:
            raise ExecutorUnavailable("threads", "every thread worker crashed", events)

    if executor == "serial" and events and len(events) == len(gens_reports):
        raise ExecutorUnavailable("serial", "every worker crashed", events)
    res = _finalize(uf, lambda_hat, lam_box.value, reports, n)
    res.events = events
    _emit_pass_trace(tracer, res, executor, pq_kind, kernel, lambda_hat)
    return res


def _emit_pass_trace(tracer, res, executor, pq_kind, kernel, lambda_in) -> None:
    """Emit the pass summary, per-worker reports, and worker-loss events.

    Runs on the coordinator after the pass completes — pass granularity,
    so a disabled tracer costs exactly one ``None`` check per pass.
    """
    if tracer is None:
        return
    for ev in res.events:
        payload = dict(ev)
        payload["event"] = payload.pop("kind")
        tracer.emit("worker_event", executor=executor, **payload)
    for rep in res.workers:
        tracer.emit(
            "worker_report",
            executor=executor,
            worker_id=rep.worker_id,
            start_vertex=int(rep.start_vertex),
            vertices_scanned=rep.vertices_scanned,
            edges_scanned=rep.edges_scanned,
            blacklisted=rep.blacklisted,
            work=rep.work,
            best_alpha=None if rep.best_alpha is None else int(rep.best_alpha),
        )
    tracer.emit(
        "parallel_pass",
        executor=executor,
        pq_kind=pq_kind,
        kernel=kernel,
        workers=len(res.workers),
        lambda_in=int(lambda_in),
        lambda_out=int(res.lambda_hat),
        marked=res.n_marked,
        total_work=res.total_work,
        makespan_work=res.makespan_work,
        start_method=res.start_method,
    )


def _drain(gen, worker_id: int, fault_plan: FaultPlan | None, events: list) -> None:
    """Exhaust one thread worker, capturing crashes as structured events.

    Appends to ``events`` instead of raising: a dead thread's marks are
    already in the shared union–find and remain safe (Lemma 3.2(1)), so
    the coordinator keeps the survivors and records the loss.  ``events``
    appends are atomic under the GIL.
    """
    clock = FaultClock(fault_plan.for_worker(worker_id, "threads") if fault_plan else None)
    try:
        for _ in gen:
            fault = clock.tick()
            if fault is not None and fault.kind == "crash":
                raise WorkerCrashed(worker_id, detail="injected")
        if clock.fault is not None and clock.fault.kind == "crash" and not clock.fired:
            # fire even if the scan ended before the pop trigger (see
            # _process_worker) so injected faults stay deterministic
            raise WorkerCrashed(worker_id, detail="injected")
    except Exception as exc:  # noqa: BLE001 - any worker death must be observable
        events.append(worker_event(worker_id, "crashed", detail=str(exc)))


def _finalize(
    uf: UnionFind, lam_in: int, lam_out: int, reports: list[WorkerReport], n: int
) -> ParallelCapforestResult:
    n_marked = n - uf.count
    best_side = None
    if lam_out < lam_in:
        winner = min(
            (r for r in reports if r.best_alpha is not None),
            key=lambda r: r.best_alpha,
            default=None,
        )
        if winner is not None and winner.best_alpha == lam_out and winner.best_prefix:
            best_side = np.zeros(n, dtype=bool)
            best_side[winner.best_prefix] = True
    return ParallelCapforestResult(uf, n_marked, min(lam_in, lam_out), reports, best_side)


# ---------------------------------------------------------------------------
# process executor
# ---------------------------------------------------------------------------


def default_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``.

    The ``REPRO_START_METHOD`` environment variable overrides the platform
    default (CI uses this to run the parallel suites under both methods on
    Linux); an unsupported value raises rather than silently degrading.
    """
    import multiprocessing as mp
    import os

    override = os.environ.get("REPRO_START_METHOD")
    if override:
        if override not in mp.get_all_start_methods():
            raise ValueError(
                f"REPRO_START_METHOD={override!r} not supported here; "
                f"available: {mp.get_all_start_methods()}"
            )
        return override
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _run_processes(
    graph: Graph, lambda_hat, starts, pq_kind, fixed_bound=False, kernel="scalar",
    start_method: str | None = None,
    *, timeout: float | None = None, fault_plan: FaultPlan | None = None,
) -> ParallelCapforestResult:
    """Process executor over the shared-memory plane, supervised.

    The CSR graph, the visited table ``T``, and the marked-pair return
    buffer all live in named shared-memory segments (:mod:`repro.graph.shm`)
    created here and attached by name in each worker — so the executor is
    start-method agnostic (``fork`` and ``spawn`` share the same zero-copy
    path) and workers return at most ``n - 1`` locally-deduplicated pairs
    through preallocated memory instead of pickling tuples.

    Results are collected through :func:`repro.runtime.supervise_processes`
    — bounded ``get`` with per-worker exit-code checks — so a crashed,
    wedged, silent, or corrupt worker becomes a structured event and the
    survivors' marks are merged (safe by Lemma 3.2(1)).  Pair rows are
    range-checked before merging, exactly as queue payloads were: a worker
    publishing out-of-range vertices is recorded as *corrupt* and discarded.
    With zero survivors, :class:`~repro.runtime.ExecutorUnavailable` is
    raised for the caller's degradation ladder.  The coordinator owns the
    segments: the ``finally`` block unlinks them even when every worker was
    killed, so no run can leak ``/dev/shm`` entries.
    """
    import multiprocessing as mp

    from ..graph.shm import SharedBytes, SharedGraph, SharedPairsBuffer

    method = start_method or default_start_method()
    ctx = mp.get_context(method)
    n = graph.n
    p = len(starts)

    shared_graph = SharedGraph.export(graph)
    pair_buf = SharedPairsBuffer.create(p, n)
    visited = SharedBytes.create(n)
    try:
        lam_val = ctx.Value("q", lambda_hat, lock=False)
        lam_lock = ctx.Lock()
        out = ctx.Queue()  # Queue (not SimpleQueue): its get() supports a timeout

        procs = [
            ctx.Process(
                target=_process_worker,
                args=(
                    shared_graph.name, pair_buf.name, visited.name, p, n,
                    i, s, pq_kind, lambda_hat, lam_val, lam_lock, out, fixed_bound, kernel,
                    fault_plan.for_worker(i, "processes") if fault_plan else None,
                ),
                daemon=True,
            )
            for i, s in enumerate(starts)
        ]
        for pr in procs:
            pr.start()
        outcome = supervise_processes(procs, out, n=n, timeout=timeout)
        if outcome.all_lost:
            raise ExecutorUnavailable("processes", "no worker reported a result", outcome.events)

        uf = UnionFind(n)
        reports: list[WorkerReport] = []
        lam_out = lambda_hat
        for worker_id in sorted(outcome.results):
            _, _, rep_dict = outcome.results[worker_id]
            pairs = pair_buf.read_pairs(worker_id)
            if len(pairs) and (pairs.min() < 0 or int(pairs.max()) >= n):
                outcome.events.append(worker_event(
                    worker_id, "corrupt",
                    detail=f"worker {worker_id}: shared pair row out of range for n={n}",
                ))
                continue
            if len(pairs):
                uf.union_pairs(pairs[:, 0], pairs[:, 1])
            rep = WorkerReport(
                worker_id=worker_id,
                start_vertex=rep_dict["start_vertex"],
                vertices_scanned=rep_dict["vertices_scanned"],
                edges_scanned=rep_dict["edges_scanned"],
                blacklisted=rep_dict["blacklisted"],
                pq_stats=PQStats(**rep_dict["pq_stats"]),
                best_alpha=rep_dict["best_alpha"],
                best_prefix=rep_dict["best_prefix"],
            )
            reports.append(rep)
            if not fixed_bound and rep.best_alpha is not None and rep.best_alpha < lam_out:
                lam_out = rep.best_alpha
        if not reports:
            raise ExecutorUnavailable("processes", "no worker survived validation",
                                      outcome.events)
        res = _finalize(uf, lambda_hat, lam_out, reports, n)
        res.events = outcome.events
        res.start_method = method
        return res
    finally:
        for seg in (shared_graph, pair_buf, visited):
            seg.unlink()


class _ProcessBound:
    """λ̂ box over a multiprocessing Value (lock only for updates)."""

    __slots__ = ("_val", "_lock")

    def __init__(self, val, lock) -> None:
        self._val = val
        self._lock = lock

    @property
    def value(self) -> int:
        return self._val.value

    def minimize(self, candidate: int) -> None:
        if candidate < self._val.value:
            with self._lock:
                if candidate < self._val.value:
                    self._val.value = candidate


def _process_worker(
    graph_name, pairs_name, visited_name, p, n, worker_id, start, pq_kind, bound,
    lam_val, lam_lock, out, fixed_bound=False, kernel="scalar", fault=None,
) -> None:  # pragma: no cover - exercised via subprocesses
    import os
    import time as _time

    from ..graph.shm import SharedBytes, SharedGraph, SharedPairsBuffer

    shared_graph = SharedGraph.attach(graph_name)
    pair_buf = SharedPairsBuffer.attach(pairs_name, p, n)
    visited = SharedBytes.attach(visited_name, n)
    try:
        g = shared_graph.graph()  # arrays are views into the segment: zero-copy
        if kernel == "compiled":
            graph_arrays = (g.xadj, g.adjncy, g.adjwgt, g.weighted_degrees(), n)
        else:
            graph_arrays = (
                g.xadj.tolist(), g.adjncy, g.adjwgt, g.weighted_degrees().tolist(), n,
            )

        # local union–find dedup: a redundant pair adds nothing to the final
        # partition (the closure of the pair multiset), so only partition-
        # changing pairs are published — which bounds the row at n - 1 pairs
        luf = UnionFind(n)
        pairs: list[tuple[int, int]] = []

        def union(u: int, v: int) -> None:
            if luf.union(u, v):
                pairs.append((u, v))

        report = WorkerReport(worker_id=worker_id, start_vertex=start)
        lam_box = _FrozenBound(bound) if fixed_bound else _ProcessBound(lam_val, lam_lock)
        region = _REGION_WORKERS.get(kernel, _region_worker_with_prefix)
        gen = region(
            graph_arrays[0],
            graph_arrays[1],
            graph_arrays[2],
            graph_arrays[3],
            graph_arrays[4],
            visited.buf,
            lam_box,
            union,
            start,
            pq_kind,
            bound,
            report,
        )
        clock = FaultClock(fault)
        for _ in gen:
            f = clock.tick()
            if f is None:
                continue
            if f.kind == "crash":
                os._exit(f.exit_code)  # hard kill: no result, nonzero exit
            if f.kind in ("hang", "delay"):
                _time.sleep(f.sleep_seconds)
        if fault is not None and not clock.fired:
            # a worker that finished before its pop trigger (another worker
            # claimed its region first) still fails as scripted — injected
            # faults must be deterministic, not scheduling-dependent
            if fault.kind == "crash":
                os._exit(fault.exit_code)
            if fault.kind in ("hang", "delay"):
                _time.sleep(fault.sleep_seconds)
        if fault is not None and fault.kind == "drop_result":
            return  # clean exit, result silently lost
        if fault is not None and fault.kind == "corrupt_pairs":
            pairs = [(n + 1, n + 2)]  # out of range: coordinator must reject the row
        pair_buf.write_pairs(worker_id, pairs)
        out.put(
            (
                worker_id,
                None,  # pairs travel through the shared buffer, not the queue
                {
                    "start_vertex": report.start_vertex,
                    "vertices_scanned": report.vertices_scanned,
                    "edges_scanned": report.edges_scanned,
                    "blacklisted": report.blacklisted,
                    "pq_stats": report.pq_stats.as_dict(),
                    "best_alpha": report.best_alpha,
                    "best_prefix": report.best_prefix,
                },
            )
        )
    finally:
        # drop every view into the segments before closing them, otherwise
        # SharedMemory refuses to unmap ("cannot close exported pointers")
        # — at interpreter shutdown that becomes an ignored-in-__del__ noise
        gen = graph_arrays = g = None
        for seg in (shared_graph, pair_buf, visited):
            try:
                seg.close()
            except BufferError:  # pragma: no cover - view leak backstop
                pass
