"""Nagamochi–Ibaraki sparse k-certificates (paper §2.3 machinery).

NOI's contraction rule rests on a decomposition of the edge set into
edge-disjoint *maximum spanning forests* F₁, F₂, …: an edge not in the
first ``k`` forests connects endpoints of connectivity ≥ k (so it can be
contracted when ``k = λ̂``), and dually the union of the first ``k``
forests is a **sparse certificate**: a subgraph with at most ``k·(n-1)``
edges that preserves every cut of value < k exactly and keeps every other
cut at ≥ k.  Formally, for every vertex pair:

    λ_cert(u, v) ≥ min(k, λ_G(u, v))        (and trivially ≤ λ_G(u, v))

Rather than building k forests explicitly, the certificate falls out of a
single CAPFOREST scan (Nagamochi & Ibaraki [24]): when edge ``e = (x, y)``
is scanned, it occupies forest slots ``r(y)+1 … r(y)+c(e)`` — so its
weight inside the first k forests is ``min(q, k) - min(q - c(e), k)``
where ``q = r(y) + c(e)``.  One O(m + n log n) pass, no forest data
structures.

:func:`sparse_certificate` returns that subgraph; ``noi_mincut(...,
sparsify=True)`` uses it to shrink dense inputs before contracting
(k = λ̂ + 1 keeps every cut ≤ λ̂, hence the minimum cut and its value).
"""

from __future__ import annotations


from ..datastructures.pq import make_pq
from ..graph.builder import from_edges
from ..graph.csr import Graph


def sparse_certificate(graph: Graph, k: int, *, start: int = 0) -> Graph:
    """The NI certificate: first-k-forests subgraph of ``graph``.

    Parameters
    ----------
    k:
        Connectivity threshold to preserve (``k >= 1``).  Every cut of
        capacity < k keeps its exact capacity; all other cuts keep
        capacity ≥ k.
    start:
        Scan start vertex (any choice yields a valid certificate).

    Returns
    -------
    Graph
        Same vertex set; edge weights are clipped to the certificate
        weights (edges entirely outside the first k forests disappear).
        At most ``k * (n - 1)`` edges survive with total weight at most
        ``k * (n - 1)``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = graph.n
    if n == 0:
        return graph
    if not (0 <= start < n):
        raise ValueError(f"start vertex {start} out of range")

    xadj = graph.xadj.tolist()
    adjncy = graph.adjncy
    adjwgt = graph.adjwgt

    pq = make_pq("heap", n, bound=None)  # unbounded: a true MA scan
    visited = bytearray(n)
    r = [0] * n
    out_u: list[int] = []
    out_v: list[int] = []
    out_w: list[int] = []
    insert = pq.insert_or_raise
    pop = pq.pop_max

    next_restart = 0
    insert(start, 0)
    while True:
        if not len(pq):
            while next_restart < n and visited[next_restart]:
                next_restart += 1
            if next_restart == n:
                break
            insert(next_restart, 0)
            continue
        x, _ = pop()
        visited[x] = 1
        lo, hi = xadj[x], xadj[x + 1]
        for y, w in zip(adjncy[lo:hi].tolist(), adjwgt[lo:hi].tolist()):
            if visited[y]:
                continue
            ry = r[y]
            q = ry + w
            # weight of e inside forests 1..k
            kept = min(q, k) - min(ry, k)
            if kept > 0:
                out_u.append(x)
                out_v.append(y)
                out_w.append(kept)
            r[y] = q
            insert(y, q)

    return from_edges(n, out_u, out_v, out_w)


def certificate_summary(graph: Graph, certificate: Graph, k: int) -> dict:
    """Bookkeeping for experiments: how much did the certificate shrink."""
    return {
        "k": k,
        "original_edges": graph.m,
        "certificate_edges": certificate.m,
        "original_weight": graph.total_weight(),
        "certificate_weight": certificate.total_weight(),
        "edge_ratio": certificate.m / graph.m if graph.m else 1.0,
        "bound": k * max(graph.n - 1, 0),
    }
