"""ParCut — the paper's full parallel exact minimum-cut system (Algorithm 2).

::

    λ̂  ← VieCut(G);  G_C ← G
    while G_C has more than 2 vertices:
        λ̂ ← Parallel CAPFOREST(G_C, λ̂)
        if no edges marked contractible:
            λ̂ ← CAPFOREST(G_C, λ̂)          # sequential fallback
        G_C, λ̂ ← Parallel Graph Contract(G_C)
    return λ̂

plus the same Stoer–Wagner-phase progress guarantee used by
:func:`~repro.core.noi.noi_mincut` for the (rare) case where even the
sequential fallback marks nothing under an externally tightened bound.

The paper's variant names map to parameters as
``ParCutλ̂-BStack/BQueue/Heap`` ↔ ``pq_kind=...`` with ``use_viecut=True``.

Failure model
-------------
The round loop runs under the supervised execution runtime
(:mod:`~repro.runtime`).  Lost workers within a round are tolerated
outright — the survivors' marks remain exact (Lemma 3.2(1)) — and an
executor that loses *all* its workers degrades ``processes → threads →
serial`` (sticky for the rest of the solve), with every event recorded in
``stats["worker_events"]`` / ``stats["degradations"]``.  A round that
fails to shrink the contracted graph raises
:class:`~repro.runtime.NoProgressError` instead of looping forever.
"""

from __future__ import annotations

import numpy as np

from ..graph.components import connected_components
from ..graph.contract import compose_labels
from ..graph.csr import Graph
from ..graph.parallel_contract import parallel_contract_by_labels
from ..runtime.errors import NoProgressError, RuntimeFault
from ..runtime.faults import FaultPlan
from ..runtime.supervisor import call_with_degradation, raise_for_events
from .capforest import capforest
from .noi import _absorb
from .parallel_capforest import parallel_capforest
from .result import MinCutResult


def parallel_mincut(
    graph: Graph,
    *,
    workers: int = 4,
    pq_kind: str = "bqueue",
    executor: str = "serial",
    kernel: str = "scalar",
    use_viecut: bool = True,
    rng: np.random.Generator | int | None = None,
    compute_side: bool = True,
    start_method: str | None = None,
    timeout: float | None = None,
    on_worker_failure: str = "degrade",
    fault_plan: FaultPlan | None = None,
) -> MinCutResult:
    """Exact minimum cut via Algorithm 2 (ParCut).

    Parameters
    ----------
    workers:
        Number of parallel CAPFOREST regions ``p`` (and contraction chunks).
    pq_kind:
        Worker priority queue; the paper finds ``"bqueue"`` best in parallel.
    executor:
        ``"serial"`` (deterministic round-robin), ``"threads"`` or
        ``"processes"`` — see :mod:`~repro.core.parallel_capforest`.
    kernel:
        CAPFOREST relaxation kernel (``"scalar"`` or ``"vector"``), used by
        the parallel workers and both sequential fallbacks alike.
    start_method:
        Multiprocessing start method for ``executor="processes"`` (default:
        ``fork`` where available, else ``spawn``); the method actually used
        is reported in ``stats["start_method"]``.
    use_viecut:
        Seed ``λ̂`` with VieCut (Algorithm 2 line 1).  Disable to measure
        the contribution of the seed (ablation).
    timeout:
        Per-round deadline (seconds) for process workers; a finite backstop
        applies even when ``None`` (:data:`repro.runtime.DEFAULT_TIMEOUT`).
    on_worker_failure:
        ``"degrade"`` (default) tolerates lost workers and steps a fully
        failed executor down the ladder; ``"fail"`` raises the underlying
        :class:`~repro.runtime.RuntimeFault` on the first worker loss.
    fault_plan:
        Deterministic fault injection for testing (:class:`repro.runtime.FaultPlan`).
    """
    if on_worker_failure not in ("degrade", "fail"):
        raise ValueError(
            f"on_worker_failure must be 'degrade' or 'fail', got {on_worker_failure!r}"
        )
    n = graph.n
    if n < 2:
        raise ValueError(f"minimum cut requires at least 2 vertices, got {n}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    stats: dict = {
        "rounds": 0,
        "seq_fallback_rounds": 0,
        "sw_fallback_rounds": 0,
        "total_work": 0,
        "makespan_work": 0,
        "edges_scanned": 0,
        "vertices_scanned": 0,
        "pq_pushes": 0,
        "pq_updates": 0,
        "pq_skipped_updates": 0,
        "pq_pops": 0,
        "viecut_value": None,
        "worker_events": [],
        "degradations": [],
        "start_method": None,
    }
    algo = f"parcut-{pq_kind}" + ("" if use_viecut else "-noseed")

    ncomp, comp_labels = connected_components(graph)
    if ncomp > 1:
        side = comp_labels == 0 if compute_side else None
        return MinCutResult(0, side, n, algo, stats)

    v0, deg0 = graph.min_weighted_degree()
    best_value = deg0
    best_side: np.ndarray | None = None
    if compute_side:
        best_side = np.zeros(n, dtype=bool)
        best_side[v0] = True

    if use_viecut:
        from ..viecut.viecut import viecut

        # Algorithm 2 line 1 — the paper runs VieCut with all threads
        vc_workers = workers if executor in ("threads", "processes") else 1
        try:
            seed = viecut(graph, rng=rng, workers=vc_workers)
        except RuntimeFault as exc:
            if on_worker_failure == "fail":
                raise
            stats["degradations"].append(
                {"stage": "viecut", "from_workers": vc_workers, "to_workers": 1,
                 "reason": str(exc)}
            )
            seed = viecut(graph, rng=rng, workers=1)
        stats["viecut_value"] = seed.value
        if seed.value < best_value:
            best_value = seed.value
            if compute_side:
                best_side = seed.side.copy()

    lam = best_value
    labels = np.arange(n, dtype=np.int64)
    g = graph

    active_executor = executor
    while g.n > 2 and lam > 0:
        round_n = g.n

        def run_pass(exe, _g=g, _lam=lam):
            return parallel_capforest(
                _g, _lam, workers=workers, pq_kind=pq_kind, executor=exe, rng=rng,
                kernel=kernel, start_method=start_method,
                timeout=timeout, fault_plan=fault_plan,
            )

        def record_degradation(src, dst, exc):
            stats["degradations"].append(
                {"stage": "capforest", "round": stats["rounds"], "from": src, "to": dst,
                 "reason": str(exc)}
            )

        # degradation is sticky: once an executor has lost every worker we
        # stay on the simpler one rather than re-paying the failure per round
        pres, active_executor = call_with_degradation(
            run_pass, active_executor, policy=on_worker_failure, on_degrade=record_degradation
        )
        if pres.start_method is not None:
            stats["start_method"] = pres.start_method
        if pres.events:
            stats["worker_events"].extend(
                dict(ev, round=stats["rounds"]) for ev in pres.events
            )
            if on_worker_failure == "fail":
                raise_for_events(active_executor, pres.events)
        stats["rounds"] += 1
        stats["total_work"] += pres.total_work
        stats["makespan_work"] += pres.makespan_work
        for rep in pres.workers:
            stats["edges_scanned"] += rep.edges_scanned
            stats["vertices_scanned"] += rep.vertices_scanned
            stats["pq_pushes"] += rep.pq_stats.pushes
            stats["pq_updates"] += rep.pq_stats.updates
            stats["pq_skipped_updates"] += rep.pq_stats.skipped_updates
            stats["pq_pops"] += rep.pq_stats.pops
        uf = pres.uf
        if pres.lambda_hat < best_value:
            best_value = pres.lambda_hat
            lam = pres.lambda_hat
            if compute_side and pres.best_side is not None:
                best_side = pres.best_side[labels]

        if pres.n_marked == 0:
            # Algorithm 2 line 5: one sequential CAPFOREST pass
            stats["seq_fallback_rounds"] += 1
            seq = capforest(g, lam, pq_kind=pq_kind, bounded=True, rng=rng, kernel=kernel)
            _absorb(stats, seq)
            stats["total_work"] += seq.edges_scanned + seq.vertices_scanned
            stats["makespan_work"] += seq.edges_scanned + seq.vertices_scanned
            uf = seq.uf
            if seq.lambda_hat < best_value:
                best_value = seq.lambda_hat
                lam = seq.lambda_hat
                if compute_side:
                    mask = seq.best_cut_mask(g.n)
                    if mask is not None:
                        best_side = mask[labels]
            if seq.n_marked == 0:
                # Stoer–Wagner phase guarantee (see noi.py module docstring)
                stats["sw_fallback_rounds"] += 1
                sw = capforest(g, lam, pq_kind="heap", bounded=False, rng=rng, kernel=kernel)
                _absorb(stats, sw)
                if sw.lambda_hat < best_value:
                    best_value = sw.lambda_hat
                    lam = sw.lambda_hat
                    if compute_side:
                        mask = sw.best_cut_mask(g.n)
                        if mask is not None:
                            best_side = mask[labels]
                uf = sw.uf
                uf.union(sw.scan_order[-2], sw.scan_order[-1])

        block_labels = uf.labels()
        g, contraction = parallel_contract_by_labels(g, block_labels, workers=workers)
        labels = compose_labels(labels, contraction)
        if g.n >= round_n:
            # watchdog: the SW-phase fallback guarantees >= 1 union per
            # round, so a non-shrinking round means corrupt state — abort
            # rather than loop forever
            raise NoProgressError(
                f"contraction round {stats['rounds']} left the graph at {g.n} vertices"
            )
        if g.n < 2:
            break
        v, d = g.min_weighted_degree()
        if d < best_value:
            best_value = d
            if compute_side:
                best_side = labels == v
        lam = min(lam, d)

    stats["final_executor"] = active_executor
    if stats["makespan_work"] > 0:
        stats["modeled_speedup"] = stats["total_work"] / stats["makespan_work"]
    return MinCutResult(best_value, best_side if compute_side else None, n, algo, stats)
