"""ParCut — the paper's full parallel exact minimum-cut system (Algorithm 2).

::

    λ̂  ← VieCut(G);  G_C ← G
    while G_C has more than 2 vertices:
        λ̂ ← Parallel CAPFOREST(G_C, λ̂)
        if no edges marked contractible:
            λ̂ ← CAPFOREST(G_C, λ̂)          # sequential fallback
        G_C, λ̂ ← Parallel Graph Contract(G_C)
    return λ̂

plus the same Stoer–Wagner-phase progress guarantee used by
:func:`~repro.core.noi.noi_mincut` for the (rare) case where even the
sequential fallback marks nothing under an externally tightened bound.

The paper's variant names map to parameters as
``ParCutλ̂-BStack/BQueue/Heap`` ↔ ``pq_kind=...`` with ``use_viecut=True``.

Failure model
-------------
The round loop runs under the supervised execution runtime
(:mod:`~repro.runtime`).  Lost workers within a round are tolerated
outright — the survivors' marks remain exact (Lemma 3.2(1)) — and an
executor that loses *all* its workers degrades ``processes → threads →
serial`` (sticky for the rest of the solve), with every event recorded in
``stats["worker_events"]`` / ``stats["degradations"]``.  A round that
fails to shrink the contracted graph raises
:class:`~repro.runtime.NoProgressError` instead of looping forever.

Observability
-------------
``stats`` follows the versioned schema v2 contract
(:data:`repro.observability.PARCUT_STATS_KEYS`): **every** return path —
including the disconnected-graph and two-vertex early exits — emits the
identical key set, with ``stats["stats_schema"] == 2``, per-phase wall
times in ``stats["phase_seconds"]`` (viecut / capforest / seq_fallback /
sw_fallback / contract), and per-round ``stats["contraction_ratios"]``.
Passing ``tracer=`` additionally emits structured round/λ̂/worker events
(see :mod:`repro.observability`); the tracer is consulted once per round,
never per edge, so disabled runs cost nothing in the scan hot loops.
"""

from __future__ import annotations

import numpy as np

from ..graph.components import connected_components
from ..graph.contract import compose_labels
from ..graph.csr import Graph
from ..graph.parallel_contract import parallel_contract_by_labels
from ..kernels import resolve_kernel
from ..observability import PARCUT_PHASES, STATS_SCHEMA_VERSION, Tracer
from ..runtime.errors import NoProgressError, RuntimeFault
from ..runtime.faults import FaultPlan
from ..runtime.supervisor import call_with_degradation, raise_for_events
from ..utils.timers import Timer
from .capforest import capforest
from .noi import _absorb
from .parallel_capforest import parallel_capforest
from .result import MinCutResult


def _new_stats(
    pq_kind: str,
    executor: str,
    kernel: str,
    workers: int,
    kernel_resolved: str | None = None,
    kernel_fallback: str | None = None,
) -> dict:
    """The schema-v2 stats dict: every key present from the start."""
    return {
        "stats_schema": STATS_SCHEMA_VERSION,
        "pq_kind": pq_kind,
        "executor": executor,
        "kernel": kernel,
        "kernel_resolved": kernel_resolved if kernel_resolved is not None else kernel,
        "kernel_fallback": kernel_fallback,
        "workers": workers,
        "rounds": 0,
        "seq_fallback_rounds": 0,
        "sw_fallback_rounds": 0,
        "total_work": 0,
        "makespan_work": 0,
        "edges_scanned": 0,
        "vertices_scanned": 0,
        "pq_pushes": 0,
        "pq_updates": 0,
        "pq_skipped_updates": 0,
        "pq_pops": 0,
        "viecut_value": None,
        "worker_events": [],
        "degradations": [],
        "start_method": None,
        "final_executor": executor,
        "modeled_speedup": None,
        "contraction_ratios": [],
        "phase_seconds": {},
    }


def _finalize_stats(stats: dict, timer: Timer, final_executor: str) -> dict:
    """Seal the schema: phases, final executor, modeled speedup.

    Called on **every** return path so consumers never have to guess which
    keys exist (``stats["final_executor"]`` / ``stats["modeled_speedup"]``
    used to be missing on the early exits).
    """
    stats["phase_seconds"] = {ph: round(timer.total(ph), 6) for ph in PARCUT_PHASES}
    stats["final_executor"] = final_executor
    if stats["makespan_work"] > 0:
        stats["modeled_speedup"] = stats["total_work"] / stats["makespan_work"]
    return stats


def parallel_mincut(
    graph: Graph,
    *,
    workers: int = 4,
    pq_kind: str = "bqueue",
    executor: str = "serial",
    kernel: str = "scalar",
    use_viecut: bool = True,
    rng: np.random.Generator | int | None = None,
    compute_side: bool = True,
    start_method: str | None = None,
    timeout: float | None = None,
    on_worker_failure: str = "degrade",
    fault_plan: FaultPlan | None = None,
    tracer: Tracer | None = None,
) -> MinCutResult:
    """Exact minimum cut via Algorithm 2 (ParCut).

    Parameters
    ----------
    workers:
        Number of parallel CAPFOREST regions ``p`` (and contraction chunks).
    pq_kind:
        Worker priority queue; the paper finds ``"bqueue"`` best in parallel.
    executor:
        ``"serial"`` (deterministic round-robin), ``"threads"`` or
        ``"processes"`` — see :mod:`~repro.core.parallel_capforest`.
    kernel:
        CAPFOREST relaxation kernel (``"scalar"``, ``"vector"`` or
        ``"compiled"`` — :data:`repro.kernels.KERNELS`), used by the
        parallel workers, both sequential fallbacks, the VieCut seed, and
        contraction alike.  ``"compiled"`` resolves through
        :func:`repro.kernels.resolve_kernel`: when numba is unavailable it
        runs as ``"vector"``, with the requested name in
        ``stats["kernel"]``, the executed one in
        ``stats["kernel_resolved"]``, and the reason in
        ``stats["kernel_fallback"]`` (plus one ``kernel_fallback`` trace
        event when a tracer is given).
    start_method:
        Multiprocessing start method for ``executor="processes"`` (default:
        ``fork`` where available, else ``spawn``); the method actually used
        is reported in ``stats["start_method"]``.
    use_viecut:
        Seed ``λ̂`` with VieCut (Algorithm 2 line 1).  Disable to measure
        the contribution of the seed (ablation).
    timeout:
        Per-round deadline (seconds) for process workers; a finite backstop
        applies even when ``None`` (:data:`repro.runtime.DEFAULT_TIMEOUT`).
    on_worker_failure:
        ``"degrade"`` (default) tolerates lost workers and steps a fully
        failed executor down the ladder; ``"fail"`` raises the underlying
        :class:`~repro.runtime.RuntimeFault` on the first worker loss.
    fault_plan:
        Deterministic fault injection for testing (:class:`repro.runtime.FaultPlan`).
    tracer:
        Optional :class:`repro.observability.Tracer` receiving structured
        round / λ̂ / worker / degradation events.  ``None`` (default) emits
        nothing and adds no per-edge work.
    """
    if on_worker_failure not in ("degrade", "fail"):
        raise ValueError(
            f"on_worker_failure must be 'degrade' or 'fail', got {on_worker_failure!r}"
        )
    n = graph.n
    if n < 2:
        raise ValueError(f"minimum cut requires at least 2 vertices, got {n}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    requested_kernel = kernel
    kernel, kernel_fb = resolve_kernel(kernel, tracer=tracer)
    stats = _new_stats(
        pq_kind, executor, requested_kernel, workers,
        kernel_resolved=kernel, kernel_fallback=kernel_fb,
    )
    timer = Timer()
    algo = f"parcut-{pq_kind}" + ("" if use_viecut else "-noseed")

    if tracer is not None:
        tracer.emit(
            "solve_start",
            algorithm=algo,
            n=n,
            m=graph.m,
            workers=workers,
            pq_kind=pq_kind,
            executor=executor,
            kernel=requested_kernel,
            kernel_resolved=kernel,
            use_viecut=use_viecut,
        )

    ncomp, comp_labels = connected_components(graph)
    if ncomp > 1:
        side = comp_labels == 0 if compute_side else None
        if tracer is not None:
            tracer.lambda_update(0, "disconnected", components=ncomp)
            tracer.emit("solve_end", value=0, rounds=0)
        return MinCutResult(0, side, n, algo, _finalize_stats(stats, timer, executor))

    v0, deg0 = graph.min_weighted_degree()
    best_value = deg0
    best_side: np.ndarray | None = None
    if compute_side:
        best_side = np.zeros(n, dtype=bool)
        best_side[v0] = True
    if tracer is not None:
        tracer.lambda_update(deg0, "min-degree", vertex=int(v0))

    if use_viecut:
        from ..viecut.viecut import viecut

        # Algorithm 2 line 1 — the paper runs VieCut with all threads
        vc_workers = workers if executor in ("threads", "processes") else 1
        with timer.phase("viecut"):
            try:
                seed = viecut(
                    graph, rng=rng, workers=vc_workers, tracer=tracer, kernel=kernel
                )
            except RuntimeFault as exc:
                if on_worker_failure == "fail":
                    raise
                stats["degradations"].append(
                    {"stage": "viecut", "from_workers": vc_workers, "to_workers": 1,
                     "reason": str(exc)}
                )
                if tracer is not None:
                    tracer.emit(
                        "degradation", stage="viecut", from_workers=vc_workers,
                        to_workers=1, reason=str(exc),
                    )
                seed = viecut(graph, rng=rng, workers=1, tracer=tracer, kernel=kernel)
        stats["viecut_value"] = seed.value
        if seed.value < best_value:
            best_value = seed.value
            if compute_side:
                best_side = seed.side.copy()
            if tracer is not None:
                tracer.lambda_update(best_value, "viecut")

    lam = best_value
    labels = np.arange(n, dtype=np.int64)
    g = graph

    active_executor = executor
    while g.n > 2 and lam > 0:
        round_n = g.n
        round_idx = stats["rounds"]
        pq_before = (
            stats["pq_pushes"], stats["pq_updates"],
            stats["pq_skipped_updates"], stats["pq_pops"],
        )
        if tracer is not None:
            tracer.emit(
                "round_start", round=round_idx, n=g.n, m=g.m, lambda_hat=int(lam),
                executor=active_executor,
            )

        def run_pass(exe, _g=g, _lam=lam):
            return parallel_capforest(
                _g, _lam, workers=workers, pq_kind=pq_kind, executor=exe, rng=rng,
                kernel=kernel, start_method=start_method,
                timeout=timeout, fault_plan=fault_plan, tracer=tracer,
            )

        def record_degradation(src, dst, exc):
            stats["degradations"].append(
                {"stage": "capforest", "round": stats["rounds"], "from": src, "to": dst,
                 "reason": str(exc)}
            )

        # degradation is sticky: once an executor has lost every worker we
        # stay on the simpler one rather than re-paying the failure per round
        with timer.phase("capforest"):
            pres, active_executor = call_with_degradation(
                run_pass, active_executor, policy=on_worker_failure,
                on_degrade=record_degradation, tracer=tracer,
            )
        if pres.start_method is not None:
            stats["start_method"] = pres.start_method
        if pres.events:
            stats["worker_events"].extend(
                dict(ev, round=stats["rounds"]) for ev in pres.events
            )
            if on_worker_failure == "fail":
                raise_for_events(active_executor, pres.events)
        stats["rounds"] += 1
        stats["total_work"] += pres.total_work
        stats["makespan_work"] += pres.makespan_work
        for rep in pres.workers:
            stats["edges_scanned"] += rep.edges_scanned
            stats["vertices_scanned"] += rep.vertices_scanned
            stats["pq_pushes"] += rep.pq_stats.pushes
            stats["pq_updates"] += rep.pq_stats.updates
            stats["pq_skipped_updates"] += rep.pq_stats.skipped_updates
            stats["pq_pops"] += rep.pq_stats.pops
        uf = pres.uf
        if pres.lambda_hat < best_value:
            best_value = pres.lambda_hat
            lam = pres.lambda_hat
            if compute_side and pres.best_side is not None:
                best_side = pres.best_side[labels]
            if tracer is not None:
                tracer.lambda_update(best_value, "scan-cut", round=round_idx)

        if pres.n_marked == 0:
            # Algorithm 2 line 5: one sequential CAPFOREST pass
            stats["seq_fallback_rounds"] += 1
            with timer.phase("seq_fallback"):
                seq = capforest(
                    g, lam, pq_kind=pq_kind, bounded=True, rng=rng, kernel=kernel,
                    tracer=tracer,
                )
            _absorb(stats, seq)
            stats["total_work"] += seq.edges_scanned + seq.vertices_scanned
            stats["makespan_work"] += seq.edges_scanned + seq.vertices_scanned
            uf = seq.uf
            if seq.lambda_hat < best_value:
                best_value = seq.lambda_hat
                lam = seq.lambda_hat
                if compute_side:
                    mask = seq.best_cut_mask(g.n)
                    if mask is not None:
                        best_side = mask[labels]
                if tracer is not None:
                    tracer.lambda_update(best_value, "seq-fallback", round=round_idx)
            if seq.n_marked == 0:
                # Stoer–Wagner phase guarantee (see noi.py module docstring)
                stats["sw_fallback_rounds"] += 1
                with timer.phase("sw_fallback"):
                    sw = capforest(
                        g, lam, pq_kind="heap", bounded=False, rng=rng, kernel=kernel,
                        tracer=tracer,
                    )
                _absorb(stats, sw)
                if sw.lambda_hat < best_value:
                    best_value = sw.lambda_hat
                    lam = sw.lambda_hat
                    if compute_side:
                        mask = sw.best_cut_mask(g.n)
                        if mask is not None:
                            best_side = mask[labels]
                    if tracer is not None:
                        tracer.lambda_update(best_value, "sw-fallback", round=round_idx)
                uf = sw.uf
                uf.union(sw.scan_order[-2], sw.scan_order[-1])

        block_labels = uf.labels()
        with timer.phase("contract"):
            g, contraction = parallel_contract_by_labels(
                g, block_labels, workers=workers, kernel=kernel
            )
        labels = compose_labels(labels, contraction)
        ratio = g.n / round_n
        stats["contraction_ratios"].append(round(ratio, 6))
        if tracer is not None:
            tracer.emit(
                "round_end", round=round_idx, n_before=round_n, n_after=g.n,
                contraction_ratio=round(ratio, 6), lambda_hat=int(lam),
                marked=pres.n_marked,
                seq_fallback=stats["seq_fallback_rounds"] > 0
                and pres.n_marked == 0,
                pq_delta={
                    "pushes": stats["pq_pushes"] - pq_before[0],
                    "updates": stats["pq_updates"] - pq_before[1],
                    "skipped_updates": stats["pq_skipped_updates"] - pq_before[2],
                    "pops": stats["pq_pops"] - pq_before[3],
                },
            )
        if g.n >= round_n:
            # watchdog: the SW-phase fallback guarantees >= 1 union per
            # round, so a non-shrinking round means corrupt state — abort
            # rather than loop forever
            raise NoProgressError(
                f"contraction round {stats['rounds']} left the graph at {g.n} vertices"
            )
        if g.n < 2:
            break
        v, d = g.min_weighted_degree()
        if d < best_value:
            best_value = d
            if compute_side:
                best_side = labels == v
            if tracer is not None:
                tracer.lambda_update(best_value, "min-degree", round=round_idx)
        lam = min(lam, d)

    _finalize_stats(stats, timer, active_executor)
    if tracer is not None:
        tracer.emit(
            "solve_end", value=int(best_value), rounds=stats["rounds"],
            final_executor=active_executor,
            phase_seconds=stats["phase_seconds"],
        )
    return MinCutResult(best_value, best_side if compute_side else None, n, algo, stats)
