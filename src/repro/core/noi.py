"""Exact minimum cut via repeated CAPFOREST contraction (NOI, §2.3/§3.1).

The driver loop of Nagamochi, Ono and Ibaraki: run CAPFOREST to certify
contractible edges, contract them, tighten ``λ̂`` with every cut the scan
exposed plus the trivial (minimum-weighted-degree) cut of the contracted
graph, and repeat until at most two supervertices remain.  Every λ̂
improvement remembers a concrete cut side in *original* vertex ids, so the
result is a certified bipartition, not just a number.

Variants (the paper's experimental section):

* ``bounded=False, pq_kind="heap"``  →  **NOI-HNSS** (unbounded priorities)
* ``bounded=True``, ``pq_kind ∈ {"bstack", "bqueue", "heap"}``  →
  **NOIλ̂-BStack / NOIλ̂-BQueue / NOIλ̂-Heap** (§3.1.2–3.1.3)
* pass ``initial_bound``/``initial_side`` from VieCut  →  **NOI-…-VieCut**

Progress guarantee: a *complete* CAPFOREST pass usually marks at least one
edge, but with an externally supplied λ̂ this can fail; the driver then
falls back to one maximum-adjacency phase and contracts the last two
scanned vertices, which is safe by the Stoer–Wagner phase property (the
trivial cut of the last vertex — already captured by the α tracking — is a
minimum cut separating the last two vertices, so after λ̂ absorbs it the
pair's connectivity is ≥ λ̂).
"""

from __future__ import annotations

import numpy as np

from ..graph.components import connected_components
from ..graph.contract import compose_labels, contract_by_union_find
from ..graph.csr import Graph
from ..kernels import resolve_kernel
from .capforest import capforest
from .result import MinCutResult


def noi_mincut(
    graph: Graph,
    *,
    pq_kind: str = "heap",
    bounded: bool = True,
    kernel: str = "scalar",
    initial_bound: int | None = None,
    initial_side: np.ndarray | None = None,
    rng: np.random.Generator | int | None = None,
    compute_side: bool = True,
    sparsify: bool = False,
    trace: bool = False,
    tracer=None,
) -> MinCutResult:
    """Exact minimum cut of ``graph``.

    Parameters
    ----------
    graph:
        Weighted undirected graph with ``n >= 2``.
    pq_kind, bounded:
        CAPFOREST configuration (see module docstring for the paper's
        variant names).
    kernel:
        CAPFOREST relaxation kernel, ``"scalar"``, ``"vector"`` or
        ``"compiled"`` (:data:`repro.kernels.KERNELS`).  Results are
        identical; only the speed differs.  A ``"compiled"`` request
        degrades to ``"vector"`` when numba is unavailable — the stats
        record the requested name under ``"kernel"``, the one that ran
        under ``"kernel_resolved"``, and the reason (or ``None``) under
        ``"kernel_fallback"``.
    initial_bound, initial_side:
        An externally known cut (value and optional side mask), e.g. from
        VieCut.  Must be the capacity of a real cut (any valid upper bound
        keeps the algorithm exact — Lemma 3.1).
    rng:
        Seed or generator for CAPFOREST start vertices.
    compute_side:
        Track the cut side (small overhead; disable for pure timing runs).
    sparsify:
        Replace the input by its Nagamochi–Ibaraki sparse certificate with
        ``k = λ̂ + 1`` before contracting (§2.3;
        :mod:`repro.core.certificates`).  Preserves every cut of capacity
        ≤ λ̂ — in particular the minimum cut and its sides — so the result
        stays exact; pays off on graphs much denser than their cut bound.
    trace:
        Record a per-round log in ``result.stats["trace"]``: graph size,
        current λ̂, marks, and fallback usage per contraction round — the
        solver's execution narrative, for debugging and teaching.
    tracer:
        Optional :class:`repro.observability.Tracer` receiving structured
        round / λ̂-provenance events (round granularity; ``None`` adds no
        per-edge work).  Orthogonal to ``trace``, which keeps its
        in-stats round log for backwards compatibility.

    Returns
    -------
    MinCutResult
        Exact minimum cut value, with a certified side when requested and
        available.
    """
    n = graph.n
    if n < 2:
        raise ValueError(f"minimum cut requires at least 2 vertices, got {n}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    requested_kernel = kernel
    kernel, kernel_fb = resolve_kernel(kernel, tracer=tracer)
    stats: dict = {
        "rounds": 0,
        "fallback_rounds": 0,
        "pq_pushes": 0,
        "pq_updates": 0,
        "pq_skipped_updates": 0,
        "pq_pops": 0,
        "edges_scanned": 0,
        "vertices_scanned": 0,
        "pq_kind": pq_kind,
        "bounded": bounded,
        "kernel": requested_kernel,
        "kernel_resolved": kernel,
        "kernel_fallback": kernel_fb,
    }
    algo = _variant_name(pq_kind, bounded, initial_bound is not None)
    if tracer is not None:
        tracer.emit(
            "solve_start", algorithm=algo, n=n, m=graph.m,
            pq_kind=pq_kind, bounded=bounded, kernel=kernel,
        )

    # Disconnected graphs have minimum cut 0: one component versus the rest.
    ncomp, comp_labels = connected_components(graph)
    if ncomp > 1:
        side = comp_labels == 0 if compute_side else None
        if tracer is not None:
            tracer.lambda_update(0, "disconnected", components=ncomp)
            tracer.emit("solve_end", value=0, rounds=0)
        return MinCutResult(0, side, n, algo, stats)

    # Initial bound: trivial cut of the minimum-weighted-degree vertex,
    # optionally improved by the caller-supplied (e.g. VieCut) cut.
    v0, deg0 = graph.min_weighted_degree()
    best_value = deg0
    best_side: np.ndarray | None = None
    if compute_side:
        best_side = np.zeros(n, dtype=bool)
        best_side[v0] = True
    if tracer is not None:
        tracer.lambda_update(best_value, "min-degree", vertex=int(v0))
    if initial_bound is not None:
        if initial_bound < 0:
            raise ValueError("initial_bound must be non-negative")
        if initial_bound < best_value:
            best_value = initial_bound
            best_side = initial_side.copy() if (compute_side and initial_side is not None) else None
            if tracer is not None:
                tracer.lambda_update(best_value, "viecut")

    lam = best_value
    labels = np.arange(n, dtype=np.int64)  # original vertex -> current supervertex
    g = graph

    if sparsify and g.m > 0:
        from .certificates import sparse_certificate

        # k = λ̂+1 keeps every cut of capacity <= λ̂ at its exact value —
        # the minimum cut (<= λ̂ by definition of the bound) survives intact
        g = sparse_certificate(g, lam + 1, start=int(rng.integers(n)))
        stats["sparsified_m"] = g.m

    if trace:
        stats["trace"] = []

    while g.n > 2 and lam > 0:
        round_n, round_m, lam_in = g.n, g.m, lam
        if tracer is not None:
            tracer.emit(
                "round_start", round=stats["rounds"] + 1, n=round_n, m=round_m,
                lambda_hat=lam_in,
            )
        res = capforest(
            g, lam, pq_kind=pq_kind, bounded=bounded, rng=rng, kernel=kernel,
            tracer=tracer,
        )
        stats["rounds"] += 1
        _absorb(stats, res)
        uf = res.uf
        if res.lambda_hat < best_value:
            best_value = res.lambda_hat
            lam = res.lambda_hat
            if compute_side:
                mask = res.best_cut_mask(g.n)
                best_side = mask[labels] if mask is not None else best_side
            if tracer is not None:
                tracer.lambda_update(best_value, "scan-cut", round=stats["rounds"])
        if res.n_marked == 0:
            # Stoer–Wagner phase fallback: one unbounded maximum-adjacency
            # scan; contract its last two vertices (safe, see module doc).
            stats["fallback_rounds"] += 1
            sw = capforest(
                g, lam, pq_kind="heap", bounded=False, rng=rng, kernel=kernel,
                tracer=tracer,
            )
            _absorb(stats, sw)
            if sw.lambda_hat < best_value:
                best_value = sw.lambda_hat
                lam = sw.lambda_hat
                if compute_side:
                    mask = sw.best_cut_mask(g.n)
                    best_side = mask[labels] if mask is not None else best_side
                if tracer is not None:
                    tracer.lambda_update(best_value, "sw-fallback", round=stats["rounds"])
            uf = sw.uf
            order = sw.scan_order
            uf.union(order[-2], order[-1])
        g, contraction = contract_by_union_find(g, uf, kernel=kernel)
        labels = compose_labels(labels, contraction)
        if trace:
            stats["trace"].append(
                {
                    "round": stats["rounds"],
                    "n": round_n,
                    "m": round_m,
                    "lambda_in": lam_in,
                    "lambda_out": lam,
                    "marks": round_n - g.n,
                    "fallback": uf is not res.uf,
                }
            )
        if tracer is not None:
            tracer.emit(
                "round_end", round=stats["rounds"], n_before=round_n,
                n_after=g.n, lambda_hat=lam,
                contraction_ratio=round(round_n / g.n, 6) if g.n else float(round_n),
            )
        if g.n < 2:
            # every vertex collapsed into one block: all remaining candidate
            # cuts were already recorded before the contraction
            break
        # trivial-cut update on the contracted graph (collapsed vertices can
        # expose cuts below λ̂ — Algorithm 2, "parallel graph contraction")
        v, d = g.min_weighted_degree()
        if d < best_value:
            best_value = d
            if compute_side:
                best_side = labels == v
            if tracer is not None:
                tracer.lambda_update(best_value, "min-degree", vertex=int(v))
        lam = min(lam, d)

    if tracer is not None:
        tracer.emit("solve_end", value=best_value, rounds=stats["rounds"])
    return MinCutResult(best_value, best_side if compute_side else None, n, algo, stats)


def _absorb(stats: dict, res) -> None:
    pq = res.pq_stats
    stats["pq_pushes"] += pq.pushes
    stats["pq_updates"] += pq.updates
    stats["pq_skipped_updates"] += pq.skipped_updates
    stats["pq_pops"] += pq.pops
    stats["edges_scanned"] += res.edges_scanned
    stats["vertices_scanned"] += res.vertices_scanned


def _variant_name(pq_kind: str, bounded: bool, seeded: bool) -> str:
    if not bounded:
        base = "noi-hnss"
    else:
        base = f"noi-lambda-{pq_kind}"
    return base + ("-viecut" if seeded else "")
