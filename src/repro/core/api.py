"""Public facade: :func:`minimum_cut` and the algorithm registry.

Every solver in the package — the paper's contributions and the baselines it
evaluates against — is reachable through one entry point::

    from repro import minimum_cut
    result = minimum_cut(graph)                       # engineered default
    result = minimum_cut(graph, algorithm="hao-orlin")  # a baseline
    result = minimum_cut(graph, algorithm="parcut", workers=8)

Algorithm names (paper variant in brackets):

=================  ==========================================================
``"noi"``          NOI with bounded heap queue [NOIλ̂-Heap]; kwargs:
                   ``pq_kind``, ``bounded``, ``initial_bound``, ``kernel``
``"noi-hnss"``     NOI, unbounded heap [NOI-HNSS baseline]
``"noi-viecut"``   VieCut seed + bounded NOI [NOIλ̂-Heap-VieCut] — the
                   paper's fastest sequential configuration and the default
``"parcut"``       Parallel system, Algorithm 2 [ParCutλ̂-BQueue]; kwargs:
                   ``workers``, ``executor``, ``pq_kind``, ``kernel``,
                   ``use_viecut``, ``start_method``, plus the
                   supervised-runtime controls ``timeout`` and
                   ``on_worker_failure`` (``"degrade"``/``"fail"``) — see
                   :mod:`repro.runtime`
``"viecut"``       Inexact multilevel bound (fast, usually exact, no
                   guarantee)
``"stoer-wagner"`` Stoer–Wagner baseline
``"hao-orlin"``    Hao–Orlin push-relabel baseline [HO-CGKLS]
``"karger-stein"`` Randomized recursive contraction (Monte Carlo)
``"karger-nlt"``   Exact tree-packing solver (Karger near-linear-time
                   family): greedy spanning-tree packing + per-tree minimum
                   1-/2-respecting cuts; kwargs: ``rng`` (int seed —
                   deterministic and engine-cacheable), ``trees_per_round``,
                   ``executor``, ``workers``, ``timeout``,
                   ``on_worker_failure`` — see :mod:`repro.treepack`
``"matula"``       Matula (2+ε)-approximation (paper §5 future work)
=================  ==========================================================

Unknown algorithm names raise :class:`UnknownAlgorithmError` — a
``ValueError`` subclass — uniformly across this facade, the engine, the
CLI, and the service (the service maps it to HTTP 400).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..graph.csr import Graph
from .result import MinCutResult


def _noi(graph: Graph, **kw) -> MinCutResult:
    from .noi import noi_mincut

    return noi_mincut(graph, **kw)


def _noi_hnss(graph: Graph, **kw) -> MinCutResult:
    from .noi import noi_mincut

    kw.setdefault("bounded", False)
    kw.setdefault("pq_kind", "heap")
    return noi_mincut(graph, **kw)


def _noi_viecut(graph: Graph, **kw) -> MinCutResult:
    from ..viecut.viecut import viecut
    from .noi import noi_mincut

    rng = kw.pop("rng", None)
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    compute_side = kw.get("compute_side", True)
    seed = viecut(
        graph, rng=rng, tracer=kw.get("tracer"),
        kernel=kw.get("kernel", "scalar"),
    )
    res = noi_mincut(
        graph,
        initial_bound=seed.value,
        initial_side=seed.side if compute_side else None,
        rng=rng,
        **kw,
    )
    res.stats["viecut_value"] = seed.value
    return res


def _parcut(graph: Graph, **kw) -> MinCutResult:
    from .mincut import parallel_mincut

    return parallel_mincut(graph, **kw)


def _viecut(graph: Graph, **kw) -> MinCutResult:
    from ..viecut.viecut import viecut

    kw.pop("compute_side", None)
    return viecut(graph, **kw)


def _stoer_wagner(graph: Graph, **kw) -> MinCutResult:
    from ..baselines.stoer_wagner import stoer_wagner

    return stoer_wagner(graph, **kw)


def _hao_orlin(graph: Graph, **kw) -> MinCutResult:
    from ..baselines.hao_orlin import hao_orlin

    return hao_orlin(graph, **kw)


def _karger_stein(graph: Graph, **kw) -> MinCutResult:
    from ..baselines.karger_stein import karger_stein

    return karger_stein(graph, **kw)


def _karger_nlt(graph: Graph, **kw) -> MinCutResult:
    from ..treepack.solver import karger_nlt_mincut

    return karger_nlt_mincut(graph, **kw)


def _matula(graph: Graph, **kw) -> MinCutResult:
    from ..baselines.matula import matula_approx

    return matula_approx(graph, **kw)


ALGORITHMS: dict[str, Callable[..., MinCutResult]] = {
    "noi": _noi,
    "noi-hnss": _noi_hnss,
    "noi-viecut": _noi_viecut,
    "parcut": _parcut,
    "viecut": _viecut,
    "stoer-wagner": _stoer_wagner,
    "hao-orlin": _hao_orlin,
    "karger-stein": _karger_stein,
    "karger-nlt": _karger_nlt,
    "matula": _matula,
}

#: algorithms guaranteed to return the exact minimum cut
EXACT_ALGORITHMS = (
    "noi", "noi-hnss", "noi-viecut", "parcut", "stoer-wagner", "hao-orlin",
    "karger-nlt",
)

#: algorithms that accept ``tracer=`` (a :class:`repro.observability.Tracer`)
#: and emit structured trace events; the CLI's ``--trace`` is limited to these
TRACEABLE_ALGORITHMS = ("noi", "noi-hnss", "noi-viecut", "parcut", "viecut", "karger-nlt")


class UnknownAlgorithmError(ValueError):
    """``algorithm`` does not name a registry entry.

    One error type for every surface: :func:`minimum_cut`, the engine's
    ``submit``/``update`` paths, the CLI (exit code 2), and the service
    (HTTP 400) — previously the facade raised a bare ``ValueError`` while
    other layers re-derived their own, so callers could not catch the
    condition portably.
    """

    def __init__(self, algorithm) -> None:
        super().__init__(
            f"unknown algorithm {algorithm!r}; available: {sorted(ALGORITHMS)}"
        )
        self.algorithm = algorithm


def minimum_cut(
    graph: Graph,
    algorithm: str = "noi-viecut",
    *,
    engine=None,
    all_cuts: bool = False,
    most_balanced: bool = False,
    **kwargs,
) -> MinCutResult:
    """Compute a minimum cut of ``graph``.

    Parameters
    ----------
    graph:
        Weighted undirected graph with at least two vertices.  Disconnected
        graphs return a cut of value 0.
    algorithm:
        Registry name (see module docstring).  The default,
        ``"noi-viecut"``, is the configuration the paper finds fastest
        sequentially on almost all instances.
    engine:
        Optional :class:`repro.engine.SolverEngine`.  When given, the solve
        is routed through the engine — served from its result cache when
        the (graph, algorithm, kwargs) key hits, otherwise dispatched to
        its persistent worker pool.  Engine solves restrict kwargs to
        canonicalisable values (``rng`` must be an integer seed, no
        ``tracer=``); pass the tracer to the engine itself instead.
    all_cuts:
        Additionally build the cactus of **all** minimum cuts
        (:mod:`repro.cactus`) and attach it as ``result.cactus`` — it
        answers ``num_min_cuts()``, enumerates every cut, selects the
        most balanced one, and yields per-vertex ``in_cut`` membership
        arrays.  Exact algorithms only (the cactus construction needs the
        true λ).
    most_balanced:
        Implies ``all_cuts``; additionally *replaces* ``result.side``
        with the minimum cut of smallest side-size imbalance (VieCut's
        ``find_most_balanced_cut``) and records the chosen sizes in
        ``result.stats["most_balanced"]``.
    **kwargs:
        Forwarded to the selected solver (e.g. ``rng=...`` for
        reproducibility, ``pq_kind=...``, ``workers=...``;
        ``kernel="scalar"|"vector"|"compiled"`` selects the CAPFOREST
        relaxation kernel for the NOI/ParCut solvers — identical results;
        the vector kernel batches arc relaxations through numpy, the
        compiled tier runs them as numba-jitted machine code (falling
        back to vector, with a ``kernel_fallback`` stats note, when numba
        is unavailable — see :mod:`repro.kernels`); for the
        parallel solvers also ``timeout=...`` and
        ``on_worker_failure="degrade"|"fail"``).  Solvers with parallel
        executors never hang on worker failure: lost workers are recorded
        in ``result.stats["worker_events"]`` and a failed executor
        degrades ``processes → threads → serial``
        (``stats["degradations"]``) unless ``on_worker_failure="fail"``,
        in which case a :class:`repro.runtime.RuntimeFault` subclass is
        raised.  Algorithms in :data:`TRACEABLE_ALGORITHMS` additionally
        accept ``tracer=`` (a :class:`repro.observability.Tracer`) and
        emit structured span/λ̂-provenance events.

    Returns
    -------
    MinCutResult
        For algorithms in :data:`EXACT_ALGORITHMS` the value is the exact
        minimum cut; ``viecut``/``matula`` return certified upper bounds
        and ``karger-stein`` is correct with high probability.
    """
    try:
        solver = ALGORITHMS[algorithm]
    except KeyError:
        raise UnknownAlgorithmError(algorithm) from None
    all_cuts = all_cuts or most_balanced
    if all_cuts and algorithm not in EXACT_ALGORITHMS:
        raise ValueError(
            f"all_cuts/most_balanced require an exact algorithm, got {algorithm!r}"
        )
    if engine is not None:
        return engine.solve(
            graph, algorithm, all_cuts=all_cuts, most_balanced=most_balanced,
            **kwargs,
        )
    res = solver(graph, **kwargs)
    if all_cuts:
        attach_cactus(graph, res, most_balanced=most_balanced,
                      tracer=kwargs.get("tracer"))
    return res


def attach_cactus(
    graph: Graph, res: MinCutResult, *, most_balanced: bool = False, tracer=None
) -> MinCutResult:
    """Build the all-min-cuts cactus for a solved result and attach it.

    Mutates ``res`` in place (and returns it): sets ``res.cactus``, records
    ``stats["num_min_cuts"]``, and — when ``most_balanced`` — swaps
    ``res.side`` for the most balanced minimum cut, recording the chosen
    side sizes under ``stats["most_balanced"]``.
    """
    from ..cactus import build_cactus

    cactus = build_cactus(graph, int(res.value), tracer=tracer)
    res.cactus = cactus
    res.stats["num_min_cuts"] = cactus.num_min_cuts()
    if most_balanced:
        mask, info = cactus.most_balanced_cut()
        res.side = mask
        res.stats["most_balanced"] = info
        if tracer is not None:
            tracer.emit("cactus_query", query="most_balanced_cut",
                        num_cuts=cactus.num_min_cuts(), **info)
    return res
