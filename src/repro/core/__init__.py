"""The paper's contribution: CAPFOREST engineering, NOI driver, ParCut."""

from .api import ALGORITHMS, EXACT_ALGORITHMS, minimum_cut
from .capforest import KERNELS, CapforestResult, capforest
from .certificates import certificate_summary, sparse_certificate
from .connectivity import (
    edge_connectivity,
    enumerate_minimum_cuts,
    is_k_edge_connected,
    k_edge_connected_subgraphs,
)
from .mincut import parallel_mincut
from .noi import noi_mincut
from .parallel_capforest import (
    EXECUTORS,
    ParallelCapforestResult,
    WorkerReport,
    parallel_capforest,
)
from .result import MinCutResult

__all__ = [
    "ALGORITHMS",
    "EXACT_ALGORITHMS",
    "minimum_cut",
    "KERNELS",
    "CapforestResult",
    "capforest",
    "certificate_summary",
    "sparse_certificate",
    "edge_connectivity",
    "enumerate_minimum_cuts",
    "is_k_edge_connected",
    "k_edge_connected_subgraphs",
    "parallel_mincut",
    "noi_mincut",
    "EXECUTORS",
    "ParallelCapforestResult",
    "WorkerReport",
    "parallel_capforest",
    "MinCutResult",
]
