"""Result type shared by every minimum-cut solver in the package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..graph.csr import Graph

if TYPE_CHECKING:
    from ..cactus import Cactus


@dataclass
class MinCutResult:
    """A (claimed) minimum cut: its value, one side, and solver metadata.

    The ``side`` mask certifies the value: :meth:`verify` recomputes the
    capacity of the induced bipartition from scratch.  Exact solvers always
    attach a side; inexact ones (VieCut) attach the best cut they found.
    """

    #: capacity of the cut
    value: int
    #: boolean mask over the graph's vertices; ``True`` marks one side.
    #: ``None`` only when the caller asked the solver to skip side tracking.
    side: np.ndarray | None
    #: number of vertices of the input graph
    n: int
    #: solver label, e.g. ``"noi-heap-bounded"`` or ``"parcut-bqueue"``
    algorithm: str
    #: solver-specific counters (rounds, PQ operations, edges scanned, ...)
    stats: dict = field(default_factory=dict)
    #: cactus of *all* minimum cuts; attached only when the solve was asked
    #: for it (``minimum_cut(..., all_cuts=True)``)
    cactus: Cactus | None = None

    def partition(self) -> tuple[list[int], list[int]]:
        """The two vertex sets of the cut (requires a side mask)."""
        if self.side is None:
            raise ValueError("this result carries no cut side")
        inside = np.flatnonzero(self.side)
        outside = np.flatnonzero(~self.side)
        return inside.tolist(), outside.tolist()

    def smaller_side(self) -> list[int]:
        """Vertices of the smaller side of the cut (requires a side mask).

        When both sides have equal size, the ``True`` side of the mask is
        returned — the same tie-break both the CLI and the service always
        used.
        """
        return min(self.partition(), key=len)

    def num_min_cuts(self) -> int | None:
        """Number of distinct minimum cuts, when the cactus was built."""
        return None if self.cactus is None else self.cactus.num_min_cuts()

    def verify(self, graph: Graph) -> bool:
        """Recompute the cut capacity from the side mask and compare.

        Also checks both sides are non-empty (a cut must bipartition V).
        """
        if self.side is None:
            raise ValueError("this result carries no cut side")
        k = int(self.side.sum())
        if k == 0 or k == self.n:
            return False
        return graph.cut_value(self.side) == self.value

    def __repr__(self) -> str:
        side = "?" if self.side is None else int(self.side.sum())
        return (
            f"MinCutResult(value={self.value}, |A|={side}, n={self.n}, "
            f"algorithm={self.algorithm!r})"
        )
