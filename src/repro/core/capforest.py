"""Sequential CAPFOREST (Algorithm 3 of the paper; Nagamochi–Ono–Ibaraki).

CAPFOREST performs a maximum-adjacency-style scan: it repeatedly pops the
unvisited vertex ``x`` most strongly connected to the visited set (priority
``r(x)``), and for every edge ``(x, y)`` to an unvisited ``y`` computes the
connectivity certificate ``q(e) = r(y) + c(e)``, a lower bound on
``λ(G, x, y)``.  Edges with ``q(e) ≥ λ̂`` connect vertices that no cut
smaller than ``λ̂`` separates, so they are *marked contractible* (a union in
a union–find).  Following NOI, only edges satisfying
``r(y) < λ̂ ≤ r(y) + c(e)`` are unioned — an equivalent but cheaper rule.

Along the way the scan tracks ``α``, the capacity of the cut between the
scanned prefix and the rest; each of those is a real cut of ``G``, so
``λ̂ ← min(λ̂, α)`` (lines 8–9 of Algorithm 3).  The best scanned prefix is
remembered so callers can recover an actual cut side, not just its value.

This implementation adds the paper's two sequential optimizations:

* **bounded priorities** (§3.1.2, Lemma 3.1): with ``bounded=True`` the
  priority queue clamps keys to ``λ̂`` and skips updates for vertices
  already at the clamp, eliminating most queue traffic on hub-heavy graphs;
* **pluggable queue implementations** (§3.1.3): ``pq_kind`` selects
  BStack / BQueue / Heap, which changes the tie-breaking scan order and
  hence which (equally safe) edges get marked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datastructures.pq import PQStats, make_pq
from ..datastructures.union_find import UnionFind
from ..graph.csr import Graph

#: Largest λ̂ for which a bucket queue is still sensible; above this the
#: bucket array (λ̂ + 1 slots, one per possible priority) would dwarf the
#: graph and the factory transparently falls back to the binary heap.
MAX_BUCKET_BOUND = 1 << 22


@dataclass
class CapforestResult:
    """Outcome of one CAPFOREST pass."""

    #: marked contractible edges, as a union–find partition over the vertices
    uf: UnionFind
    #: number of successful unions (0 means the pass made no progress)
    n_marked: int
    #: smallest cut value discovered (min of the input λ̂ and all scan cuts α);
    #: with ``fixed_bound=True`` this stays at the input value
    lambda_hat: int
    #: smallest scan cut α observed (always a real cut of G), or None if the
    #: scan never completed a proper prefix — tracked even under fixed_bound
    min_alpha: int | None
    #: vertices in pop order; ``scan_order[:best_prefix]`` is a side of a cut
    #: of value ``min_alpha`` whenever ``best_prefix > 0``
    scan_order: list[int]
    #: prefix length realising ``min_alpha`` (0 = no proper prefix recorded)
    best_prefix: int
    #: priority-queue operation counters (drives the Figure 2/3 analysis)
    pq_stats: PQStats
    #: number of vertices popped
    vertices_scanned: int
    #: number of arcs relaxed (edges scanned towards unvisited vertices)
    edges_scanned: int
    #: optional per-edge certificates ``(u, v, q, lambda_at_scan, marked)``
    certificates: list[tuple[int, int, int, int, bool]] = field(default_factory=list)

    def best_cut_mask(self, n: int) -> np.ndarray | None:
        """Boolean side mask of the best scan cut (value ``min_alpha``), or
        ``None`` if no proper scan prefix was recorded."""
        if self.best_prefix <= 0:
            return None
        mask = np.zeros(n, dtype=bool)
        mask[self.scan_order[: self.best_prefix]] = True
        return mask


def capforest(
    graph: Graph,
    lambda_hat: int,
    *,
    pq_kind: str = "heap",
    bounded: bool = True,
    start: int | None = None,
    rng: np.random.Generator | int | None = None,
    scan_all: bool = True,
    record_certificates: bool = False,
    fixed_bound: bool = False,
) -> CapforestResult:
    """Run one sequential CAPFOREST pass.

    Parameters
    ----------
    graph:
        Input graph (weights are positive integers).
    lambda_hat:
        Current upper bound ``λ̂`` on the minimum cut (e.g. the minimum
        weighted degree, or VieCut's result).  Must be non-negative.
    pq_kind:
        ``"bstack"``, ``"bqueue"`` or ``"heap"`` (§3.1.3).
    bounded:
        Apply the Lemma 3.1 priority clamp.  ``False`` reproduces the
        unbounded baseline (``NOI-HNSS``) and requires ``pq_kind="heap"``.
    start:
        Start vertex; default: drawn from ``rng`` (paper: random vertex).
    rng:
        Source of randomness for the start vertex (default: fresh default
        generator).
    scan_all:
        Restart from an arbitrary unvisited vertex when the queue drains
        with vertices left (disconnected graphs / safety in drivers).  Each
        restart first registers the crossing-free cut ``α = 0``.
    record_certificates:
        Capture ``(u, v, q, λ̂_at_scan, marked)`` per scanned edge for
        verification tests (costs memory; off by default).
    fixed_bound:
        Keep the marking threshold at the input ``lambda_hat`` for the
        whole scan instead of tightening it with every scan cut α.  Matula's
        approximation runs CAPFOREST with a deliberately *invalid* bound
        (below λ) where the usual tightening would be wrong; scan cuts are
        still tracked in ``min_alpha`` since each α is a real cut.

    Notes
    -----
    The marking rule uses the *current* (monotonically decreasing) ``λ̂``,
    so every marked edge ``e`` satisfies ``λ(G, e) ≥ λ̂_at_scan ≥ λ̂_final``
    — contraction never destroys a cut smaller than the returned bound.
    """
    if lambda_hat < 0:
        raise ValueError(f"lambda_hat must be non-negative, got {lambda_hat}")
    if not bounded and pq_kind != "heap":
        raise ValueError("unbounded CAPFOREST requires the heap queue (bucket queues need a bound)")
    n = graph.n
    uf = UnionFind(n)
    if n == 0:
        return CapforestResult(uf, 0, lambda_hat, None, [], 0, PQStats(), 0, 0)
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    if start is None:
        start = int(rng.integers(n))
    elif not (0 <= start < n):
        raise ValueError(f"start vertex {start} out of range")

    if bounded:
        effective_kind = pq_kind if lambda_hat <= MAX_BUCKET_BOUND else "heap"
        pq = make_pq(effective_kind, n, bound=lambda_hat)
    else:
        pq = make_pq("heap", n, bound=None)

    # Python-int copies of the CSR arrays: the scan loop below touches
    # single elements millions of times, where list indexing beats numpy
    # scalar indexing ~3x (see the hpc-parallel profiling guide).
    xadj = graph.xadj.tolist()
    adjncy = graph.adjncy
    adjwgt = graph.adjwgt
    wdeg = graph.weighted_degrees().tolist()

    visited = bytearray(n)
    r = [0] * n
    lam = lambda_hat
    alpha = 0
    min_alpha: int | None = None
    scan_order: list[int] = []
    best_prefix = 0
    n_marked = 0
    edges_scanned = 0
    certificates: list[tuple[int, int, int, int, bool]] = []
    union = uf.union
    insert = pq.insert_or_raise
    pop = pq.pop_max

    insert(start, 0)
    next_restart = 0  # cursor for scan_all restarts
    while True:
        if not len(pq):
            if not scan_all:
                break
            # queue drained with vertices left: the scanned/unscanned cut has
            # no crossing edges, i.e. α == 0 — a real cut of value 0.
            while next_restart < n and visited[next_restart]:
                next_restart += 1
            if next_restart == n:
                break
            if scan_order and (min_alpha is None or 0 < min_alpha):
                min_alpha = 0
                best_prefix = len(scan_order)
                if not fixed_bound:
                    lam = 0
            insert(next_restart, 0)

        x, _ = pop()
        if len(scan_order) >= n:
            # every vertex is inserted at most once, so a scan popping more
            # than n times is running on corrupt queue state — abort rather
            # than loop (and mark) forever on garbage
            from ..runtime.errors import NoProgressError

            raise NoProgressError(f"scan popped more than {n} vertices")
        rx = r[x]
        alpha += wdeg[x] - 2 * rx
        visited[x] = 1
        scan_order.append(x)
        if len(scan_order) < n and (min_alpha is None or alpha < min_alpha):
            min_alpha = alpha
            best_prefix = len(scan_order)
            if not fixed_bound and alpha < lam:
                lam = alpha

        lo, hi = xadj[x], xadj[x + 1]
        nbrs = adjncy[lo:hi].tolist()
        wgts = adjwgt[lo:hi].tolist()
        for y, w in zip(nbrs, wgts):
            if visited[y]:
                continue
            edges_scanned += 1
            ry = r[y]
            q = ry + w
            if ry < lam <= q:
                union(x, y)
                n_marked += 1
                if record_certificates:
                    certificates.append((x, y, q, lam, True))
            elif record_certificates:
                certificates.append((x, y, q, lam, False))
            r[y] = q
            insert(y, q)

    return CapforestResult(
        uf=uf,
        n_marked=n_marked,
        lambda_hat=lam,
        min_alpha=min_alpha,
        scan_order=scan_order,
        best_prefix=best_prefix,
        pq_stats=pq.stats,
        vertices_scanned=len(scan_order),
        edges_scanned=edges_scanned,
        certificates=certificates,
    )
