"""Sequential CAPFOREST (Algorithm 3 of the paper; Nagamochi–Ono–Ibaraki).

CAPFOREST performs a maximum-adjacency-style scan: it repeatedly pops the
unvisited vertex ``x`` most strongly connected to the visited set (priority
``r(x)``), and for every edge ``(x, y)`` to an unvisited ``y`` computes the
connectivity certificate ``q(e) = r(y) + c(e)``, a lower bound on
``λ(G, x, y)``.  Edges with ``q(e) ≥ λ̂`` connect vertices that no cut
smaller than ``λ̂`` separates, so they are *marked contractible* (a union in
a union–find).  Following NOI, only edges satisfying
``r(y) < λ̂ ≤ r(y) + c(e)`` are unioned — an equivalent but cheaper rule.

Along the way the scan tracks ``α``, the capacity of the cut between the
scanned prefix and the rest; each of those is a real cut of ``G``, so
``λ̂ ← min(λ̂, α)`` (lines 8–9 of Algorithm 3).  The best scanned prefix is
remembered so callers can recover an actual cut side, not just its value.

This implementation adds the paper's two sequential optimizations:

* **bounded priorities** (§3.1.2, Lemma 3.1): with ``bounded=True`` the
  priority queue clamps keys to ``λ̂`` and skips updates for vertices
  already at the clamp, eliminating most queue traffic on hub-heavy graphs;
* **pluggable queue implementations** (§3.1.3): ``pq_kind`` selects
  BStack / BQueue / Heap, which changes the tie-breaking scan order and
  hence which (equally safe) edges get marked.

Relaxation kernels
------------------
Three interchangeable kernels drive the scan, selected by ``kernel=``
(registry: :data:`repro.kernels.KERNELS`):

``"scalar"``
    The reference implementation: one Python-level loop iteration per arc.
``"vector"``
    Batch relaxation over numpy arrays.  With the BQueue the kernel drains
    the whole top bucket at once whenever that bucket sits at the priority
    clamp — FIFO order makes this *exactly* equivalent to popping one
    vertex at a time (see :meth:`~repro.datastructures.bucket_pq.BQueuePQ.
    drain_top_bucket`) — and relaxes the batch's concatenated arc slices
    with array expressions: a segmented prefix sum recovers every
    ``r(y)``-before-arc value, the NOI mark rule becomes a mask, marked
    edges go through :meth:`~repro.datastructures.union_find.UnionFind.
    union_pairs`, and each touched vertex is moved at most once in the
    queue (to its final bucket) while the operation counters still account
    for every elided intermediate event.  Outside the batchable regime
    (other queue kinds, top bucket below the clamp, ``bounded=False``) the
    vector kernel runs the scalar relaxation step, so results — λ̂, marks,
    scan order, ``pq_stats`` — are bit-identical to ``kernel="scalar"``
    for every configuration.
``"compiled"``
    The scan transcribed into numba ``@njit`` code over flat arrays — the
    scalar loop, the priority queue, everything — so one call runs the
    whole pass in machine code (:mod:`repro.kernels.capforest_kernel`).
    Scalar-order semantics: results are bit-identical to ``"scalar"``.
    When numba is unavailable the request resolves to ``"vector"`` with a
    ``kernel_fallback`` note (:func:`repro.kernels.resolve_kernel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datastructures.pq import PQStats, make_pq
from ..datastructures.union_find import UnionFind
from ..graph.csr import Graph

# the kernel registry is homed in repro.kernels (one source of truth for
# capforest, parallel_capforest, the CLI, and the API); re-exported here
# for compatibility with existing import sites
from ..kernels import KERNEL_CROSSOVERS, resolve_kernel
from ..kernels import KERNELS as KERNELS
from ..kernels import check_kernel as check_kernel

#: Largest λ̂ for which a bucket queue is still sensible; above this the
#: bucket array (λ̂ + 1 slots, one per possible priority) would dwarf the
#: graph and the factory transparently falls back to the binary heap.
MAX_BUCKET_BOUND = 1 << 22

#: below this many members, draining the top bucket costs more in array
#: bookkeeping than the scalar pops it replaces — the *vector*-tier
#: crossover (the compiled tier relaxes arc-by-arc in machine code, see
#: :data:`repro.kernels.KERNEL_CROSSOVERS` for the per-tier table)
MIN_BATCH = KERNEL_CROSSOVERS["vector"]["min_batch"]

#: minimum arc-slice length before a *single* pop relaxes its slice with
#: array expressions — below this the fixed per-call numpy overhead loses
#: to the plain Python loop (vector-tier crossover, measured on GNM
#: instances; per-tier table in :data:`repro.kernels.KERNEL_CROSSOVERS`)
POP_VECTOR_MIN_DEGREE = KERNEL_CROSSOVERS["vector"]["pop_vector_min_degree"]


@dataclass
class CapforestResult:
    """Outcome of one CAPFOREST pass."""

    #: marked contractible edges, as a union–find partition over the vertices
    uf: UnionFind
    #: number of marking events (0 means the pass made no progress)
    n_marked: int
    #: smallest cut value discovered (min of the input λ̂ and all scan cuts α);
    #: with ``fixed_bound=True`` this stays at the input value
    lambda_hat: int
    #: smallest scan cut α observed (always a real cut of G), or None if the
    #: scan never completed a proper prefix — tracked even under fixed_bound
    min_alpha: int | None
    #: vertices in pop order; ``scan_order[:best_prefix]`` is a side of a cut
    #: of value ``min_alpha`` whenever ``best_prefix > 0``
    scan_order: list[int]
    #: prefix length realising ``min_alpha`` (0 = no proper prefix recorded)
    best_prefix: int
    #: priority-queue operation counters (drives the Figure 2/3 analysis)
    pq_stats: PQStats
    #: number of vertices popped
    vertices_scanned: int
    #: number of arcs relaxed (edges scanned towards unvisited vertices)
    edges_scanned: int
    #: optional per-edge certificates ``(u, v, q, lambda_at_scan, marked)``
    certificates: list[tuple[int, int, int, int, bool]] = field(default_factory=list)

    def best_cut_mask(self, n: int) -> np.ndarray | None:
        """Boolean side mask of the best scan cut (value ``min_alpha``), or
        ``None`` if no proper scan prefix was recorded."""
        if self.best_prefix <= 0:
            return None
        mask = np.zeros(n, dtype=bool)
        mask[self.scan_order[: self.best_prefix]] = True
        return mask


def capforest(
    graph: Graph,
    lambda_hat: int,
    *,
    pq_kind: str = "heap",
    bounded: bool = True,
    start: int | None = None,
    rng: np.random.Generator | int | None = None,
    scan_all: bool = True,
    record_certificates: bool = False,
    fixed_bound: bool = False,
    kernel: str = "scalar",
    tracer=None,
) -> CapforestResult:
    """Run one sequential CAPFOREST pass.

    Parameters
    ----------
    graph:
        Input graph (weights are positive integers).
    lambda_hat:
        Current upper bound ``λ̂`` on the minimum cut (e.g. the minimum
        weighted degree, or VieCut's result).  Must be non-negative.
    pq_kind:
        ``"bstack"``, ``"bqueue"`` or ``"heap"`` (§3.1.3).
    bounded:
        Apply the Lemma 3.1 priority clamp.  ``False`` reproduces the
        unbounded baseline (``NOI-HNSS``) and requires ``pq_kind="heap"``.
    start:
        Start vertex; default: drawn from ``rng`` (paper: random vertex).
    rng:
        Source of randomness for the start vertex (default: fresh default
        generator).
    scan_all:
        Restart from an arbitrary unvisited vertex when the queue drains
        with vertices left (disconnected graphs / safety in drivers).  Each
        restart first registers the crossing-free cut ``α = 0``.
    record_certificates:
        Capture ``(u, v, q, λ̂_at_scan, marked)`` per scanned edge for
        verification tests (costs memory; off by default).
    fixed_bound:
        Keep the marking threshold at the input ``lambda_hat`` for the
        whole scan instead of tightening it with every scan cut α.  Matula's
        approximation runs CAPFOREST with a deliberately *invalid* bound
        (below λ) where the usual tightening would be wrong; scan cuts are
        still tracked in ``min_alpha`` since each α is a real cut.
    kernel:
        ``"scalar"`` (reference, one Python iteration per arc),
        ``"vector"`` (batched numpy relaxation), or ``"compiled"``
        (numba-jitted scan; resolves to ``"vector"`` when numba is
        unavailable) — identical results either way, see module docstring.
    tracer:
        Optional :class:`repro.observability.Tracer`.  One
        ``capforest_pass`` event is emitted per call — *pass* granularity,
        after the scan completes, so the relaxation hot loop never sees
        the tracer and a ``tracer=None`` run does zero added per-edge work.

    Notes
    -----
    The marking rule uses the *current* (monotonically decreasing) ``λ̂``,
    so every marked edge ``e`` satisfies ``λ(G, e) ≥ λ̂_at_scan ≥ λ̂_final``
    — contraction never destroys a cut smaller than the returned bound.
    """
    if lambda_hat < 0:
        raise ValueError(f"lambda_hat must be non-negative, got {lambda_hat}")
    if not bounded and pq_kind != "heap":
        raise ValueError("unbounded CAPFOREST requires the heap queue (bucket queues need a bound)")
    kernel, _ = resolve_kernel(kernel, tracer=tracer)
    n = graph.n
    uf = UnionFind(n)
    if n == 0:
        return CapforestResult(uf, 0, lambda_hat, None, [], 0, PQStats(), 0, 0)
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    if start is None:
        start = int(rng.integers(n))
    elif not (0 <= start < n):
        raise ValueError(f"start vertex {start} out of range")

    if bounded:
        effective_kind = pq_kind if lambda_hat <= MAX_BUCKET_BOUND else "heap"
    else:
        effective_kind = "heap"

    if kernel == "compiled" and not record_certificates:
        res = _capforest_compiled(
            graph,
            lambda_hat,
            uf,
            effective_kind,
            start,
            scan_all=scan_all,
            fixed_bound=fixed_bound,
            bounded=bounded,
        )
    else:
        # certificate recording needs the per-arc λ̂ bookkeeping only the
        # scalar loop keeps, so a compiled request with
        # record_certificates=True runs the (bit-identical) reference
        pq = make_pq(
            effective_kind,
            n,
            bound=lambda_hat if bounded else None,
            array_keys=kernel == "vector",
        )
        run = _capforest_vector if kernel == "vector" else _capforest_scalar
        res = run(
            graph,
            lambda_hat,
            uf,
            pq,
            effective_kind,
            start,
            scan_all=scan_all,
            record_certificates=record_certificates,
            fixed_bound=fixed_bound,
        )
    if tracer is not None:
        tracer.emit(
            "capforest_pass",
            n=n,
            pq_kind=effective_kind,
            bounded=bounded,
            kernel=kernel,
            lambda_in=int(lambda_hat),
            lambda_out=int(res.lambda_hat),
            marked=res.n_marked,
            edges_scanned=res.edges_scanned,
            vertices_scanned=res.vertices_scanned,
        )
    return res


def _capforest_compiled(
    graph: Graph,
    lambda_hat: int,
    uf: UnionFind,
    effective_kind: str,
    start: int,
    *,
    scan_all: bool,
    fixed_bound: bool,
    bounded: bool,
) -> CapforestResult:
    """Compiled kernel: the whole scan runs inside one jitted call.

    A transcription of :func:`_capforest_scalar` over flat arrays (see
    :mod:`repro.kernels.capforest_kernel`), so every observable output is
    bit-identical; marks come back as pair buffers and merge through one
    ``union_pairs`` call, exactly like the vector kernel.
    """
    from ..kernels.capforest_kernel import (
        OUT_BEST_PREFIX,
        OUT_EDGES,
        OUT_ERR,
        OUT_LAM,
        OUT_MIN_ALPHA,
        OUT_N_MARKED,
        OUT_N_SCANNED,
        alloc_scan_state,
        capforest_scan,
    )
    from ..kernels.flat_pq import PQ_CODES, SC_POPS, SC_PUSHES, SC_SKIPPED, SC_UPDATES

    n = graph.n
    code = PQ_CODES[effective_kind]
    bound = lambda_hat if bounded else -1
    pq_state, visited, r, scan_order, mark_u, mark_v, out = alloc_scan_state(
        code, n, len(graph.adjncy), max(bound, 0)
    )
    capforest_scan(
        graph.xadj,
        graph.adjncy,
        graph.adjwgt,
        graph.weighted_degrees(),
        lambda_hat,
        start,
        code,
        bound,
        scan_all,
        fixed_bound,
        *pq_state,
        visited,
        r,
        scan_order,
        mark_u,
        mark_v,
        out,
    )
    if out[OUT_ERR]:
        from ..runtime.errors import NoProgressError

        raise NoProgressError(f"scan popped more than {n} vertices")
    n_marked = int(out[OUT_N_MARKED])
    if n_marked:
        uf.union_pairs(mark_u[:n_marked], mark_v[:n_marked])
    sc = pq_state[-1]
    stats = PQStats(
        pushes=int(sc[SC_PUSHES]),
        updates=int(sc[SC_UPDATES]),
        skipped_updates=int(sc[SC_SKIPPED]),
        pops=int(sc[SC_POPS]),
    )
    k = int(out[OUT_N_SCANNED])
    min_alpha = int(out[OUT_MIN_ALPHA])
    return CapforestResult(
        uf=uf,
        n_marked=n_marked,
        lambda_hat=int(out[OUT_LAM]),
        min_alpha=None if min_alpha < 0 else min_alpha,
        scan_order=scan_order[:k].tolist(),
        best_prefix=int(out[OUT_BEST_PREFIX]),
        pq_stats=stats,
        vertices_scanned=k,
        edges_scanned=int(out[OUT_EDGES]),
    )


def _capforest_scalar(
    graph: Graph,
    lambda_hat: int,
    uf: UnionFind,
    pq,
    effective_kind: str,
    start: int,
    *,
    scan_all: bool,
    record_certificates: bool,
    fixed_bound: bool,
) -> CapforestResult:
    """Reference kernel: one Python loop iteration per relaxed arc."""
    n = graph.n
    # Python-int copies of the CSR arrays: the scan loop below touches
    # single elements millions of times, where list indexing beats numpy
    # scalar indexing ~3x (see the hpc-parallel profiling guide).  The
    # conversions are cached on the Graph and shared across passes.
    xadj = graph.xadj_list()
    adjncy = graph.adjncy
    adjwgt = graph.adjwgt
    wdeg = graph.weighted_degrees_list()

    visited = bytearray(n)
    r = [0] * n
    lam = lambda_hat
    alpha = 0
    min_alpha: int | None = None
    scan_order: list[int] = []
    best_prefix = 0
    n_marked = 0
    edges_scanned = 0
    certificates: list[tuple[int, int, int, int, bool]] = []
    union = uf.union
    insert = pq.insert_or_raise
    pop = pq.pop_max

    insert(start, 0)
    next_restart = 0  # cursor for scan_all restarts
    while True:
        if not len(pq):
            if not scan_all:
                break
            # queue drained with vertices left: the scanned/unscanned cut has
            # no crossing edges, i.e. α == 0 — a real cut of value 0.
            while next_restart < n and visited[next_restart]:
                next_restart += 1
            if next_restart == n:
                break
            if scan_order and (min_alpha is None or 0 < min_alpha):
                min_alpha = 0
                best_prefix = len(scan_order)
                if not fixed_bound:
                    lam = 0
            insert(next_restart, 0)

        x, _ = pop()
        if len(scan_order) >= n:
            # every vertex is inserted at most once, so a scan popping more
            # than n times is running on corrupt queue state — abort rather
            # than loop (and mark) forever on garbage
            from ..runtime.errors import NoProgressError

            raise NoProgressError(f"scan popped more than {n} vertices")
        rx = r[x]
        alpha += wdeg[x] - 2 * rx
        visited[x] = 1
        scan_order.append(x)
        if len(scan_order) < n and (min_alpha is None or alpha < min_alpha):
            min_alpha = alpha
            best_prefix = len(scan_order)
            if not fixed_bound and alpha < lam:
                lam = alpha

        lo, hi = xadj[x], xadj[x + 1]
        nbrs = adjncy[lo:hi].tolist()
        wgts = adjwgt[lo:hi].tolist()
        for y, w in zip(nbrs, wgts):
            if visited[y]:
                continue
            edges_scanned += 1
            ry = r[y]
            q = ry + w
            if ry < lam <= q:
                union(x, y)
                n_marked += 1
                if record_certificates:
                    certificates.append((x, y, q, lam, True))
            elif record_certificates:
                certificates.append((x, y, q, lam, False))
            r[y] = q
            insert(y, q)

    return CapforestResult(
        uf=uf,
        n_marked=n_marked,
        lambda_hat=lam,
        min_alpha=min_alpha,
        scan_order=scan_order,
        best_prefix=best_prefix,
        pq_stats=pq.stats,
        vertices_scanned=len(scan_order),
        edges_scanned=edges_scanned,
        certificates=certificates,
    )


def _capforest_vector(
    graph: Graph,
    lambda_hat: int,
    uf: UnionFind,
    pq,
    effective_kind: str,
    start: int,
    *,
    scan_all: bool,
    record_certificates: bool,
    fixed_bound: bool,
) -> CapforestResult:
    """Batch-relaxation kernel (see module docstring).

    State lives in numpy arrays: ``r`` and ``pop_time``, the latter holding
    each vertex's position in the scan order (``n`` while unscanned), which
    doubles as the visited flag *and* the intra-batch schedule — an arc is
    live exactly when its head's pop time exceeds its tail's.  Whenever the
    BQueue's top bucket sits at the priority clamp the whole bucket is
    drained and its concatenated arc slices are relaxed with array
    expressions.  All other pops fall through to the scalar relaxation step
    on the same state, so every observable output matches the scalar kernel
    exactly.
    """
    n = graph.n
    xadj_np = graph.xadj
    xadj = graph.xadj_list()
    adjncy = graph.adjncy
    adjwgt = graph.adjwgt
    wdeg_np = graph.weighted_degrees()
    wdeg = graph.weighted_degrees_list()

    pop_time = np.full(n, n, dtype=np.int64)
    r = np.zeros(n, dtype=np.int64)
    # per-batch weight sums stay exact in float64 (bincount) iff they stay
    # under 2**53; fall back to the slower exact integer scatter-add else
    small_weights = graph.total_weight() < (1 << 52)
    # numpy's stable argsort is a radix sort for <= 16-bit integers (an
    # order of magnitude faster than the comparison sort it uses for
    # int64), so sort narrowed copies of the head ids whenever they fit
    head_dtype = np.int16 if n <= np.iinfo(np.int16).max else np.int64
    lam = lambda_hat
    bound = lambda_hat
    alpha = 0
    min_alpha: int | None = None
    scan_order: list[int] = []
    best_prefix = 0
    n_marked = 0
    edges_scanned = 0
    certificates: list[tuple[int, int, int, int, bool]] = []
    stats = pq.stats
    can_batch = effective_kind == "bqueue"
    # single pops also relax their slice with array expressions when the PQ
    # has a batch interface (bucket kinds); certificate recording needs the
    # per-arc λ bookkeeping only the pure scalar loop keeps
    pop_vector = effective_kind in ("bqueue", "bstack") and not record_certificates
    arange_buf = np.empty(0, dtype=np.int64)  # grown on demand, reused across batches
    # CAPFOREST only ever *writes* the union-find during the scan (nothing
    # queries it until the result is consumed), and the final partition is
    # the transitive closure of the marked pairs regardless of union order —
    # so marks are buffered here and merged in one union_pairs call at the
    # end, amortising the root-resolution passes over the whole scan
    mark_us: list = []
    mark_vs: list = []
    scalar_marks: list[tuple[int, int]] = []

    pq.insert_or_raise(start, 0)
    next_restart = 0
    while True:
        if not len(pq):
            if not scan_all:
                break
            while next_restart < n and pop_time[next_restart] < n:
                next_restart += 1
            if next_restart == n:
                break
            if scan_order and (min_alpha is None or 0 < min_alpha):
                min_alpha = 0
                best_prefix = len(scan_order)
                if not fixed_bound:
                    lam = 0
            pq.insert_or_raise(next_restart, 0)

        # ---- batched path: drain the whole at-the-clamp top bucket --------
        # (top_bucket_len is an upper bound on the drain size; small top
        # buckets stay on the scalar pop path so the array bookkeeping only
        # runs when a real batch pays for it)
        if (
            can_batch
            and pq.top_may_reach(bound)
            and pq.top_key() == bound
            and pq.top_bucket_len() >= MIN_BATCH
        ):
            batch = pq.drain_top_bucket()
            k = len(batch)
            sb = len(scan_order)
            if sb + k > n:
                from ..runtime.errors import NoProgressError

                raise NoProgressError(f"scan popped more than {n} vertices")
            idx = np.asarray(batch, dtype=np.int64)
            starts_ = xadj_np[idx]
            counts = xadj_np[idx + 1] - starts_
            total = int(counts.sum())
            if arange_buf.shape[0] < max(total, k):
                arange_buf = np.arange(max(total, k), dtype=np.int64)
            pt_idx = arange_buf[:k] + sb  # absolute pop times of the batch
            pop_time[idx] = pt_idx

            # concatenated arc slices of the batch, in pop order
            if total:
                cum = np.cumsum(counts)
                arc = np.repeat(starts_ - (cum - counts), counts)
                arc += arange_buf[:total]
                ys = adjncy[arc]
                tail_time = np.repeat(pt_idx, counts)
                # an arc is relaxed iff its head is unvisited at the moment
                # its tail is popped, i.e. the head pops later than the tail
                # (unscanned heads hold pop_time == n, later than any pop):
                # this is literally the scalar schedule, evaluated in bulk
                pt_all = pop_time[ys]
                live_idx = np.flatnonzero(pt_all > tail_time)
                ys = ys[live_idx]
                ws = adjwgt[arc[live_idx]]
                src_pos = tail_time[live_idx]
                src_pos -= sb
                pt_ys = pt_all[live_idx]
            else:
                ys = ws = src_pos = pt_ys = np.empty(0, dtype=np.int64)
            m_ev = len(ys)
            edges_scanned += m_ev

            # α per pop needs r at pop time, which includes the weight the
            # earlier batch members already pushed into later ones
            in_batch = pt_ys < sb + k
            tgt = pt_ys[in_batch]
            tgt -= sb
            if small_weights:
                intra = np.bincount(tgt, weights=ws[in_batch], minlength=k).astype(
                    np.int64
                )
            else:
                intra = np.zeros(k, dtype=np.int64)
                np.add.at(intra, tgt, ws[in_batch])
            alphas = alpha + np.cumsum(wdeg_np[idx] - 2 * (r[idx] + intra))
            alpha = int(alphas[-1])

            # only the first n-1-sb pops can improve the cut (a full prefix
            # is no cut); λ̂ tightening is skipped entirely unless this batch
            # actually improves it — the overwhelmingly common case
            elig = min(k, n - 1 - sb)
            lam_per_pop = None
            if elig > 0:
                mn = int(alphas[:elig].min())
                if min_alpha is None or mn < min_alpha:
                    min_alpha = mn
                    best_prefix = sb + int(np.argmax(alphas[:elig] == mn)) + 1
                if not fixed_bound and mn < lam:
                    lam_per_pop = np.empty(k, dtype=np.int64)
                    np.minimum.accumulate(
                        np.minimum(alphas[:elig], lam), out=lam_per_pop[:elig]
                    )
                    lam_per_pop[elig:] = lam_per_pop[elig - 1]
                    lam = int(lam_per_pop[-1])
            scan_order.extend(batch)

            if m_ev:
                # group events by head vertex (stable: event order preserved
                # within each group) and recover every r(y)-before-arc value
                # with a segmented exclusive prefix sum
                order = np.argsort(ys.astype(head_dtype, copy=False), kind="stable")
                ys_s = ys[order]
                ws_s = ws[order]
                grp_first = np.empty(m_ev, dtype=bool)
                grp_first[0] = True
                np.not_equal(ys_s[1:], ys_s[:-1], out=grp_first[1:])
                first_idx = np.flatnonzero(grp_first)
                grp_sizes = np.diff(np.append(first_idx, m_ev))
                excl = np.cumsum(ws_s)
                excl -= ws_s
                r0 = r[ys_s[first_idx]]  # pre-batch r, one per head
                r_before = excl + np.repeat(r0 - excl[first_idx], grp_sizes)
                q_s = r_before + ws_s

                if lam_per_pop is None:
                    mark = (r_before < lam) & (lam <= q_s)
                else:
                    lam_evt = lam_per_pop[src_pos[order]]
                    mark = (r_before < lam_evt) & (lam_evt <= q_s)
                mark_idx = np.flatnonzero(mark)
                if len(mark_idx):
                    src_evt = order[mark_idx]
                    mark_us.append(idx[src_pos[src_evt]])
                    mark_vs.append(ys_s[mark_idx])
                    n_marked += len(mark_idx)

                # event-accurate queue counters (Lemma 3.1 classification
                # straight from r: a push is a group's first event with
                # r == 0; an event moves the head unless it is skipped at
                # the bound — and every non-push move is a strict raise)
                mask_move = r_before < (bound if bound > 0 else 1)
                # within each group r_before is nondecreasing (weights are
                # positive), so the moving events form a prefix; a single
                # maximum.reduceat yields each group's last move event
                # directly (-1 for groups that never move)
                last_all = np.maximum.reduceat(
                    np.where(mask_move, arange_buf[:m_ev], -1), first_idx
                )
                moved = int(np.count_nonzero(mask_move))
                pushes = int((r0 == 0).sum())
                stats.pushes += pushes
                stats.updates += moved - pushes
                stats.skipped_updates += m_ev - moved

                if record_certificates:
                    q_orig = np.empty(m_ev, dtype=np.int64)
                    q_orig[order] = q_s
                    mark_orig = np.empty(m_ev, dtype=bool)
                    mark_orig[order] = mark
                    if lam_per_pop is None:
                        lam_orig = np.full(m_ev, lam, dtype=np.int64)
                    else:
                        lam_orig = lam_per_pop[src_pos]
                    certificates.extend(
                        zip(
                            idx[src_pos].tolist(),
                            ys.tolist(),
                            q_orig.tolist(),
                            lam_orig.tolist(),
                            mark_orig.tolist(),
                        )
                    )

                # each head moves in the queue only at its *last* reposition
                # event (repositions are a prefix of its group); applying
                # just that final move, ordered by original event time,
                # reproduces the scalar queue state exactly
                has_move = last_all >= 0
                if has_move.any():
                    last_evt = last_all[has_move]
                    evt = order[last_evt]  # distinct event times, one per head
                    if m_ev <= np.iinfo(np.int16).max:
                        evt = evt.astype(np.int16)
                    # permute *first*, then gather once per array; every push
                    # is a move (r_before = 0 < λ̂), so the push count from
                    # the stats block doubles as the queue-growth delta and
                    # old keys never need materialising
                    sel = last_evt[np.argsort(evt, kind="stable")]
                    pq.apply_relaxations(
                        ys_s[sel], None, np.minimum(q_s[sel], bound),
                        n_pushes=pushes,
                    )

                # total relaxation per head = its group's last q
                grp_last = first_idx + grp_sizes - 1
                r[ys_s[grp_last]] = q_s[grp_last]

            continue

        # ---- scalar path: single pop (top bucket below the clamp, BStack,
        # heap, or a batch too small to pay for the array bookkeeping) ------
        x, _ = pq.pop_max()
        if len(scan_order) >= n:
            from ..runtime.errors import NoProgressError

            raise NoProgressError(f"scan popped more than {n} vertices")
        rx = int(r[x])
        alpha += wdeg[x] - 2 * rx
        pop_time[x] = len(scan_order)
        scan_order.append(x)
        if len(scan_order) < n and (min_alpha is None or alpha < min_alpha):
            min_alpha = alpha
            best_prefix = len(scan_order)
            if not fixed_bound and alpha < lam:
                lam = alpha

        lo, hi = xadj[x], xadj[x + 1]
        if pop_vector and hi - lo >= POP_VECTOR_MIN_DEGREE:
            # per-pop vectorized relaxation (no cross-pop batching, so the
            # pop schedule is untouched); heads within one slice are
            # distinct by the simple-graph invariant, so array order is
            # exactly the scalar arc order and insert_many's counters match
            # the per-arc insert_or_raise sequence event-for-event
            ys = adjncy[lo:hi]
            keep = np.flatnonzero(pop_time[ys] == n)
            m_ev = len(keep)
            edges_scanned += m_ev
            if m_ev:
                ys = ys[keep]
                ry = r[ys]
                q = ry + adjwgt[lo:hi][keep]
                marked = np.flatnonzero((ry < lam) & (lam <= q))
                if len(marked):
                    mark_us.append(np.full(len(marked), x, dtype=np.int64))
                    mark_vs.append(ys[marked])
                    n_marked += len(marked)
                r[ys] = q
                pq.insert_many(ys, q)
            continue
        for y, w in zip(adjncy[lo:hi].tolist(), adjwgt[lo:hi].tolist()):
            if pop_time[y] < n:
                continue
            edges_scanned += 1
            ry = int(r[y])
            q = ry + w
            if ry < lam <= q:
                scalar_marks.append((x, y))
                n_marked += 1
                if record_certificates:
                    certificates.append((x, y, q, lam, True))
            elif record_certificates:
                certificates.append((x, y, q, lam, False))
            r[y] = q
            pq.insert_or_raise(y, q)

    if scalar_marks:
        pairs = np.asarray(scalar_marks, dtype=np.int64)
        mark_us.append(pairs[:, 0])
        mark_vs.append(pairs[:, 1])
    if mark_us:
        uf.union_pairs(np.concatenate(mark_us), np.concatenate(mark_vs))

    return CapforestResult(
        uf=uf,
        n_marked=n_marked,
        lambda_hat=lam,
        min_alpha=min_alpha,
        scan_order=scan_order,
        best_prefix=best_prefix,
        pq_stats=pq.stats,
        vertices_scanned=len(scan_order),
        edges_scanned=edges_scanned,
        certificates=certificates,
    )
