"""Long-lived supervised solve-worker pool.

Where :mod:`~repro.core.parallel_capforest` spawns fresh processes for
every CAPFOREST pass, the engine keeps ``size`` worker processes alive for
its whole lifetime and streams *solve requests* to them: each task names a
shared-memory plane (:mod:`~repro.engine.planes`), an algorithm, and the
solve kwargs; the worker attaches to the plane zero-copy, runs the full
solve through :func:`repro.core.api.minimum_cut`, and posts the result
back.  Process startup, interpreter warm-up, and numpy import costs are
paid once per worker instead of once per solve — the overhead the paper's
shared-memory design amortises, applied at request granularity.

Workers are daemonic, so solves inside the pool use the in-process
executors (``serial``/``threads``); the pool itself provides the process
parallelism *across* requests.  The engine coerces ``executor="processes"``
accordingly (daemonic processes may not have children).

Supervision mirrors :mod:`repro.runtime.supervisor`'s philosophy — never
block forever, turn failures into structured events: the owning engine
polls results with a bounded ``get``, checks ``exitcode`` per worker, and
calls :meth:`WorkerPool.recycle` to replace a crashed or deadline-blown
worker with a fresh process (the ``pool_recycle`` trace event).  A pool
that exhausts its recycle budget is abandoned and the engine degrades to
in-process solving — the same ladder shape as
``processes → threads → serial``, one level up.
"""

from __future__ import annotations

import gc
import os
import queue
import time

#: result-queue poll granularity of the engine dispatcher (seconds)
POLL_INTERVAL = 0.02

#: how long WorkerPool.shutdown waits for a worker to exit cleanly
SHUTDOWN_GRACE = 2.0


def _pool_worker_main(worker_id: int, task_q, result_q) -> None:
    # pragma: no cover — exercised via subprocesses (tests/test_engine.py)
    """One pool worker: loop over tasks until the ``None`` sentinel.

    Every task posts exactly one ``(worker_id, req_id, status, payload)``
    tuple: ``("ok", result-tuple)`` or ``("error", repr(exc))``.  Worker
    deaths post nothing — the engine detects them through ``exitcode``.
    """
    from ..core.api import minimum_cut
    from ..graph.shm import SharedGraph
    from ..kernels import warmup

    # JIT-compile (or cache-load) the compiled kernel tier once, before the
    # first request, so no request pays compilation latency.  No-op without
    # numba; idempotent within the process.
    warmup()

    while True:
        task = task_q.get()
        if task is None:
            return
        req_id = task["req_id"]
        fault = task.get("test_fault")
        if fault == "exit":  # deterministic crash injection for tests
            os._exit(task.get("exit_code", 9))
        if fault == "hang":
            time.sleep(task.get("sleep_seconds", 3600.0))
        plane = g = res = None
        try:
            plane = SharedGraph.attach(task["plane"])
            g = plane.graph()
            res = minimum_cut(
                g, algorithm=task["algorithm"],
                **task.get("options", {}), **task["kwargs"],
            )
            side = None if res.side is None else res.side.copy()
            result_q.put(
                (worker_id, req_id, "ok",
                 (int(res.value), side, res.n, res.algorithm, res.stats,
                  res.cactus))
            )
        except BaseException as exc:  # noqa: BLE001 - any failure must be reported
            try:
                result_q.put((worker_id, req_id, "error", repr(exc)))
            except Exception:  # pragma: no cover - dying queue
                pass
        finally:
            # solver results never alias the plane (sides/labels are fresh
            # arrays), but the attached Graph's views do — drop every local
            # reference before close or the segment refuses to unmap.  This
            # runs *after* the except handler so no in-flight exception's
            # traceback frames still pin the views; cyclic garbage (e.g. a
            # solver traceback caught above) may need a collection pass.
            g = res = side = None
            if plane is not None:
                try:
                    plane.close()
                except BufferError:  # pragma: no cover - cycle-held views
                    gc.collect()
                    plane.close()


class WorkerPool:
    """``size`` persistent solve workers with per-worker task queues.

    Assignment is engine-side (one in-flight task per worker), so crashes
    and deadlines are always attributable to exactly one request.
    """

    def __init__(self, size: int, start_method: str | None = None) -> None:
        import multiprocessing as mp

        from ..core.parallel_capforest import default_start_method

        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.start_method = start_method or default_start_method()
        self._ctx = mp.get_context(self.start_method)
        self._result_q = self._ctx.Queue()
        self._task_qs: list = [None] * size
        self._procs: list = [None] * size
        self.recycles = 0
        for i in range(size):
            self._spawn(i)

    def _spawn(self, worker_id: int) -> None:
        # a fresh task queue per (re)spawn: a terminated worker may have
        # died between get() and put(), leaving its old queue in an
        # undefined feeder state
        self._task_qs[worker_id] = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(worker_id, self._task_qs[worker_id], self._result_q),
            daemon=True,
        )
        proc.start()
        self._procs[worker_id] = proc

    def submit(self, worker_id: int, task: dict) -> None:
        """Hand one task to one worker (the engine keeps it single-flight)."""
        self._task_qs[worker_id].put(task)

    def poll(self, timeout: float = POLL_INTERVAL):
        """Next ``(worker_id, req_id, status, payload)`` or ``None``."""
        try:
            return self._result_q.get(timeout=timeout)
        except queue.Empty:
            return None

    def drain(self) -> list:
        """Every result currently queued, without blocking."""
        out = []
        while True:
            try:
                out.append(self._result_q.get_nowait())
            except queue.Empty:
                return out

    def exitcode(self, worker_id: int):
        """``None`` while alive, the exit code once dead."""
        return self._procs[worker_id].exitcode

    def recycle(self, worker_id: int) -> None:
        """Terminate and respawn one worker (crash or deadline recovery)."""
        proc = self._procs[worker_id]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=SHUTDOWN_GRACE)
        self.recycles += 1
        self._spawn(worker_id)

    def shutdown(self) -> None:
        """Stop every worker: sentinel, grace join, then terminate."""
        for q in self._task_qs:
            try:
                q.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        deadline = time.monotonic() + SHUTDOWN_GRACE
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=SHUTDOWN_GRACE)
        self._result_q.close()
        for q in self._task_qs:
            q.close()


__all__ = ["POLL_INTERVAL", "WorkerPool"]
