"""Bounded LRU cache of :class:`~repro.core.result.MinCutResult` objects.

Entries are keyed by :func:`~repro.engine.keys.request_key` — graph digest
plus algorithm plus canonical kwargs — so a hit is byte-equivalent to
re-running the solve (exact solvers are deterministic given their seed,
which is part of the key).  The cache stores one immutable prototype per
key and hands out *copies* with fresh ``stats`` dicts, so callers that
annotate or mutate a returned result can never poison later hits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..core.result import MinCutResult


def _clone(result: MinCutResult) -> MinCutResult:
    """A result copy whose mutable parts (stats dict) are caller-private.

    The ``side`` array is shared deliberately: results are read-only by
    contract and the mask can be ~n bytes, the one part worth not copying.
    The cactus (when present) is shared for the same reason — it is a
    query-only structure once built.
    """
    return MinCutResult(result.value, result.side, result.n, result.algorithm,
                        dict(result.stats), cactus=result.cactus)


class ResultCache:
    """Thread-safe LRU mapping of request keys to solve results."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, MinCutResult] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> MinCutResult | None:
        """The cached result for ``key`` (refreshing its LRU slot), or None."""
        with self._lock:
            proto = self._entries.get(key)
            if proto is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return _clone(proto)

    def peek(self, key: str) -> MinCutResult | None:
        """Counter-neutral lookup: no hit/miss accounting, no LRU refresh.

        The dispatcher uses this for its queued-duplicate check in
        ``_assign`` — the caller already paid a counted lookup at submit
        time, and counting the same request twice skews the hit/miss ratios
        ``engine.stats()`` and ``/v1/stats`` report.
        """
        with self._lock:
            proto = self._entries.get(key)
            return None if proto is None else _clone(proto)

    def put(self, key: str, result: MinCutResult) -> None:
        """Store ``result`` under ``key``, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        proto = _clone(result)
        with self._lock:
            self._entries[key] = proto
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry *and* reset the hit/miss counters, so a cleared
        cache reports fresh ratios instead of the previous epoch's."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def invalidate_digest(self, digest: str) -> int:
        """Evict every entry belonging to one graph digest; returns the count.

        Request keys are ``digest:algorithm:kwargs[:options]`` with a
        fixed-width hex digest, so lineage invalidation after a graph
        update is a prefix scan.  Counter-neutral: evicting a superseded
        graph's entries says nothing about hit/miss behaviour, and — unlike
        ``clear()`` — the other graphs' entries and the accounting epoch
        survive untouched.
        """
        prefix = digest + ":"
        with self._lock:
            stale = [k for k in self._entries if k.startswith(prefix)]
            for k in stale:
                del self._entries[k]
            return len(stale)

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": round(self.hits / lookups, 6) if lookups else 0.0,
                "miss_ratio": round(self.misses / lookups, 6) if lookups else 0.0,
            }
