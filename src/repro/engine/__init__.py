"""Persistent solver engine: pooled workers, batching, result cache.

See :mod:`repro.engine.engine` for the architecture overview.  The usual
entry point is::

    from repro.engine import SolverEngine

    with SolverEngine(pool_size=4) as engine:
        results = engine.solve_many(graphs, algorithm="parcut", seed=0)
"""

from .cache import ResultCache
from .engine import (
    DEFAULT_MAX_RECYCLES,
    EngineClosed,
    EngineFuture,
    RequestCancelled,
    SolverEngine,
)
from .keys import UnkeyableRequest, graph_digest, request_key
from .planes import PlaneRegistry
from .pool import WorkerPool

__all__ = [
    "DEFAULT_MAX_RECYCLES",
    "EngineClosed",
    "EngineFuture",
    "PlaneRegistry",
    "RequestCancelled",
    "ResultCache",
    "SolverEngine",
    "UnkeyableRequest",
    "WorkerPool",
    "graph_digest",
    "request_key",
]
