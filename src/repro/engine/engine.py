"""The persistent solver engine: pooled workers, batching, result cache.

:class:`SolverEngine` turns the one-shot :func:`repro.minimum_cut` call
into a long-lived service primitive::

    with SolverEngine(pool_size=4) as engine:
        fut = engine.submit(g1, algorithm="parcut", seed=0)   # async
        res = engine.solve(g2)                                # sync
        results = engine.solve_many([g1, g2, g3])             # batch
        res = fut.result(timeout=30)

What one engine amortises across solves (versus per-call
``parallel_mincut``):

* **process startup** — ``pool_size`` solve workers are spawned once and
  reused (:mod:`~repro.engine.pool`), instead of a fresh fan-out per call;
* **plane setup** — each distinct graph is exported to shared memory once
  and leased per request (:mod:`~repro.engine.planes`);
* **repeated work** — an LRU cache keyed by canonical graph digest plus
  solve configuration returns repeated solves in O(1)
  (:mod:`~repro.engine.cache`, :mod:`~repro.engine.keys`).

Requests carry optional per-request **deadlines** (a blown deadline fails
that request with :class:`~repro.runtime.WorkerTimeout` and recycles the
worker it occupied) and support **cancellation** while still queued.
Failure handling follows the runtime's degradation philosophy: a crashed
worker is recycled and its request retried once on a fresh worker; an
engine whose pool exhausts its recycle budget abandons the pool and keeps
serving requests in-process (degraded, never wedged) — the
``processes → threads → serial`` ladder, one level up.

Threading model: callers only touch the pending queue, the cache, and
futures (all lock-protected or thread-safe).  Worker assignment, result
collection, deadlines, and pool lifecycle belong to the single dispatcher
thread, so ``_inflight``/``_idle``/pool teardown need no further locking.

Observability: pass ``tracer=`` to record the engine-level event kinds
(``engine_start``/``engine_stop``, ``request_start``/``request_end``,
``cache_hit``, ``pool_recycle``) of the closed taxonomy in
:mod:`repro.observability.schema`.  Solver-internal events stay inside the
pooled workers; the engine trace is the request-level view.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..core.result import MinCutResult
from ..runtime.errors import WorkerCrashed, WorkerTimeout
from .cache import ResultCache
from .keys import graph_digest, request_key
from .planes import PlaneRegistry
from .pool import POLL_INTERVAL, WorkerPool

#: kwargs that name live objects — impossible to ship to a pooled worker
#: process or to canonicalise into a cache key.  ``rng`` is fine as an
#: *integer* seed; a live Generator fails request keying instead.
_UNPOOLABLE_KWARGS = ("tracer", "fault_plan")

#: worker crashes tolerated (with respawn) before the pool is abandoned
#: and the engine degrades to in-process solving
DEFAULT_MAX_RECYCLES = 3

#: dispatch attempts per request (i.e. one retry after a worker crash;
#: blown deadlines never retry — the caller's budget is already spent)
_MAX_ATTEMPTS = 2


class EngineClosed(RuntimeError):
    """The engine was closed; no further requests are accepted."""


class RequestCancelled(RuntimeError):
    """The request was cancelled before it started solving."""


@dataclass
class _Request:
    req_id: int
    graph: Any
    digest: str
    key: str
    algorithm: str
    kwargs: dict
    options: dict
    cacheable: bool
    deadline: float | None  # absolute monotonic, None = no deadline
    future: "EngineFuture | None" = None
    attempts: int = 0
    leased: bool = False
    submitted_at: float = field(default_factory=time.monotonic)


class EngineFuture:
    """Completion handle for one submitted solve request."""

    def __init__(self, engine: "SolverEngine", request: _Request) -> None:
        self._engine = engine
        self._request = request
        self._event = threading.Event()
        self._result: MinCutResult | None = None
        self._exception: BaseException | None = None
        self._cancelled = False

    # -- engine side --------------------------------------------------------

    def _fulfill(self, result: MinCutResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._exception = exc
        self._event.set()

    def _mark_cancelled(self) -> None:
        self._cancelled = True
        self._event.set()

    # -- caller side --------------------------------------------------------

    @property
    def req_id(self) -> int:
        return self._request.req_id

    @property
    def digest(self) -> str:
        """Canonical graph digest of the underlying request."""
        return self._request.digest

    @property
    def algorithm(self) -> str:
        return self._request.algorithm

    def _timeout_message(self, timeout: float | None) -> str:
        """Request context for a blown ``result()``/``exception()`` wait —
        enough for a service 504 body or a log line to be actionable."""
        req = self._request
        now = time.monotonic()
        if req.deadline is None:
            deadline_part = "no deadline"
        else:
            deadline_part = f"deadline in {req.deadline - now:.3f}s"
        return (
            f"request {req.req_id} (algorithm={req.algorithm}, "
            f"digest={req.digest[:12]}) not done after {timeout}s wait; "
            f"{now - req.submitted_at:.3f}s since submit, {deadline_part}"
        )

    def cancel(self) -> bool:
        """Cancel if still queued.  Returns ``False`` once solving has
        begun — in-flight work is never interrupted (its result simply
        lands in the cache for free)."""
        return self._engine._cancel(self._request)

    def cancelled(self) -> bool:
        return self._cancelled

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> MinCutResult:
        """Block for the result; raises the request's failure, if any."""
        if not self._event.wait(timeout):
            raise TimeoutError(self._timeout_message(timeout))
        if self._cancelled:
            raise RequestCancelled(f"request {self._request.req_id} was cancelled")
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise TimeoutError(self._timeout_message(timeout))
        return self._exception


class SolverEngine:
    """Persistent minimum-cut solver: see module docstring.

    Parameters
    ----------
    pool_size:
        Persistent solve workers.  ``0`` disables the pool outright — the
        engine then solves in-process on its dispatcher thread (batching
        and caching still apply; useful where process pools are
        unavailable).
    cache_size:
        LRU result-cache capacity (entries); ``0`` disables caching.
    plane_capacity:
        Distinct graphs kept resident in shared memory between solves.
    start_method:
        Multiprocessing start method for the pool (default: the platform
        default, overridable via ``REPRO_START_METHOD``).
    default_algorithm:
        Algorithm used when a request names none.
    max_recycles:
        Worker replacements tolerated before the pool is abandoned and
        the engine degrades to in-process solving.
    tracer:
        Optional :class:`repro.observability.Tracer` for the engine-level
        event kinds.
    """

    def __init__(
        self,
        *,
        pool_size: int = 2,
        cache_size: int = 128,
        plane_capacity: int = 8,
        start_method: str | None = None,
        default_algorithm: str = "noi-viecut",
        max_recycles: int = DEFAULT_MAX_RECYCLES,
        tracer=None,
    ) -> None:
        from ..core.api import ALGORITHMS, UnknownAlgorithmError

        if default_algorithm not in ALGORITHMS:
            raise UnknownAlgorithmError(default_algorithm)
        self.default_algorithm = default_algorithm
        self.max_recycles = max_recycles
        self._tracer = tracer
        self._cache = ResultCache(cache_size)
        self._planes = PlaneRegistry(capacity=plane_capacity)
        self._pool: WorkerPool | None = (
            WorkerPool(pool_size, start_method) if pool_size > 0 else None
        )
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: deque[_Request] = deque()
        # dispatcher-thread-only state (see module docstring):
        self._inflight: dict[int, _Request] = {}  # worker_id -> request
        self._idle: set[int] = set(range(pool_size)) if self._pool else set()
        self._req_ids = itertools.count()
        self._closing = False
        self._closed = False
        self._counters = {
            "submitted": 0, "completed": 0, "failed": 0, "cancelled": 0,
            "retries": 0, "inline_solves": 0, "pool_abandoned": False,
            "updates": 0, "updates_fast_path": 0, "updates_seeded": 0,
            "updates_cold": 0, "cache_invalidated": 0,
        }
        if tracer is not None:
            tracer.emit(
                "engine_start",
                pool_size=pool_size,
                cache_size=cache_size,
                plane_capacity=plane_capacity,
                start_method=self._pool.start_method if self._pool else None,
                default_algorithm=default_algorithm,
            )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="engine-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- public API ---------------------------------------------------------

    def submit(
        self,
        graph,
        algorithm: str | None = None,
        *,
        deadline: float | None = None,
        cache: bool = True,
        all_cuts: bool = False,
        most_balanced: bool = False,
        **kwargs,
    ) -> EngineFuture:
        """Enqueue one solve; returns an :class:`EngineFuture`.

        ``deadline`` is seconds from now for the whole request (queueing
        included); a blown deadline fails the future with
        :class:`~repro.runtime.WorkerTimeout`.  ``cache=False`` bypasses
        both lookup and store for this request.  ``all_cuts`` /
        ``most_balanced`` request the all-min-cuts cactus on the result
        (see :func:`repro.minimum_cut`); they shape the *output*, so they
        key a separate cache dimension — a value-only cached result is
        never served to a cactus request.  ``kwargs`` are forwarded
        to the solver and must be canonicalisable (JSON scalars and
        containers — seed with ``rng=<int>``, never a live Generator or
        tracer object).
        """
        from ..core.api import ALGORITHMS, EXACT_ALGORITHMS, UnknownAlgorithmError

        algorithm = algorithm or self.default_algorithm
        if algorithm not in ALGORITHMS:
            raise UnknownAlgorithmError(algorithm)
        all_cuts = bool(all_cuts or most_balanced)
        if all_cuts and algorithm not in EXACT_ALGORITHMS:
            raise ValueError(
                f"all_cuts/most_balanced require an exact algorithm, got {algorithm!r}"
            )
        options = {"all_cuts": all_cuts, "most_balanced": bool(most_balanced)}
        for bad in _UNPOOLABLE_KWARGS:
            if bad in kwargs:
                raise ValueError(
                    f"{bad!r} cannot cross the engine boundary; seed with an "
                    "integer and trace at the engine level instead"
                )
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        # pooled workers are daemonic and may not fork grandchildren; the
        # pool already provides cross-request process parallelism
        if self._pool is not None and kwargs.get("executor") == "processes":
            kwargs = dict(kwargs, executor="threads")
        digest = graph_digest(graph)
        key = request_key(digest, algorithm, kwargs, options)
        with self._lock:
            if self._closing or self._closed:
                raise EngineClosed("engine is closed")
            req = _Request(
                req_id=next(self._req_ids),
                graph=graph,
                digest=digest,
                key=key,
                algorithm=algorithm,
                kwargs=kwargs,
                options=options,
                cacheable=cache,
                deadline=None if deadline is None else time.monotonic() + deadline,
            )
            req.future = EngineFuture(self, req)
            self._counters["submitted"] += 1
            self._emit(
                "request_start", req_id=req.req_id, digest=digest,
                algorithm=algorithm, n=graph.n, m=graph.m, deadline_s=deadline,
            )
            cached = self._cache.get(key) if cache else None
            if cached is not None:
                self._emit("cache_hit", req_id=req.req_id, digest=digest)
                self._finish(req, result=cached, status="cached", locked=True)
                return req.future
            self._pending.append(req)
            self._wake.notify()
        return req.future

    def solve(
        self,
        graph,
        algorithm: str | None = None,
        *,
        deadline: float | None = None,
        cache: bool = True,
        **kwargs,
    ) -> MinCutResult:
        """Synchronous :meth:`submit` + ``result()``."""
        return self.submit(
            graph, algorithm, deadline=deadline, cache=cache, **kwargs
        ).result()

    def update(
        self,
        dynamic,
        inserts=(),
        deletes=(),
        *,
        algorithm: str | None = None,
        deadline: float | None = None,
        cache: bool = True,
        all_cuts: bool = False,
        most_balanced: bool = False,
        **kwargs,
    ) -> MinCutResult:
        """Apply an edge-update batch to a :class:`~repro.dynamic.DynamicGraph`
        and re-solve it — warm when possible.

        The batch is applied first (incremental CSR merge, see
        :mod:`repro.dynamic.graph`); the superseded digest's cache entries
        are evicted by lineage (:meth:`ResultCache.invalidate_digest` —
        other graphs' entries survive).  Then the cheapest exact path wins:

        1. **cache** — an identical request on the post-update graph;
        2. **fast path** — the carried λ̂ bounds meet across the batch and
           the re-priced old side (or a touched trivial cut) is *proven*
           minimum without solving (:mod:`repro.dynamic.warm`);
        3. **seeded solve** — NOI seeded with the certified post-update
           bound and side, on the certificate-contracted graph when the
           strict certificate survives the batch;
        4. **cold solve** — through :meth:`submit` (non-warmable algorithm,
           no prior state, or a side-less previous result).

        Warm results are exact: the value always equals a cold re-solve's;
        the side is a certified minimum cut (when several minimum cuts
        exist it may legitimately differ from the cold solver's pick —
        ``all_cuts``/``most_balanced`` outputs are canonical either way,
        since the cactus is deterministic given the graph).  ``deadline``
        applies to the cold-fallback path; warm re-solves are run to
        completion on the calling thread (they are the cheap path).
        ``result.stats["warm"]`` records which path ran.
        """
        from ..core.api import (
            ALGORITHMS,
            EXACT_ALGORITHMS,
            UnknownAlgorithmError,
            attach_cactus,
        )
        from ..dynamic import make_warm_state, warm_solve

        algorithm = algorithm or self.default_algorithm
        if algorithm not in ALGORITHMS:
            raise UnknownAlgorithmError(algorithm)
        all_cuts = bool(all_cuts or most_balanced)
        if all_cuts and algorithm not in EXACT_ALGORITHMS:
            raise ValueError(
                f"all_cuts/most_balanced require an exact algorithm, got {algorithm!r}"
            )
        for bad in _UNPOOLABLE_KWARGS:
            if bad in kwargs:
                raise ValueError(
                    f"{bad!r} cannot cross the engine boundary; seed with an "
                    "integer and trace at the engine level instead"
                )
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        options = {"all_cuts": all_cuts, "most_balanced": bool(most_balanced)}
        # canary keying: reject uncanonicalisable kwargs *before* mutating
        # the graph, so a bad request leaves the handle untouched
        request_key("0" * 32, algorithm, kwargs, options)
        with self._lock:
            if self._closing or self._closed:
                raise EngineClosed("engine is closed")

        with dynamic.lock:
            old_digest = dynamic.digest
            t0 = time.monotonic()
            delta = dynamic.apply(inserts, deletes)
            invalidated = 0
            if not delta.is_noop:
                invalidated = self._cache.invalidate_digest(old_digest)
            graph = dynamic.graph
            self._emit(
                "graph_update",
                old_digest=old_digest[:12], new_digest=delta.new_digest[:12],
                version=dynamic.version, n=graph.n, m=graph.m,
                num_inserted=delta.num_inserted, num_deleted=delta.num_deleted,
                inserted_weight=delta.inserted_weight,
                deleted_weight=delta.deleted_weight,
                cache_invalidated=invalidated,
                apply_seconds=round(time.monotonic() - t0, 6),
            )
            key = request_key(delta.new_digest, algorithm, kwargs, options)
            if cache:
                cached = self._cache.get(key)
                if cached is not None:
                    self._emit("cache_hit", digest=delta.new_digest,
                               source="update")
                    with self._lock:
                        self._counters["updates"] += 1
                        self._counters["cache_invalidated"] += invalidated
                    return cached

            state = dynamic.warm
            out = None
            if state is not None and state.digest == old_digest:
                out = warm_solve(
                    graph, state, delta, algorithm=algorithm, kwargs=kwargs
                )
            kernel = kwargs.get("kernel", "scalar")
            if out is not None:
                result, info = out
                if all_cuts:
                    attach_cactus(graph, result, most_balanced=most_balanced)
                if info["mode"] == "fast-path":
                    counter = "updates_fast_path"
                    # carry the state forward: the certificate's connectivity
                    # claim decays by the deleted weight, nothing else changes
                    state.digest = delta.new_digest
                    state.value = int(result.value)
                    state.side = result.side
                    if state.cert_labels is not None:
                        state.cert_bound -= delta.deleted_weight
                else:
                    counter = "updates_seeded"
                    dynamic.warm = make_warm_state(
                        graph, delta.new_digest, result, kernel=kernel
                    )
                if cache:
                    self._cache.put(key, result)
            else:
                fut = self.submit(
                    graph, algorithm, deadline=deadline, cache=cache,
                    all_cuts=all_cuts, most_balanced=most_balanced, **kwargs,
                )
                result = fut.result()
                info = {
                    "mode": "cold", "seed_value": None, "lower_bound": None,
                    "previous_value": None if state is None else state.value,
                    "inserted_weight": delta.inserted_weight,
                    "deleted_weight": delta.deleted_weight,
                    "contracted_n": None,
                }
                counter = "updates_cold"
                if algorithm in EXACT_ALGORITHMS and result.side is not None:
                    dynamic.warm = make_warm_state(
                        graph, delta.new_digest, result, kernel=kernel
                    )
                else:
                    dynamic.warm = None
            result.stats.setdefault("warm", info)
            seconds = round(time.monotonic() - t0, 6)
            with self._lock:
                self._counters["updates"] += 1
                self._counters[counter] += 1
                self._counters["cache_invalidated"] += invalidated
            self._emit(
                "warm_solve",
                mode=info["mode"], value=int(result.value),
                seed_value=info.get("seed_value"),
                lower_bound=info.get("lower_bound"),
                contracted_n=info.get("contracted_n"),
                digest=delta.new_digest[:12], algorithm=algorithm,
                seconds=seconds,
            )
            return result

    def solve_many(
        self,
        items,
        *,
        deadline: float | None = None,
        return_exceptions: bool = False,
        **common_kwargs,
    ) -> list:
        """Solve a batch concurrently; results in submission order.

        ``items`` are graphs, ``(graph, algorithm)`` pairs, or dicts
        ``{"graph": g, "algorithm": ..., "deadline": ..., **solver_kwargs}``
        (per-item entries override the call-level defaults).  With
        ``return_exceptions=True`` failed items come back as exception
        objects in-place instead of raising on the first failure — the
        CLI batch mode uses this for per-item exit status.
        """
        futures = []
        for item in items:
            kwargs = dict(common_kwargs)
            algorithm = None
            item_deadline = deadline
            cache = True
            if isinstance(item, dict):
                item = dict(item)
                graph = item.pop("graph")
                algorithm = item.pop("algorithm", None)
                item_deadline = item.pop("deadline", deadline)
                cache = item.pop("cache", True)
                kwargs.update(item)
            elif isinstance(item, tuple):
                graph, algorithm = item
            else:
                graph = item
            futures.append(
                self.submit(graph, algorithm, deadline=item_deadline,
                            cache=cache, **kwargs)
            )
        results = []
        for fut in futures:
            if return_exceptions:
                try:
                    results.append(fut.result())
                except Exception as exc:  # noqa: BLE001 - collected per item
                    results.append(exc)
            else:
                results.append(fut.result())
        return results

    def stats(self) -> dict:
        """Snapshot of request counters, cache, planes, and pool health.

        ``queue_depth`` (requests accepted but not yet dispatched) and
        ``inflight`` (requests currently occupying a worker) are the two
        numbers admission control upstream needs: their sum is the
        engine's total outstanding work.
        """
        from ..kernels import compiled_status

        with self._lock:
            counters = dict(self._counters)
            pending = len(self._pending)
        pool = self._pool
        return {
            **counters,
            "pending": pending,
            "queue_depth": pending,
            "inflight": len(self._inflight),
            "cache": self._cache.stats(),
            "planes": self._planes.stats(),
            "pool": {
                "size": pool.size if pool else 0,
                "start_method": pool.start_method if pool else None,
                "recycles": pool.recycles if pool else 0,
            },
            # active kernel tier + fallback state (satellite of the compiled
            # tier): pool workers warm the same registry at startup, so this
            # snapshot describes them too
            "kernels": compiled_status(),
        }

    def close(self, *, drain: bool = True) -> None:
        """Stop the engine.  ``drain=True`` finishes queued work first;
        ``drain=False`` cancels everything still pending."""
        with self._lock:
            if self._closed:
                return
            already_closing = self._closing
            self._closing = True
            if not drain:
                while self._pending:
                    req = self._pending.popleft()
                    self._counters["cancelled"] += 1
                    self._emit("request_end", req_id=req.req_id,
                               status="cancelled", seconds=self._elapsed(req))
                    req.future._mark_cancelled()
            self._wake.notify()
        if already_closing:
            return
        self._dispatcher.join(timeout=120.0)
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._planes.close()
        with self._lock:
            self._closed = True
            self._emit("engine_stop", cache_hits=self._cache.hits,
                       cache_misses=self._cache.misses, **self._counters)

    def __enter__(self) -> "SolverEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals ----------------------------------------------------------

    def _emit(self, kind: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.emit(kind, **fields)

    @staticmethod
    def _elapsed(req: _Request) -> float:
        return round(time.monotonic() - req.submitted_at, 6)

    def _cancel(self, req: _Request) -> bool:
        with self._lock:
            if req.future.done():
                return False
            try:
                self._pending.remove(req)
            except ValueError:
                return False  # already dispatched (or finishing right now)
            self._counters["cancelled"] += 1
            self._emit("request_end", req_id=req.req_id, status="cancelled",
                       seconds=self._elapsed(req))
            req.future._mark_cancelled()
            return True

    def _finish(self, req: _Request, *, result=None, exc=None, status="ok",
                locked=False) -> None:
        """Resolve one request: plane release, cache store, trace, future."""
        if req.leased:
            self._planes.release(req.digest)
            req.leased = False
        if result is not None and req.cacheable and status == "ok":
            self._cache.put(req.key, result)

        def record() -> None:
            self._counters["completed" if exc is None else "failed"] += 1
            self._emit(
                "request_end", req_id=req.req_id, status=status,
                seconds=self._elapsed(req),
                value=None if result is None else int(result.value),
            )

        if locked:
            record()
        else:
            with self._lock:
                record()
        if exc is not None:
            req.future._fail(exc)
        else:
            req.future._fulfill(result)

    # -- dispatcher thread ---------------------------------------------------

    def _dispatch_loop(self) -> None:
        """Assign, collect, enforce deadlines, supervise the pool."""
        while True:
            inline: list[_Request] = []
            with self._lock:
                if self._closing and not self._pending and not self._inflight:
                    return
                self._assign(inline)
                if self._pool is None and not inline and not self._inflight:
                    self._wake.wait(timeout=POLL_INTERVAL)
            for req in inline:
                self._solve_inline(req)
            if self._pool is not None:
                self._collect()
            if self._pool is not None:
                self._enforce_deadlines()
            if self._pool is not None:
                self._supervise_workers()

    def _assign(self, inline: list) -> None:
        """Move pending requests to idle workers (caller holds the lock)."""
        still_pending: deque[_Request] = deque()
        now = time.monotonic()
        while self._pending:
            req = self._pending.popleft()
            if req.deadline is not None and now > req.deadline:
                self._finish(req, exc=self._queue_expired(req, now),
                             status="timeout", locked=True)
                continue
            if req.cacheable:
                # a duplicate completed while this one queued: serve it now.
                # peek(), not get(): the submit-time lookup already counted
                # this request once, and double-counting a miss per queued
                # request skews the stats() / /v1/stats hit ratios.
                cached = self._cache.peek(req.key)
                if cached is not None:
                    self._emit("cache_hit", req_id=req.req_id, digest=req.digest)
                    self._finish(req, result=cached, status="cached", locked=True)
                    continue
            if self._pool is None:
                inline.append(req)
                continue
            if not self._idle:
                still_pending.append(req)
                break
            worker_id = self._idle.pop()
            try:
                plane = self._planes.lease(req.digest, req.graph)
                req.leased = True
            except Exception as exc:  # noqa: BLE001 - lease failure fails the request
                self._idle.add(worker_id)
                self._finish(req, exc=exc, status="error", locked=True)
                continue
            req.attempts += 1
            self._inflight[worker_id] = req
            kwargs = dict(req.kwargs)
            fault = kwargs.pop("_test_fault", None)
            task = {
                "req_id": req.req_id,
                "plane": plane.name,
                "algorithm": req.algorithm,
                "kwargs": kwargs,
                "options": req.options,
            }
            if fault:
                task.update(fault)
            self._pool.submit(worker_id, task)
        still_pending.extend(self._pending)
        self._pending = still_pending

    @staticmethod
    def _queue_expired(req: _Request, now: float) -> WorkerTimeout:
        """Deadline blown while still queued: no worker was ever involved,
        so the message carries request context instead of a worker id."""
        elapsed = now - req.submitted_at
        budget = req.deadline - req.submitted_at
        return WorkerTimeout(
            None,
            elapsed,
            message=(
                f"request {req.req_id} (algorithm={req.algorithm}, "
                f"digest={req.digest[:12]}) expired in queue after "
                f"{elapsed:.3f}s (deadline {budget:.3g}s), never assigned "
                "to a worker"
            ),
        )

    def _solve_inline(self, req: _Request) -> None:
        """Degraded path: run the solve on the dispatcher thread."""
        from ..core.api import minimum_cut

        with self._lock:
            self._counters["inline_solves"] += 1
        try:
            kwargs = dict(req.kwargs)
            kwargs.pop("_test_fault", None)
            result = minimum_cut(
                req.graph, algorithm=req.algorithm, **req.options, **kwargs
            )
        except Exception as exc:  # noqa: BLE001 - surfaced through the future
            self._finish(req, exc=exc, status="error")
        else:
            self._finish(req, result=result)

    def _collect(self) -> None:
        """Drain worker results; the first poll blocks one interval."""
        msg = self._pool.poll()
        while msg is not None:
            worker_id, req_id, status, payload = msg
            req = self._inflight.get(worker_id)
            if req is None or req.req_id != req_id:
                # late result from a worker whose request already timed out
                # (the worker was recycled); the payload is orphaned
                msg = self._pool.poll(timeout=0.0)
                continue
            del self._inflight[worker_id]
            self._idle.add(worker_id)
            if status == "ok":
                value, side, n, algorithm, stats, cactus = payload
                self._finish(
                    req,
                    result=MinCutResult(value, side, n, algorithm, stats,
                                        cactus=cactus),
                )
            else:
                self._finish(
                    req,
                    exc=RuntimeError(
                        f"pooled solve of request {req_id} failed: {payload}"
                    ),
                    status="error",
                )
            msg = self._pool.poll(timeout=0.0)

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        expired = [
            (wid, req) for wid, req in self._inflight.items()
            if req.deadline is not None and now > req.deadline
        ]
        for worker_id, req in expired:
            if self._inflight.pop(worker_id, None) is None:
                # a previous recycle abandoned the pool and requeued this
                # request; _assign's deadline check will time it out
                continue
            self._recycle_worker(worker_id, reason="deadline")
            self._finish(req, exc=WorkerTimeout(worker_id, now - req.submitted_at),
                         status="timeout")

    def _supervise_workers(self) -> None:
        """Respawn dead workers; retry (once) or fail their requests."""
        dead = [
            (wid, self._pool.exitcode(wid))
            for wid in range(self._pool.size)
            if self._pool.exitcode(wid) is not None
        ]
        for worker_id, code in dead:
            if self._pool is None:
                break  # abandoned mid-loop by a previous recycle
            req = self._inflight.pop(worker_id, None)
            self._idle.discard(worker_id)
            self._recycle_worker(worker_id, reason=f"crashed exit={code}")
            if req is None:
                continue
            if req.leased:
                self._planes.release(req.digest)
                req.leased = False
            if self._pool is None or req.attempts < _MAX_ATTEMPTS:
                # retry on a fresh worker, or inline if the pool is gone
                with self._lock:
                    self._counters["retries"] += 1
                    self._pending.appendleft(req)
            else:
                self._finish(
                    req,
                    exc=WorkerCrashed(worker_id, code, "pooled solve worker died"),
                    status="crashed",
                )

    def _recycle_worker(self, worker_id: int, *, reason: str) -> None:
        if self._pool is None:
            return
        if self._pool.recycles >= self.max_recycles:
            self._abandon_pool(f"recycle budget exhausted ({reason})")
            return
        self._emit("pool_recycle", action="respawn", worker_id=worker_id,
                   reason=reason)
        self._pool.recycle(worker_id)
        self._idle.add(worker_id)

    def _abandon_pool(self, reason: str) -> None:
        """Degrade: drop the pool, requeue its in-flight work for inline."""
        pool, self._pool = self._pool, None
        self._idle.clear()
        self._emit("pool_recycle", action="abandon", reason=reason)
        requeue = list(self._inflight.values())
        self._inflight.clear()
        with self._lock:
            self._counters["pool_abandoned"] = True
            for req in reversed(requeue):
                if req.leased:
                    self._planes.release(req.digest)
                    req.leased = False
                self._pending.appendleft(req)
        # shut the old pool down off-thread: terminate() of a wedged worker
        # can block, and the dispatcher must keep serving inline
        threading.Thread(target=pool.shutdown, daemon=True).start()
