"""Refcounted registry of live shared-memory CSR planes.

One :class:`~repro.graph.shm.SharedGraph` export per distinct graph digest,
kept alive across solves so repeated or concurrent requests on the same
graph attach to the *same* segment instead of re-exporting the CSR arrays
per solve — the plane-setup amortisation half of the engine's job (the
other half, process reuse, lives in :mod:`~repro.engine.pool`).

Lifecycle is explicit:

* :meth:`PlaneRegistry.lease` exports on first use (or revives the cached
  segment) and increments the digest's refcount — one count per in-flight
  request using the plane;
* :meth:`PlaneRegistry.release` decrements; a zero-refcount plane is *not*
  unlinked — it parks in LRU order so the next solve of the same graph
  reuses it;
* parked planes are evicted (unlinked) only when the registry exceeds
  ``capacity``, and :meth:`close` unlinks everything.  Leased planes are
  never evicted: eviction scans only zero-refcount entries.

The registry is coordinator-side state; workers only ever see segment
names and attach as borrowers (:meth:`SharedGraph.attach`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..graph.csr import Graph
from ..graph.shm import SharedGraph


@dataclass
class _PlaneEntry:
    plane: SharedGraph
    refcount: int = 0


class PlaneRegistry:
    """Digest-keyed pool of live :class:`SharedGraph` segments."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, _PlaneEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._closed = False
        self.exports = 0
        self.reuses = 0

    def lease(self, digest: str, graph: Graph) -> SharedGraph:
        """The live plane for ``digest``, exporting ``graph`` on first use.

        Every ``lease`` must be paired with exactly one :meth:`release`.
        """
        with self._lock:
            if self._closed:
                raise ValueError("plane registry is closed")
            entry = self._entries.get(digest)
            if entry is None:
                entry = _PlaneEntry(SharedGraph.export(graph))
                self._entries[digest] = entry
                self.exports += 1
            else:
                self.reuses += 1
            entry.refcount += 1
            self._entries.move_to_end(digest)
            self._evict_over_capacity()
            return entry.plane

    def release(self, digest: str) -> None:
        """Return one lease; parks the plane (LRU) at refcount zero."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                return  # already evicted by close(); nothing to do
            entry.refcount -= 1
            if entry.refcount < 0:
                raise ValueError(f"plane {digest} released more times than leased")
            self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        # caller holds the lock; drop the oldest *parked* planes first
        if len(self._entries) <= self.capacity:
            return
        for digest in [d for d, e in self._entries.items() if e.refcount == 0]:
            if len(self._entries) <= self.capacity:
                break
            self._entries.pop(digest).plane.unlink()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def leased(self) -> int:
        """Number of planes with at least one outstanding lease."""
        with self._lock:
            return sum(1 for e in self._entries.values() if e.refcount > 0)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "planes": len(self._entries),
                "leased": sum(1 for e in self._entries.values() if e.refcount > 0),
                "exports": self.exports,
                "reuses": self.reuses,
            }

    def close(self) -> None:
        """Unlink every segment (idempotent).  Outstanding leases go stale:
        close only after the owning engine has drained its requests."""
        with self._lock:
            self._closed = True
            entries, self._entries = self._entries, OrderedDict()
        for entry in entries.values():
            entry.plane.unlink()

    def __enter__(self) -> "PlaneRegistry":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
