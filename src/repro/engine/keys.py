"""Canonical request keying: graph digests and solve-configuration keys.

The engine's result cache and shared-memory plane registry are both keyed
by a **canonical graph digest** — a cryptographic hash over the exact CSR
byte content (``n`` plus the three arrays).  Two :class:`~repro.graph.csr.Graph`
objects digest equal iff they are the same graph with the same vertex
numbering and arc ordering:

* the digest covers the *arrays*, not the edge *set* — an isomorphic graph
  with permuted vertex ids, or the same edge set inserted in a different
  order through :class:`~repro.graph.builder.GraphBuilder`, digests
  differently (a conservative miss, never a wrong hit);
* graphs are immutable by contract (``csr.py``); a caller that mutates the
  arrays behind a digest voids the cache the same way it voids every other
  invariant in the package.

A **request key** extends the digest with the algorithm name and the
canonicalised solve kwargs, so solves that could differ in value, side, or
stats shape never alias in the cache.
"""

from __future__ import annotations

import hashlib
import json

from ..graph.csr import Graph


def graph_digest(graph: Graph) -> str:
    """Hex digest canonically identifying ``graph``'s exact CSR content."""
    h = hashlib.blake2b(digest_size=16)
    h.update(graph.n.to_bytes(8, "little"))
    for arr in (graph.xadj, graph.adjncy, graph.adjwgt):
        h.update(arr.tobytes())
    return h.hexdigest()


class UnkeyableRequest(TypeError):
    """A solve kwarg cannot be canonicalised into a cache key."""


def request_key(
    digest: str, algorithm: str, kwargs: dict, options: dict | None = None
) -> str:
    """One string key per (graph, algorithm, solve configuration, output shape).

    Kwargs are canonicalised through sorted-key JSON, so dict ordering
    never splits the cache.  Values must be JSON-representable scalars or
    nested lists/dicts thereof — live objects (tracers, RNG generators,
    fault plans) have no canonical form and raise :class:`UnkeyableRequest`;
    the engine rejects them at submit time for the same reason it cannot
    ship them to a pooled worker process.

    ``options`` carries **output-shape** requests (``all_cuts``,
    ``most_balanced``) that change what the result object carries without
    changing the solve configuration.  They key a separate dimension: a
    value-only cached result must never be served to a request that needs
    the cactus, and vice versa.  Falsy/None options key identically to the
    historical 3-segment form, so existing cache entries stay addressable.
    """
    try:
        blob = json.dumps(kwargs, sort_keys=True, separators=(",", ":"))
        # Options are output-shape *flags*: coerce truthy values to bool so
        # all_cuts=1 and all_cuts=True serialise identically (`true`) and
        # never split the cache; falsy values still drop out entirely,
        # keeping the historical 3-segment key byte-stable.
        opts = {k: bool(v) for k, v in (options or {}).items() if v}
        opt_blob = (
            ":" + json.dumps(opts, sort_keys=True, separators=(",", ":"))
            if opts
            else ""
        )
    except (TypeError, ValueError) as exc:
        raise UnkeyableRequest(
            f"solve kwargs are not canonicalisable for caching/pooling: {exc}"
        ) from None
    return f"{digest}:{algorithm}:{blob}{opt_blob}"
