"""Instance generator CLI: ``python -m repro.gen_cli``.

Writes benchmark instances (RHG / RMAT / Chung–Lu / G(n,m) / the Table-1
suite worlds) to METIS, DIMACS, or edge-list files — the companion tool to
``repro-mincut`` for preparing experiment inputs.

Examples::

    python -m repro.gen_cli rhg --n 4096 --avg-degree 32 -o rhg.graph
    python -m repro.gen_cli rmat --scale 12 --avg-degree 16 -o rmat.graph
    python -m repro.gen_cli chung-lu --n 8192 --avg-degree 24 --gamma 2.3 \
        --communities 32 -o web.graph --format dimacs
    python -m repro.gen_cli world --name uk-web-like --k 6 -o core.graph
"""

from __future__ import annotations

import argparse
import sys

from .generators import chung_lu, connected_gnm, gnm, rhg, rmat
from .generators.worlds import DEFAULT_WORLDS, build_instances
from .graph.dimacs import write_dimacs
from .graph.io import write_edge_list, write_metis

_WRITERS = {
    "metis": write_metis,
    "dimacs": write_dimacs,
    "edgelist": write_edge_list,
}


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro-gen", description="Generate benchmark instances.")
    ap.add_argument("-o", "--output", required=True, help="output file")
    ap.add_argument("--format", choices=sorted(_WRITERS), default="metis")
    ap.add_argument("--seed", type=int, default=0)
    sub = ap.add_subparsers(dest="family", required=True)

    p = sub.add_parser("rhg", help="random hyperbolic graph (paper Appendix A.1)")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--avg-degree", type=float, required=True)
    p.add_argument("--alpha", type=float, default=2.0, help="gamma = 2*alpha + 1")

    p = sub.add_parser("rmat", help="RMAT recursive-matrix graph")
    p.add_argument("--scale", type=int, required=True, help="n = 2**scale")
    p.add_argument("--avg-degree", type=float, required=True)

    p = sub.add_parser("chung-lu", help="power-law graph with planted communities")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--avg-degree", type=float, required=True)
    p.add_argument("--gamma", type=float, default=2.5)
    p.add_argument("--communities", type=int, default=0)
    p.add_argument("--mu", type=float, default=0.5)

    p = sub.add_parser("gnm", help="uniform G(n, m)")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--m", type=int, required=True)
    p.add_argument("--connected", action="store_true")
    p.add_argument("--weights", type=int, nargs=2, metavar=("LO", "HI"))

    p = sub.add_parser("world", help="one Table-1 suite k-core instance")
    p.add_argument("--name", choices=[w.name for w in DEFAULT_WORLDS], required=True)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--scale", type=float, default=1.0)
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        graph = _generate(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _WRITERS[args.format](graph, args.output)
    print(f"wrote {args.output}: n={graph.n} m={graph.m} ({args.format})")
    return 0


def _generate(args):
    if args.family == "rhg":
        return rhg(args.n, args.avg_degree, alpha=args.alpha, rng=args.seed)
    if args.family == "rmat":
        return rmat(args.scale, args.avg_degree, rng=args.seed)
    if args.family == "chung-lu":
        return chung_lu(
            args.n,
            args.avg_degree,
            gamma=args.gamma,
            communities=args.communities,
            mu=args.mu,
            rng=args.seed,
        )
    if args.family == "gnm":
        weights = tuple(args.weights) if args.weights else None
        maker = connected_gnm if args.connected else gnm
        return maker(args.n, args.m, rng=args.seed, weights=weights)
    if args.family == "world":
        spec = next(w for w in DEFAULT_WORLDS if w.name == args.name)
        for inst in build_instances(spec, scale=args.scale):
            if inst.k == args.k:
                return inst.graph
        raise ValueError(
            f"world {args.name} has no k={args.k} core at scale {args.scale} "
            f"(available k: {spec.ks})"
        )
    raise ValueError(f"unknown family {args.family!r}")


if __name__ == "__main__":
    raise SystemExit(main())
