"""Zero-copy shared-memory plane for the CSR graph and worker results.

The ``processes`` executor used to rely on ``fork`` semantics: workers
inherited the coordinator's CSR arrays as copy-on-write pages, and marked
pairs travelled back through a pickle queue.  That breaks down twice —
``spawn`` (the only start method on some platforms, and the default on
macOS/Windows) re-imports the world and would pickle the whole graph per
worker, and the pair queue serialises O(marks) tuples per round.

This module replaces both channels with named ``multiprocessing.shared_memory``
segments:

* :class:`SharedGraph` — one segment holding a small header plus the three
  CSR arrays (``xadj``, ``adjncy``, ``adjwgt``).  Workers :meth:`attach
  <SharedGraph.attach>` by name and rebuild a :class:`~repro.graph.csr.Graph`
  whose arrays are *views into the segment* — zero copies under fork **and**
  spawn.
* :class:`SharedPairsBuffer` — one ``p × (2(n-1)+1)`` int64 plane of
  ``[count, u0, v0, u1, v1, ...]`` rows.  Each worker writes its
  (locally deduplicated, hence ≤ n-1) marked pairs into its own row; the
  coordinator reads survivors' rows directly instead of unpickling tuples.
* :class:`SharedBytes` — a plain byte plane for the shared visited table
  ``T`` (indexable like a ``bytearray`` through ``.buf``).

Lifecycle: the **coordinator** creates the segments, workers attach and
never unlink.  ``attach`` suppresses ``resource_tracker`` registration —
Python's per-process tracker would otherwise claim ownership in every
worker and either double-unlink segments the coordinator still owns or spam
``KeyError`` warnings when a worker dies.  Cleanup is supervisor-owned: the
executor unlinks in a ``finally`` block, so even a round whose workers were
all killed leaves no segment behind (see ``tests/test_shm_graph.py``).
"""

from __future__ import annotations

import numpy as np

from .csr import Graph

_INT = np.int64
_ITEM = 8  # sizeof(int64)
#: header slots of a SharedGraph segment: n, num_arcs
_HEADER = 2


def _attach_untracked(name: str):
    """Open an existing segment without registering it with resource_tracker.

    ``SharedMemory(name=...)`` on CPython ≤ 3.12 unconditionally registers
    the mapping with the per-process resource tracker, which assumes
    ownership.  A worker is a *borrower*: if it registered, the tracker
    would unlink the coordinator's segment when the worker exits (or warn
    about the name it never unlinked).  Monkey-patching the registration
    away for the duration of the open is the documented workaround until
    ``track=False`` (3.13) is the floor.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _create(size: int):
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(create=True, size=max(size, 1))


class _Segment:
    """Common create/attach/close/unlink plumbing over one segment."""

    __slots__ = ("_shm", "_owner")

    def __init__(self, shm, owner: bool) -> None:
        self._shm = shm
        self._owner = owner

    @property
    def name(self) -> str:
        """Segment name workers use to attach."""
        return self._shm.name

    @property
    def is_owner(self) -> bool:
        return self._owner

    def close(self) -> None:
        """Release this process's mapping (safe to call twice)."""
        if self._shm is not None:
            self._drop_views()
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Remove the segment from the system (owner only, idempotent)."""
        if not self._owner or self._shm is None:
            return
        self._drop_views()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass  # already gone (e.g. an earlier explicit unlink)
        self._shm.close()
        self._shm = None

    def _drop_views(self) -> None:  # pragma: no cover - overridden
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()


class SharedGraph(_Segment):
    """A CSR graph exported into one named shared-memory segment.

    Layout (all ``int64``): ``[n, num_arcs, xadj..., adjncy..., adjwgt...]``.
    """

    __slots__ = ("n", "num_arcs", "_graph")

    def __init__(self, shm, owner: bool) -> None:
        super().__init__(shm, owner)
        header = np.frombuffer(shm.buf, dtype=_INT, count=_HEADER)
        self.n = int(header[0])
        self.num_arcs = int(header[1])
        self._graph: Graph | None = None

    @classmethod
    def export(cls, graph: Graph) -> "SharedGraph":
        """Copy ``graph``'s CSR arrays into a fresh segment (coordinator)."""
        n, na = graph.n, graph.num_arcs
        shm = _create(_ITEM * (_HEADER + (n + 1) + 2 * na))
        flat = np.frombuffer(shm.buf, dtype=_INT)
        flat[0] = n
        flat[1] = na
        o = _HEADER
        flat[o : o + n + 1] = graph.xadj
        o += n + 1
        flat[o : o + na] = graph.adjncy
        o += na
        flat[o : o + na] = graph.adjwgt
        del flat  # views pin the buffer; keep only graph() views alive
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedGraph":
        """Map an exported graph by segment name (worker side, zero-copy)."""
        return cls(_attach_untracked(name), owner=False)

    def graph(self) -> Graph:
        """The :class:`Graph` whose arrays are views into the segment.

        The arrays are writable in principle (shared memory has no
        read-only mode before Python 3.13) but must be treated as
        immutable, like any :class:`Graph`.
        """
        if self._graph is None:
            if self._shm is None:
                raise ValueError("shared graph segment is closed")
            n, na = self.n, self.num_arcs
            o = _HEADER
            xadj = np.frombuffer(self._shm.buf, dtype=_INT, count=n + 1, offset=_ITEM * o)
            o += n + 1
            adjncy = np.frombuffer(self._shm.buf, dtype=_INT, count=na, offset=_ITEM * o)
            o += na
            adjwgt = np.frombuffer(self._shm.buf, dtype=_INT, count=na, offset=_ITEM * o)
            self._graph = Graph(xadj, adjncy, adjwgt)
        return self._graph

    def _drop_views(self) -> None:
        # numpy views pin shm.buf; close() would raise BufferError while
        # any are alive, so forget the cached Graph first
        self._graph = None


class SharedPairsBuffer(_Segment):
    """Fixed-width marked-pair return plane: one int64 row per worker.

    Row ``i`` is ``[count, u0, v0, ..., u_{count-1}, v_{count-1}]``; with
    worker-side union–find deduplication ``count ≤ n-1`` always fits.
    """

    __slots__ = ("p", "n", "_rows")

    def __init__(self, shm, owner: bool, p: int, n: int) -> None:
        super().__init__(shm, owner)
        self.p = p
        self.n = n
        self._rows = np.frombuffer(shm.buf, dtype=_INT, count=p * self.row_len(n)).reshape(
            p, self.row_len(n)
        )
        if owner:
            self._rows[:, 0] = 0

    @staticmethod
    def row_len(n: int) -> int:
        """int64 slots per row: a count plus up to ``n-1`` vertex pairs."""
        return 1 + 2 * max(n - 1, 0)

    @classmethod
    def create(cls, p: int, n: int) -> "SharedPairsBuffer":
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        shm = _create(_ITEM * p * cls.row_len(n))
        return cls(shm, owner=True, p=p, n=n)

    @classmethod
    def attach(cls, name: str, p: int, n: int) -> "SharedPairsBuffer":
        return cls(_attach_untracked(name), owner=False, p=p, n=n)

    def write_pairs(self, worker_id: int, pairs) -> None:
        """Publish one worker's pair list ``[(u, v), ...]`` into its row.

        The count is written *last* so a reader never sees a count covering
        slots that are still being filled (the supervisor only reads rows
        of workers that completed their queue handshake anyway).
        """
        row = self._rows[worker_id]
        k = len(pairs)
        if 1 + 2 * k > len(row):
            raise ValueError(
                f"worker {worker_id}: {k} pairs exceed the deduplicated bound {self.n - 1}"
            )
        if k:
            row[1 : 1 + 2 * k] = np.asarray(pairs, dtype=_INT).reshape(-1)
        row[0] = k
    def read_pairs(self, worker_id: int) -> np.ndarray:
        """One worker's pairs as an ``int64[count, 2]`` array (a copy).

        Values are *not* validated here — the coordinator range-checks them
        (exactly as it would queue-delivered pairs) so a corrupt worker is
        detected and discarded, never merged.
        """
        row = self._rows[worker_id]
        k = int(row[0])
        k = min(max(k, 0), (len(row) - 1) // 2)  # clamp a corrupt count
        return row[1 : 1 + 2 * k].reshape(-1, 2).copy()

    def _drop_views(self) -> None:
        self._rows = None


class SharedBytes(_Segment):
    """A zero-initialised shared byte plane (the visited table ``T``).

    ``buf`` is indexable/assignable like a ``bytearray`` and single-byte
    writes are atomic at the hardware level, which is all the benign-race
    claim table of the paper needs.
    """

    __slots__ = ("size",)

    def __init__(self, shm, owner: bool, size: int) -> None:
        super().__init__(shm, owner)
        self.size = size
        if owner:
            shm.buf[:size] = bytes(size)

    @classmethod
    def create(cls, size: int) -> "SharedBytes":
        return cls(_create(size), owner=True, size=size)

    @classmethod
    def attach(cls, name: str, size: int) -> "SharedBytes":
        return cls(_attach_untracked(name), owner=False, size=size)

    @property
    def buf(self):
        if self._shm is None:
            raise ValueError("shared byte segment is closed")
        return self._shm.buf
