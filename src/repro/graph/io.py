"""Graph file IO: METIS ``.graph`` format and plain weighted edge lists.

METIS is the format used by the paper's code base (VieCut/KaHIP tooling):
a header line ``n m [fmt]`` followed by one line per vertex listing its
neighbours 1-indexed, with interleaved edge weights when ``fmt`` has the
edge-weight bit (``1``/``001``) set.  Comment lines start with ``%``.

The edge-list format is one ``u v [w]`` triple per line (0-indexed), with
``#`` comments — convenient for quick interchange and for feeding instances
generated elsewhere.

Both readers are wired into the validation layer
(:mod:`~repro.graph.validate`): parse-level problems (bad tokens, endpoints
out of range, non-positive weights) raise
:class:`~repro.graph.validate.GraphValidationError` naming the file and
line, and every successfully parsed graph is checked against the CSR
structural invariants before it is returned — malformed inputs fail at the
boundary, not as index errors inside a solver.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .builder import from_edges
from .csr import Graph
from .validate import GraphValidationError, validate_loaded_graph


def write_metis(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` in METIS format (edge weights included iff non-unit)."""
    weighted = not graph.is_unweighted()
    with open(path, "w") as fh:
        fmt = " 1" if weighted else ""
        fh.write(f"{graph.n} {graph.m}{fmt}\n")
        for v in range(graph.n):
            nbrs = graph.neighbors(v)
            wgts = graph.weights(v)
            if weighted:
                parts = (f"{int(u) + 1} {int(w)}" for u, w in zip(nbrs, wgts))
            else:
                parts = (f"{int(u) + 1}" for u in nbrs)
            fh.write(" ".join(parts))
            fh.write("\n")


def read_metis(path: str | Path) -> Graph:
    """Read a METIS ``.graph`` file.

    Supports fmt codes ``0``/``00``/``000`` (unweighted) and ``1``/``001``
    (edge weights).  Vertex weights (``01x``/``1xx``) are rejected — the
    minimum-cut problem has no use for them here.  Malformed files raise
    :class:`~repro.graph.validate.GraphValidationError` with line context.
    """
    with open(path) as fh:
        return validate_loaded_graph(_read_metis_stream(fh, path=path), path=path)


def _parse_int(tok: str, what: str, path, lineno: int) -> int:
    try:
        return int(tok)
    except ValueError:
        raise GraphValidationError(
            f"{what}: expected an integer, got {tok!r}", path=path, line=lineno
        ) from None


def _read_metis_stream(fh: io.TextIOBase, path: str | Path | None = None) -> Graph:
    header: list[str] | None = None
    us: list[int] = []
    vs: list[int] = []
    ws: list[int] = []
    vertex = 0
    n = m = 0
    lineno = 0
    edge_weighted = False
    for lineno, raw in enumerate(fh, 1):
        line = raw.strip()
        if line.startswith("%"):
            continue
        if header is None:
            if not line:
                continue  # blank lines before the header are ignorable
            header = line.split()
            if len(header) < 2:
                raise GraphValidationError(
                    "METIS header must contain n and m", path=path, line=lineno
                )
            n = _parse_int(header[0], "header n", path, lineno)
            m = _parse_int(header[1], "header m", path, lineno)
            if n < 0 or m < 0:
                raise GraphValidationError(
                    f"header declares negative sizes n={n} m={m}", path=path, line=lineno
                )
            if len(header) >= 3:
                fmt = header[2]
                stripped = fmt.lstrip("0")
                if stripped not in ("", "1"):
                    raise GraphValidationError(
                        f"unsupported METIS fmt {fmt!r} (vertex weights)", path=path, line=lineno
                    )
                edge_weighted = stripped == "1"
            continue
        if not line:
            # an empty adjacency line is an isolated vertex — unless we have
            # already read all n vertices (trailing newline)
            if vertex < n:
                vertex += 1
            continue
        tokens = line.split()
        if vertex >= n:
            raise GraphValidationError(
                f"adjacency data for vertex {vertex + 1} beyond declared n={n}",
                path=path,
                line=lineno,
            )
        if edge_weighted:
            if len(tokens) % 2:
                raise GraphValidationError(
                    f"vertex {vertex + 1}: odd token count in weighted adjacency",
                    path=path,
                    line=lineno,
                )
            for i in range(0, len(tokens), 2):
                u = _parse_int(tokens[i], f"vertex {vertex + 1} neighbour", path, lineno) - 1
                w = _parse_int(tokens[i + 1], f"vertex {vertex + 1} edge weight", path, lineno)
                if not (0 <= u < n):
                    raise GraphValidationError(
                        f"vertex {vertex + 1}: neighbour {u + 1} out of range 1..{n}",
                        path=path,
                        line=lineno,
                    )
                if w <= 0:
                    raise GraphValidationError(
                        f"vertex {vertex + 1}: non-positive edge weight {w}",
                        path=path,
                        line=lineno,
                    )
                if u > vertex:  # each undirected edge appears twice; keep one
                    us.append(vertex)
                    vs.append(u)
                    ws.append(w)
        else:
            for tok in tokens:
                u = _parse_int(tok, f"vertex {vertex + 1} neighbour", path, lineno) - 1
                if not (0 <= u < n):
                    raise GraphValidationError(
                        f"vertex {vertex + 1}: neighbour {u + 1} out of range 1..{n}",
                        path=path,
                        line=lineno,
                    )
                if u > vertex:
                    us.append(vertex)
                    vs.append(u)
                    ws.append(1)
        vertex += 1
    if header is None:
        raise GraphValidationError("empty METIS file", path=path)
    if vertex != n:
        raise GraphValidationError(
            f"METIS header declares {n} vertices, file has {vertex}", path=path, line=lineno
        )
    g = from_edges(n, us, vs, ws)
    if g.m != m:
        raise GraphValidationError(
            f"METIS header declares {m} edges, file has {g.m}", path=path
        )
    return g


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write ``u v w`` triples, 0-indexed, one edge per line."""
    us, vs, ws = graph.edge_arrays()
    with open(path, "w") as fh:
        fh.write(f"# n={graph.n} m={graph.m}\n")
        for u, v, w in zip(us, vs, ws):
            fh.write(f"{int(u)} {int(v)} {int(w)}\n")


def read_edge_list(path: str | Path, n: int | None = None) -> Graph:
    """Read ``u v [w]`` lines (0-indexed, ``#`` comments).

    ``n`` defaults to ``max endpoint + 1``; the ``# n=... m=...`` header
    written by :func:`write_edge_list` is honoured when present.
    """
    us: list[int] = []
    vs: list[int] = []
    ws: list[int] = []
    with open(path) as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if n is None and "n=" in line:
                    try:
                        n = int(line.split("n=")[1].split()[0])
                    except (IndexError, ValueError):
                        pass
                continue
            tokens = line.split()
            if len(tokens) < 2:
                raise GraphValidationError(
                    f"expected 'u v [w]', got {line!r}", path=path, line=lineno
                )
            u = _parse_int(tokens[0], "endpoint u", path, lineno)
            v = _parse_int(tokens[1], "endpoint v", path, lineno)
            w = _parse_int(tokens[2], "weight", path, lineno) if len(tokens) > 2 else 1
            if u < 0 or v < 0:
                raise GraphValidationError(
                    f"negative endpoint in edge ({u}, {v})", path=path, line=lineno
                )
            if w <= 0:
                raise GraphValidationError(
                    f"non-positive weight {w} on edge ({u}, {v})", path=path, line=lineno
                )
            us.append(u)
            vs.append(v)
            ws.append(w)
    mx = max(max(us, default=-1), max(vs, default=-1))
    if n is None:
        n = mx + 1
    elif mx >= n:
        raise GraphValidationError(f"endpoint {mx} out of range for n={n}", path=path)
    ge = from_edges(
        n, np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64), np.array(ws, dtype=np.int64)
    )
    return validate_loaded_graph(ge, path=path)
