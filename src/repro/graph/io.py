"""Graph file IO: METIS ``.graph`` format and plain weighted edge lists.

METIS is the format used by the paper's code base (VieCut/KaHIP tooling):
a header line ``n m [fmt]`` followed by one line per vertex listing its
neighbours 1-indexed, with interleaved edge weights when ``fmt`` has the
edge-weight bit (``1``/``001``) set.  Comment lines start with ``%``.

The edge-list format is one ``u v [w]`` triple per line (0-indexed), with
``#`` comments — convenient for quick interchange and for feeding instances
generated elsewhere.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .builder import from_edges
from .csr import Graph


def write_metis(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` in METIS format (edge weights included iff non-unit)."""
    weighted = not graph.is_unweighted()
    with open(path, "w") as fh:
        fmt = " 1" if weighted else ""
        fh.write(f"{graph.n} {graph.m}{fmt}\n")
        for v in range(graph.n):
            nbrs = graph.neighbors(v)
            wgts = graph.weights(v)
            if weighted:
                parts = (f"{int(u) + 1} {int(w)}" for u, w in zip(nbrs, wgts))
            else:
                parts = (f"{int(u) + 1}" for u in nbrs)
            fh.write(" ".join(parts))
            fh.write("\n")


def read_metis(path: str | Path) -> Graph:
    """Read a METIS ``.graph`` file.

    Supports fmt codes ``0``/``00``/``000`` (unweighted) and ``1``/``001``
    (edge weights).  Vertex weights (``01x``/``1xx``) are rejected — the
    minimum-cut problem has no use for them here.
    """
    with open(path) as fh:
        return _read_metis_stream(fh)


def _read_metis_stream(fh: io.TextIOBase) -> Graph:
    header: list[str] | None = None
    us: list[int] = []
    vs: list[int] = []
    ws: list[int] = []
    vertex = 0
    n = m = 0
    edge_weighted = False
    for raw in fh:
        line = raw.strip()
        if line.startswith("%"):
            continue
        if header is None:
            if not line:
                continue  # blank lines before the header are ignorable
            header = line.split()
            if len(header) < 2:
                raise ValueError("METIS header must contain n and m")
            n, m = int(header[0]), int(header[1])
            if len(header) >= 3:
                fmt = header[2]
                stripped = fmt.lstrip("0")
                if stripped not in ("", "1"):
                    raise ValueError(f"unsupported METIS fmt {fmt!r} (vertex weights)")
                edge_weighted = stripped == "1"
            continue
        if not line:
            # an empty adjacency line is an isolated vertex — unless we have
            # already read all n vertices (trailing newline)
            if vertex < n:
                vertex += 1
            continue
        tokens = line.split()
        if edge_weighted:
            if len(tokens) % 2:
                raise ValueError(f"vertex {vertex}: odd token count in weighted adjacency")
            for i in range(0, len(tokens), 2):
                u = int(tokens[i]) - 1
                w = int(tokens[i + 1])
                if u > vertex:  # each undirected edge appears twice; keep one
                    us.append(vertex)
                    vs.append(u)
                    ws.append(w)
        else:
            for tok in tokens:
                u = int(tok) - 1
                if u > vertex:
                    us.append(vertex)
                    vs.append(u)
                    ws.append(1)
        vertex += 1
    if header is None:
        raise ValueError("empty METIS file")
    if vertex != n:
        raise ValueError(f"METIS header declares {n} vertices, file has {vertex}")
    g = from_edges(n, us, vs, ws)
    if g.m != m:
        raise ValueError(f"METIS header declares {m} edges, file has {g.m}")
    return g


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write ``u v w`` triples, 0-indexed, one edge per line."""
    us, vs, ws = graph.edge_arrays()
    with open(path, "w") as fh:
        fh.write(f"# n={graph.n} m={graph.m}\n")
        for u, v, w in zip(us, vs, ws):
            fh.write(f"{int(u)} {int(v)} {int(w)}\n")


def read_edge_list(path: str | Path, n: int | None = None) -> Graph:
    """Read ``u v [w]`` lines (0-indexed, ``#`` comments).

    ``n`` defaults to ``max endpoint + 1``; the ``# n=... m=...`` header
    written by :func:`write_edge_list` is honoured when present.
    """
    us: list[int] = []
    vs: list[int] = []
    ws: list[int] = []
    with open(path) as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if n is None and "n=" in line:
                    try:
                        n = int(line.split("n=")[1].split()[0])
                    except (IndexError, ValueError):
                        pass
                continue
            tokens = line.split()
            us.append(int(tokens[0]))
            vs.append(int(tokens[1]))
            ws.append(int(tokens[2]) if len(tokens) > 2 else 1)
    if n is None:
        n = max(max(us, default=-1), max(vs, default=-1)) + 1
    return from_edges(n, np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64), np.array(ws, dtype=np.int64))
