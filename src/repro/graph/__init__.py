"""Graph substrate: CSR storage, construction, contraction, cores, IO."""

from .builder import GraphBuilder, from_adjacency, from_edges
from .components import (
    connected_components,
    connected_components_bfs,
    induced_subgraph,
    is_connected,
    largest_component,
)
from .contract import compose_labels, contract_by_labels, contract_by_union_find, contract_edge
from .csr import Graph
from .dimacs import read_dimacs, write_dimacs
from .parallel_contract import parallel_contract_by_labels
from .properties import (
    GraphProfile,
    conductance_of_cut,
    degree_histogram,
    diameter_lower_bound,
    powerlaw_exponent_estimate,
    profile,
)
from .io import read_edge_list, read_metis, write_edge_list, write_metis
from .kcore import core_numbers, degeneracy, k_core, k_core_largest_component
from .shm import SharedBytes, SharedGraph, SharedPairsBuffer
from .validate import (
    GraphInvariantError,
    GraphValidationError,
    check_graph,
    is_valid,
    validate_loaded_graph,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "from_adjacency",
    "from_edges",
    "connected_components",
    "connected_components_bfs",
    "induced_subgraph",
    "is_connected",
    "largest_component",
    "compose_labels",
    "contract_by_labels",
    "contract_by_union_find",
    "contract_edge",
    "parallel_contract_by_labels",
    "read_dimacs",
    "write_dimacs",
    "GraphProfile",
    "conductance_of_cut",
    "degree_histogram",
    "diameter_lower_bound",
    "powerlaw_exponent_estimate",
    "profile",
    "read_edge_list",
    "read_metis",
    "write_edge_list",
    "write_metis",
    "core_numbers",
    "degeneracy",
    "k_core",
    "k_core_largest_component",
    "SharedBytes",
    "SharedGraph",
    "SharedPairsBuffer",
    "GraphInvariantError",
    "GraphValidationError",
    "check_graph",
    "is_valid",
    "validate_loaded_graph",
]
