"""Graph statistics used in the paper's instance analysis.

The evaluation narrative keys on a handful of structural properties:
average/minimum degree (Table 1, Figure 3's x-axis), degree skew (why
bounded queues win on web graphs, §4.2), diameter (why the bucket queue's
large population favours O(1) access on low-diameter graphs, §4.2), and
power-law fit (the RHG generator's γ = 5).  This module computes them.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from .csr import Graph


@dataclass
class GraphProfile:
    """Summary statistics for one instance."""

    n: int
    m: int
    min_degree: int
    max_degree: int
    avg_degree: float
    median_degree: float
    degree_skew: float  # max / median — the hub indicator of §4.2
    diameter_lower_bound: int
    total_weight: int

    def as_dict(self) -> dict:
        return self.__dict__.copy()


def profile(graph: Graph) -> GraphProfile:
    """Compute the instance profile (O(n + m) plus two BFS sweeps)."""
    if graph.n == 0:
        raise ValueError("cannot profile an empty graph")
    degs = graph.degrees()
    median = float(np.median(degs[degs > 0])) if (degs > 0).any() else 0.0
    return GraphProfile(
        n=graph.n,
        m=graph.m,
        min_degree=int(degs.min()),
        max_degree=int(degs.max()),
        avg_degree=2.0 * graph.m / graph.n,
        median_degree=median,
        degree_skew=float(degs.max()) / median if median else 0.0,
        diameter_lower_bound=diameter_lower_bound(graph),
        total_weight=graph.total_weight(),
    )


def degree_histogram(graph: Graph) -> np.ndarray:
    """``hist[d]`` = number of vertices of unweighted degree ``d``."""
    degs = graph.degrees()
    if len(degs) == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degs).astype(np.int64)


def powerlaw_exponent_estimate(graph: Graph, d_min: int = 2) -> float:
    """Maximum-likelihood power-law exponent of the degree tail
    (Clauset-style MLE with fixed ``d_min``): γ̂ = 1 + k / Σ ln(d/d_min-½).

    Returns ``nan`` when fewer than 10 vertices exceed ``d_min``.
    """
    degs = graph.degrees()
    tail = degs[degs >= d_min].astype(np.float64)
    if len(tail) < 10:
        return float("nan")
    return 1.0 + len(tail) / float(np.log(tail / (d_min - 0.5)).sum())


def diameter_lower_bound(graph: Graph, start: int = 0) -> int:
    """Double-sweep BFS lower bound on the diameter of the start vertex's
    component (exact on trees, excellent on the low-diameter instances the
    paper uses; unweighted hops)."""
    if graph.n == 0:
        return 0
    far, _ = _bfs_farthest(graph, start)
    _, dist = _bfs_farthest(graph, far)
    return dist


def _bfs_farthest(graph: Graph, source: int) -> tuple[int, int]:
    xadj, adjncy = graph.xadj, graph.adjncy
    dist = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0
    dq = deque([source])
    last = source
    while dq:
        v = dq.popleft()
        last = v
        for u in adjncy[xadj[v] : xadj[v + 1]]:
            if dist[u] == -1:
                dist[u] = dist[v] + 1
                dq.append(int(u))
    return last, int(dist[last])


def conductance_of_cut(graph: Graph, side: np.ndarray) -> float:
    """Cut conductance ``c(A) / min(vol(A), vol(V∖A))`` — the balance
    metric distinguishing the RHG instances' near-bisections from the
    web-like instances' hanging-pod cuts (Appendix A)."""
    side = np.asarray(side, dtype=bool)
    if len(side) != graph.n:
        raise ValueError("side mask length must equal n")
    if not side.any() or side.all():
        raise ValueError("side must be a proper non-empty subset")
    wdeg = graph.weighted_degrees()
    vol_a = int(wdeg[side].sum())
    vol_b = int(wdeg[~side].sum())
    denom = min(vol_a, vol_b)
    if denom == 0:
        return math.inf
    return graph.cut_value(side) / denom
