"""Construction of CSR graphs from edge lists.

The builder is fully vectorized: edges are accumulated into growing numpy
buffers, canonicalized (``u < v``), deduplicated with weights summed (the
contraction semantics of §2.1 — parallel edges merge into one weighted
edge), and laid out into CSR with a counting sort.  Self-loops are dropped,
matching ``G/(u, v)`` contraction semantics.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .csr import Graph


def from_edges(
    n: int,
    us: np.ndarray | Iterable[int],
    vs: np.ndarray | Iterable[int],
    ws: np.ndarray | Iterable[int] | None = None,
) -> Graph:
    """Build a :class:`Graph` from parallel edge arrays.

    Parameters
    ----------
    n:
        Number of vertices.  All endpoints must lie in ``[0, n)``.
    us, vs:
        Edge endpoints.  Order within a pair is irrelevant; duplicates are
        merged with weights summed; self-loops are dropped.
    ws:
        Edge weights (positive integers).  Defaults to all-ones.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if ws is None:
        ws = np.ones(len(us), dtype=np.int64)
    else:
        ws = np.asarray(ws, dtype=np.int64)
    if not (len(us) == len(vs) == len(ws)):
        raise ValueError("us, vs, ws must have equal length")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if len(us):
        if us.min() < 0 or vs.min() < 0 or us.max() >= n or vs.max() >= n:
            raise ValueError("edge endpoint out of range")
        if ws.min() <= 0:
            raise ValueError("edge weights must be positive")

    # Drop self-loops, canonicalize so u < v.
    keep = us != vs
    us, vs, ws = us[keep], vs[keep], ws[keep]
    lo = np.minimum(us, vs)
    hi = np.maximum(us, vs)

    # Merge parallel edges: unique pair keys, weights summed per key.
    keys = lo * np.int64(n) + hi
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    ws = ws[order]
    if len(keys):
        boundary = np.empty(len(keys), dtype=bool)
        boundary[0] = True
        np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        csum = np.concatenate(([0], np.cumsum(ws, dtype=np.int64)))
        ends = np.concatenate((starts[1:], [len(keys)]))
        agg_w = csum[ends] - csum[starts]
        uniq = keys[starts]
        lo = uniq // n
        hi = uniq % n
        ws = agg_w
    else:
        lo = hi = ws = np.empty(0, dtype=np.int64)

    return _csr_from_unique_edges(n, lo, hi, ws)


def _csr_from_unique_edges(n: int, lo: np.ndarray, hi: np.ndarray, ws: np.ndarray) -> Graph:
    """CSR layout from deduplicated undirected edges via counting sort.

    Arcs are emitted sorted by (tail, head), so every adjacency slice is
    sorted by head id — a property the IO round-trip and some tests rely on.
    """
    tails = np.concatenate((lo, hi))
    heads = np.concatenate((hi, lo))
    wgts = np.concatenate((ws, ws))
    # sort arcs by (tail, head): tail*n+head fits in int64 for n < 2^31.5
    order = np.argsort(tails * np.int64(n) + heads, kind="stable")
    heads = heads[order]
    wgts = wgts[order]
    counts = np.bincount(tails, minlength=n).astype(np.int64)
    xadj = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
    return Graph(xadj, heads, wgts)


class GraphBuilder:
    """Incremental edge-list accumulator with amortized O(1) appends.

    Example
    -------
    >>> g = GraphBuilder(3).add_edge(0, 1, 2).add_edge(1, 2).build()
    >>> (g.n, g.m)
    (3, 2)
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self.n = n
        self._us: list[int] = []
        self._vs: list[int] = []
        self._ws: list[int] = []

    def add_edge(self, u: int, v: int, w: int = 1) -> "GraphBuilder":
        """Queue edge ``{u, v}`` with weight ``w`` (validated at build time)."""
        self._us.append(u)
        self._vs.append(v)
        self._ws.append(w)
        return self

    def add_edges(self, edges: Iterable[tuple[int, int] | tuple[int, int, int]]) -> "GraphBuilder":
        """Queue many edges; tuples may be ``(u, v)`` or ``(u, v, w)``."""
        for e in edges:
            if len(e) == 2:
                self.add_edge(e[0], e[1])
            else:
                self.add_edge(e[0], e[1], e[2])
        return self

    def build(self) -> Graph:
        return from_edges(self.n, self._us, self._vs, self._ws)


def from_adjacency(adj: dict[int, dict[int, int]], n: int | None = None) -> Graph:
    """Build from ``{u: {v: w}}`` nested dicts (test convenience)."""
    pairs: dict[tuple[int, int], int] = {}
    max_v = -1
    for u, nbrs in adj.items():
        max_v = max(max_v, u)
        for v, w in nbrs.items():
            max_v = max(max_v, v)
            key = (u, v) if u < v else (v, u)
            if key in pairs and pairs[key] != w:
                raise ValueError(f"inconsistent weights for edge {key}")
            pairs[key] = w
    if n is None:
        n = max_v + 1
    us = [u for u, _ in pairs]
    vs = [v for _, v in pairs]
    ws = list(pairs.values())
    return from_edges(n, us, vs, ws)
