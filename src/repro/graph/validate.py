"""Structural invariant checks for :class:`~repro.graph.csr.Graph`.

Called by tests (and available to users ingesting untrusted files) to
verify the CSR invariants every solver in this package relies on:

1. offsets are monotone and match the arc-array length;
2. arc heads are valid vertex ids, with no self-loop arcs;
3. every arc weight is positive;
4. the arc set is symmetric with equal weights: for every arc ``u->v`` of
   weight ``w`` there is exactly one matching ``v->u`` of weight ``w``
   (undirectedness);
5. no parallel arcs (duplicate heads within one adjacency slice) — parallel
   input edges must have been merged.
"""

from __future__ import annotations

import numpy as np

from .csr import Graph


class GraphInvariantError(AssertionError):
    """Raised by :func:`check_graph` when an invariant is violated."""


class GraphValidationError(ValueError):
    """A graph *file* failed validation — parse error or broken invariant.

    Subclasses ``ValueError`` so existing ``except ValueError`` callers
    keep working, but carries structured context (``path``, ``line``,
    ``detail``) so CLI users and scripted callers see *where* the input is
    malformed instead of a downstream index error.
    """

    def __init__(self, detail: str, *, path=None, line: int | None = None) -> None:
        self.detail = detail
        self.path = str(path) if path is not None else None
        self.line = line
        loc = ""
        if self.path is not None:
            loc = self.path
        if line is not None:
            loc += f":{line}"
        super().__init__(f"{loc}: {detail}" if loc else detail)


def validate_loaded_graph(graph: Graph, *, path=None) -> Graph:
    """Run :func:`check_graph` on a freshly parsed file, rewrapping failures.

    The readers in :mod:`~repro.graph.io` and :mod:`~repro.graph.dimacs`
    call this so an input file that parses but encodes a structurally
    invalid graph (asymmetric arcs, non-positive weights, …) surfaces as a
    :class:`GraphValidationError` naming the file, not as an index error
    deep inside a solver.
    """
    try:
        check_graph(graph)
    except GraphInvariantError as exc:
        raise GraphValidationError(str(exc), path=path) from exc
    return graph


def check_graph(graph: Graph, *, require_sorted: bool = False) -> None:
    """Raise :class:`GraphInvariantError` on the first violated invariant.

    ``require_sorted`` additionally asserts every adjacency slice is sorted
    by head id — true for every graph this package constructs (builder,
    contraction, IO) and relied on by binary-search lookups; off by default
    so hand-assembled arrays with a different order still validate.
    """
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    n = graph.n

    if (np.diff(xadj) < 0).any():
        raise GraphInvariantError("xadj offsets are not monotone")
    if xadj[0] != 0:
        raise GraphInvariantError("xadj[0] must be 0")
    if xadj[-1] != len(adjncy):
        raise GraphInvariantError("xadj[-1] must equal number of arcs")
    if len(adjncy) == 0:
        return
    if adjncy.min() < 0 or adjncy.max() >= n:
        raise GraphInvariantError("arc head out of range")
    if adjwgt.min() <= 0:
        raise GraphInvariantError("non-positive arc weight")

    src = graph.arc_sources()
    if (src == adjncy).any():
        raise GraphInvariantError("self-loop arc present")

    # symmetry incl. weights: multiset of (u, v, w) equals multiset of (v, u, w)
    fwd = np.lexsort((adjwgt, adjncy, src))
    bwd = np.lexsort((adjwgt, src, adjncy))
    if not (
        np.array_equal(src[fwd], adjncy[bwd])
        and np.array_equal(adjncy[fwd], src[bwd])
        and np.array_equal(adjwgt[fwd], adjwgt[bwd])
    ):
        raise GraphInvariantError("arc set is not symmetric with equal weights")

    # no parallel arcs: (src, head) pairs are unique
    keys = src * np.int64(n) + adjncy
    if len(np.unique(keys)) != len(keys):
        raise GraphInvariantError("parallel arcs present (unmerged multi-edges)")

    if require_sorted:
        # heads ascend within every adjacency slice <=> the (src, head) key
        # array is globally ascending (src blocks are contiguous)
        if (np.diff(keys) <= 0).any():
            raise GraphInvariantError("adjacency slices are not sorted by head id")


def is_valid(graph: Graph) -> bool:
    """Boolean wrapper around :func:`check_graph`."""
    try:
        check_graph(graph)
    except GraphInvariantError:
        return False
    return True
