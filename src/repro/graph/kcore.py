"""k-core decomposition (Batagelj–Zaversnik) and k-core extraction.

The paper's real-world instances are k-cores of large web/social graphs
(Appendix A.2): "The k-core of a graph G is the maximum subgraph G' which
fulfills the condition that every vertex in G' has a degree of at least k.
We perform our experiments on the largest connected component of G'."

Two entry points:

* :func:`core_numbers` — the full O(m) bucket-peeling decomposition of
  Batagelj & Zaversnik [3]: the core number of v is the largest k such that
  v belongs to the k-core.
* :func:`k_core` — extract one k-core directly by repeated vectorized
  peeling, which is faster in practice when only one k is needed (each
  round removes *all* current low-degree vertices at once).

Core membership is by *unweighted* degree, matching the paper's pipeline
(their instances are unweighted).
"""

from __future__ import annotations

import numpy as np

from .components import induced_subgraph
from .csr import Graph


def core_numbers(graph: Graph) -> np.ndarray:
    """Core number of every vertex (``int64[n]``), O(m) bucket peeling."""
    n = graph.n
    deg = graph.degrees().copy()
    if n == 0:
        return deg
    max_deg = int(deg.max())
    # bucket sort vertices by degree
    bin_starts = np.zeros(max_deg + 2, dtype=np.int64)
    np.add.at(bin_starts, deg + 1, 1)
    bin_starts = np.cumsum(bin_starts)
    order = np.argsort(deg, kind="stable").astype(np.int64)
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n, dtype=np.int64)
    # bin_starts[d] = first index in `order` holding a vertex of degree >= d
    bin_ptr = bin_starts[:-1].copy()

    core = deg.copy()
    xadj, adjncy = graph.xadj, graph.adjncy
    for i in range(n):
        v = order[i]
        core[v] = deg[v]
        dv = deg[v]
        for u in adjncy[xadj[v] : xadj[v + 1]]:
            du = deg[u]
            if du > dv:
                # move u to the front of its bucket, then shrink its degree
                pu = pos[u]
                pw = bin_ptr[du]
                w = order[pw]
                if u != w:
                    order[pu], order[pw] = w, u
                    pos[u], pos[w] = pw, pu
                bin_ptr[du] += 1
                deg[u] = du - 1
    return core


def k_core(graph: Graph, k: int) -> tuple[Graph, np.ndarray]:
    """The k-core of ``graph`` as ``(subgraph, old_ids)``.

    Repeatedly strips every vertex whose remaining degree is below ``k``
    (all at once, vectorized) until a fixpoint.  Returns an empty graph if
    the k-core is empty.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n = graph.n
    alive = np.ones(n, dtype=bool)
    deg = graph.degrees().astype(np.int64)
    xadj, adjncy = graph.xadj, graph.adjncy
    frontier = np.flatnonzero(alive & (deg < k))
    while len(frontier):
        alive[frontier] = False
        # neighbours of every removed vertex lose one incident edge
        slices = [adjncy[xadj[v] : xadj[v + 1]] for v in frontier]
        nbrs = np.concatenate(slices) if slices else np.empty(0, dtype=np.int64)
        np.subtract.at(deg, nbrs, 1)
        deg[~alive] = 0
        frontier = np.flatnonzero(alive & (deg < k))
    return induced_subgraph(graph, np.flatnonzero(alive))


def k_core_largest_component(graph: Graph, k: int) -> tuple[Graph, np.ndarray]:
    """The paper's full instance pipeline: k-core, then largest component.

    Returns ``(instance, old_ids)`` mapping instance vertices to ids in the
    original graph.
    """
    from .components import largest_component

    core, core_ids = k_core(graph, k)
    comp, comp_ids = largest_component(core)
    return comp, core_ids[comp_ids]


def degeneracy(graph: Graph) -> int:
    """The degeneracy (maximum core number) of the graph."""
    if graph.n == 0:
        return 0
    return int(core_numbers(graph).max())
