"""Static weighted undirected graph in compressed sparse row (CSR) form.

All solvers in this package operate on this one representation: three
contiguous ``int64`` numpy arrays (``xadj``, ``adjncy``, ``adjwgt``), the
layout used by METIS/KaHIP and by the paper's C++ implementation.  Each
undirected edge ``{u, v}`` is stored as two directed *arcs* ``u->v`` and
``v->u`` with equal weight.  Self-loops are disallowed; parallel edges are
merged (weights summed) at construction time by
:class:`~repro.graph.builder.GraphBuilder`.

Contiguity matters (see the hpc-parallel guides): every kernel walks
``adjncy[xadj[v]:xadj[v+1]]`` slices, which are views, never copies, and the
vectorized contraction/generator code streams over whole arrays.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


class Graph:
    """Immutable weighted undirected graph over vertices ``{0..n-1}``.

    Parameters
    ----------
    xadj:
        ``int64[n+1]`` arc offsets; arcs of vertex ``v`` live in
        ``[xadj[v], xadj[v+1])``.
    adjncy:
        ``int64[2m]`` arc heads.
    adjwgt:
        ``int64[2m]`` arc weights (positive).

    Use :class:`~repro.graph.builder.GraphBuilder` or
    :func:`~repro.graph.builder.from_edges` rather than constructing
    directly, unless the arrays are already known to satisfy the invariants
    (see :func:`~repro.graph.validate.check_graph`).
    """

    __slots__ = ("xadj", "adjncy", "adjwgt", "_wdeg", "_total_weight", "_xadj_list", "_wdeg_list")

    def __init__(self, xadj: np.ndarray, adjncy: np.ndarray, adjwgt: np.ndarray) -> None:
        self.xadj = np.ascontiguousarray(xadj, dtype=np.int64)
        self.adjncy = np.ascontiguousarray(adjncy, dtype=np.int64)
        self.adjwgt = np.ascontiguousarray(adjwgt, dtype=np.int64)
        if len(self.xadj) == 0:
            raise ValueError("xadj must have at least one entry")
        if len(self.adjncy) != len(self.adjwgt):
            raise ValueError("adjncy and adjwgt must have equal length")
        if self.xadj[-1] != len(self.adjncy):
            raise ValueError("xadj[-1] must equal the number of arcs")
        self._wdeg: np.ndarray | None = None
        self._total_weight: int | None = None
        self._xadj_list: list[int] | None = None
        self._wdeg_list: list[int] | None = None

    # -- sizes ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.xadj) - 1

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.adjncy) // 2

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs (``2 * m``)."""
        return len(self.adjncy)

    # -- per-vertex access -----------------------------------------------------

    def neighbors(self, v: int) -> np.ndarray:
        """Arc heads of ``v`` (a view, do not mutate)."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def weights(self, v: int) -> np.ndarray:
        """Arc weights of ``v`` (a view, aligned with :meth:`neighbors`)."""
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        """Number of incident edges (unweighted degree)."""
        return int(self.xadj[v + 1] - self.xadj[v])

    def weighted_degree(self, v: int) -> int:
        """Sum of incident edge weights — ``c(v)`` in the paper."""
        return int(self.weighted_degrees()[v])

    # -- whole-graph queries -----------------------------------------------------

    def degrees(self) -> np.ndarray:
        """Unweighted degree of every vertex (``int64[n]``)."""
        return np.diff(self.xadj)

    def weighted_degrees(self) -> np.ndarray:
        """Weighted degree of every vertex (cached, ``int64[n]``)."""
        if self._wdeg is None:
            # prefix sums handle empty adjacency slices (isolated vertices)
            # uniformly, unlike np.add.reduceat
            csum = np.concatenate(([0], np.cumsum(self.adjwgt, dtype=np.int64)))
            self._wdeg = csum[self.xadj[1:]] - csum[self.xadj[:-1]]
        return self._wdeg

    def xadj_list(self) -> list[int]:
        """``xadj`` as a cached list of Python ints.

        The scalar CAPFOREST kernels index single offsets millions of times,
        where list access beats numpy scalar access ~3x; every pass (and
        every in-process parallel worker) shares this one conversion.
        Treat as read-only.
        """
        if self._xadj_list is None:
            self._xadj_list = self.xadj.tolist()
        return self._xadj_list

    def weighted_degrees_list(self) -> list[int]:
        """:meth:`weighted_degrees` as a cached list of Python ints
        (same single-element-access rationale as :meth:`xadj_list`)."""
        if self._wdeg_list is None:
            self._wdeg_list = self.weighted_degrees().tolist()
        return self._wdeg_list

    def min_weighted_degree(self) -> tuple[int, int]:
        """``(vertex, weighted degree)`` of a minimum-weighted-degree vertex.

        This is the trivial cut ``({v}, V \\ {v})`` and the classic initial
        upper bound ``λ̂ = δ(G)`` (paper §2.1).
        """
        if self.n == 0:
            raise ValueError("empty graph has no degrees")
        wdeg = self.weighted_degrees()
        v = int(np.argmin(wdeg))
        return v, int(wdeg[v])

    def total_weight(self) -> int:
        """Sum of all edge weights ``c(E)``."""
        if self._total_weight is None:
            self._total_weight = int(self.adjwgt.sum()) // 2
        return self._total_weight

    def arc_sources(self) -> np.ndarray:
        """``int64[2m]`` tail vertex of each arc (computed, not cached)."""
        return np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.xadj))

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """Iterate undirected edges as ``(u, v, w)`` with ``u < v``."""
        xadj, adjncy, adjwgt = self.xadj, self.adjncy, self.adjwgt
        for u in range(self.n):
            for i in range(xadj[u], xadj[u + 1]):
                v = adjncy[i]
                if u < v:
                    yield u, int(v), int(adjwgt[i])

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Undirected edge list ``(us, vs, ws)`` with ``us < vs`` (vectorized)."""
        src = self.arc_sources()
        mask = src < self.adjncy
        return src[mask], self.adjncy[mask], self.adjwgt[mask]

    def edge_weight(self, u: int, v: int) -> int:
        """Weight of edge ``{u, v}``, or 0 if absent (linear in deg(u))."""
        nbrs = self.neighbors(u)
        hits = np.flatnonzero(nbrs == v)
        if len(hits) == 0:
            return 0
        return int(self.weights(u)[hits[0]])

    def has_edge(self, u: int, v: int) -> bool:
        return bool((self.neighbors(u) == v).any())

    def cut_value(self, side: np.ndarray) -> int:
        """Capacity ``c(A)`` of the cut defined by boolean mask ``side``.

        ``side[v]`` is True for vertices in ``A``.  Used by tests and by
        :class:`~repro.core.api.MinCutResult` to certify reported cuts.
        """
        side = np.asarray(side, dtype=bool)
        if len(side) != self.n:
            raise ValueError("side mask length must equal n")
        src = self.arc_sources()
        crossing = side[src] & ~side[self.adjncy]
        return int(self.adjwgt[crossing].sum())

    # -- misc -----------------------------------------------------------------

    def copy(self) -> "Graph":
        return Graph(self.xadj.copy(), self.adjncy.copy(), self.adjwgt.copy())

    def is_unweighted(self) -> bool:
        """True if every edge has weight 1."""
        return bool((self.adjwgt == 1).all()) if self.num_arcs else True

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m}, total_weight={self.total_weight()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            np.array_equal(self.xadj, other.xadj)
            and np.array_equal(self.adjncy, other.adjncy)
            and np.array_equal(self.adjwgt, other.adjwgt)
        )

    def __hash__(self) -> int:  # pragma: no cover - Graphs are not dict keys
        return id(self)
