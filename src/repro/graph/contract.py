"""Graph contraction by vertex-partition labels (vectorized).

Contracting a set of marked edges (paper §2.1, §3.2) collapses every
union–find block into one supervertex; edges between blocks merge with
weights summed; edges inside a block vanish.  The whole operation is a
handful of numpy passes over the arc arrays — the Python equivalent of the
paper's hash-table contraction, with ``np.unique`` playing the hash table.

When the compiled kernel tier is active (``kernel="compiled"``, see
:mod:`repro.kernels`), the arc aggregation instead runs as one jitted pass
(:func:`repro.kernels.contract_kernel.contract_arcs`) producing
element-identical CSR arrays — both paths group output arcs by the
``src * nc + dst`` key, and parallel-arc merging erases any sort-stability
difference.
"""

from __future__ import annotations

import numpy as np

from ..datastructures.union_find import UnionFind
from .csr import Graph


def contract_by_labels(
    graph: Graph, labels: np.ndarray, *, kernel: str | None = None
) -> tuple[Graph, np.ndarray]:
    """Contract ``graph`` according to a dense label array.

    Parameters
    ----------
    graph:
        Input graph.
    labels:
        ``int64[n]`` with values in ``[0, nc)``: vertices sharing a label
        collapse into one supervertex.  Labels must be dense (every value in
        ``[0, nc)`` used); :meth:`UnionFind.labels` produces this format.
    kernel:
        ``"compiled"`` routes the aggregation through the jitted kernel
        when the compiled tier is available; any other value (or ``None``)
        uses the numpy path.  Output is identical either way.

    Returns
    -------
    ``(contracted_graph, labels)`` — labels are returned unchanged so
    callers can compose mappings from original ids to supervertices.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if len(labels) != graph.n:
        raise ValueError("labels length must equal graph.n")
    nc = int(labels.max()) + 1 if len(labels) else 0

    if kernel == "compiled" and nc:
        from ..kernels import compiled_available

        if compiled_available():
            from ..kernels.contract_kernel import contract_arcs

            xadj, heads, wgt = contract_arcs(
                graph.xadj, graph.adjncy, graph.adjwgt, labels, nc
            )
            return Graph(xadj, heads, wgt), labels

    src = labels[graph.arc_sources()]
    dst = labels[graph.adjncy]
    keep = src != dst  # intra-block arcs vanish
    src, dst, wgt = src[keep], dst[keep], graph.adjwgt[keep]

    # Aggregate parallel arcs per (src, dst) ordered pair.  Both directions
    # of every undirected edge are present, so aggregating ordered pairs
    # directly yields a symmetric arc set.
    keys = src * np.int64(nc) + dst
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    wgt = wgt[order]
    if len(keys):
        boundary = np.empty(len(keys), dtype=bool)
        boundary[0] = True
        np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        csum = np.concatenate(([0], np.cumsum(wgt, dtype=np.int64)))
        ends = np.concatenate((starts[1:], [len(keys)]))
        agg_w = csum[ends] - csum[starts]
        uniq = keys[starts]
        heads = uniq % nc
        tails = uniq // nc
    else:
        heads = tails = agg_w = np.empty(0, dtype=np.int64)

    counts = np.bincount(tails, minlength=nc).astype(np.int64)
    xadj = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
    return Graph(xadj, heads, agg_w), labels


def contract_by_union_find(
    graph: Graph, uf: UnionFind, *, kernel: str | None = None
) -> tuple[Graph, np.ndarray]:
    """Contract the blocks of a union–find structure over the graph's vertices."""
    if uf.n != graph.n:
        raise ValueError("union-find size must equal graph.n")
    return contract_by_labels(graph, uf.labels(), kernel=kernel)


def contract_edge(graph: Graph, u: int, v: int) -> tuple[Graph, np.ndarray]:
    """Contract the single edge ``(u, v)`` — ``G/(u, v)`` of §2.1.

    Convenience for tests and for Karger–Stein; bulk contraction should use
    :func:`contract_by_labels`.
    """
    if u == v:
        raise ValueError("cannot contract a self-loop")
    uf = UnionFind(graph.n)
    uf.union(u, v)
    return contract_by_union_find(graph, uf)


def compose_labels(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """Compose two contraction label maps: original -> mid -> final.

    ``outer`` maps original vertices to the mid graph; ``inner`` maps mid
    vertices to the final graph.  Result maps original to final.
    """
    return np.asarray(inner, dtype=np.int64)[np.asarray(outer, dtype=np.int64)]
