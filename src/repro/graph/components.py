"""Connected components over CSR graphs.

Two interchangeable strategies:

* :func:`connected_components` — vectorized min-label propagation
  (Shiloach–Vishkin flavoured): every round each vertex takes the minimum
  label among itself and its neighbours, followed by pointer jumping.
  O((n+m) · rounds) with tiny numpy constants; rounds ≈ O(log n) thanks to
  the jumping, so this wins on the low-diameter web-like instances.
* :func:`connected_components_bfs` — classic sequential BFS, used as a
  cross-check oracle in tests.

A disconnected graph has minimum cut 0, so every solver first calls
:func:`is_connected` (the paper assumes connected inputs; we make the
behaviour explicit).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .csr import Graph


def connected_components(graph: Graph) -> tuple[int, np.ndarray]:
    """Return ``(num_components, labels)`` with dense labels in ``[0, k)``."""
    return components_from_arcs(graph.n, graph.arc_sources(), graph.adjncy)


def components_from_arcs(n: int, src: np.ndarray, dst: np.ndarray) -> tuple[int, np.ndarray]:
    """Connected components of the graph induced by an arbitrary arc set.

    ``src``/``dst`` need not be symmetric (each undirected edge may appear
    in either or both directions).  Used directly by label-propagation
    cluster splitting, which filters the arc arrays by a label mask.
    """
    if n == 0:
        return 0, np.empty(0, dtype=np.int64)
    labels = np.arange(n, dtype=np.int64)
    while True:
        prev = labels
        labels = labels.copy()
        # hook: take the minimum neighbour label (both arc directions)
        np.minimum.at(labels, src, prev[dst])
        np.minimum.at(labels, dst, prev[src])
        # pointer jumping until every vertex points at a fixpoint label
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels, prev):
            break
    _, dense = np.unique(labels, return_inverse=True)
    return int(dense.max()) + 1, dense.astype(np.int64)


def connected_components_bfs(graph: Graph) -> tuple[int, np.ndarray]:
    """Sequential BFS labelling (oracle implementation)."""
    n = graph.n
    labels = np.full(n, -1, dtype=np.int64)
    xadj, adjncy = graph.xadj, graph.adjncy
    comp = 0
    for s in range(n):
        if labels[s] != -1:
            continue
        labels[s] = comp
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for v in adjncy[xadj[u] : xadj[u + 1]]:
                if labels[v] == -1:
                    labels[v] = comp
                    queue.append(int(v))
        comp += 1
    return comp, labels


def is_connected(graph: Graph) -> bool:
    """True for graphs with exactly one component (empty graph: False)."""
    if graph.n == 0:
        return False
    k, _ = connected_components(graph)
    return k == 1


def largest_component(graph: Graph) -> tuple[Graph, np.ndarray]:
    """Induced subgraph on the largest component.

    Returns ``(subgraph, old_ids)`` where ``old_ids[i]`` is the original id
    of subgraph vertex ``i``.  This is the last step of the paper's instance
    pipeline ("we perform our experiments on the largest connected
    component", Appendix A.2).
    """
    k, labels = connected_components(graph)
    if k <= 1:
        return graph, np.arange(graph.n, dtype=np.int64)
    sizes = np.bincount(labels, minlength=k)
    target = int(np.argmax(sizes))
    return induced_subgraph(graph, np.flatnonzero(labels == target))


def induced_subgraph(graph: Graph, vertices: np.ndarray) -> tuple[Graph, np.ndarray]:
    """Induced subgraph on ``vertices`` (sorted unique ids).

    Returns ``(subgraph, old_ids)``; ``old_ids`` equals the sorted vertex
    array, mapping new ids back to the original graph.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    n = graph.n
    new_id = np.full(n, -1, dtype=np.int64)
    new_id[vertices] = np.arange(len(vertices), dtype=np.int64)
    src = graph.arc_sources()
    dst = graph.adjncy
    keep = (new_id[src] != -1) & (new_id[dst] != -1) & (src < dst)
    from .builder import from_edges  # local import avoids a cycle

    sub = from_edges(len(vertices), new_id[src[keep]], new_id[dst[keep]], graph.adjwgt[keep])
    return sub, vertices
