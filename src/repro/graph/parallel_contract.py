"""Parallel graph contraction (paper §3.2, "Parallel Graph Contraction").

The paper builds the contracted graph through a concurrent hash table, with
one refinement: edges between two *heavy* blocks are aggregated locally per
worker first and merged afterwards, to avoid synchronization storms on hot
hash cells.  The Python analog: the arc array is split into per-worker
chunks; every worker aggregates its chunk's ``(block_u, block_v) -> weight``
sums privately (numpy sort-based grouping, which releases the GIL for its
hot part); the coordinator then merges the per-chunk aggregates — the
"local aggregation, global merge" structure, applied to *all* pairs.

For small graphs the chunking overhead dominates, so callers should use
:func:`~repro.graph.contract.contract_by_labels` below the documented
threshold — :func:`parallel_contract_by_labels` does that switch itself.
"""

from __future__ import annotations

import threading

import numpy as np

from .contract import contract_by_labels
from .csr import Graph

#: below this many arcs the sequential path is used outright
PARALLEL_CONTRACT_MIN_ARCS = 1 << 15


def parallel_contract_by_labels(
    graph: Graph, labels: np.ndarray, *, workers: int = 4, kernel: str | None = None
) -> tuple[Graph, np.ndarray]:
    """Contract ``graph`` by dense ``labels`` using chunked worker aggregation.

    Semantically identical to
    :func:`~repro.graph.contract.contract_by_labels` (tests assert equality);
    only the evaluation strategy differs.  ``kernel="compiled"`` is threaded
    through to the sequential path (small graphs and lost-chunk fallbacks),
    where the jitted single-pass aggregation replaces both the chunking and
    the numpy grouping when the compiled tier is available.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if len(labels) != graph.n:
        raise ValueError("labels length must equal graph.n")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if kernel == "compiled":
        # one jitted pass beats chunked-numpy aggregation at every size the
        # suite benches, so the compiled tier skips the thread fan-out
        from ..kernels import compiled_available

        if compiled_available():
            return contract_by_labels(graph, labels, kernel=kernel)
    if workers == 1 or graph.num_arcs < PARALLEL_CONTRACT_MIN_ARCS:
        return contract_by_labels(graph, labels)

    nc = int(labels.max()) + 1 if len(labels) else 0
    src = labels[graph.arc_sources()]
    dst = labels[graph.adjncy]
    wgt = graph.adjwgt

    bounds = np.linspace(0, graph.num_arcs, workers + 1, dtype=np.int64)
    partials: list[tuple[np.ndarray, np.ndarray] | None] = [None] * workers

    def aggregate_chunk(i: int) -> None:
        try:
            lo, hi = bounds[i], bounds[i + 1]
            s, d, w = src[lo:hi], dst[lo:hi], wgt[lo:hi]
            keep = s != d
            keys = s[keep] * np.int64(nc) + d[keep]
            w = w[keep]
            uniq, inv = np.unique(keys, return_inverse=True)
            sums = np.zeros(len(uniq), dtype=np.int64)
            np.add.at(sums, inv, w)
            partials[i] = (uniq, sums)
        except Exception:  # noqa: BLE001 - handled by the sequential fallback
            partials[i] = None

    threads = [threading.Thread(target=aggregate_chunk, args=(i,)) for i in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if any(p is None for p in partials):
        # unlike CAPFOREST marks, contraction chunks are NOT droppable — a
        # missing chunk's weights would silently corrupt the contracted
        # graph — so any lost chunk degrades the whole call to the
        # (always-correct) sequential path
        return contract_by_labels(graph, labels)

    all_keys = np.concatenate([p[0] for p in partials])
    all_sums = np.concatenate([p[1] for p in partials])
    uniq, inv = np.unique(all_keys, return_inverse=True)
    agg = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(agg, inv, all_sums)

    tails = uniq // nc
    heads = uniq % nc
    counts = np.bincount(tails, minlength=nc).astype(np.int64)
    xadj = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
    return Graph(xadj, heads, agg), labels
