"""Uniform G(n, m) random graphs (plus connected and weighted variants).

Workhorse for tests and small benchmark instances.  Sampling is rejection
over vectorized batches: draw endpoint pairs, canonicalize, drop self-loops
and duplicates, repeat until ``m`` distinct edges exist — O(m) expected for
the sparse regimes used here.
"""

from __future__ import annotations

import numpy as np

from ..graph.builder import from_edges
from ..graph.csr import Graph


def gnm(
    n: int,
    m: int,
    *,
    rng: np.random.Generator | int | None = None,
    weights: tuple[int, int] | None = None,
) -> Graph:
    """Uniform simple graph with ``n`` vertices and ``m`` distinct edges.

    Parameters
    ----------
    weights:
        ``(low, high)`` for uniform integer weights in ``[low, high]``;
        ``None`` gives unit weights.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    max_edges = n * (n - 1) // 2
    if m < 0 or m > max_edges:
        raise ValueError(f"m must be in [0, {max_edges}], got {m}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    if m > max_edges // 2 and n <= 4096:
        # dense regime: sample from the explicit pair universe
        iu = np.triu_indices(n, k=1)
        idx = rng.choice(max_edges, size=m, replace=False)
        us, vs = iu[0][idx], iu[1][idx]
    else:
        chosen: set[int] = set()
        us_list: list[np.ndarray] = []
        vs_list: list[np.ndarray] = []
        need = m
        while need > 0:
            batch = max(1024, int(need * 1.3))
            a = rng.integers(0, n, size=batch, dtype=np.int64)
            b = rng.integers(0, n, size=batch, dtype=np.int64)
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            valid = lo != hi
            keys = (lo[valid] * n + hi[valid]).tolist()
            fresh_lo, fresh_hi = [], []
            for k in keys:
                if k not in chosen:
                    chosen.add(k)
                    fresh_lo.append(k // n)
                    fresh_hi.append(k % n)
                    if len(chosen) == m:
                        break
            us_list.append(np.array(fresh_lo, dtype=np.int64))
            vs_list.append(np.array(fresh_hi, dtype=np.int64))
            need = m - len(chosen)
        us = np.concatenate(us_list) if us_list else np.empty(0, dtype=np.int64)
        vs = np.concatenate(vs_list) if vs_list else np.empty(0, dtype=np.int64)

    ws = None
    if weights is not None:
        lo_w, hi_w = weights
        if lo_w < 1 or hi_w < lo_w:
            raise ValueError(f"invalid weight range {weights}")
        ws = rng.integers(lo_w, hi_w + 1, size=m, dtype=np.int64)
    return from_edges(n, us, vs, ws)


def connected_gnm(
    n: int,
    m: int,
    *,
    rng: np.random.Generator | int | None = None,
    weights: tuple[int, int] | None = None,
) -> Graph:
    """G(n, m)-like graph guaranteed connected.

    A random spanning tree (uniform attachment chain over a random
    permutation) is laid down first, then ``m - (n-1)`` additional distinct
    random edges.  Requires ``m >= n - 1``.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if m < n - 1:
        raise ValueError(f"connected graph on {n} vertices needs m >= {n - 1}, got {m}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    perm = rng.permutation(n)
    # attach each new vertex to a uniformly random earlier vertex
    parents = np.array(
        [perm[int(rng.integers(i))] for i in range(1, n)], dtype=np.int64
    )
    tree_us = parents
    tree_vs = perm[1:]

    extra = m - (n - 1)
    chosen = {
        int(min(u, v)) * n + int(max(u, v)) for u, v in zip(tree_us.tolist(), tree_vs.tolist())
    }
    us_list = [tree_us]
    vs_list = [tree_vs]
    while extra > 0:
        batch = max(1024, int(extra * 1.3))
        a = rng.integers(0, n, size=batch, dtype=np.int64)
        b = rng.integers(0, n, size=batch, dtype=np.int64)
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        valid = lo != hi
        fresh_lo, fresh_hi = [], []
        for k in (lo[valid] * n + hi[valid]).tolist():
            if k not in chosen:
                chosen.add(k)
                fresh_lo.append(k // n)
                fresh_hi.append(k % n)
                if len(fresh_lo) == extra:
                    break
        extra -= len(fresh_lo)
        us_list.append(np.array(fresh_lo, dtype=np.int64))
        vs_list.append(np.array(fresh_hi, dtype=np.int64))

    us = np.concatenate(us_list)
    vs = np.concatenate(vs_list)
    ws = None
    if weights is not None:
        lo_w, hi_w = weights
        if lo_w < 1 or hi_w < lo_w:
            raise ValueError(f"invalid weight range {weights}")
        ws = rng.integers(lo_w, hi_w + 1, size=m, dtype=np.int64)
    return from_edges(n, us, vs, ws)
