"""Synthetic "real-world-like" instance suite (Table 1 pipeline).

The paper's real-world instances are k-cores of six large web/social crawls
(Table 1): for each base graph several values of k are chosen such that the
core's minimum cut is *not* the trivial minimum-degree cut, and experiments
run on the largest connected component of each core.

Those crawls are unavailable offline and beyond pure-Python scale, so this
module defines a suite of named synthetic base graphs with the properties
the paper's analysis leans on (power-law hubs, communities, low diameter —
see DESIGN.md §2), and reproduces the *pipeline* exactly: k-core →
largest component → instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import Graph
from ..graph.kcore import k_core_largest_component
from .chung_lu import chung_lu
from .rmat import rmat


@dataclass
class WorldSpec:
    """A named base-graph recipe plus the k values of its cores.

    ``pod_attach`` plants weakly-attached dense pods (cliques larger than
    ``max(ks)``, attached by that many edges each): the pods survive every
    k-core, so the core's minimum cut is at most the attachment width —
    reproducing the paper's Table-1 situation where most selected cores
    have λ far below δ (often λ = 1).  Empty tuple = no pods.
    """

    name: str
    kind: str  # "chung_lu" | "rmat"
    n: int
    avg_degree: float
    ks: tuple[int, ...]
    gamma: float = 2.5
    communities: int = 0
    mu: float = 0.5
    seed: int = 0
    pod_attach: tuple[int, ...] = ()


@dataclass
class Instance:
    """One experiment instance: a k-core's largest component."""

    name: str
    world: str
    k: int
    graph: Graph
    base_n: int
    base_m: int

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def m(self) -> int:
        return self.graph.m


#: The default suite: six worlds mirroring Table 1's six base graphs, with
#: four k-cores each (scaled to pure-Python sizes; scale them up or down
#: with the ``scale`` argument of :func:`build_suite`).
DEFAULT_WORLDS: tuple[WorldSpec, ...] = (
    WorldSpec("hollywood-like", "chung_lu", 4096, 48.0, (8, 12, 16, 24), gamma=2.2, communities=48, mu=0.7, seed=11, pod_attach=(1, 6)),
    WorldSpec("orkut-like", "chung_lu", 4096, 32.0, (6, 8, 10, 12), gamma=2.5, communities=32, mu=0.6, seed=12, pod_attach=(5, 4)),
    WorldSpec("uk-web-like", "rmat", 4096, 24.0, (4, 6, 8, 10), seed=13, pod_attach=(1, 1)),
    WorldSpec("twitter-like", "chung_lu", 8192, 24.0, (4, 6, 8, 10), gamma=2.1, communities=64, mu=0.5, seed=14, pod_attach=(1, 3)),
    WorldSpec("gsh-host-like", "rmat", 8192, 16.0, (3, 4, 6, 8), seed=15, pod_attach=(1, 1)),
    WorldSpec("wiki-like", "chung_lu", 2048, 16.0, (3, 4, 6, 8), gamma=2.8, communities=16, mu=0.6, seed=16, pod_attach=(2, 1)),
)


def build_world(spec: WorldSpec, *, scale: float = 1.0) -> Graph:
    """Materialize a world's base graph (``scale`` multiplies n)."""
    n = max(16, int(round(spec.n * scale)))
    rng = np.random.default_rng(spec.seed)
    if spec.kind == "chung_lu":
        base = chung_lu(
            n,
            spec.avg_degree,
            gamma=spec.gamma,
            communities=spec.communities,
            mu=spec.mu,
            rng=rng,
        )
    elif spec.kind == "rmat":
        scale_log = max(4, int(round(np.log2(n))))
        base = rmat(scale_log, spec.avg_degree, rng=rng)
    else:
        raise ValueError(f"unknown world kind {spec.kind!r}")
    if spec.pod_attach:
        base = _plant_pods(base, spec, rng)
    return base


def _plant_pods(base: Graph, spec: WorldSpec, rng: np.random.Generator) -> Graph:
    """Attach one clique pod per entry of ``spec.pod_attach``.

    Pod size exceeds ``max(ks)`` so every k-core keeps the pod intact; the
    attachment width (number of edges to the base graph) upper-bounds the
    core's minimum cut.
    """
    pod_size = max(spec.ks) + 4
    us: list[int] = []
    vs: list[int] = []
    next_id = base.n
    # anchor pods on well-connected base vertices so the pod's attachment
    # survives into the core's largest component
    degs = base.degrees()
    anchors_pool = np.argsort(degs)[-max(64, len(spec.pod_attach) * 8) :]
    for width in spec.pod_attach:
        pod = list(range(next_id, next_id + pod_size))
        next_id += pod_size
        for i in range(pod_size):
            for j in range(i + 1, pod_size):
                us.append(pod[i])
                vs.append(pod[j])
        anchors = rng.choice(anchors_pool, size=width, replace=False)
        for idx, a in enumerate(anchors.tolist()):
            us.append(pod[idx % pod_size])
            vs.append(int(a))
    bu, bv, bw = base.edge_arrays()
    all_u = np.concatenate((bu, np.array(us, dtype=np.int64)))
    all_v = np.concatenate((bv, np.array(vs, dtype=np.int64)))
    all_w = np.concatenate((bw, np.ones(len(us), dtype=np.int64)))
    from ..graph.builder import from_edges

    return from_edges(next_id, all_u, all_v, all_w)


def build_instances(spec: WorldSpec, *, scale: float = 1.0) -> list[Instance]:
    """All k-core instances of one world (empty cores are skipped)."""
    base = build_world(spec, scale=scale)
    out: list[Instance] = []
    for k in spec.ks:
        core, _ = k_core_largest_component(base, k)
        if core.n < 8:
            continue
        out.append(
            Instance(
                name=f"{spec.name}-k{k}",
                world=spec.name,
                k=k,
                graph=core,
                base_n=base.n,
                base_m=base.m,
            )
        )
    return out


def build_suite(
    worlds: tuple[WorldSpec, ...] = DEFAULT_WORLDS, *, scale: float = 1.0
) -> list[Instance]:
    """The full synthetic Table-1 suite."""
    out: list[Instance] = []
    for spec in worlds:
        out.extend(build_instances(spec, scale=scale))
    return out
