"""RMAT recursive-matrix graphs (Chakrabarti & Faloutsos [6]).

The paper cites RMAT instances when dismissing the Karger–Stein MPI
implementation ("NOI can find the minimum cut on RMAT graphs of equal size
in less than 2 seconds using a single core") — we generate them for the
same comparison and as one family of web-like instances.

Each edge picks a quadrant of the adjacency matrix ``scale`` times with
probabilities ``(a, b, c, d)``; the skew produces heavy-tailed degrees and
community-ish structure.  Generation is fully vectorized: one
``(edges, scale)`` uniform matrix decides all quadrant choices at once.
"""

from __future__ import annotations

import numpy as np

from ..graph.builder import from_edges
from ..graph.csr import Graph


def rmat(
    scale: int,
    avg_degree: float,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: np.random.Generator | int | None = None,
    weights: tuple[int, int] | None = None,
) -> Graph:
    """RMAT graph with ``n = 2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    avg_degree:
        Target average degree; ``avg_degree * n / 2`` edge draws are made
        (duplicates merge, so the realized average is slightly lower — the
        natural RMAT behaviour).
    a, b, c:
        Quadrant probabilities (``d = 1 - a - b - c``); defaults are the
        standard Graph500-style skew.
    """
    if scale < 0:
        raise ValueError(f"scale must be non-negative, got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or avg_degree < 0:
        raise ValueError("invalid RMAT parameters")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    n = 1 << scale
    num_edges = int(round(avg_degree * n / 2))
    if num_edges == 0:
        return from_edges(n, [], [])

    # quadrant thresholds: P(row-bit=1) etc. derived per draw
    u = np.zeros(num_edges, dtype=np.int64)
    v = np.zeros(num_edges, dtype=np.int64)
    p_right = b + d  # probability column bit is 1
    for _level in range(scale):
        r1 = rng.random(num_edges)
        r2 = rng.random(num_edges)
        col_bit = r1 < p_right
        # row bit conditioned on the column bit
        p_row_given = np.where(col_bit, d / (b + d), c / (a + c))
        row_bit = r2 < p_row_given
        u = (u << 1) | row_bit
        v = (v << 1) | col_bit
    ws = None
    if weights is not None:
        lo_w, hi_w = weights
        if lo_w < 1 or hi_w < lo_w:
            raise ValueError(f"invalid weight range {weights}")
        ws = rng.integers(lo_w, hi_w + 1, size=num_edges, dtype=np.int64)
    return from_edges(n, u, v, ws)
