"""Workload generators: RHG, RMAT, Chung–Lu, G(n,m), and the instance suite."""

from .chung_lu import chung_lu, powerlaw_weights
from .gnm import connected_gnm, gnm
from .rhg import radius_for_avg_degree, rhg, sample_points
from .rmat import rmat
from .worlds import DEFAULT_WORLDS, Instance, WorldSpec, build_instances, build_suite, build_world

__all__ = [
    "chung_lu",
    "powerlaw_weights",
    "connected_gnm",
    "gnm",
    "radius_for_avg_degree",
    "rhg",
    "sample_points",
    "rmat",
    "DEFAULT_WORLDS",
    "Instance",
    "WorldSpec",
    "build_instances",
    "build_suite",
    "build_world",
]
