"""Chung–Lu power-law graphs with optional planted communities.

Stand-in family for the paper's real-world web/social instances (DESIGN.md
§2): power-law degree sequences create the high-degree hubs whose priority
values overshoot ``λ̂`` (the effect the bounded queues of §3.1.2 exploit),
and planted communities create the clusters VieCut's label propagation
contracts.

Edges are drawn by the Norros–Reittu / "weighted endpoint sampling"
approximation of the Chung–Lu model: both endpoints of every edge are
sampled with probability proportional to their target weight
``w_i ∝ (i + i0)^(-1/(γ-1))``, duplicates merged.  With communities, a
``mu`` fraction of edge draws is confined to a random community (endpoints
re-sampled within it, by the same weights).
"""

from __future__ import annotations

import numpy as np

from ..graph.builder import from_edges
from ..graph.csr import Graph


def powerlaw_weights(n: int, gamma: float, *, i0: float = 1.0) -> np.ndarray:
    """Expected-degree weights following a power law with exponent ``gamma``."""
    if gamma <= 1:
        raise ValueError(f"gamma must exceed 1, got {gamma}")
    ranks = np.arange(n, dtype=np.float64) + i0
    return ranks ** (-1.0 / (gamma - 1.0))


def chung_lu(
    n: int,
    avg_degree: float,
    *,
    gamma: float = 2.5,
    communities: int = 0,
    mu: float = 0.5,
    rng: np.random.Generator | int | None = None,
    weights: tuple[int, int] | None = None,
) -> Graph:
    """Power-law graph with ``n`` vertices and ~``avg_degree * n / 2`` edges.

    Parameters
    ----------
    gamma:
        Degree-distribution exponent (2 < γ ≤ 3 is web/social territory).
    communities:
        Number of planted communities (0 disables the community structure).
    mu:
        Fraction of edge draws confined within a community.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not (0.0 <= mu <= 1.0):
        raise ValueError(f"mu must be in [0, 1], got {mu}")
    if communities < 0:
        raise ValueError(f"communities must be non-negative, got {communities}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    num_edges = int(round(avg_degree * n / 2))
    if n == 0 or num_edges == 0:
        return from_edges(n, [], [])

    w = powerlaw_weights(n, gamma)
    # shuffle so vertex id does not encode degree rank
    perm = rng.permutation(n)
    w = w[perm]
    p = w / w.sum()

    if communities > 1:
        membership = rng.integers(0, communities, size=n)
        intra = int(round(mu * num_edges))
        inter = num_edges - intra
        us = [rng.choice(n, size=inter, p=p)]
        vs = [rng.choice(n, size=inter, p=p)]
        # intra-community draws, grouped per community for vector sampling
        comm_of_draw = rng.integers(0, communities, size=intra)
        for comm in range(communities):
            cnt = int((comm_of_draw == comm).sum())
            if cnt == 0:
                continue
            members = np.flatnonzero(membership == comm)
            if len(members) < 2:
                # degenerate community: fall back to global draws
                us.append(rng.choice(n, size=cnt, p=p))
                vs.append(rng.choice(n, size=cnt, p=p))
                continue
            pc = p[members] / p[members].sum()
            us.append(rng.choice(members, size=cnt, p=pc))
            vs.append(rng.choice(members, size=cnt, p=pc))
        u = np.concatenate(us)
        v = np.concatenate(vs)
    else:
        u = rng.choice(n, size=num_edges, p=p)
        v = rng.choice(n, size=num_edges, p=p)

    ws = None
    if weights is not None:
        lo_w, hi_w = weights
        if lo_w < 1 or hi_w < lo_w:
            raise ValueError(f"invalid weight range {weights}")
        ws = rng.integers(lo_w, hi_w + 1, size=len(u), dtype=np.int64)
    return from_edges(n, u, v, ws)
