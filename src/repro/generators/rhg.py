"""Random hyperbolic graphs (Krioukov et al. [20]), threshold model.

The paper's generated instances (Appendix A.1): n points in a hyperbolic
disk of radius R, radial density ``α·sinh(αr)/(cosh(αR)-1)``, uniform
angles; two points connect iff their hyperbolic distance is at most R.
Degree distribution follows a power law with exponent ``γ = 2α + 1`` — the
paper uses γ = 5 (α = 2) so the minimum cut is not just a trivial cut, and
average degrees 2^5..2^8.

Generation avoids the O(n²) pair check with angular-window pruning: sort
points into radial *bands* (equal-count), each sorted by angle.  For a
query point u and a band with inner radius b, the identity

    cosh d = cosh(r_u - r_v) + (1 - cos Δθ) · sinh r_u · sinh r_v
           ≥ (1 - cos Δθ) · sinh r_u · sinh b

shows every neighbour in the band satisfies
``1 - cos Δθ ≤ cosh R / (sinh r_u · sinh b)`` — a sound (slightly loose)
angular window located by binary search; candidates inside the window get
the exact distance check, vectorized.

The disk radius for a target average degree uses the Krioukov mean-degree
estimate  ``k̄ ≈ (2/π) · n · e^{-R/2} · (α/(α-½))²``  solved for R.
"""

from __future__ import annotations

import math

import numpy as np

from ..graph.builder import from_edges
from ..graph.csr import Graph


def radius_for_avg_degree(n: int, avg_degree: float, alpha: float) -> float:
    """Disk radius R targeting ``avg_degree`` (Krioukov mean-degree formula)."""
    if alpha <= 0.5:
        raise ValueError(f"alpha must exceed 1/2, got {alpha}")
    if avg_degree <= 0 or n < 2:
        raise ValueError("need n >= 2 and positive avg_degree")
    factor = (alpha / (alpha - 0.5)) ** 2
    return 2.0 * math.log(2.0 * n * factor / (math.pi * avg_degree))


def sample_points(
    n: int, radius: float, alpha: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample (r, θ) with density ``α sinh(αr)/(cosh(αR)-1)``, θ uniform."""
    u = rng.random(n)
    # inverse CDF: F(r) = (cosh(α r) - 1) / (cosh(α R) - 1)
    r = np.arccosh(1.0 + u * (np.cosh(alpha * radius) - 1.0)) / alpha
    theta = rng.random(n) * (2.0 * math.pi)
    return r, theta


def rhg(
    n: int,
    avg_degree: float,
    *,
    alpha: float = 2.0,
    rng: np.random.Generator | int | None = None,
    bands: int | None = None,
    return_coords: bool = False,
):
    """Random hyperbolic graph with power-law exponent ``γ = 2α + 1``.

    Parameters
    ----------
    n, avg_degree:
        Vertex count and target average degree (realized degree is close,
        not exact — the model is random).
    alpha:
        Radial dispersion; the paper's instances use ``alpha=2`` (γ = 5).
    bands:
        Number of radial bands (default ``max(1, ⌈log2 n⌉)``).
    return_coords:
        Also return the ``(r, θ)`` arrays.

    Returns
    -------
    Graph, or ``(Graph, r, θ)`` with ``return_coords=True``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    if n < 2:
        g = from_edges(n, [], [])
        if return_coords:
            return g, np.zeros(n), np.zeros(n)
        return g

    R = radius_for_avg_degree(n, avg_degree, alpha)
    r, theta = sample_points(n, R, alpha, rng)
    if bands is None:
        bands = max(1, int(math.ceil(math.log2(n))))

    cosh_r = np.cosh(r)
    sinh_r = np.sinh(r)
    cosh_R = math.cosh(R)

    # equal-count radial bands
    order_by_r = np.argsort(r)
    band_edges = np.linspace(0, n, bands + 1, dtype=np.int64)
    band_vertices: list[np.ndarray] = []
    band_theta: list[np.ndarray] = []
    band_inner_sinh: list[float] = []
    for b in range(bands):
        ids = order_by_r[band_edges[b] : band_edges[b + 1]]
        if len(ids) == 0:
            continue
        # inner radius of the band = min radius among its members (ids is a
        # radius-ordered slice, so that is the first entry before re-sorting)
        inner_radius = float(r[ids[0]])
        t_order = np.argsort(theta[ids])
        ids = ids[t_order]
        band_vertices.append(ids)
        band_theta.append(theta[ids])
        band_inner_sinh.append(math.sinh(inner_radius))

    two_pi = 2.0 * math.pi
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    for u_id in range(n):
        cu, su, tu = cosh_r[u_id], sinh_r[u_id], theta[u_id]
        for ids, thetas, inner_sinh in zip(band_vertices, band_theta, band_inner_sinh):
            denom = su * inner_sinh
            if denom <= 0:
                window = math.pi  # a point at the origin sees everything
            else:
                bound = cosh_R / denom
                window = math.pi if bound >= 2.0 else math.acos(1.0 - bound)
            cand = _angular_window(ids, thetas, tu, window, two_pi)
            if len(cand) == 0:
                continue
            cand = cand[cand > u_id]  # canonical direction, no self-pairs
            if len(cand) == 0:
                continue
            dtheta = np.abs(theta[cand] - tu)
            dtheta = np.minimum(dtheta, two_pi - dtheta)
            cosh_d = cu * cosh_r[cand] - su * sinh_r[cand] * np.cos(dtheta)
            hit = cand[cosh_d <= cosh_R]
            if len(hit):
                us.append(np.full(len(hit), u_id, dtype=np.int64))
                vs.append(hit.astype(np.int64))

    u_arr = np.concatenate(us) if us else np.empty(0, dtype=np.int64)
    v_arr = np.concatenate(vs) if vs else np.empty(0, dtype=np.int64)
    g = from_edges(n, u_arr, v_arr)
    if return_coords:
        return g, r, theta
    return g


def _angular_window(
    ids: np.ndarray, thetas: np.ndarray, center: float, window: float, two_pi: float
) -> np.ndarray:
    """Band members with angle within ``±window`` of ``center`` (wrap-aware)."""
    if window >= math.pi:
        return ids
    lo = center - window
    hi = center + window
    if lo >= 0 and hi <= two_pi:
        a = np.searchsorted(thetas, lo, side="left")
        b = np.searchsorted(thetas, hi, side="right")
        return ids[a:b]
    # window wraps around 0/2π: take both fringes
    lo_mod = lo % two_pi
    hi_mod = hi % two_pi
    a = np.searchsorted(thetas, lo_mod, side="left")
    b = np.searchsorted(thetas, hi_mod, side="right")
    return np.concatenate((ids[a:], ids[:b]))
