"""Dynamic graphs: incremental CSR updates and warm re-solving.

Entry points:

* :class:`DynamicGraph` — a handle over a CSR graph lineage; applies
  insert/delete edge batches by merging them into the sorted arc arrays
  (``O(m + b log b)`` per batch) instead of rebuilding from the edge list.
* :func:`repro.engine.SolverEngine.update` — applies a batch through the
  engine and re-solves *warm*: the previous solve's λ̂, side, and strict
  CAPFOREST certificate seed the next solve (see :mod:`repro.dynamic.warm`
  for the exactness argument), and the result cache is invalidated by
  digest lineage instead of wholesale.
"""

from .graph import DynamicGraph, EdgeUpdateError, UpdateDelta, apply_updates
from .warm import WARMABLE_ALGORITHMS, WarmState, make_warm_state, warm_solve

__all__ = [
    "DynamicGraph",
    "EdgeUpdateError",
    "UpdateDelta",
    "WARMABLE_ALGORITHMS",
    "WarmState",
    "apply_updates",
    "make_warm_state",
    "warm_solve",
]
