"""Warm re-solve after an edge-update batch: λ̂ reseeding + certificate reuse.

The NOI framework leaves three reusable artefacts after an exact solve of
``G_old``: the exact value ``λ_old``, a certified side mask, and (one extra
strict CAPFOREST pass) edge certificates ``q(e) ≥ λ_old + 1`` whose
union–find blocks have pairwise connectivity ``≥ λ_old + 1``.  All three
survive an update batch in weakened form, and together they usually make
the re-solve much cheaper than a cold one:

**Bounds.** Let ``W_D`` be the total deleted weight.  Every cut loses at
most ``W_D``, so ``λ_new ≥ max(0, λ_old − W_D)`` (a certified *lower*
bound).  The old side is still a real cut; its new capacity is
``λ_old + inserted_crossing − deleted_crossing``, computable in O(batch)
from the delta.  Together with the trivial cuts ``({v}, V∖{v})`` of the
touched vertices this gives a certified *upper* bound ``λ̂_seed`` backed by
a concrete side.

**Fast path.** When ``λ̂_seed ≤ λ_old − W_D`` the two bounds meet:
``λ_new = λ̂_seed`` and the candidate side is a proven minimum cut — no
solve at all.  This covers the common streaming cases exactly: inserts that
do not cross the old cut, deletes that do, and disconnecting deletes
(bound 0).

**Seeded solve.** Otherwise run NOI with ``initial_bound = λ̂_seed`` and
the candidate side — exact by Lemma 3.1, since the seed is the capacity of
a real cut of the new graph (the same contract VieCut seeding uses).

**Certificate survival.** The strict-certificate blocks of ``G_old`` have
pairwise connectivity ``≥ cert_bound`` there; deleting total weight ``W_D``
lowers any pairwise connectivity by at most ``W_D``, so on the new graph
they are ``≥ cert_bound − W_D`` connected.  If that survives above the seed
(``cert_bound − W_D ≥ λ̂_seed``), every cut of value ``< λ̂_seed`` keeps
each block whole, so contracting the blocks preserves the minimum cut
whenever it beats the seed — and when nothing beats the seed the seed
itself is already optimal.  Either way ``min(λ̂_seed, λ(G/blocks))`` is
exact, which is precisely what a seeded NOI run on the contracted graph
returns.  The seed side must not split a kept block (the old side never
does — blocks are ``> λ_old``-connected, so they sit on one side of every
minimum cut of ``G_old``); if a trivial-cut candidate would, contraction is
skipped for that update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..core.capforest import capforest
from ..core.noi import noi_mincut
from ..core.result import MinCutResult
from ..graph.contract import contract_by_labels
from ..graph.csr import Graph
from .graph import UpdateDelta

__all__ = ["WarmState", "make_warm_state", "warm_solve", "WARMABLE_ALGORITHMS"]

#: algorithms the warm path can re-solve with a seeded NOI run; anything else
#: falls back to a cold solve (and still benefits from digest-lineage cache
#: invalidation).  Maps registry name -> NOI configuration.
WARMABLE_ALGORITHMS: dict[str, dict] = {
    "noi": {"pq_kind": "heap", "bounded": True},
    "noi-viecut": {"pq_kind": "heap", "bounded": True},
    "noi-hnss": {"pq_kind": "heap", "bounded": False},
}


@dataclass
class WarmState:
    """Solver state carried across updates of one :class:`DynamicGraph`.

    ``cert_labels``/``cert_bound`` certify that vertices sharing a label had
    pairwise connectivity ``≥ cert_bound`` when the certificate was computed;
    ``cert_bound`` is decayed by ``W_D`` on every applied batch so the claim
    stays valid on the current graph without recomputation.
    """

    digest: str
    value: int
    side: np.ndarray | None = field(repr=False)
    cert_labels: np.ndarray | None = field(default=None, repr=False)
    cert_bound: int = 0


def make_warm_state(
    graph: Graph,
    digest: str,
    result: MinCutResult,
    *,
    certify: bool = True,
    kernel: str = "scalar",
) -> WarmState:
    """Build the carry-forward state from a fresh exact solve.

    The certificate is one strict CAPFOREST pass at fixed bound
    ``λ + 1`` (the same pass :mod:`repro.cactus.build` uses): every union
    merges endpoints with ``q(e) ≥ λ + 1``, hence connectivity ``≥ λ + 1``.
    """
    side = None if result.side is None else np.asarray(result.side, dtype=bool).copy()
    state = WarmState(digest=digest, value=int(result.value), side=side)
    if certify and result.value > 0 and graph.n > 2:
        res = capforest(
            graph, int(result.value) + 1, fixed_bound=True, start=0, rng=0,
            kernel=kernel,
        )
        labels = res.uf.labels()
        if int(labels.max()) + 1 < graph.n:  # at least one merge happened
            state.cert_labels = labels
            state.cert_bound = int(result.value) + 1
    return state


def _candidate_seed(
    state: WarmState, delta: UpdateDelta, new_graph: Graph
) -> tuple[int, np.ndarray, bool]:
    """Best certified upper bound after the batch: ``(value, side, is_trivial)``.

    Candidates: the old side re-priced incrementally, and the trivial cuts
    of every touched vertex (deletes can only expose new minima there —
    untouched vertices kept their degrees, which were already ``≥ λ_old``).
    """
    ins_cross, del_cross = delta.crossing_weights(state.side)
    best = state.value + ins_cross - del_cross
    best_side = state.side
    trivial = False
    if len(delta.touched):
        wdeg = new_graph.weighted_degrees()[delta.touched]
        i = int(np.argmin(wdeg))
        if int(wdeg[i]) < best:
            best = int(wdeg[i])
            best_side = np.zeros(new_graph.n, dtype=bool)
            best_side[int(delta.touched[i])] = True
            trivial = True
    return int(best), best_side, trivial


def warm_solve(
    new_graph: Graph,
    state: WarmState,
    delta: UpdateDelta,
    *,
    algorithm: str,
    kwargs: dict | None = None,
) -> tuple[MinCutResult, dict] | None:
    """Re-solve ``new_graph`` warm from ``state`` after ``delta``.

    Returns ``(result, info)`` — ``info`` feeds the ``warm_solve`` trace
    event and ``result.stats["warm"]`` — or ``None`` when this algorithm
    (or a side-less state) cannot be warmed and the caller must solve cold.
    The caller is responsible for refreshing the warm state afterwards
    (:func:`make_warm_state`), and for decaying ``state.cert_bound`` by
    ``delta.deleted_weight`` if it keeps the old certificate.
    """
    config = WARMABLE_ALGORITHMS.get(algorithm)
    if config is None or state.side is None:
        return None
    kwargs = dict(kwargs or {})
    kernel = kwargs.get("kernel", "scalar")
    t0 = perf_counter()

    lower = max(0, state.value - delta.deleted_weight)
    seed_value, seed_side, seed_trivial = _candidate_seed(state, delta, new_graph)
    info: dict = {
        "mode": "fast-path",
        "seed_value": seed_value,
        "lower_bound": lower,
        "previous_value": state.value,
        "inserted_weight": delta.inserted_weight,
        "deleted_weight": delta.deleted_weight,
        "contracted_n": None,
    }

    if seed_value <= lower:
        # Bounds meet: seed_side is a certified minimum cut, no solve needed.
        stats = {
            "warm": info,
            "kernel": kernel,
            "rounds": 0,
        }
        res = MinCutResult(
            seed_value, seed_side.copy(), new_graph.n, _warm_label(algorithm), stats
        )
        info["seconds"] = perf_counter() - t0
        return res, info

    # Certificate-survival precontraction: blocks stay ≥ cert_bound − W_D
    # connected; usable when that still clears the seed and the seed side
    # does not split a block.
    h = new_graph
    labels = None
    seed_side_h = None
    surviving_bound = state.cert_bound - delta.deleted_weight
    if (
        state.cert_labels is not None
        and surviving_bound >= seed_value
        and not seed_trivial
    ):
        cand = state.cert_labels
        nc = int(cand.max()) + 1
        if 2 <= nc < new_graph.n:
            side_h = np.zeros(nc, dtype=bool)
            side_h[cand[seed_side]] = True
            # old side never splits a block (blocks are co-side in every
            # minimum cut of G_old); verify cheaply anyway for safety
            if (side_h[cand] == seed_side).all():
                h, labels = contract_by_labels(new_graph, cand, kernel=kernel)
                seed_side_h = side_h
    info["contracted_n"] = h.n if labels is not None else None
    info["mode"] = "seeded-contracted" if labels is not None else "seeded"

    rng = kwargs.pop("rng", None)
    res_h = noi_mincut(
        h,
        pq_kind=kwargs.pop("pq_kind", config["pq_kind"]),
        bounded=kwargs.pop("bounded", config["bounded"]),
        kernel=kernel,
        initial_bound=seed_value,
        initial_side=seed_side if labels is None else seed_side_h,
        rng=rng,
    )
    side = res_h.side if labels is None else res_h.side[labels]
    stats = dict(res_h.stats)
    stats["warm"] = info
    res = MinCutResult(
        int(res_h.value), None if side is None else side.copy(), new_graph.n,
        _warm_label(algorithm), stats,
    )
    info["seconds"] = perf_counter() - t0
    return res, info


def _warm_label(algorithm: str) -> str:
    return f"{algorithm}+warm"
