"""Dynamic graph handle: incremental CSR maintenance under edge updates.

Production traffic mutates graphs.  Rebuilding CSR from the full edge list
on every batch costs ``O(m log m)``; this module instead *merges* a sorted
update batch into the existing arc arrays in ``O(m + b log b)`` — the arc
arrays produced by :mod:`repro.graph.builder` (and by contraction) are
globally sorted by the ``tail * n + head`` key, so a batch of ``b`` edge
insertions/deletions is a classic sorted-merge: ``np.searchsorted`` finds
every touched arc position, weight bumps edit in place on a copy, removals
drop by mask, and brand-new arcs splice in with one ``np.insert``.

The handle also records an :class:`UpdateDelta` per batch — exactly the
information the warm-solve path (:mod:`repro.dynamic.warm`) needs to reseed
λ̂: which vertices were touched, how much weight entered and left, and how
much of it crossed a given cut side.

Semantics (matching the builder's contraction semantics of §2.1):

* **insert** ``(u, v, w)`` — adds ``w`` to edge ``{u, v}``, creating it if
  absent (parallel edges merge with weights summed);
* **delete** ``(u, v)`` — removes edge ``{u, v}`` entirely, whatever its
  weight; deleting an absent edge raises :class:`EdgeUpdateError`;
* ``n`` is fixed for the lifetime of the handle; self-loops are rejected;
  weights must be positive.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..engine.keys import graph_digest
from ..graph.csr import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (warm imports core)
    from .warm import WarmState

__all__ = ["DynamicGraph", "EdgeUpdateError", "UpdateDelta", "apply_updates"]


class EdgeUpdateError(ValueError):
    """An edge-update batch is invalid against the current graph."""


@dataclass(frozen=True)
class UpdateDelta:
    """What one applied batch changed — the warm-solve path's raw material.

    ``inserted_*`` holds the per-edge weight *added* (after in-batch
    merging); ``deleted_*`` holds the full weight *removed*.  All endpoint
    arrays are canonicalised ``lo < hi``.
    """

    n: int
    old_digest: str
    new_digest: str
    version: int
    inserted_lo: np.ndarray = field(repr=False)
    inserted_hi: np.ndarray = field(repr=False)
    inserted_w: np.ndarray = field(repr=False)
    deleted_lo: np.ndarray = field(repr=False)
    deleted_hi: np.ndarray = field(repr=False)
    deleted_w: np.ndarray = field(repr=False)
    touched: np.ndarray = field(repr=False)

    @property
    def num_inserted(self) -> int:
        return len(self.inserted_lo)

    @property
    def num_deleted(self) -> int:
        return len(self.deleted_lo)

    @property
    def inserted_weight(self) -> int:
        """Total weight added across the batch (``W_I``)."""
        return int(self.inserted_w.sum())

    @property
    def deleted_weight(self) -> int:
        """Total weight removed across the batch (``W_D``)."""
        return int(self.deleted_w.sum())

    @property
    def is_noop(self) -> bool:
        return self.old_digest == self.new_digest

    def crossing_weights(self, side: np.ndarray) -> tuple[int, int]:
        """``(inserted, deleted)`` weight crossing the cut mask ``side``.

        This is the incremental re-evaluation of an old cut on the new
        graph: ``c_new(side) = c_old(side) + inserted - deleted`` — O(batch)
        instead of O(m).
        """
        side = np.asarray(side, dtype=bool)
        if len(side) != self.n:
            raise ValueError("side mask length must equal n")
        ins = side[self.inserted_lo] != side[self.inserted_hi]
        dels = side[self.deleted_lo] != side[self.deleted_hi]
        return int(self.inserted_w[ins].sum()), int(self.deleted_w[dels].sum())


def _normalize_inserts(
    n: int, inserts
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate and canonicalise an insert batch; merge in-batch duplicates."""
    rows = list(inserts or ())
    if not rows:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy()
    us = np.empty(len(rows), dtype=np.int64)
    vs = np.empty(len(rows), dtype=np.int64)
    ws = np.empty(len(rows), dtype=np.int64)
    for i, row in enumerate(rows):
        if len(row) == 2:
            us[i], vs[i], ws[i] = row[0], row[1], 1
        elif len(row) == 3:
            us[i], vs[i], ws[i] = row
        else:
            raise EdgeUpdateError(f"insert must be (u, v) or (u, v, w), got {row!r}")
    if us.min() < 0 or vs.min() < 0 or us.max() >= n or vs.max() >= n:
        raise EdgeUpdateError(f"insert endpoint out of range [0, {n})")
    if (us == vs).any():
        bad = int(us[us == vs][0])
        raise EdgeUpdateError(f"self-loop insert ({bad}, {bad}) is not allowed")
    if ws.min() <= 0:
        raise EdgeUpdateError("insert weights must be positive")
    lo = np.minimum(us, vs)
    hi = np.maximum(us, vs)
    # merge duplicate pairs within the batch, weights summed (builder semantics)
    keys = lo * np.int64(n) + hi
    order = np.argsort(keys, kind="stable")
    keys, ws = keys[order], ws[order]
    uniq_keys, starts = np.unique(keys, return_index=True)
    csum = np.concatenate(([0], np.cumsum(ws, dtype=np.int64)))
    ends = np.concatenate((starts[1:], [len(keys)]))
    return uniq_keys // n, uniq_keys % n, csum[ends] - csum[starts]


def _normalize_deletes(n: int, deletes) -> tuple[np.ndarray, np.ndarray]:
    """Validate and canonicalise a delete batch (duplicates are an error)."""
    rows = list(deletes or ())
    if not rows:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy()
    us = np.empty(len(rows), dtype=np.int64)
    vs = np.empty(len(rows), dtype=np.int64)
    for i, row in enumerate(rows):
        if len(row) < 2:
            raise EdgeUpdateError(f"delete must name an edge (u, v), got {row!r}")
        us[i], vs[i] = row[0], row[1]
    if us.min() < 0 or vs.min() < 0 or us.max() >= n or vs.max() >= n:
        raise EdgeUpdateError(f"delete endpoint out of range [0, {n})")
    if (us == vs).any():
        bad = int(us[us == vs][0])
        raise EdgeUpdateError(f"self-loop delete ({bad}, {bad}) is not allowed")
    lo = np.minimum(us, vs)
    hi = np.maximum(us, vs)
    keys = lo * np.int64(n) + hi
    order = np.argsort(keys)
    keys = keys[order]
    if len(keys) > 1 and (keys[1:] == keys[:-1]).any():
        dup = int(keys[np.flatnonzero(keys[1:] == keys[:-1])[0]])
        raise EdgeUpdateError(
            f"duplicate delete of edge ({dup // n}, {dup % n}) in one batch"
        )
    return keys // n, keys % n


def _locate(sorted_keys: np.ndarray, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``searchsorted`` positions plus a found-mask (safe on empty arrays)."""
    pos = np.searchsorted(sorted_keys, query)
    if len(sorted_keys) == 0:
        return pos, np.zeros(len(query), dtype=bool)
    found = (pos < len(sorted_keys)) & (
        sorted_keys[np.minimum(pos, len(sorted_keys) - 1)] == query
    )
    return pos, found


def apply_updates(
    graph: Graph, inserts=(), deletes=()
) -> tuple[Graph, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Apply one batch to ``graph``, rebuilding CSR incrementally.

    Returns ``(new_graph, ins_lo, ins_hi, ins_w, del_lo, del_hi, del_w)``
    with the canonicalised, in-batch-merged update arrays (``del_w`` is the
    full removed weight per edge, read off the old graph).  ``graph`` is
    never mutated; all failure modes raise before any state changes.
    """
    n = graph.n
    ins_lo, ins_hi, ins_w = _normalize_inserts(n, inserts)
    del_lo, del_hi = _normalize_deletes(n, deletes)

    ins_keys = ins_lo * np.int64(n) + ins_hi
    del_keys = del_lo * np.int64(n) + del_hi
    if len(ins_keys) and len(del_keys) and np.intersect1d(ins_keys, del_keys).size:
        k = int(np.intersect1d(ins_keys, del_keys)[0])
        raise EdgeUpdateError(
            f"edge ({k // n}, {k % n}) both inserted and deleted in one batch; "
            "split into two batches to fix the order"
        )
    if not len(ins_keys) and not len(del_keys):
        empty = np.empty(0, dtype=np.int64)
        return graph, ins_lo, ins_hi, ins_w, del_lo, del_hi, empty

    # Arc-level keys of the current CSR.  Builder- and contraction-produced
    # graphs are globally sorted by tail*n+head (each adjacency slice sorted
    # by head); verify cheaply and fall back to an explicit sort order for
    # hand-rolled arrays.
    tails = graph.arc_sources()
    arc_keys = tails * np.int64(n) + graph.adjncy
    if len(arc_keys) > 1 and not (arc_keys[1:] > arc_keys[:-1]).all():
        raise EdgeUpdateError(
            "graph arc arrays are not in canonical sorted order; rebuild the "
            "graph through repro.graph.builder before attaching a DynamicGraph"
        )

    adjwgt = graph.adjwgt.copy()

    # Deletes: both arc directions must exist.
    del_w = np.empty(len(del_keys), dtype=np.int64)
    keep = np.ones(len(arc_keys), dtype=bool)
    if len(del_keys):
        for dir_keys in (del_keys, del_hi * np.int64(n) + del_lo):
            pos, ok = _locate(arc_keys, dir_keys)
            if not ok.all():
                miss = int(np.flatnonzero(~ok)[0])
                raise EdgeUpdateError(
                    f"delete of absent edge ({int(del_lo[miss])}, {int(del_hi[miss])})"
                )
            keep[pos] = False
        del_w = graph.adjwgt[np.searchsorted(arc_keys, del_keys)]

    # Inserts: weight-bump arcs that already exist, splice in the rest.
    new_arc_keys = np.empty(0, dtype=np.int64)
    new_arc_wgts = np.empty(0, dtype=np.int64)
    if len(ins_keys):
        both_keys = np.concatenate((ins_keys, ins_hi * np.int64(n) + ins_lo))
        both_wgts = np.concatenate((ins_w, ins_w))
        pos, exists = _locate(arc_keys, both_keys)
        np.add.at(adjwgt, pos[exists], both_wgts[exists])
        order = np.argsort(both_keys[~exists])
        new_arc_keys = both_keys[~exists][order]
        new_arc_wgts = both_wgts[~exists][order]

    kept_keys = arc_keys[keep]
    kept_heads = graph.adjncy[keep]
    kept_wgts = adjwgt[keep]
    if len(new_arc_keys):
        splice = np.searchsorted(kept_keys, new_arc_keys)
        final_keys = np.insert(kept_keys, splice, new_arc_keys)
        final_heads = np.insert(kept_heads, splice, new_arc_keys % n)
        final_wgts = np.insert(kept_wgts, splice, new_arc_wgts)
    else:
        final_keys, final_heads, final_wgts = kept_keys, kept_heads, kept_wgts

    counts = np.bincount(final_keys // n, minlength=n).astype(np.int64)
    xadj = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
    new_graph = Graph(xadj, final_heads, final_wgts)
    return new_graph, ins_lo, ins_hi, ins_w, del_lo, del_hi, del_w


class DynamicGraph:
    """Mutable handle over an immutable CSR :class:`Graph` lineage.

    Each :meth:`apply` produces a *new* ``Graph`` (existing references,
    digests, and shared-memory planes of older versions stay valid) and an
    :class:`UpdateDelta` describing the change.  The handle carries the
    engine's warm-solve state (:attr:`warm`) across versions; all access is
    serialised through :attr:`lock`, which :meth:`apply` takes itself —
    callers composing multi-step read-modify-write sequences (e.g.
    ``SolverEngine.update``) should hold it across the whole sequence.
    """

    def __init__(self, graph: Graph) -> None:
        if graph.n < 2:
            raise ValueError(f"DynamicGraph requires at least 2 vertices, got {graph.n}")
        self._graph = graph
        self._digest = graph_digest(graph)
        self._version = 0
        self.lock = threading.RLock()
        self.warm: WarmState | None = None

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def digest(self) -> str:
        return self._digest

    @property
    def version(self) -> int:
        return self._version

    @property
    def n(self) -> int:
        return self._graph.n

    def apply(self, inserts=(), deletes=()) -> UpdateDelta:
        """Apply one insert/delete batch; returns the :class:`UpdateDelta`.

        Atomic: validation failures raise :class:`EdgeUpdateError` without
        mutating the handle.  A no-op batch returns a delta with
        ``is_noop=True`` and does not bump the version.
        """
        with self.lock:
            old_graph, old_digest = self._graph, self._digest
            new_graph, ins_lo, ins_hi, ins_w, del_lo, del_hi, del_w = apply_updates(
                old_graph, inserts, deletes
            )
            if new_graph is old_graph:
                new_digest = old_digest
            else:
                new_digest = graph_digest(new_graph)
                self._graph = new_graph
                self._digest = new_digest
                self._version += 1
            touched = np.unique(np.concatenate((ins_lo, ins_hi, del_lo, del_hi)))
            return UpdateDelta(
                n=old_graph.n,
                old_digest=old_digest,
                new_digest=new_digest,
                version=self._version,
                inserted_lo=ins_lo,
                inserted_hi=ins_hi,
                inserted_w=ins_w,
                deleted_lo=del_lo,
                deleted_hi=del_hi,
                deleted_w=del_w,
                touched=touched,
            )

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(n={self._graph.n}, m={self._graph.m}, "
            f"version={self._version}, digest={self._digest[:12]})"
        )
