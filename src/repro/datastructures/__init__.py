"""Priority queues and union–find structures used by the min-cut solvers."""

from .binary_heap import HeapPQ
from .bucket_pq import BQueuePQ, BStackPQ
from .concurrent_union_find import LockStripedUnionFind, MergeBufferUnionFind
from .pq import PQ_NAMES, MaxPriorityQueue, PQStats, make_pq
from .union_find import UnionFind

__all__ = [
    "HeapPQ",
    "BQueuePQ",
    "BStackPQ",
    "LockStripedUnionFind",
    "MergeBufferUnionFind",
    "PQ_NAMES",
    "MaxPriorityQueue",
    "PQStats",
    "make_pq",
    "UnionFind",
]
