"""Sequential union–find (disjoint set union) over integer vertex ids.

This is the bookkeeping structure CAPFOREST uses to *mark* contractible
edges (paper §3.2): marking edge ``(u, v)`` is a ``union(u, v)``; the actual
graph contraction happens later from the resulting partition labels.

Implementation: union by rank with path halving.  Path halving keeps
``find`` a single loop (no recursion, no second pass), which matters because
``find`` sits on the hot path of the contraction kernels.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Array-based disjoint sets over ``{0, ..., n-1}``."""

    __slots__ = ("_parent", "_rank", "_count")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._parent = np.arange(n, dtype=np.int64)
        self._rank = np.zeros(n, dtype=np.int8)
        self._count = n

    @property
    def n(self) -> int:
        """Number of elements."""
        return len(self._parent)

    @property
    def count(self) -> int:
        """Current number of disjoint sets."""
        return self._count

    def find(self, x: int) -> int:
        """Representative of the set containing ``x`` (path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; True if they were distinct."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        rank = self._rank
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        self._count -= 1
        return True

    def same(self, x: int, y: int) -> bool:
        """True if ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def labels(self) -> np.ndarray:
        """Dense labels in ``[0, count)``, one per element, stable by root id.

        The contraction kernels consume this: vertices sharing a set share a
        label, and labels are consecutive so they can index the contracted
        graph's vertex arrays directly.
        """
        n = self.n
        parent = self._parent
        # Full path compression, vectorized: iterate parent-jumps until fixpoint.
        roots = parent.copy()
        while True:
            nxt = roots[roots]
            if np.array_equal(nxt, roots):
                break
            roots = nxt
        self._parent = roots.copy()  # keep the compressed forest
        unique_roots, labels = np.unique(roots, return_inverse=True)
        self._count = len(unique_roots)
        return labels.astype(np.int64, copy=False)

    def sets(self) -> dict[int, list[int]]:
        """Mapping ``root -> members`` (for tests and small-graph debugging)."""
        out: dict[int, list[int]] = {}
        for x in range(self.n):
            out.setdefault(self.find(x), []).append(x)
        return out
