"""Sequential union–find (disjoint set union) over integer vertex ids.

This is the bookkeeping structure CAPFOREST uses to *mark* contractible
edges (paper §3.2): marking edge ``(u, v)`` is a ``union(u, v)``; the actual
graph contraction happens later from the resulting partition labels.

Implementation: union by rank with path halving.  Path halving keeps
``find`` a single loop (no recursion, no second pass), which matters because
``find`` sits on the hot path of the contraction kernels.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Array-based disjoint sets over ``{0, ..., n-1}``."""

    __slots__ = ("_parent", "_rank", "_count")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self._parent = np.arange(n, dtype=np.int64)
        self._rank = np.zeros(n, dtype=np.int8)
        self._count = n

    @property
    def n(self) -> int:
        """Number of elements."""
        return len(self._parent)

    @property
    def count(self) -> int:
        """Current number of disjoint sets."""
        return self._count

    def find(self, x: int) -> int:
        """Representative of the set containing ``x`` (path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; True if they were distinct."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        rank = self._rank
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        self._count -= 1
        return True

    def same(self, x: int, y: int) -> bool:
        """True if ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def _roots_of(self, xs: np.ndarray) -> np.ndarray:
        """Roots of every element of ``xs``, resolved by whole-array jumps.

        Each jump also rewrites the walked nodes to their grandparents
        (vectorized path halving) — without it, the chains min-hooking
        builds make repeated resolution quadratic.
        """
        parent = self._parent
        roots = parent[xs]
        while True:
            nxt = parent[roots]
            if np.array_equal(nxt, roots):
                return roots
            grand = parent[nxt]
            # duplicate indices write identical values (same parent state)
            parent[roots] = grand
            roots = grand

    def union_many(self, x: int, ys) -> int:
        """Union ``x`` with every element of ``ys``; returns sets merged."""
        ys = np.asarray(ys, dtype=np.int64)
        if ys.size == 0:
            return 0
        return self.union_pairs(np.full(ys.shape, x, dtype=np.int64), ys)

    def union_pairs(self, us, vs) -> int:
        """Union ``us[i]`` with ``vs[i]`` for every ``i``; returns sets merged.

        Vectorized min-hooking (Shiloach–Vishkin style): resolve both sides
        to roots with whole-array parent jumps, point each larger root at the
        smaller (``np.minimum.at`` resolves conflicting hooks consistently),
        and repeat until every pair shares a root.  The resulting partition
        — and ``count`` — are exactly those of the equivalent sequence of
        scalar :meth:`union` calls; only the tree shapes (and ranks) differ,
        which no caller observes.  Used by the vector CAPFOREST kernel to
        mark a whole batch of contractible edges per relaxation round.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError("us and vs must have equal shape")
        if us.size == 0:
            return 0
        parent = self._parent
        a, b = self._roots_of(us), self._roots_of(vs)
        live = a != b
        if not live.any():
            return 0
        a, b = a[live], b[live]
        # dedup via a boolean scratch plane when the pair count is within a
        # few factors of n (np.unique's hashing costs more than two O(n)
        # passes there); fall back to unique for tiny batches on big graphs
        n = len(parent)
        seen: np.ndarray | None = None
        if 4 * (len(a) + len(b)) >= n:
            seen = np.zeros(n, dtype=bool)
            seen[a] = True
            seen[b] = True
            touched = np.flatnonzero(seen)
        else:
            touched = np.unique(np.concatenate([a, b]))
        before = len(touched)
        while True:
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            np.minimum.at(parent, hi, lo)
            a, b = self._roots_of(a), self._roots_of(b)
            merged = a == b
            if merged.all():
                break
            a, b = a[~merged], b[~merged]
        roots = self._roots_of(touched)
        parent[touched] = roots  # compress what we walked
        if seen is not None:
            seen[touched] = False
            seen[roots] = True
            after = int(np.count_nonzero(seen))
        else:
            after = len(np.unique(roots))
        self._count -= before - after
        return before - after

    def labels(self) -> np.ndarray:
        """Dense labels in ``[0, count)``, one per element, canonical for the
        partition: components are numbered by their smallest member.

        The contraction kernels consume this: vertices sharing a set share a
        label, and labels are consecutive so they can index the contracted
        graph's vertex arrays directly.  Numbering by smallest member (not by
        root id) makes the labels a function of the partition *alone* — two
        union–finds built by different hooking strategies (sequential union
        by rank vs the batch min-hooking of :meth:`union_pairs`) agree on
        every label whenever they encode the same sets, which is what makes
        the scalar and vector CAPFOREST kernels bit-comparable.
        """
        parent = self._parent
        # Full path compression, vectorized: iterate parent-jumps until fixpoint.
        roots = parent.copy()
        while True:
            nxt = roots[roots]
            if np.array_equal(nxt, roots):
                break
            roots = nxt
        self._parent = roots.copy()  # keep the compressed forest
        unique_roots, first_idx, labels = np.unique(
            roots, return_index=True, return_inverse=True
        )
        self._count = len(unique_roots)
        # first_idx[i] is the smallest member of unique_roots[i]'s set, so
        # ranking the groups by it numbers components by smallest member
        rank = np.empty(len(unique_roots), dtype=np.int64)
        rank[np.argsort(first_idx)] = np.arange(len(unique_roots))
        return rank[labels]

    def sets(self) -> dict[int, list[int]]:
        """Mapping ``root -> members`` (for tests and small-graph debugging)."""
        out: dict[int, list[int]] = {}
        for x in range(self.n):
            out.setdefault(self.find(x), []).append(x)
        return out
