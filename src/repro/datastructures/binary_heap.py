"""Addressable binary max-heap with the bottom-up deletion heuristic.

This is the paper's "Heap" variant (§3.1.3): a Williams binary heap made
addressable through a position array, using Wegener's bottom-up heuristic
for ``pop_max`` — the hole left by the maximum is sifted all the way down
along the path of larger children, then the displaced last element is
re-inserted there and sifted up.  On random inputs this performs roughly
half the comparisons of the classic top-down deletion because the last
element usually belongs near the bottom.

Supports the same optional priority bound ``λ̂`` as the bucket queues:
effective keys are clamped to the bound and update requests for vertices
already at the bound are skipped (Lemma 3.1).  Unlike bucket queues, the
heap also works unbounded — that configuration is the paper's baseline
``NOI-HNSS``.
"""

from __future__ import annotations

import numpy as np

from .pq import PQStats

_ABSENT = -1


class HeapPQ:
    """Addressable integer-keyed binary max-heap over ``{0..n-1}``."""

    __slots__ = ("_n", "_bound", "_key", "_pos", "_heap", "stats")

    def __init__(self, n: int, bound: int | None = None) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if bound is not None and bound < 0:
            raise ValueError(f"bound must be non-negative, got {bound}")
        self._n = n
        self._bound = bound
        self._key = [0] * n
        self._pos = [_ABSENT] * n  # _pos[v] == _ABSENT  <=>  v not in heap
        self._heap: list[int] = []
        self.stats = PQStats()

    @property
    def bound(self) -> int | None:
        return self._bound

    # -- sift operations ------------------------------------------------------

    def _sift_up(self, i: int) -> None:
        heap, key, pos = self._heap, self._key, self._pos
        v = heap[i]
        kv = key[v]
        while i > 0:
            parent = (i - 1) >> 1
            p = heap[parent]
            if key[p] >= kv:
                break
            heap[i] = p
            pos[p] = i
            i = parent
        heap[i] = v
        pos[v] = i

    def _sift_down_bottom_up(self, hole: int) -> None:
        """Move the hole at ``hole`` to a leaf along max-children, then place
        the last heap element into it and sift up (Wegener's heuristic)."""
        heap, key, pos = self._heap, self._key, self._pos
        last = heap.pop()
        size = len(heap)
        if size == 0 or hole == size:
            # heap emptied, or the hole was the last slot: nothing to re-insert
            return
        # walk the hole down along the larger child
        i = hole
        while True:
            child = 2 * i + 1
            if child >= size:
                break
            right = child + 1
            if right < size and key[heap[right]] > key[heap[child]]:
                child = right
            heap[i] = heap[child]
            pos[heap[i]] = i
            i = child
        # drop the last element into the final hole and repair upwards
        heap[i] = last
        pos[last] = i
        self._sift_up(i)

    # -- public interface -------------------------------------------------------

    def insert_or_raise(self, v: int, priority: int) -> None:
        if priority < 0:
            raise ValueError(f"priority must be non-negative, got {priority}")
        bound = self._bound
        new = priority if bound is None or priority < bound else bound
        pos = self._pos[v]
        if pos == _ABSENT:
            self._key[v] = new
            self._heap.append(v)
            self._pos[v] = len(self._heap) - 1
            self._sift_up(len(self._heap) - 1)
            self.stats.pushes += 1
            return
        cur = self._key[v]
        if bound is not None and cur >= bound:
            self.stats.skipped_updates += 1
            return
        if new <= cur:
            return
        self._key[v] = new
        self._sift_up(pos)
        self.stats.updates += 1

    def pop_max(self) -> tuple[int, int]:
        if not self._heap:
            raise IndexError("pop from empty priority queue")
        v = self._heap[0]
        k = self._key[v]
        self._pos[v] = _ABSENT
        self._sift_down_bottom_up(0)
        self.stats.pops += 1
        return v, k

    def key_of(self, v: int) -> int:
        """Current key of ``v``; raises KeyError if absent."""
        if self._pos[v] == _ABSENT:
            raise KeyError(v)
        return self._key[v]

    # -- batch interface (vector CAPFOREST kernel) --------------------------

    def apply_relaxations(self, vs: np.ndarray, old_keys: np.ndarray, new_keys: np.ndarray) -> None:
        """Bulk-apply precomputed insert-or-raise outcomes, in event order.

        ``old_keys[i] == -1`` means push, anything else means raise-in-place
        (the old key itself is not needed by the heap — the position array
        locates the entry).  Stats are left to the caller, mirroring the
        bucket queues' batch contract.
        """
        heap, key, pos = self._heap, self._key, self._pos
        for v, old, new in zip(vs.tolist(), old_keys.tolist(), new_keys.tolist()):
            key[v] = new
            if old < 0:
                heap.append(v)
                pos[v] = len(heap) - 1
                self._sift_up(len(heap) - 1)
            else:
                self._sift_up(pos[v])

    def insert_many(self, vs: np.ndarray, priorities: np.ndarray) -> None:
        """Vectorized :meth:`insert_or_raise` over distinct vertices.

        Same event semantics and tie-breaking as the scalar method applied
        in array order; the bound/no-op filtering happens on arrays before
        the per-element sift work.
        """
        vs = np.asarray(vs, dtype=np.int64)
        priorities = np.asarray(priorities, dtype=np.int64)
        if vs.size == 0:
            return
        bound = self._bound
        in_heap = np.fromiter(
            map(self._pos.__getitem__, vs.tolist()), dtype=np.int64, count=len(vs)
        ) != _ABSENT
        cur = np.fromiter(map(self._key.__getitem__, vs.tolist()), dtype=np.int64, count=len(vs))
        if bound is None:
            new = priorities
            push = ~in_heap
            skip = np.zeros(len(vs), dtype=bool)
        else:
            new = np.minimum(priorities, bound)
            push = ~in_heap
            skip = in_heap & (cur >= bound)
        raise_ = in_heap & ~skip & (new > cur)
        st = self.stats
        st.pushes += int(push.sum())
        st.skipped_updates += int(skip.sum())
        st.updates += int(raise_.sum())
        moved = push | raise_
        if moved.any():
            old = np.where(push, -1, cur)
            self.apply_relaxations(vs[moved], old[moved], new[moved])

    increase_many = insert_many

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, v: int) -> bool:
        return self._pos[v] != _ABSENT

    def _check_heap_property(self) -> bool:
        """Invariant check used by tests: every parent >= both children and
        the position array is consistent."""
        heap, key, pos = self._heap, self._key, self._pos
        for i, v in enumerate(heap):
            if pos[v] != i:
                return False
            child = 2 * i + 1
            if child < len(heap) and key[heap[child]] > key[v]:
                return False
            if child + 1 < len(heap) and key[heap[child + 1]] > key[v]:
                return False
        return True
