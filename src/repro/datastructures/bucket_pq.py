"""Bounded bucket priority queues (paper §3.1.3).

Keys are integers in ``[0, bound]`` (the bound is the minimum-cut upper
bound ``λ̂``).  One bucket per key; the queue tracks the highest non-empty
bucket ("top bucket").  ``pop_max`` may scan down from the previous top
bucket, which is the only non-constant operation.

The two variants differ only in which end of the top bucket ``pop_max``
takes, and that difference is behaviourally important (paper §3.1.3/§4):

* :class:`BStackPQ` ("BStack", ``std::vector`` in the paper): push to back,
  pop from back.  The scan keeps revisiting the vertex whose priority it
  just raised — a depth-first-ish local exploration.
* :class:`BQueuePQ` ("BQueue", ``std::deque`` in the paper): push to back,
  pop from front.  The scan explores vertices discovered earliest first —
  closer to breadth-first — which the paper finds best for the *parallel*
  algorithm (regions grow roundly, reducing overlap).

Buckets are plain deques with *lazy deletion*: raising a key appends the
vertex to its new bucket and simply abandons the old entry, which is
recognised as stale (``key[v] != bucket``) and discarded when a pop or
drain next walks over it.  Every entry is appended once and discarded at
most once, so all operations stay amortised O(1) — and, unlike the
intrusive doubly-linked buckets this replaces, a raise does *no* unlink
work and the vector CAPFOREST kernel can apply a whole batch of
relaxations with one ``deque.extend`` per destination bucket.

Lazy deletion never changes what ``pop_max`` returns: an entry is taken
only if its vertex currently holds exactly that key, and taking it
invalidates the vertex's other entries, so keys are always current and no
vertex pops twice.  The one observable difference is FIFO *tie order* in a
corner case CAPFOREST cannot reach (popped vertices are visited and never
relaxed again): a vertex re-inserted after a pop, at a key whose bucket
still holds one of its stale entries, resumes that entry's queue position
instead of the back.
"""

from __future__ import annotations

from collections import deque
from itertools import repeat

import numpy as np

from .pq import PQStats

_ABSENT = -1


class _BucketPQBase:
    """Common machinery; subclasses choose which end of the top bucket to pop."""

    __slots__ = ("_n", "_bound", "_key", "_buckets", "_top", "_size", "stats")

    def __init__(self, n: int, bound: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if bound < 0:
            raise ValueError(f"bound must be non-negative, got {bound}")
        self._n = n
        self._bound = int(bound)
        # _key[v] == _ABSENT  <=>  v is not in the queue; otherwise v's
        # newest entry sits in bucket _key[v] and older entries are stale
        self._key = [_ABSENT] * n
        self._buckets: list[deque | None] = [None] * (self._bound + 1)
        self._top = -1
        self._size = 0
        self.stats = PQStats()

    # -- public interface ---------------------------------------------------

    @property
    def bound(self) -> int:
        return self._bound

    def insert_or_raise(self, v: int, priority: int) -> None:
        if priority < 0:
            raise ValueError(f"priority must be non-negative, got {priority}")
        bound = self._bound
        cur = self._key[v]
        new = priority if priority < bound else bound
        if cur == _ABSENT:
            self._key[v] = new
            dq = self._buckets[new]
            if dq is None:
                dq = self._buckets[new] = deque()
            dq.append(v)
            self._size += 1
            if new > self._top:
                self._top = new
            self.stats.pushes += 1
            return
        if cur >= bound:
            # Lemma 3.1: vertices already at the bound are never updated.
            self.stats.skipped_updates += 1
            return
        if new <= cur:
            return
        self._key[v] = new  # the entry in bucket ``cur`` goes stale
        dq = self._buckets[new]
        if dq is None:
            dq = self._buckets[new] = deque()
        dq.append(v)
        if new > self._top:
            self._top = new
        self.stats.updates += 1

    def pop_max(self) -> tuple[int, int]:  # pragma: no cover - abstract
        raise NotImplementedError

    def top_key(self) -> int:  # pragma: no cover - abstract
        """Key of the current maximum without popping it (-1 if empty)."""
        raise NotImplementedError

    def key_of(self, v: int) -> int:
        """Current key of ``v``; raises KeyError if absent."""
        k = self._key[v]
        if k == _ABSENT:
            raise KeyError(v)
        return k

    # -- batch interface (vector CAPFOREST kernel) --------------------------

    def apply_relaxations(
        self,
        vs: np.ndarray,
        old_keys: np.ndarray | None,
        new_keys: np.ndarray,
        *,
        n_pushes: int | None = None,
    ) -> None:
        """Bulk-apply precomputed insert-or-raise outcomes, in event order.

        ``old_keys[i] == -1`` means ``vs[i]`` is absent (a push); any other
        value marks a raise (lazy deletion makes the old bucket itself
        irrelevant).  A caller that already knows how many of the vertices
        are pushes may pass ``n_pushes`` (and ``old_keys=None``) to skip the
        counting pass.  Vertices must be distinct.  Stats are *not* touched:
        the vector kernel accounts for every logical event itself —
        including the intermediate moves this bulk form elides (a vertex
        raised several times in one batch is appended once, to its final
        bucket) — so its counters stay identical to the scalar kernel's.
        """
        key = self._key
        buckets = self._buckets
        vs = np.asarray(vs, dtype=np.int64)
        new_keys = np.asarray(new_keys, dtype=np.int64)
        vs_l = vs.tolist()
        nk_l = new_keys.tolist()
        # bulk scatter into the key list at C speed (consume the map fully)
        deque(map(key.__setitem__, vs_l, nk_l), maxlen=0)
        if n_pushes is None:
            n_pushes = int((np.asarray(old_keys) < 0).sum())
        self._size += n_pushes
        if not vs_l:
            return
        lo_k = int(new_keys.min())
        hi_k = int(new_keys.max())
        if lo_k == hi_k:
            # single destination bucket (at the priority clamp this is the
            # overwhelmingly common batch): one extend, no sorting at all
            dq = buckets[hi_k]
            if dq is None:
                dq = buckets[hi_k] = deque()
            dq.extend(vs_l)
        else:
            # group appends by destination bucket; the stable sort preserves
            # event order within each bucket, so FIFO/LIFO order is exact
            # (narrowed to int16 when the bound allows: numpy's stable sort
            # is then a radix sort, an order of magnitude faster)
            sort_keys = new_keys
            if self._bound <= 32767:
                sort_keys = new_keys.astype(np.int16, copy=False)
            order = np.argsort(sort_keys, kind="stable")
            nk_s = new_keys[order]
            vs_l = vs[order].tolist()
            starts = np.flatnonzero(np.diff(nk_s)) + 1
            bounds = [0, *starts.tolist(), len(vs_l)]
            # destination keys as plain ints up front: the loop below then
            # runs on list slices only (no numpy scalars per bucket)
            group_keys = nk_s[np.concatenate(([0], starts))].tolist()
            for i, b in enumerate(group_keys):
                dq = buckets[b]
                if dq is None:
                    dq = buckets[b] = deque()
                dq.extend(vs_l[bounds[i] : bounds[i + 1]])
        if hi_k > self._top:
            self._top = hi_k

    def insert_many(self, vs: np.ndarray, priorities: np.ndarray) -> None:
        """Vectorized :meth:`insert_or_raise` over distinct vertices.

        Equivalent to calling the scalar method once per position, in array
        order (so FIFO/LIFO tie-breaking is preserved bit-for-bit), but the
        no-op majority — vertices already at the bound, or not actually
        raised — is filtered with array expressions before any bucket
        appends happen.
        """
        vs = np.asarray(vs, dtype=np.int64)
        priorities = np.asarray(priorities, dtype=np.int64)
        if vs.size == 0:
            return
        bound = self._bound
        cur = np.fromiter(map(self._key.__getitem__, vs.tolist()), dtype=np.int64, count=len(vs))
        new = np.minimum(priorities, bound)
        push = cur == _ABSENT
        skip = (~push) & (cur >= bound)
        raise_ = (~push) & (~skip) & (new > cur)
        st = self.stats
        st.pushes += int(push.sum())
        st.skipped_updates += int(skip.sum())
        st.updates += int(raise_.sum())
        moved = push | raise_
        if moved.any():
            old = np.where(push, -1, cur)
            self.apply_relaxations(vs[moved], old[moved], new[moved])

    # paper-facing alias: CAPFOREST priorities only ever increase
    increase_many = insert_many

    def __len__(self) -> int:
        return self._size

    def __contains__(self, v: int) -> bool:
        return self._key[v] != _ABSENT


class BStackPQ(_BucketPQBase):
    """Bucket queue popping the *most recently pushed* element of the top bucket."""

    __slots__ = ()

    def pop_max(self) -> tuple[int, int]:
        if self._size == 0:
            raise IndexError("pop from empty priority queue")
        key = self._key
        buckets = self._buckets
        b = self._top
        while True:
            dq = buckets[b]
            if dq:
                v = dq.pop()
                if key[v] == b:
                    break
            else:
                b -= 1
        self._top = b
        key[v] = _ABSENT
        self._size -= 1
        self.stats.pops += 1
        return v, b

    def top_key(self) -> int:
        if self._size == 0:
            return -1
        key = self._key
        buckets = self._buckets
        b = self._top
        while True:
            dq = buckets[b]
            if dq:
                if key[dq[-1]] == b:
                    self._top = b
                    return b
                dq.pop()
            else:
                b -= 1


class BQueuePQ(_BucketPQBase):
    """Bucket queue popping the *earliest pushed* element of the top bucket."""

    __slots__ = ()

    def pop_max(self) -> tuple[int, int]:
        if self._size == 0:
            raise IndexError("pop from empty priority queue")
        key = self._key
        buckets = self._buckets
        b = self._top
        while True:
            dq = buckets[b]
            if dq:
                v = dq.popleft()
                if key[v] == b:
                    break
            else:
                b -= 1
        self._top = b
        key[v] = _ABSENT
        self._size -= 1
        self.stats.pops += 1
        return v, b

    def top_key(self) -> int:
        if self._size == 0:
            return -1
        key = self._key
        buckets = self._buckets
        b = self._top
        while True:
            dq = buckets[b]
            if dq:
                if key[dq[0]] == b:
                    self._top = b
                    return b
                dq.popleft()
            else:
                b -= 1

    def top_may_reach(self, b: int) -> bool:
        """False guarantees the top key is below ``b`` — without settling.

        ``_top`` only ever overestimates the true top bucket (stale entries
        are discarded lazily), so this is a constant-time negative filter
        the vector kernel runs before the real :meth:`top_key` peek.
        """
        return self._top >= b

    def top_bucket_len(self) -> int:
        """Entry count of the top bucket, *including* stale entries.

        A fast upper bound on what :meth:`drain_top_bucket` would return,
        used by the vector kernel to decide whether draining pays.  At the
        priority clamp the bound is exact in CAPFOREST use: nothing can be
        raised out of the bound bucket, so its entries only leave by being
        popped — which removes them physically.
        """
        if self._size == 0:
            return 0
        self.top_key()  # discards leading stale entries, settles _top
        dq = self._buckets[self._top]
        return len(dq) if dq is not None else 0

    def drain_top_bucket(self) -> list[int]:
        """Pop *every* element of the top bucket, in FIFO order.

        Exactly equivalent to repeated :meth:`pop_max` while the top bucket
        lasts, because relaxing a drained vertex can never re-enter a
        *higher* bucket (keys are clamped to the bound) and FIFO order means
        later arrivals to this bucket are popped after the current members
        anyway.  This equivalence is BQueue-specific — BStack pops the most
        recent arrival, so draining would reorder its scan — which is why
        the vector kernel's cross-pop batching engages for BQueue only.
        """
        if self._size == 0:
            raise IndexError("pop from empty priority queue")
        key = self._key
        buckets = self._buckets
        b = self._top
        while True:
            dq = buckets[b]
            if dq:
                if key[dq[0]] == b:
                    break
                dq.popleft()
            else:
                b -= 1
        self._top = b
        # the filter drops stale entries; the C-level map marks the live
        # ones popped in bulk
        out = [v for v in dq if key[v] == b]
        deque(map(key.__setitem__, out, repeat(_ABSENT)), maxlen=0)
        dq.clear()
        self._size -= len(out)
        self.stats.pops += len(out)
        return out


class BQueueArrayPQ(BQueuePQ):
    """BQueue with the per-vertex key table in an int64 numpy array.

    Scalar operations behave identically to :class:`BQueuePQ` (reads become
    numpy scalar lookups, a few tens of nanoseconds slower per call), but
    every batch operation touches the key table in single vectorized passes:
    :meth:`apply_relaxations` scatters all key updates at once and
    :meth:`drain_top_bucket` filters staleness with one gather + compare.
    This is the backing the vector CAPFOREST kernel selects — its pops are
    overwhelmingly batched, so it trades the scalar-read penalty (paid a few
    thousand times) for array-speed batches (covering nearly every vertex).
    The scalar kernel keeps the plain-list variant, whose per-call costs are
    lower on its all-scalar operation mix.
    """

    __slots__ = ()

    def __init__(self, n: int, bound: int) -> None:
        super().__init__(n, bound)
        self._key = np.full(n, _ABSENT, dtype=np.int64)

    def key_of(self, v: int) -> int:
        k = self._key[v]
        if k == _ABSENT:
            raise KeyError(v)
        return int(k)

    def insert_or_raise(self, v: int, priority: int) -> None:
        # same logic as the base method, but the key is materialised as a
        # Python int once — every later comparison then runs on C ints
        # instead of numpy scalars (~3x cheaper per call on this path)
        if priority < 0:
            raise ValueError(f"priority must be non-negative, got {priority}")
        bound = self._bound
        cur = int(self._key[v])
        new = priority if priority < bound else bound
        if cur == _ABSENT:
            self._key[v] = new
            dq = self._buckets[new]
            if dq is None:
                dq = self._buckets[new] = deque()
            dq.append(v)
            self._size += 1
            if new > self._top:
                self._top = new
            self.stats.pushes += 1
            return
        if cur >= bound:
            self.stats.skipped_updates += 1
            return
        if new <= cur:
            return
        self._key[v] = new
        dq = self._buckets[new]
        if dq is None:
            dq = self._buckets[new] = deque()
        dq.append(v)
        if new > self._top:
            self._top = new
        self.stats.updates += 1

    def apply_relaxations(
        self,
        vs: np.ndarray,
        old_keys: np.ndarray | None,
        new_keys: np.ndarray,
        *,
        n_pushes: int | None = None,
    ) -> None:
        vs = np.asarray(vs, dtype=np.int64)
        new_keys = np.asarray(new_keys, dtype=np.int64)
        key = self._key
        key[vs] = new_keys  # one scatter replaces the per-vertex write loop
        if n_pushes is None:
            n_pushes = int((np.asarray(old_keys) < 0).sum())
        self._size += n_pushes
        if not len(vs):
            return
        buckets = self._buckets
        lo_k = int(new_keys.min())
        hi_k = int(new_keys.max())
        if lo_k == hi_k:
            dq = buckets[hi_k]
            if dq is None:
                dq = buckets[hi_k] = deque()
            dq.extend(vs.tolist())
        else:
            sort_keys = new_keys
            if self._bound <= 32767:
                sort_keys = new_keys.astype(np.int16, copy=False)
            order = np.argsort(sort_keys, kind="stable")
            nk_s = new_keys[order]
            vs_l = vs[order].tolist()
            starts = np.flatnonzero(np.diff(nk_s)) + 1
            bounds = [0, *starts.tolist(), len(vs_l)]
            group_keys = nk_s[np.concatenate(([0], starts))].tolist()
            for i, b in enumerate(group_keys):
                dq = buckets[b]
                if dq is None:
                    dq = buckets[b] = deque()
                dq.extend(vs_l[bounds[i] : bounds[i + 1]])
        if hi_k > self._top:
            self._top = hi_k

    def insert_many(self, vs: np.ndarray, priorities: np.ndarray) -> None:
        vs = np.asarray(vs, dtype=np.int64)
        priorities = np.asarray(priorities, dtype=np.int64)
        if vs.size == 0:
            return
        bound = self._bound
        cur = self._key[vs]  # one gather replaces the per-vertex read loop
        new = np.minimum(priorities, bound)
        push = cur == _ABSENT
        skip = (~push) & (cur >= bound)
        raise_ = (~push) & (~skip) & (new > cur)
        st = self.stats
        st.pushes += int(push.sum())
        st.skipped_updates += int(skip.sum())
        st.updates += int(raise_.sum())
        moved = push | raise_
        if moved.any():
            old = np.where(push, -1, cur)
            self.apply_relaxations(vs[moved], old[moved], new[moved])

    increase_many = insert_many

    def drain_top_bucket(self) -> list[int]:
        if self._size == 0:
            raise IndexError("pop from empty priority queue")
        key = self._key
        buckets = self._buckets
        b = self._top
        while True:
            dq = buckets[b]
            if dq:
                if key[dq[0]] == b:
                    break
                dq.popleft()
            else:
                b -= 1
        self._top = b
        arr = np.array(dq, dtype=np.int64)
        live = arr[key[arr] == b]
        key[live] = _ABSENT  # marks popped and drops stale entries in bulk
        out = live.tolist()
        dq.clear()
        self._size -= len(out)
        self.stats.pops += len(out)
        return out
