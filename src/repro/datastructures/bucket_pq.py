"""Bounded bucket priority queues (paper §3.1.3).

Keys are integers in ``[0, bound]`` (the bound is the minimum-cut upper
bound ``λ̂``).  One bucket per key; the queue tracks the highest non-empty
bucket ("top bucket").  Updates delete the element from its bucket and push
it to the new bucket, both O(1); ``pop_max`` may scan down from the previous
top bucket, which is the only non-constant operation.

The two variants differ only in which end of the top bucket ``pop_max``
takes, and that difference is behaviourally important (paper §3.1.3/§4):

* :class:`BStackPQ` ("BStack", ``std::vector`` in the paper): push to back,
  pop from back.  The scan keeps revisiting the vertex whose priority it
  just raised — a depth-first-ish local exploration.
* :class:`BQueuePQ` ("BQueue", ``std::deque`` in the paper): push to back,
  pop from front.  The scan explores vertices discovered earliest first —
  closer to breadth-first — which the paper finds best for the *parallel*
  algorithm (regions grow roundly, reducing overlap).

Both are implemented over one intrusive doubly-linked list embedded in two
plain Python lists (``next``/``prev`` indexed by vertex id), so deletion
from the middle of a bucket is O(1) without invalidating other entries —
equivalent to the paper's swap-delete vector and deque but with a single
shared code path.  Plain lists are used instead of numpy arrays because
single-element access dominates here and is 2–3x faster on lists.
"""

from __future__ import annotations

from .pq import PQStats

_ABSENT = -1
_NIL = -2  # list terminator, distinct from "absent"


class _BucketPQBase:
    """Common machinery; subclasses choose which end of the top bucket to pop."""

    __slots__ = ("_n", "_bound", "_key", "_next", "_prev", "_head", "_tail", "_top", "_size", "stats")

    def __init__(self, n: int, bound: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if bound < 0:
            raise ValueError(f"bound must be non-negative, got {bound}")
        self._n = n
        self._bound = int(bound)
        # _key[v] == _ABSENT  <=>  v is not in the queue
        self._key = [_ABSENT] * n
        self._next = [_NIL] * n
        self._prev = [_NIL] * n
        self._head = [_NIL] * (self._bound + 1)
        self._tail = [_NIL] * (self._bound + 1)
        self._top = -1
        self._size = 0
        self.stats = PQStats()

    # -- intrusive doubly-linked bucket list -------------------------------

    def _bucket_push_back(self, v: int, b: int) -> None:
        tail = self._tail[b]
        self._prev[v] = tail
        self._next[v] = _NIL
        if tail == _NIL:
            self._head[b] = v
        else:
            self._next[tail] = v
        self._tail[b] = v

    def _bucket_remove(self, v: int, b: int) -> None:
        nxt, prv = self._next[v], self._prev[v]
        if prv == _NIL:
            self._head[b] = nxt
        else:
            self._next[prv] = nxt
        if nxt == _NIL:
            self._tail[b] = prv
        else:
            self._prev[nxt] = prv

    # -- public interface ---------------------------------------------------

    @property
    def bound(self) -> int:
        return self._bound

    def insert_or_raise(self, v: int, priority: int) -> None:
        if priority < 0:
            raise ValueError(f"priority must be non-negative, got {priority}")
        bound = self._bound
        cur = self._key[v]
        new = priority if priority < bound else bound
        if cur == _ABSENT:
            self._key[v] = new
            self._bucket_push_back(v, new)
            self._size += 1
            if new > self._top:
                self._top = new
            self.stats.pushes += 1
            return
        if cur >= bound:
            # Lemma 3.1: vertices already at the bound are never updated.
            self.stats.skipped_updates += 1
            return
        if new <= cur:
            return
        self._bucket_remove(v, cur)
        self._key[v] = new
        self._bucket_push_back(v, new)
        if new > self._top:
            self._top = new
        self.stats.updates += 1

    def _pop_from(self, b: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def pop_max(self) -> tuple[int, int]:
        if self._size == 0:
            raise IndexError("pop from empty priority queue")
        head = self._head
        top = self._top
        while head[top] == _NIL:
            top -= 1
        self._top = top
        v = self._pop_from(top)
        self._bucket_remove(v, top)
        self._key[v] = _ABSENT
        self._size -= 1
        self.stats.pops += 1
        return v, top

    def key_of(self, v: int) -> int:
        """Current key of ``v``; raises KeyError if absent."""
        k = self._key[v]
        if k == _ABSENT:
            raise KeyError(v)
        return k

    def __len__(self) -> int:
        return self._size

    def __contains__(self, v: int) -> bool:
        return self._key[v] != _ABSENT


class BStackPQ(_BucketPQBase):
    """Bucket queue popping the *most recently pushed* element of the top bucket."""

    __slots__ = ()

    def _pop_from(self, b: int) -> int:
        return self._tail[b]


class BQueuePQ(_BucketPQBase):
    """Bucket queue popping the *earliest pushed* element of the top bucket."""

    __slots__ = ()

    def _pop_from(self, b: int) -> int:
        return self._head[b]
