"""Concurrent union–find variants for the parallel CAPFOREST workers.

The paper uses the wait-free union–find of Anderson & Woll so that all
workers can union into one shared structure without coordination.  CPython
offers no compare-and-swap on arrays, so we provide two semantically
equivalent substitutes (documented in DESIGN.md):

* :class:`LockStripedUnionFind` — a shared structure whose ``union`` takes
  one of ``k`` stripe locks (both stripes, ordered, to avoid deadlock).
  ``find`` is lock-free: concurrent path-halving writes are benign because
  they only ever replace a parent pointer with an ancestor.  Used by the
  thread executor.

* :class:`MergeBufferUnionFind` — workers append ``(u, v)`` pairs to a
  private buffer; the coordinator replays all buffers into a sequential
  :class:`~repro.datastructures.union_find.UnionFind` afterwards.  The paper
  (Lemma 3.2(1)) notes union operations commute, so deferred replay yields
  the same partition.  Used by the process executor, where shipping pairs
  over a pipe is far cheaper than sharing the forest.
"""

from __future__ import annotations

import threading

import numpy as np

from .union_find import UnionFind


class LockStripedUnionFind:
    """Thread-safe union–find: lock-free finds, striped-lock unions."""

    def __init__(self, n: int, stripes: int = 64) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {stripes}")
        self._parent = np.arange(n, dtype=np.int64)
        self._locks = [threading.Lock() for _ in range(stripes)]
        self._stripes = stripes

    @property
    def n(self) -> int:
        return len(self._parent)

    def find(self, x: int) -> int:
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, x: int, y: int) -> bool:
        # Retry loop: another thread may re-root one side between our find
        # and taking the locks; re-check roots while holding both stripes.
        while True:
            rx, ry = self.find(x), self.find(y)
            if rx == ry:
                return False
            if rx > ry:
                rx, ry = ry, rx
            # acquire stripes in *stripe-index* order — root order does not
            # imply stripe order, and inconsistent ordering deadlocks
            si, sj = rx % self._stripes, ry % self._stripes
            if si > sj:
                si, sj = sj, si
            lock_a = self._locks[si]
            lock_b = self._locks[sj]
            if lock_a is lock_b:
                with lock_a:
                    if self._parent[rx] == rx and self._parent[ry] == ry:
                        self._parent[ry] = rx
                        return True
            else:
                with lock_a, lock_b:
                    if self._parent[rx] == rx and self._parent[ry] == ry:
                        self._parent[ry] = rx
                        return True

    def same(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def to_sequential(self) -> UnionFind:
        """Snapshot into a sequential UnionFind (call after workers join)."""
        uf = UnionFind(self.n)
        parent = self._parent
        for x in range(self.n):
            p = int(parent[x])
            if p != x:
                uf.union(x, p)
        return uf

    def labels(self) -> np.ndarray:
        return self.to_sequential().labels()


class MergeBufferUnionFind:
    """Per-worker append-only union buffer, replayed by the coordinator.

    Each worker gets its own instance (no sharing, no locks).  The
    coordinator calls :meth:`replay_into` with all buffers.
    """

    __slots__ = ("pairs",)

    def __init__(self) -> None:
        self.pairs: list[tuple[int, int]] = []

    def union(self, x: int, y: int) -> bool:
        self.pairs.append((x, y))
        return True  # optimistic; definitive answer only after replay

    @staticmethod
    def replay_into(uf: UnionFind, buffers: "list[MergeBufferUnionFind] | list[list[tuple[int, int]]]") -> UnionFind:
        """Apply every buffered pair to ``uf``; order is irrelevant."""
        for buf in buffers:
            pairs = buf.pairs if isinstance(buf, MergeBufferUnionFind) else buf
            for x, y in pairs:
                uf.union(x, y)
        return uf
