"""Addressable max-priority-queue protocol and factory.

CAPFOREST (paper §2.3/§3.1) needs an *addressable* max-queue over vertex
ids whose priorities only increase during a scan, plus the paper's key
optimization: priorities can be clamped to the current minimum-cut upper
bound ``λ̂`` (Lemma 3.1) — updates to vertices already at the bound are
skipped entirely.

Three implementations are compared in the paper and provided here:

================  ===============================  ==========================
name              class                            pop-from-top-bucket order
================  ===============================  ==========================
``"bstack"``      :class:`~.bucket_pq.BStackPQ`    LIFO (most recently moved)
``"bqueue"``      :class:`~.bucket_pq.BQueuePQ`    FIFO (closest to source)
``"heap"``        :class:`~.binary_heap.HeapPQ`    heap order (no bias)
================  ===============================  ==========================

All share the interface below.  Every implementation counts its operations
(``stats``) so experiments can report data-structure effects independently
of wall-clock noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@dataclass
class PQStats:
    """Operation counters, reported by the Figure 2/3 experiments."""

    pushes: int = 0
    updates: int = 0
    skipped_updates: int = 0  # update requests ignored because key == bound
    pops: int = 0

    @property
    def total(self) -> int:
        return self.pushes + self.updates + self.pops

    def as_dict(self) -> dict[str, int]:
        return {
            "pushes": self.pushes,
            "updates": self.updates,
            "skipped_updates": self.skipped_updates,
            "pops": self.pops,
        }


@runtime_checkable
class MaxPriorityQueue(Protocol):
    """Addressable integer-keyed max-priority queue over ``{0..n-1}``."""

    stats: PQStats

    def insert_or_raise(self, v: int, priority: int) -> None:
        """Insert ``v`` with ``priority``, or raise its key to ``priority``.

        Lowering a key is a no-op (CAPFOREST keys are monotone).  With a
        bound ``b``, the effective key is ``min(priority, b)`` and requests
        for vertices already at ``b`` are skipped (Lemma 3.1).
        """
        ...

    def pop_max(self) -> tuple[int, int]:
        """Remove and return ``(vertex, key)`` with the largest key."""
        ...

    def __len__(self) -> int: ...

    def __contains__(self, v: int) -> bool: ...


# Registry used by solvers and the experiment harness; names match the
# paper's variant labels (NOIλ̂-BStack, NOIλ̂-BQueue, NOIλ̂-Heap).
PQ_NAMES = ("bstack", "bqueue", "heap")


def make_pq(
    kind: str, n: int, bound: int | None = None, *, array_keys: bool = False
) -> MaxPriorityQueue:
    """Create a priority queue by name.

    Parameters
    ----------
    kind:
        One of :data:`PQ_NAMES`.
    n:
        Vertex id universe size.
    bound:
        Priority clamp ``λ̂`` (``None`` = unbounded).  Bucket queues *require*
        a bound, since they allocate one bucket per possible key; asking for
        an unbounded bucket queue raises ``ValueError``.
    array_keys:
        For ``"bqueue"``: back the key table with an int64 numpy array so
        the batch operations run as single vectorized passes — the variant
        the vector CAPFOREST kernel uses.  Observationally identical to the
        list-backed queue; ignored for the other kinds, whose operation mix
        is scalar-dominated.
    """
    from .binary_heap import HeapPQ
    from .bucket_pq import BQueueArrayPQ, BQueuePQ, BStackPQ

    if kind == "heap":
        return HeapPQ(n, bound=bound)
    if kind == "bstack":
        if bound is None:
            raise ValueError("bucket queues require a bound (λ̂)")
        return BStackPQ(n, bound=bound)
    if kind == "bqueue":
        if bound is None:
            raise ValueError("bucket queues require a bound (λ̂)")
        return (BQueueArrayPQ if array_keys else BQueuePQ)(n, bound=bound)
    raise ValueError(f"unknown priority queue kind {kind!r}; expected one of {PQ_NAMES}")
