"""repro — shared-memory exact minimum cuts.

A from-scratch Python reproduction of Henzinger, Noe & Schulz,
"Shared-memory Exact Minimum Cuts" (IPDPS 2019): the NOI/CAPFOREST exact
contraction framework with bounded priority queues, VieCut inexact
pre-seeding, parallel CAPFOREST, and the full ParCut system — plus the
baselines the paper evaluates against (Hao–Orlin, Stoer–Wagner,
Karger–Stein, Matula).

Quickstart
----------
>>> from repro import GraphBuilder, minimum_cut
>>> g = (GraphBuilder(4).add_edge(0, 1, 3).add_edge(1, 2, 1)
...      .add_edge(2, 3, 3).add_edge(3, 0, 1).build())
>>> minimum_cut(g).value
2
"""

from .graph import Graph, GraphBuilder, from_edges

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "from_edges",
    "minimum_cut",
    "MinCutResult",
    "SolverEngine",
    "UnknownAlgorithmError",
    "__version__",
]


def __getattr__(name: str):
    # Lazy imports keep `import repro` cheap and avoid import cycles while
    # the solver stack (core/api) pulls in most of the package.
    if name in ("minimum_cut", "MinCutResult", "ALGORITHMS", "UnknownAlgorithmError"):
        from .core import api

        return getattr(api, name)
    if name == "SolverEngine":
        from .engine import SolverEngine

        return SolverEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
