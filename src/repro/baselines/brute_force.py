"""Exhaustive minimum cut by enumerating all 2^(n-1) bipartitions.

The reference oracle for tiny graphs: exponential, but unconditionally
correct and independent of every other code path in the package (it only
uses the dense cut-capacity formula).  Tests use it to cross-check the
exact solvers without relying on networkx.
"""

from __future__ import annotations

import numpy as np

from ..core.result import MinCutResult
from ..graph.csr import Graph

#: enumeration is 2^(n-1) cuts; refuse anything that would take minutes
MAX_BRUTE_FORCE_N = 22


def brute_force_mincut(graph: Graph, *, compute_side: bool = True) -> MinCutResult:
    """Exact minimum cut by enumeration (``n <= 22``)."""
    n = graph.n
    if n < 2:
        raise ValueError(f"minimum cut requires at least 2 vertices, got {n}")
    if n > MAX_BRUTE_FORCE_N:
        raise ValueError(f"brute force limited to n <= {MAX_BRUTE_FORCE_N}, got {n}")

    W = np.zeros((n, n), dtype=np.int64)
    src = graph.arc_sources()
    W[src, graph.adjncy] = graph.adjwgt

    # bit masks over vertices 0..n-2; vertex n-1 is always on the B side,
    # halving the enumeration (cuts are symmetric)
    best_value: int | None = None
    best_subset = 1
    powers = 1 << np.arange(n, dtype=np.int64)
    for subset in range(1, 1 << (n - 1)):
        mask = (subset & powers) != 0
        value = int(W[np.ix_(mask, ~mask)].sum())
        if best_value is None or value < best_value:
            best_value = value
            best_subset = subset

    side = None
    if compute_side:
        side = (best_subset & powers) != 0
    assert best_value is not None
    return MinCutResult(best_value, side, n, "brute-force", {"cuts_enumerated": (1 << (n - 1)) - 1})


def brute_force_all_mincuts(graph: Graph) -> tuple[int, list[np.ndarray]]:
    """Every minimum cut of ``graph`` by enumeration (``n <= 22``).

    Returns ``(value, masks)`` where each mask is a canonical boolean
    side over the vertices — ``mask[0]`` is always ``False`` (each cut is
    represented by the side *not* containing vertex 0) — and the list is
    sorted by ``mask.tobytes()`` so two enumerations compare with ``==``.
    """
    n = graph.n
    if n < 2:
        raise ValueError(f"minimum cut requires at least 2 vertices, got {n}")
    if n > MAX_BRUTE_FORCE_N:
        raise ValueError(f"brute force limited to n <= {MAX_BRUTE_FORCE_N}, got {n}")

    W = np.zeros((n, n), dtype=np.int64)
    src = graph.arc_sources()
    W[src, graph.adjncy] = graph.adjwgt

    powers = 1 << np.arange(n, dtype=np.int64)
    best_value: int | None = None
    best_masks: list[np.ndarray] = []
    # subsets over vertices 1..n-1: bit 0 clear keeps vertex 0 on the
    # complement side, which *is* the canonical form — no postprocessing
    for subset in range(2, 1 << n, 2):
        mask = (subset & powers) != 0
        value = int(W[np.ix_(mask, ~mask)].sum())
        if best_value is None or value < best_value:
            best_value = value
            best_masks = [mask]
        elif value == best_value:
            best_masks.append(mask)
    assert best_value is not None
    best_masks.sort(key=lambda m: m.tobytes())
    return best_value, best_masks
