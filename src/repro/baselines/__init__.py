"""Baseline algorithms the paper evaluates against (plus extensions)."""

from .brute_force import brute_force_all_mincuts, brute_force_mincut
from .gomory_hu import GomoryHuTree, gomory_hu_tree
from .hao_orlin import hao_orlin
from .karger_stein import karger_stein
from .matula import matula_approx
from .push_relabel import MaxFlowResult, max_flow, reverse_arcs
from .stoer_wagner import stoer_wagner

__all__ = [
    "brute_force_all_mincuts",
    "brute_force_mincut",
    "GomoryHuTree",
    "gomory_hu_tree",
    "hao_orlin",
    "karger_stein",
    "matula_approx",
    "MaxFlowResult",
    "max_flow",
    "reverse_arcs",
    "stoer_wagner",
]
