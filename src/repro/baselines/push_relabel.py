"""Highest-label push-relabel maximum flow (Goldberg–Tarjan), on undirected graphs.

Substrate for the Hao–Orlin baseline and for recomputing certified cut
sides.  An undirected edge ``{u, v}`` of capacity ``w`` becomes the
antiparallel arc pair ``u->v`` / ``v->u``, each of capacity ``w``, coupled
through a shared flow variable (pushing on one frees residual on the
other) — the standard undirected max-flow reduction.

Implements the classic engineering set the CGKLS study uses:
highest-label selection via height buckets, the gap heuristic, and an
initial backward-BFS global relabelling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..graph.csr import Graph


@dataclass
class MaxFlowResult:
    """Max-flow value plus the associated minimum s-t cut."""

    value: int
    #: bool[n]: True on the source side of a minimum s-t cut
    source_side: np.ndarray
    #: per-arc flow aligned with the graph's arc arrays (f(u->v) = -f(v->u))
    flow: np.ndarray


def reverse_arcs(graph: Graph) -> np.ndarray:
    """Vectorized reverse-arc index computation (O(m log m))."""
    src = graph.arc_sources()
    n = np.int64(graph.n)
    fwd_keys = src * n + graph.adjncy
    bwd_keys = graph.adjncy * n + src
    order_f = np.argsort(fwd_keys, kind="stable")
    order_b = np.argsort(bwd_keys, kind="stable")
    rev = np.empty(graph.num_arcs, dtype=np.int64)
    rev[order_f] = order_b
    return rev


def max_flow(
    graph: Graph,
    source: int,
    sink: int,
    *,
    rev: np.ndarray | None = None,
) -> MaxFlowResult:
    """Maximum s-t flow / minimum s-t cut on an undirected weighted graph.

    Parameters
    ----------
    source, sink:
        Distinct vertices.
    rev:
        Precomputed :func:`reverse_arcs` (recomputed when omitted) — pass it
        when running many flows on one graph.
    """
    n = graph.n
    if source == sink:
        raise ValueError("source and sink must differ")
    if not (0 <= source < n and 0 <= sink < n):
        raise ValueError("source or sink out of range")
    if rev is None:
        rev = reverse_arcs(graph)

    xadj = graph.xadj.tolist()
    head = graph.adjncy.tolist()
    cap = graph.adjwgt.tolist()
    rev_l = rev.tolist()
    num_arcs = len(head)
    flow = [0] * num_arcs
    excess = [0] * n
    height = [0] * n
    cur = xadj[:-1].copy()  # current-arc pointers

    # initial heights: backward BFS from the sink (global relabelling)
    height = _bfs_heights(n, xadj, head, sink)
    height[source] = n

    # buckets of active vertices by height
    active_buckets: list[list[int]] = [[] for _ in range(2 * n + 1)]
    in_bucket = [False] * n
    highest = 0
    # count of vertices per height < n (for the gap heuristic)
    height_count = [0] * (2 * n + 1)
    for v in range(n):
        if height[v] < 2 * n + 1:
            height_count[height[v]] += 1

    def activate(v: int) -> None:
        nonlocal highest
        if v != source and v != sink and excess[v] > 0 and not in_bucket[v]:
            in_bucket[v] = True
            h = height[v]
            active_buckets[h].append(v)
            if h > highest:
                highest = h

    # saturate source arcs
    for i in range(xadj[source], xadj[source + 1]):
        delta = cap[i] - flow[i]
        if delta > 0:
            flow[i] += delta
            flow[rev_l[i]] -= delta
            excess[head[i]] += delta
            excess[source] -= delta
            activate(head[i])

    while highest >= 0:
        bucket = active_buckets[highest]
        if not bucket:
            highest -= 1
            continue
        v = bucket.pop()
        in_bucket[v] = False
        if excess[v] == 0 or v == source or v == sink:
            continue
        if height[v] != highest:
            # height changed while queued (gap heuristic); re-file correctly
            activate(v)
            continue
        # discharge v
        while excess[v] > 0:
            if cur[v] == xadj[v + 1]:
                # relabel
                old_h = height[v]
                min_h = 2 * n
                for i in range(xadj[v], xadj[v + 1]):
                    if cap[i] - flow[i] > 0:
                        hh = height[head[i]]
                        if hh < min_h:
                            min_h = hh
                new_h = min(min_h + 1, 2 * n)  # cap is a safety net; preflow
                # theory bounds heights by 2n-1 while excess remains
                # gap heuristic: if v vacates its level and the level is
                # empty below n, everything above it is disconnected from t
                height_count[old_h] -= 1
                if height_count[old_h] == 0 and old_h < n:
                    for u in range(n):
                        if old_h < height[u] < n and u != source:
                            height_count[height[u]] -= 1
                            height[u] = n + 1
                            height_count[height[u]] += 1
                    if old_h < new_h < n:
                        new_h = n + 1
                height[v] = new_h
                height_count[new_h] += 1
                cur[v] = xadj[v]
                if new_h >= 2 * n:
                    break
                continue
            i = cur[v]
            residual = cap[i] - flow[i]
            w = head[i]
            if residual > 0 and height[v] == height[w] + 1:
                delta = residual if residual < excess[v] else excess[v]
                flow[i] += delta
                flow[rev_l[i]] -= delta
                excess[v] -= delta
                excess[w] += delta
                activate(w)
            else:
                cur[v] += 1
        if excess[v] > 0 and height[v] < 2 * n:
            activate(v)

    value = excess[sink]
    # source side of the min cut: vertices reaching no residual path from s?
    # standard: S = {v : v reachable from source in the residual graph}
    side = _residual_reachable(n, xadj, head, cap, flow, source)
    return MaxFlowResult(value=value, source_side=side, flow=np.array(flow, dtype=np.int64))


def _bfs_heights(n: int, xadj: list, head: list, sink: int) -> list[int]:
    """Exact distance-to-sink labels (arcs are symmetric, so plain BFS works)."""
    height = [n] * n
    height[sink] = 0
    dq = deque([sink])
    while dq:
        v = dq.popleft()
        hv = height[v]
        for i in range(xadj[v], xadj[v + 1]):
            u = head[i]
            if height[u] == n:
                height[u] = hv + 1
                dq.append(u)
    return height


def _residual_reachable(
    n: int, xadj: list, head: list, cap: list, flow: list, source: int
) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    mask[source] = True
    dq = deque([source])
    while dq:
        v = dq.popleft()
        for i in range(xadj[v], xadj[v + 1]):
            u = head[i]
            if not mask[u] and cap[i] - flow[i] > 0:
                mask[u] = True
                dq.append(u)
    return mask
