"""Gomory–Hu cut trees: all-pairs minimum cuts from n−1 max-flows.

Gomory & Hu [11] (paper §2.2) showed that a weighted tree on V exists whose
path-minimum edge weights equal all pairwise minimum cut values
λ(G, u, v); the *global* minimum cut is the lightest tree edge — the
historical route to global min cuts that Hao–Orlin, NOI, and this paper's
system progressively replaced.  It is included both as the natural
extension API (all-pairs connectivity queries) and as the slowest-baseline
anchor for the experiment narrative.

This is the Gusfield simplification (no vertex contraction between flows):
for each vertex ``i`` compute a minimum cut to its current tree parent and
re-hang vertices that land on ``i``'s side — provably yielding a valid
Gomory–Hu tree for undirected graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.components import connected_components
from ..graph.csr import Graph
from .push_relabel import max_flow, reverse_arcs


@dataclass
class GomoryHuTree:
    """Cut tree: ``parent[v]`` / ``weight[v]`` encode the tree edge
    ``(v, parent[v])`` of capacity ``weight[v]`` (vertex 0 is the root)."""

    parent: np.ndarray
    weight: np.ndarray

    @property
    def n(self) -> int:
        return len(self.parent)

    def min_cut_value(self, u: int, v: int) -> int:
        """λ(G, u, v): minimum edge weight on the tree path u → v."""
        if u == v:
            raise ValueError("u and v must differ")
        inf = float("inf")
        # prefix minima along u's root path: prefix_min[x] = lightest edge
        # between u and ancestor x (inf at u itself)
        prefix_min: dict[int, float] = {u: inf}
        x, cur = u, inf
        while x != 0:
            cur = min(cur, int(self.weight[x]))
            x = int(self.parent[x])
            prefix_min[x] = cur
        # walk v upward until meeting u's root path
        x, cur = v, inf
        while x not in prefix_min:
            cur = min(cur, int(self.weight[x]))
            x = int(self.parent[x])
        result = min(cur, prefix_min[x])
        assert result != inf
        return int(result)

    def global_min_cut(self) -> tuple[int, int]:
        """(value, vertex) of the lightest tree edge — the global min cut;
        the cut side is the subtree hanging below ``vertex``."""
        if self.n < 2:
            raise ValueError("need at least 2 vertices")
        v = int(np.argmin(self.weight[1:])) + 1
        return int(self.weight[v]), v


def gomory_hu_tree(graph: Graph) -> GomoryHuTree:
    """Build a Gomory–Hu tree with n−1 push-relabel max-flows (Gusfield).

    Requires a connected graph (disconnected pairs have λ = 0 and no finite
    tree represents that cleanly; callers should split by component first).
    """
    n = graph.n
    if n < 2:
        raise ValueError(f"need at least 2 vertices, got {n}")
    ncomp, _ = connected_components(graph)
    if ncomp != 1:
        raise ValueError("gomory_hu_tree requires a connected graph")

    rev = reverse_arcs(graph)
    parent = np.zeros(n, dtype=np.int64)
    weight = np.zeros(n, dtype=np.int64)
    for i in range(1, n):
        p = int(parent[i])
        res = max_flow(graph, i, p, rev=rev)
        weight[i] = res.value
        side_i = res.source_side  # i's side of the min (i, parent) cut
        # re-hang: any later vertex currently attached to p but on i's side
        for j in range(i + 1, n):
            if parent[j] == p and side_i[j]:
                parent[j] = i
        # Gusfield refinement: if the grandparent is on i's side, swap roles
        gp = int(parent[p])
        if p != 0 and side_i[gp]:
            parent[i] = gp
            parent[p] = i
            weight[i] = weight[p]
            weight[p] = res.value
    return GomoryHuTree(parent=parent, weight=weight)
