"""Hao–Orlin global minimum cut (baseline ``HO-CGKLS``; paper §2.2).

Hao & Orlin [12] compute the global minimum cut with the work of roughly
*one* push-relabel run instead of ``n - 1``: a fixed source set ``X``
absorbs one sink per phase, distance labels persist across phases, and a
system of *dormant sets* (a generalisation of the gap heuristic) parks
vertices that are provably separated from the current sink.  The candidate
cut of a phase is the sink's excess when no active vertex remains; the
minimum over all phases is λ(G).

Implementation notes
--------------------
* The awake/dormant partition is a stack: ``dormant[0]`` is the source set
  ``X``; a relabel that would strand the only awake vertex at its level
  pushes every awake vertex at that level or above onto a new dormant set,
  as does a relabel with no residual arc to an awake vertex.
* ``X`` after ``k`` phases is ``{s, t_1, …, t_k}`` in sink order, so the
  winning phase is remembered as an index and the certified cut *side* is
  recovered afterwards with one clean max-flow between the contracted
  ``X`` and the winning sink (value asserted equal).
* Heights persist; a merged sink gets height ``n`` and its residual arcs
  are saturated, exactly as in the paper's description ("they implicitly
  merge the source and sink to form a new sink and find a new source" —
  §2.2 told from the flipped perspective).
"""

from __future__ import annotations

import numpy as np

from ..core.result import MinCutResult
from ..graph.components import connected_components
from ..graph.contract import contract_by_labels
from ..graph.csr import Graph
from .push_relabel import max_flow, reverse_arcs


def hao_orlin(
    graph: Graph,
    *,
    source: int = 0,
    compute_side: bool = True,
    rng: np.random.Generator | int | None = None,
) -> MinCutResult:
    """Exact global minimum cut via Hao–Orlin.

    ``rng`` is accepted for interface symmetry (selects nothing — the
    algorithm is deterministic given ``source``).
    """
    n = graph.n
    if n < 2:
        raise ValueError(f"minimum cut requires at least 2 vertices, got {n}")
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range")

    stats: dict = {"phases": 0, "pushes": 0, "relabels": 0, "dormant_events": 0}
    ncomp, comp_labels = connected_components(graph)
    if ncomp > 1:
        side = comp_labels == 0 if compute_side else None
        return MinCutResult(0, side, n, "hao-orlin", stats)

    rev = reverse_arcs(graph)
    xadj = graph.xadj.tolist()
    head = graph.adjncy.tolist()
    cap = graph.adjwgt.tolist()
    rev_l = rev.tolist()
    flow = [0] * len(head)
    excess = [0] * n
    height = [0] * n
    cur = list(xadj[:-1])

    AWAKE = -1
    dormant_id = [AWAKE] * n
    dormant: list[list[int]] = [[source]]
    dormant_id[source] = 0
    height[source] = n
    awake_at_height = [0] * (2 * n + 1)
    for v in range(n):
        if v != source:
            awake_at_height[0] += 1

    # active bookkeeping: highest-label buckets over awake non-sink vertices
    buckets: list[list[int]] = [[] for _ in range(2 * n + 1)]
    in_bucket = [False] * n
    highest = 0

    sink_order: list[int] = []
    best_value: int | None = None
    best_phase = -1

    def push(i: int, delta: int) -> None:
        flow[i] += delta
        flow[rev_l[i]] -= delta
        excess[head[i]] += delta
        stats["pushes"] += 1

    def saturate_out(v: int) -> None:
        for i in range(xadj[v], xadj[v + 1]):
            w = head[i]
            delta = cap[i] - flow[i]
            if delta > 0 and dormant_id[w] != 0:
                push(i, delta)
                excess[v] -= delta

    def activate(v: int, t: int) -> None:
        nonlocal highest
        if dormant_id[v] == AWAKE and v != t and excess[v] > 0 and not in_bucket[v]:
            in_bucket[v] = True
            buckets[height[v]].append(v)
            if height[v] > highest:
                highest = height[v]

    def make_dormant(vertices: list[int]) -> None:
        stats["dormant_events"] += 1
        idx = len(dormant)
        dormant.append(list(vertices))
        for v in vertices:
            dormant_id[v] = idx
            awake_at_height[height[v]] -= 1

    saturate_out(source)

    t = min((v for v in range(n) if dormant_id[v] == AWAKE), key=lambda v: height[v])
    for v in range(n):
        activate(v, t)

    for _phase in range(n - 1):
        stats["phases"] += 1
        # ---- discharge all active awake vertices ----
        while highest >= 0:
            bucket = buckets[highest]
            if not bucket:
                highest -= 1
                continue
            v = bucket.pop()
            in_bucket[v] = False
            if dormant_id[v] != AWAKE or v == t or excess[v] == 0:
                continue
            if height[v] != highest:
                activate(v, t)
                continue
            while excess[v] > 0 and dormant_id[v] == AWAKE:
                if cur[v] == xadj[v + 1]:
                    # ---- relabel v ----
                    stats["relabels"] += 1
                    hv = height[v]
                    if awake_at_height[hv] == 1:
                        # v is alone at its level: all awake vertices at or
                        # above hv are cut off from the sink -> dormant
                        group = [
                            u
                            for u in range(n)
                            if dormant_id[u] == AWAKE and height[u] >= hv
                        ]
                        make_dormant(group)
                        break
                    min_h = None
                    for i in range(xadj[v], xadj[v + 1]):
                        w = head[i]
                        if cap[i] - flow[i] > 0 and dormant_id[w] == AWAKE:
                            if min_h is None or height[w] < min_h:
                                min_h = height[w]
                    if min_h is None:
                        make_dormant([v])
                        break
                    awake_at_height[hv] -= 1
                    height[v] = min_h + 1
                    awake_at_height[height[v]] += 1
                    cur[v] = xadj[v]
                    continue
                i = cur[v]
                w = head[i]
                residual = cap[i] - flow[i]
                if (
                    residual > 0
                    and dormant_id[w] == AWAKE
                    and height[v] == height[w] + 1
                ):
                    delta = residual if residual < excess[v] else excess[v]
                    push(i, delta)
                    excess[v] -= delta
                    activate(w, t)
                else:
                    cur[v] += 1
            if excess[v] > 0 and dormant_id[v] == AWAKE:
                activate(v, t)

        # ---- phase ends: candidate cut is the sink's excess ----
        sink_order.append(t)
        if best_value is None or excess[t] < best_value:
            best_value = excess[t]
            best_phase = len(sink_order) - 1

        # ---- t joins the source set X = dormant[0] ----
        awake_at_height[height[t]] -= 1
        dormant_id[t] = 0
        dormant[0].append(t)
        height[t] = n
        saturate_out(t)

        if len(dormant[0]) == n:
            break

        # wake dormant sets until an awake vertex exists
        while not any(dormant_id[v] == AWAKE for v in range(n)):
            group = dormant.pop()
            for v in group:
                dormant_id[v] = AWAKE
                awake_at_height[height[v]] += 1

        t = min(
            (v for v in range(n) if dormant_id[v] == AWAKE), key=lambda v: height[v]
        )
        highest = 0
        for v in range(n):
            cur[v] = xadj[v]
            activate(v, t)

    assert best_value is not None
    side = None
    if compute_side:
        side = _recover_side(graph, source, sink_order, best_phase, best_value)
    return MinCutResult(int(best_value), side, n, "hao-orlin", stats)


def _recover_side(
    graph: Graph, source: int, sink_order: list[int], best_phase: int, best_value: int
) -> np.ndarray:
    """Certified side for the winning (X, t) pair via one clean max-flow."""
    n = graph.n
    x_set = [source] + sink_order[:best_phase]
    t = sink_order[best_phase]
    labels = np.arange(n, dtype=np.int64)
    if len(x_set) > 1:
        # contract X into one supervertex, keep labels dense
        labels[x_set] = n  # temporary sentinel above all ids
        _, dense = np.unique(labels, return_inverse=True)
        labels = dense.astype(np.int64)
        contracted, _ = contract_by_labels(graph, labels)
        s_id = int(labels[source])
        t_id = int(labels[t])
        res = max_flow(contracted, s_id, t_id)
        assert res.value == best_value, "HO phase value must match the X-t max flow"
        return res.source_side[labels]
    res = max_flow(graph, source, t)
    assert res.value == best_value, "HO phase value must match the s-t max flow"
    return res.source_side
