"""Stoer–Wagner minimum cut (baseline; paper §2.2).

The simpler cousin of NOI: ``n - 1`` maximum-adjacency phases, each ending
with the "cut of the phase" — the trivial cut of the last-scanned vertex,
which the Stoer–Wagner theorem shows is a minimum cut separating the last
two scanned vertices.  Those two are then merged and the best phase cut
over all phases is the minimum cut.  Same O(nm + n² log n) bound as NOI,
but no certificate-based bulk contraction, which is why experiments (Jünger
et al. [15], and this paper) find it much slower in practice.

Implemented over dict-of-dict adjacency with an addressable heap per phase;
merged supervertices carry their original-vertex sets so the winning phase
yields a certified side mask.
"""

from __future__ import annotations

import numpy as np

from ..datastructures.binary_heap import HeapPQ
from ..graph.components import connected_components
from ..graph.csr import Graph
from ..core.result import MinCutResult


def stoer_wagner(
    graph: Graph,
    *,
    rng: np.random.Generator | int | None = None,
    compute_side: bool = True,
) -> MinCutResult:
    """Exact minimum cut via Stoer–Wagner.

    ``rng`` only selects the (irrelevant for correctness) phase start
    vertex, kept for interface symmetry with the other solvers.
    """
    n = graph.n
    if n < 2:
        raise ValueError(f"minimum cut requires at least 2 vertices, got {n}")

    stats: dict = {"phases": 0}
    ncomp, comp_labels = connected_components(graph)
    if ncomp > 1:
        side = comp_labels == 0 if compute_side else None
        return MinCutResult(0, side, n, "stoer-wagner", stats)

    # mutable adjacency: supervertex -> {neighbour: weight}
    adj: dict[int, dict[int, int]] = {v: {} for v in range(n)}
    src = graph.arc_sources()
    for u, v, w in zip(src.tolist(), graph.adjncy.tolist(), graph.adjwgt.tolist()):
        adj[u][v] = w
    members: dict[int, list[int]] = {v: [v] for v in range(n)}

    best_value: int | None = None
    best_members: list[int] | None = None

    while len(adj) > 1:
        stats["phases"] += 1
        order, cut_of_phase = _ma_phase(adj, n)
        t = order[-1]
        if best_value is None or cut_of_phase < best_value:
            best_value = cut_of_phase
            best_members = list(members[t])
        s = order[-2]
        _merge(adj, members, s, t)

    side = None
    if compute_side:
        side = np.zeros(n, dtype=bool)
        side[best_members] = True
    assert best_value is not None
    return MinCutResult(int(best_value), side, n, "stoer-wagner", stats)


def _ma_phase(adj: dict[int, dict[int, int]], n: int) -> tuple[list[int], int]:
    """One maximum-adjacency phase; returns (scan order, cut of the phase)."""
    start = next(iter(adj))
    pq = HeapPQ(n)
    in_a = set()
    order: list[int] = []
    last_key = 0
    pq.insert_or_raise(start, 0)
    while len(pq):
        v, key = pq.pop_max()
        in_a.add(v)
        order.append(v)
        last_key = key
        for u, w in adj[v].items():
            if u not in in_a:
                if u in pq:
                    pq.insert_or_raise(u, pq.key_of(u) + w)
                else:
                    pq.insert_or_raise(u, w)
    # cut of the phase = connectivity of the last vertex to the rest = its key
    return order, last_key


def _merge(adj: dict[int, dict[int, int]], members: dict[int, list[int]], s: int, t: int) -> None:
    """Contract t into s in the mutable adjacency."""
    for u, w in adj[t].items():
        if u == s:
            continue
        adj[u].pop(t, None)
        adj[u][s] = adj[u].get(s, 0) + w
        adj[s][u] = adj[s].get(u, 0) + w
    adj[s].pop(t, None)
    del adj[t]
    members[s].extend(members[t])
    del members[t]
