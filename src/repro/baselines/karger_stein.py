"""Karger–Stein randomized recursive contraction (baseline; paper §2.2).

Monte Carlo: contracting a uniformly weight-proportional random edge rarely
destroys the minimum cut while the graph is large, so the recursion
contracts to ``n/√2 + 1`` vertices *twice* independently and recurses on
both, giving a per-run success probability Ω(1/log n) at O(n² log n) cost;
``O(log² n)`` runs succeed with high probability.  Experimental studies
(Chekuri et al. [7], Jünger et al. [15], Henzinger et al. [13]) found it
orders of magnitude slower than NOI/HO in practice — the reason this paper
uses NOI, and the shape our Figure 4 benchmark reproduces.

Dense-matrix implementation: appropriate because the recursion densifies
contracted graphs quickly; intended for the moderate ``n`` the baseline is
benchmarked at.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.result import MinCutResult
from ..graph.components import connected_components
from ..graph.csr import Graph


def karger_stein(
    graph: Graph,
    *,
    trials: int | None = None,
    rng: np.random.Generator | int | None = None,
    compute_side: bool = True,
) -> MinCutResult:
    """Minimum cut with high probability.

    Parameters
    ----------
    trials:
        Independent recursive-contraction runs; default ``ceil(log2(n)²)``,
        the classic w.h.p. count.
    """
    n = graph.n
    if n < 2:
        raise ValueError(f"minimum cut requires at least 2 vertices, got {n}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    if trials is None:
        trials = max(1, math.ceil(math.log2(max(n, 2)) ** 2))
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")

    stats: dict = {"trials": trials}
    ncomp, comp_labels = connected_components(graph)
    if ncomp > 1:
        side = comp_labels == 0 if compute_side else None
        return MinCutResult(0, side, n, "karger-stein", stats)

    # dense weighted adjacency
    W = np.zeros((n, n), dtype=np.int64)
    src = graph.arc_sources()
    W[src, graph.adjncy] = graph.adjwgt

    best_value: int | None = None
    best_members: list[int] | None = None
    for _ in range(trials):
        members = [[v] for v in range(n)]
        value, side_members = _recursive_contract(W.copy(), members, rng)
        if best_value is None or value < best_value:
            best_value = value
            best_members = side_members

    side = None
    if compute_side:
        side = np.zeros(n, dtype=bool)
        side[best_members] = True
    assert best_value is not None
    return MinCutResult(int(best_value), side, n, "karger-stein", stats)


def _recursive_contract(
    W: np.ndarray, members: list[list[int]], rng: np.random.Generator
) -> tuple[int, list[int]]:
    n = len(W)
    if n <= 6:
        return _brute_force(W, members)
    target = int(math.ceil(1 + n / math.sqrt(2)))
    results = []
    for _ in range(2):
        Wc, mc = _contract_to(W, members, target, rng)
        results.append(_recursive_contract(Wc, mc, rng))
    return min(results, key=lambda r: r[0])


def _contract_to(
    W: np.ndarray, members: list[list[int]], target: int, rng: np.random.Generator
) -> tuple[np.ndarray, list[list[int]]]:
    W = W.copy()
    members = [list(m) for m in members]
    while len(W) > target:
        iu = np.triu_indices(len(W), k=1)
        weights = W[iu]
        total = weights.sum()
        if total == 0:
            break  # disconnected remnant; any bipartition of it cuts 0 edges
        k = rng.choice(len(weights), p=weights / total)
        i, j = int(iu[0][k]), int(iu[1][k])
        _merge(W, members, i, j)
        W = np.delete(np.delete(W, j, axis=0), j, axis=1)
    return W, members


def _merge(W: np.ndarray, members: list[list[int]], i: int, j: int) -> None:
    W[i, :] += W[j, :]
    W[:, i] += W[:, j]
    W[i, i] = 0
    members[i].extend(members[j])
    del members[j]


def _brute_force(W: np.ndarray, members: list[list[int]]) -> tuple[int, list[int]]:
    """Exhaustive minimum cut of a tiny dense graph (n <= 6: 31 cuts)."""
    n = len(W)
    best_value: int | None = None
    best_subset = 1
    for subset in range(1, 1 << (n - 1)):  # vertex n-1 always outside
        mask = np.array([(subset >> v) & 1 for v in range(n)], dtype=bool)
        value = int(W[np.ix_(mask, ~mask)].sum())
        if best_value is None or value < best_value:
            best_value = value
            best_subset = subset
    side_members: list[int] = []
    for v in range(n):
        if (best_subset >> v) & 1:
            side_members.extend(members[v])
    assert best_value is not None
    return best_value, side_members
