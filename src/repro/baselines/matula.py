"""Matula's (2+ε)-approximation of the minimum cut (paper §2.2, §5).

Matula [23] observed that running the NOI contraction with the
*deliberately invalid* bound ``λ̂ = δ/(2+ε)`` (δ = current minimum weighted
degree) contracts a constant fraction of the edges per round — giving
linear total time — while the best trivial cut seen along the way is at
most ``(2+ε)·λ``:

* if some round has ``δ ≤ (2+ε)·λ``, the answer is already within factor
  ``2+ε``;
* otherwise every round's threshold ``⌈δ/(2+ε)⌉ > λ`` strictly exceeds the
  minimum cut, so no contraction ever crosses a minimum cut and the graph
  shrinks to two supervertices whose trivial cut *is* λ — contradiction
  with ``δ > (2+ε)λ``, so the first case must occur.

The paper names this algorithm as future work for its optimizations (§5);
here it is built directly on the optimized CAPFOREST with ``fixed_bound``
(the usual α-tightening must be disabled because the threshold is not a
valid cut bound — α cuts are still *recorded*, they are real cuts and only
improve the answer).
"""

from __future__ import annotations

import numpy as np

from ..core.capforest import capforest
from ..core.result import MinCutResult
from ..graph.components import connected_components
from ..graph.contract import compose_labels, contract_by_union_find
from ..graph.csr import Graph
from ..runtime.faults import FaultPlan
from ..runtime.supervisor import call_with_degradation, raise_for_events


def matula_approx(
    graph: Graph,
    *,
    eps: float = 0.5,
    pq_kind: str = "heap",
    rng: np.random.Generator | int | None = None,
    compute_side: bool = True,
    workers: int = 1,
    executor: str = "serial",
    timeout: float | None = None,
    on_worker_failure: str = "degrade",
    fault_plan: FaultPlan | None = None,
) -> MinCutResult:
    """A cut of capacity at most ``(2+eps) * λ(G)`` in near-linear time.

    Parameters
    ----------
    eps:
        Approximation slack, ``> 0``.  Smaller ε contracts less per round
        (more rounds, better bound).
    workers, executor:
        ``workers > 1`` runs each certificate pass with *parallel*
        CAPFOREST (frozen threshold) — the paper's §5 future-work question
        ("whether our sequential optimizations and parallel implementation
        can be applied to the (2+ε)-approximation algorithm of Matula"),
        answered affirmatively here: the frozen-bound region-growing scan
        preserves the contraction certificates, so the approximation
        guarantee carries over; only the marked-edge *set* differs.
    timeout, on_worker_failure, fault_plan:
        Supervised-runtime controls for the parallel path, identical in
        meaning to :func:`~repro.core.mincut.parallel_mincut`'s: lost
        workers are tolerated (their marks drop, the certificates of the
        survivors still hold), a fully failed executor degrades
        ``processes → threads → serial``, and every event lands in
        ``stats["worker_events"]`` / ``stats["degradations"]``.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if on_worker_failure not in ("degrade", "fail"):
        raise ValueError(
            f"on_worker_failure must be 'degrade' or 'fail', got {on_worker_failure!r}"
        )
    n = graph.n
    if n < 2:
        raise ValueError(f"minimum cut requires at least 2 vertices, got {n}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    stats: dict = {"rounds": 0, "edges_scanned": 0, "worker_events": [], "degradations": []}
    algo = "matula"
    ncomp, comp_labels = connected_components(graph)
    if ncomp > 1:
        side = comp_labels == 0 if compute_side else None
        return MinCutResult(0, side, n, algo, stats)

    labels = np.arange(n, dtype=np.int64)
    g = graph
    best_value: int | None = None
    best_side: np.ndarray | None = None

    while g.n >= 2:
        v, delta = g.min_weighted_degree()
        if best_value is None or delta < best_value:
            best_value = delta
            if compute_side:
                best_side = labels == v
        if g.n == 2:
            break
        threshold = max(1, int(np.ceil(delta / (2 + eps))))
        if workers > 1:
            from ..core.parallel_capforest import parallel_capforest

            def run_pass(exe, _g=g, _threshold=threshold):
                return parallel_capforest(
                    _g,
                    _threshold,
                    workers=workers,
                    pq_kind=pq_kind if _threshold > 0 else "heap",
                    executor=exe,
                    rng=rng,
                    fixed_bound=True,
                    timeout=timeout,
                    fault_plan=fault_plan,
                )

            def record_degradation(src, dst, exc):
                stats["degradations"].append(
                    {"stage": "matula", "round": stats["rounds"], "from": src, "to": dst,
                     "reason": str(exc)}
                )

            pres, executor = call_with_degradation(
                run_pass, executor, policy=on_worker_failure, on_degrade=record_degradation
            )
            if pres.events:
                stats["worker_events"].extend(
                    dict(ev, round=stats["rounds"]) for ev in pres.events
                )
                if on_worker_failure == "fail":
                    raise_for_events(executor, pres.events)
            stats["rounds"] += 1
            stats["edges_scanned"] += sum(w.edges_scanned for w in pres.workers)
            # workers' scan cuts are real cuts — harvest the best one
            winner = min(
                (w for w in pres.workers if w.best_alpha is not None),
                key=lambda w: w.best_alpha,
                default=None,
            )
            if winner is not None and winner.best_alpha < best_value:
                best_value = winner.best_alpha
                if compute_side and winner.best_prefix:
                    mask = np.zeros(g.n, dtype=bool)
                    mask[winner.best_prefix] = True
                    best_side = mask[labels]
            res = None
            n_marked, uf = pres.n_marked, pres.uf
            if n_marked == 0:
                # early-termination gap: one sequential frozen-bound pass
                res = capforest(
                    g, threshold, pq_kind="heap", bounded=True, fixed_bound=True, rng=rng
                )
        else:
            res = capforest(
                g, threshold, pq_kind=pq_kind, bounded=True, fixed_bound=True, rng=rng
            )
            stats["rounds"] += 1
            stats["edges_scanned"] += res.edges_scanned
        if res is not None:
            if res.min_alpha is not None and res.min_alpha < best_value:
                # scan cuts are real cuts of G — keep them, they only improve us
                best_value = res.min_alpha
                if compute_side:
                    mask = res.best_cut_mask(g.n)
                    if mask is not None:
                        best_side = mask[labels]
            n_marked, uf = res.n_marked, res.uf
        if n_marked == 0:
            # cannot happen on a connected graph with threshold <= ceil(δ/2),
            # but degenerate ε could starve progress; the bound so far is
            # still a valid cut, so stop rather than loop
            break
        g, contraction = contract_by_union_find(g, uf)
        labels = compose_labels(labels, contraction)
        if g.n < 2:
            break

    assert best_value is not None
    return MinCutResult(best_value, best_side if compute_side else None, n, algo, stats)
