"""Command-line interface: ``repro-mincut`` (or ``python -m repro.cli``).

Reads a graph (METIS ``.graph`` or ``u v [w]`` edge list), runs a chosen
minimum-cut algorithm, and prints the value, optionally the partition, and
solver statistics — a drop-in analogue of the ``mincut`` binary shipped
with the paper's VieCut code base.

Examples::

    repro-mincut graph.metis
    repro-mincut --format edgelist --algorithm parcut --workers 8 edges.txt
    repro-mincut --algorithm hao-orlin --print-side graph.metis
"""

from __future__ import annotations

import argparse
import sys
import time

from .core.api import ALGORITHMS, minimum_cut
from .graph.io import read_edge_list, read_metis


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro-mincut",
        description="Exact (and inexact) minimum cuts — Henzinger, Noe & Schulz reproduction.",
    )
    ap.add_argument("path", help="input graph file")
    ap.add_argument(
        "--format",
        choices=("metis", "edgelist"),
        default="metis",
        help="input format (default: metis)",
    )
    ap.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="noi-viecut",
        help="solver (default: noi-viecut, the paper's fastest sequential)",
    )
    ap.add_argument("--pq", choices=("bstack", "bqueue", "heap"), default=None,
                    help="priority queue for noi/parcut variants")
    ap.add_argument("--workers", type=int, default=None, help="parallel workers (parcut)")
    ap.add_argument(
        "--executor",
        choices=("serial", "threads", "processes"),
        default=None,
        help="parallel executor (parcut)",
    )
    ap.add_argument("--seed", type=int, default=0, help="random seed")
    ap.add_argument("--print-side", action="store_true", help="print the smaller cut side")
    ap.add_argument("--stats", action="store_true", help="print solver statistics")
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    reader = read_metis if args.format == "metis" else read_edge_list
    try:
        graph = reader(args.path)
    except (OSError, ValueError) as exc:
        print(f"error reading {args.path}: {exc}", file=sys.stderr)
        return 2

    kwargs: dict = {"rng": args.seed}
    if args.pq is not None:
        kwargs["pq_kind"] = args.pq
    if args.workers is not None:
        kwargs["workers"] = args.workers
    if args.executor is not None:
        kwargs["executor"] = args.executor

    t0 = time.perf_counter()
    try:
        result = minimum_cut(graph, algorithm=args.algorithm, **kwargs)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - t0

    print(f"graph     n={graph.n} m={graph.m}")
    print(f"algorithm {result.algorithm}")
    print(f"mincut    {result.value}")
    print(f"time      {elapsed:.4f}s")
    if args.print_side and result.side is not None:
        small = min(result.partition(), key=len)
        print(f"side      {' '.join(map(str, small))}")
    if args.stats:
        for key, value in sorted(result.stats.items()):
            print(f"stat      {key}={value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
