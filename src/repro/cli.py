"""Command-line interface: ``repro-mincut`` (or ``python -m repro.cli``).

Reads a graph (METIS ``.graph`` or ``u v [w]`` edge list), runs a chosen
minimum-cut algorithm, and prints the value, optionally the partition, and
solver statistics — a drop-in analogue of the ``mincut`` binary shipped
with the paper's VieCut code base.

Examples::

    repro-mincut graph.metis
    repro-mincut --format edgelist --algorithm parcut --workers 8 edges.txt
    repro-mincut --algorithm hao-orlin --print-side graph.metis
    repro-mincut --algorithm parcut --executor processes --timeout 30 graph.metis
    repro-mincut --algorithm parcut --trace trace.jsonl --metrics-json m.json graph.metis
    repro-mincut --batch manifest.jsonl --pool-size 4 --trace engine.jsonl

Exit codes are distinct per failure mode so scripted callers can branch:
``0`` success, ``2`` invalid input or usage, ``3`` worker/solver timeout,
``4`` worker crash or executor loss (with ``--on-worker-failure fail``),
``5`` solver stalled (no-progress watchdog).

Batch mode (``--batch FILE``) solves a whole manifest through **one**
persistent :class:`~repro.engine.SolverEngine` — one worker pool, one set
of shared-memory planes, one result cache for the entire run.  The
manifest is JSONL (one object per line) or a JSON array; each item names
at least ``{"path": ...}`` and may override ``format``, ``algorithm``,
``deadline`` (seconds), ``rng``, and any solver kwargs.  CLI flags
(``--algorithm``, ``--seed``, ``--pq``, ...) supply the defaults items
don't override.  Every item reports its own status line and exit code;
the process exits 0 only when every item succeeded, otherwise with the
first failing item's code.  ``--trace`` in batch mode records the
*engine-level* event stream (request spans, cache hits, pool recycles).

Update-stream mode (``--updates FILE``, combined with an input PATH)
treats the input graph as *dynamic*: each stream batch
(``{"inserts": [[u, v, w?], ...], "deletes": [[u, v], ...]}``, JSONL or a
JSON array) is applied through :meth:`~repro.engine.SolverEngine.update`,
which re-solves warm from the previous cut (fast-path / seeded / cold —
see :mod:`repro.dynamic`).  One status line per batch reports the warm
mode and the new minimum-cut value; ``--trace`` records ``graph_update``
and ``warm_solve`` events alongside the engine stream.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .core.api import ALGORITHMS, TRACEABLE_ALGORITHMS, minimum_cut
from .graph.io import read_edge_list, read_metis
from .kernels import KERNELS
from .runtime.errors import (
    ExecutorUnavailable,
    NoProgressError,
    RuntimeFault,
    WorkerCrashed,
    WorkerTimeout,
)

EXIT_OK = 0
EXIT_INVALID_INPUT = 2
EXIT_TIMEOUT = 3
EXIT_WORKER_FAILURE = 4
EXIT_NO_PROGRESS = 5


def exit_code_for(exc: RuntimeFault) -> int:
    """Map a runtime fault to the CLI's distinct nonzero exit codes."""
    if isinstance(exc, WorkerTimeout):
        return EXIT_TIMEOUT
    if isinstance(exc, NoProgressError):
        return EXIT_NO_PROGRESS
    if isinstance(exc, ExecutorUnavailable):
        return EXIT_TIMEOUT if exc.dominant_kind == "timeout" else EXIT_WORKER_FAILURE
    return EXIT_WORKER_FAILURE


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro-mincut",
        description="Exact (and inexact) minimum cuts — Henzinger, Noe & Schulz reproduction.",
    )
    ap.add_argument("path", nargs="?", default=None, help="input graph file")
    ap.add_argument(
        "--batch",
        metavar="FILE",
        default=None,
        help="solve a manifest of graphs (JSONL or JSON array of items "
        "with at least a 'path') through one persistent solver engine; "
        "prints a status line and exit code per item",
    )
    ap.add_argument(
        "--updates",
        metavar="FILE",
        default=None,
        help="apply an edge-update stream (JSONL or JSON array of "
        "{'inserts': [[u,v,w?],..], 'deletes': [[u,v],..]} batches) to the "
        "input graph through one persistent engine, re-solving warm after "
        "each batch; prints a status line per batch",
    )
    ap.add_argument(
        "--pool-size",
        type=int,
        default=2,
        metavar="N",
        help="persistent engine workers for --batch (0 = solve in-process; "
        "default: 2)",
    )
    ap.add_argument(
        "--format",
        choices=("metis", "edgelist"),
        default="metis",
        help="input format (default: metis)",
    )
    ap.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="noi-viecut",
        help="solver (default: noi-viecut, the paper's fastest sequential)",
    )
    ap.add_argument("--pq", choices=("bstack", "bqueue", "heap"), default=None,
                    help="priority queue for noi/parcut variants")
    ap.add_argument("--kernel", choices=KERNELS, default=None,
                    help="CAPFOREST relaxation kernel for noi/parcut variants "
                    "(identical results; vector batches relaxations via numpy, "
                    "compiled runs numba-jitted loops and falls back to vector "
                    "when numba is absent)")
    ap.add_argument("--workers", type=int, default=None, help="parallel workers (parcut)")
    ap.add_argument(
        "--executor",
        choices=("serial", "threads", "processes"),
        default=None,
        help="parallel executor (parcut)",
    )
    ap.add_argument("--seed", type=int, default=0, help="random seed")
    ap.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-round deadline for parallel workers (parcut/matula); "
        "exit code 3 on timeout with --on-worker-failure fail",
    )
    ap.add_argument(
        "--on-worker-failure",
        choices=("degrade", "fail"),
        default=None,
        help="degrade: tolerate lost workers and fall back "
        "processes→threads→serial (default); fail: abort on the first "
        "worker loss with a distinct exit code",
    )
    ap.add_argument("--print-side", action="store_true", help="print the smaller cut side")
    ap.add_argument(
        "--all-cuts",
        action="store_true",
        help="build the cactus of ALL minimum cuts (exact algorithms only); "
        "prints the distinct-cut count and enables cactus stats",
    )
    ap.add_argument(
        "--most-balanced",
        action="store_true",
        help="implies --all-cuts; report (and use as the cut side) the "
        "minimum cut with the smallest side-size imbalance",
    )
    ap.add_argument("--stats", action="store_true", help="print solver statistics")
    ap.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a structured JSONL event trace (round spans, λ̂ updates "
        "with provenance, worker/degradation events) to PATH; only the "
        f"traceable algorithms support it: {', '.join(TRACEABLE_ALGORITHMS)}",
    )
    ap.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="write a machine-readable metrics document (schema_version, "
        "value, seconds, full solver stats, trace summary) to PATH",
    )
    return ap


def _load_manifest(path: str) -> list[dict]:
    """Parse a batch manifest: a JSON array, or JSONL (one item per line)."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        items = json.loads(text)
    else:
        items = [
            json.loads(line) for line in text.splitlines() if line.strip()
        ]
    if not isinstance(items, list) or not items:
        raise ValueError("manifest contains no items")
    for i, item in enumerate(items):
        if not isinstance(item, dict) or "path" not in item:
            raise ValueError(f"manifest item {i} has no 'path': {item!r}")
    return items


def _batch_exit_code(exc: BaseException) -> int:
    """One item's exit code, mirroring the single-solve mapping."""
    if isinstance(exc, RuntimeFault):
        return exit_code_for(exc)
    return EXIT_INVALID_INPUT


def _run_batch(args, tracer) -> int:
    """Solve every manifest item through one persistent engine."""
    from .engine import SolverEngine

    try:
        items = _load_manifest(args.batch)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error reading manifest {args.batch}: {exc}", file=sys.stderr)
        return EXIT_INVALID_INPUT

    defaults: dict = {"rng": args.seed}
    if args.pq is not None:
        defaults["pq_kind"] = args.pq
    if args.kernel is not None:
        defaults["kernel"] = args.kernel
    if args.workers is not None:
        defaults["workers"] = args.workers
    if args.executor is not None:
        defaults["executor"] = args.executor
    if args.timeout is not None:
        defaults["timeout"] = args.timeout
    if args.on_worker_failure is not None:
        defaults["on_worker_failure"] = args.on_worker_failure
    if args.all_cuts or args.most_balanced:
        defaults["all_cuts"] = True
    if args.most_balanced:
        defaults["most_balanced"] = True

    codes = [EXIT_OK] * len(items)
    t0 = time.perf_counter()
    with SolverEngine(pool_size=args.pool_size, tracer=tracer,
                      default_algorithm=args.algorithm) as engine:
        futures: list = [None] * len(items)
        for i, item in enumerate(items):
            item = dict(item)
            path = item.pop("path")
            fmt = item.pop("format", args.format)
            algorithm = item.pop("algorithm", None)
            deadline = item.pop("deadline", None)
            reader = read_metis if fmt == "metis" else read_edge_list
            try:
                graph = reader(path)
                kwargs = {**defaults, **item}
                futures[i] = engine.submit(
                    graph, algorithm, deadline=deadline, **kwargs
                )
            except (OSError, ValueError, TypeError) as exc:
                codes[i] = EXIT_INVALID_INPUT
                print(f"batch[{i}] {path} exit={EXIT_INVALID_INPUT} error: {exc}")
        for i, fut in enumerate(futures):
            if fut is None:
                continue
            path = items[i]["path"]
            try:
                res = fut.result()
            except Exception as exc:  # noqa: BLE001 - mapped to per-item codes
                codes[i] = _batch_exit_code(exc)
                print(f"batch[{i}] {path} exit={codes[i]} error: {exc}")
            else:
                cuts = "" if res.cactus is None else f" min-cuts={res.num_min_cuts()}"
                print(
                    f"batch[{i}] {path} exit=0 algorithm={res.algorithm} "
                    f"mincut={res.value}{cuts}"
                )
        stats = engine.stats()
    elapsed = time.perf_counter() - t0
    failed = sum(1 for c in codes if c != EXIT_OK)
    print(
        f"batch     {len(items)} items, {failed} failed, {elapsed:.4f}s, "
        f"cache hits {stats['cache']['hits']}, "
        f"pool recycles {stats['pool']['recycles']}"
    )
    if tracer is not None:
        tracer.close()
    return next((c for c in codes if c != EXIT_OK), EXIT_OK)


def _load_update_stream(path: str) -> list[dict]:
    """Parse an update stream: a JSON array, or JSONL (one batch per line)."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        batches = json.loads(text)
    else:
        batches = [
            json.loads(line) for line in text.splitlines() if line.strip()
        ]
    if not isinstance(batches, list) or not batches:
        raise ValueError("update stream contains no batches")
    for i, batch in enumerate(batches):
        if not isinstance(batch, dict):
            raise ValueError(f"update batch {i} is not an object: {batch!r}")
        if not isinstance(batch.get("inserts", []), list) or not isinstance(
            batch.get("deletes", []), list
        ):
            raise ValueError(f"update batch {i} inserts/deletes must be lists")
    return batches


def _run_updates(args, tracer) -> int:
    """Stream mode: apply every batch through one engine, re-solving warm."""
    from .dynamic import EdgeUpdateError
    from .dynamic.graph import DynamicGraph
    from .engine import SolverEngine

    reader = read_metis if args.format == "metis" else read_edge_list
    try:
        graph = reader(args.path)
        batches = _load_update_stream(args.updates)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INVALID_INPUT

    kwargs: dict = {"rng": args.seed}
    if args.pq is not None:
        kwargs["pq_kind"] = args.pq
    if args.kernel is not None:
        kwargs["kernel"] = args.kernel
    if args.all_cuts or args.most_balanced:
        kwargs["all_cuts"] = True
    if args.most_balanced:
        kwargs["most_balanced"] = True

    codes = [EXIT_OK] * (len(batches) + 1)
    t0 = time.perf_counter()
    with SolverEngine(pool_size=args.pool_size, tracer=tracer,
                      default_algorithm=args.algorithm) as engine:
        dyn = DynamicGraph(graph)
        stream = [({}, "initial")] + [(b, f"update[{i}]") for i, b in
                                      enumerate(batches)]
        for i, (batch, label) in enumerate(stream):
            try:
                res = engine.update(
                    dyn, batch.get("inserts", ()), batch.get("deletes", ()),
                    deadline=batch.get("deadline", args.timeout), **kwargs,
                )
            except (EdgeUpdateError, ValueError, TypeError) as exc:
                codes[i] = EXIT_INVALID_INPUT
                print(f"{label} exit={EXIT_INVALID_INPUT} error: {exc}")
            except RuntimeFault as exc:
                codes[i] = exit_code_for(exc)
                print(f"{label} exit={codes[i]} error: {exc}")
            else:
                warm = res.stats.get("warm") or {}
                cuts = "" if res.cactus is None else f" min-cuts={res.num_min_cuts()}"
                print(
                    f"{label} exit=0 mode={warm.get('mode', '?')} "
                    f"mincut={res.value} n={dyn.graph.n} m={dyn.graph.m}{cuts}"
                )
        stats = engine.stats()
    elapsed = time.perf_counter() - t0
    failed = sum(1 for c in codes if c != EXIT_OK)
    print(
        f"updates   {len(batches)} batches, {failed} failed, {elapsed:.4f}s, "
        f"fast-path {stats['updates_fast_path']}, "
        f"seeded {stats['updates_seeded']}, cold {stats['updates_cold']}"
    )
    if tracer is not None:
        tracer.close()
    return next((c for c in codes if c != EXIT_OK), EXIT_OK)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.updates is not None and (args.path is None or args.batch is not None):
        print("error: --updates needs an input PATH and excludes --batch",
              file=sys.stderr)
        return EXIT_INVALID_INPUT
    if args.updates is None and (args.path is None) == (args.batch is None):
        print("error: exactly one of PATH or --batch is required", file=sys.stderr)
        return EXIT_INVALID_INPUT
    if args.batch is not None or args.updates is not None:
        if args.metrics_json is not None or args.print_side:
            print(
                "error: --metrics-json/--print-side are single-solve only, "
                "not available with --batch/--updates",
                file=sys.stderr,
            )
            return EXIT_INVALID_INPUT
        tracer = None
        if args.trace is not None:
            from .observability import Tracer

            try:
                tracer = Tracer(sink=args.trace)
            except OSError as exc:
                print(f"error opening trace sink {args.trace}: {exc}", file=sys.stderr)
                return EXIT_INVALID_INPUT
        if args.updates is not None:
            return _run_updates(args, tracer)
        return _run_batch(args, tracer)
    reader = read_metis if args.format == "metis" else read_edge_list
    try:
        graph = reader(args.path)
    except (OSError, ValueError) as exc:
        print(f"error reading {args.path}: {exc}", file=sys.stderr)
        return EXIT_INVALID_INPUT

    kwargs: dict = {"rng": args.seed}
    if args.pq is not None:
        kwargs["pq_kind"] = args.pq
    if args.kernel is not None:
        kwargs["kernel"] = args.kernel
    if args.workers is not None:
        kwargs["workers"] = args.workers
    if args.executor is not None:
        kwargs["executor"] = args.executor
    if args.timeout is not None:
        kwargs["timeout"] = args.timeout
    if args.on_worker_failure is not None:
        kwargs["on_worker_failure"] = args.on_worker_failure

    tracer = None
    if args.trace is not None or args.metrics_json is not None:
        if args.algorithm not in TRACEABLE_ALGORITHMS:
            print(
                f"error: --trace/--metrics-json require a traceable algorithm "
                f"({', '.join(TRACEABLE_ALGORITHMS)}), not {args.algorithm!r}",
                file=sys.stderr,
            )
            return EXIT_INVALID_INPUT
        from .observability import Tracer

        try:
            tracer = Tracer(sink=args.trace)
        except OSError as exc:
            print(f"error opening trace sink {args.trace}: {exc}", file=sys.stderr)
            return EXIT_INVALID_INPUT
        kwargs["tracer"] = tracer

    t0 = time.perf_counter()
    try:
        result = minimum_cut(
            graph, algorithm=args.algorithm,
            all_cuts=args.all_cuts, most_balanced=args.most_balanced,
            **kwargs,
        )
    except RuntimeFault as exc:
        print(f"error: {exc}", file=sys.stderr)
        if tracer is not None:
            tracer.close()
        return exit_code_for(exc)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        if tracer is not None:
            tracer.close()
        return EXIT_INVALID_INPUT
    elapsed = time.perf_counter() - t0

    print(f"graph     n={graph.n} m={graph.m}")
    print(f"algorithm {result.algorithm}")
    print(f"mincut    {result.value}")
    print(f"time      {elapsed:.4f}s")
    if result.cactus is not None:
        print(f"min-cuts  {result.num_min_cuts()}")
        if args.most_balanced:
            info = result.stats["most_balanced"]
            print(
                f"balance   {info['smaller_side_size']}/{info['larger_side_size']} "
                f"(imbalance {info['imbalance']})"
            )
    if args.print_side and result.side is not None:
        small = result.smaller_side()
        print(f"side      {' '.join(map(str, small))}")
    for event in result.stats.get("degradations") or []:
        print(f"warning   degraded: {event}", file=sys.stderr)
    if args.stats:
        for key, value in sorted(result.stats.items()):
            print(f"stat      {key}={value}")

    if tracer is not None:
        tracer.close()
        if args.metrics_json is not None:
            from .observability import STATS_SCHEMA_VERSION, jsonable

            metrics = {
                "schema_version": STATS_SCHEMA_VERSION,
                "algorithm": result.algorithm,
                "instance": args.path,
                "n": graph.n,
                "m": graph.m,
                "value": result.value,
                "seconds": round(elapsed, 6),
                "stats": result.stats,
                "trace_summary": tracer.summary(),
            }
            try:
                with open(args.metrics_json, "w", encoding="utf-8") as fh:
                    json.dump(metrics, fh, indent=2, default=jsonable)
                    fh.write("\n")
            except OSError as exc:
                print(f"error writing {args.metrics_json}: {exc}", file=sys.stderr)
                return EXIT_INVALID_INPUT
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
