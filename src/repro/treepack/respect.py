"""Minimum 1- and 2-respecting cuts of one spanning tree (Karger §4–5).

A cut *k-respects* a spanning tree ``T`` when at most ``k`` of its crossing
edges are tree edges.  Karger's tree-packing theorem reduces exact minimum
cut to examining every tree of a sufficiently heavy packing for its best
1- and 2-respecting cut; this module is that per-tree examination.

The implementation is link/cut-tree-free, as an offline dynamic program
over the Euler tour of the rooted tree:

* **Euler intervals.**  A preorder numbering ``tin``/``tout`` makes every
  subtree a contiguous interval, so "is ``u`` in the subtree of ``v``"
  is two comparisons and every subtree aggregate is a prefix-sum
  difference.
* **1-respecting cuts.**  Each non-root vertex ``v`` defines the cut
  ``(subtree(v), rest)``.  An edge ``{u, w}`` crosses it iff exactly one
  endpoint lies below ``v`` — equivalently its contribution is
  ``+c`` at ``u``, ``+c`` at ``w`` and ``-2c`` at ``lca(u, w)`` summed
  over the subtree.  One offline batch LCA (binary lifting, vectorized)
  plus one prefix sum yields all ``n - 1`` values in ``O(m log n)``.
* **2-respecting cuts.**  Two tree edges (named by their lower endpoints
  ``a``, ``b``) define the side ``subtree(a) ∪ subtree(b)`` when the
  subtrees are disjoint and ``subtree(a) ∖ subtree(b)`` when nested, with

  - disjoint: ``cut(a∪b) = cut1(a) + cut1(b) - 2·w(sub(a), sub(b))``
  - nested:   ``cut(a∖b) = cut1(a) + cut1(b) - 2·w(sub(b), V∖sub(a))``

  For a fixed ``a`` both correction terms are subtree sums over ``b`` of
  point masses placed at the *outside* (resp. *inside*) endpoints of the
  edges leaving ``subtree(a)``, so one pass builds two prefix-sum arrays
  and scores **every** partner ``b`` vectorized.  Total per tree:
  ``O(n·(n + m))`` element operations, all inside numpy.

This trades the paper-optimal ``O(m log² n)`` for a dense, allocation-light
scan that wins at the sizes the experiment harness charts (and needs no
dynamic-tree machinery); the crossover study in ``BENCH_treepack.json``
is the honest record of where that trade stands.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RootedTree", "evaluate_tree"]

#: sentinel for "no 2-respecting partner exists" (n = 2 trees)
_INF = np.iinfo(np.int64).max // 4


class RootedTree:
    """Euler-tour view of one spanning tree rooted at vertex 0.

    Parameters
    ----------
    parent:
        ``int64[n]`` with ``parent[0] == -1``; every other entry names the
        vertex's tree parent.  Children are visited in ascending vertex
        order, so the tour — and with it every downstream value — is a
        deterministic function of the edge set.
    """

    def __init__(self, parent: np.ndarray) -> None:
        parent = np.asarray(parent, dtype=np.int64)
        n = len(parent)
        if n == 0 or parent[0] != -1:
            raise ValueError("parent must root the tree at vertex 0")
        self.n = n
        self.parent = parent
        tin = np.empty(n, dtype=np.int64)
        tout = np.empty(n, dtype=np.int64)
        depth = np.zeros(n, dtype=np.int64)
        # children grouped by parent, each group in ascending child order
        # (stable sort of ascending child ids)
        kids = 1 + np.argsort(parent[1:], kind="stable")
        counts = np.bincount(parent[1:], minlength=n)
        offs = np.concatenate(([0], np.cumsum(counts)))
        clock = 0
        stack = [(0, 0)]  # (vertex, next-child cursor)
        tin[0] = 0
        clock = 1
        while stack:
            v, cursor = stack[-1]
            lo, hi = offs[v], offs[v + 1]
            if cursor < hi - lo:
                stack[-1] = (v, cursor + 1)
                c = int(kids[lo + cursor])
                depth[c] = depth[v] + 1
                tin[c] = clock
                clock += 1
                stack.append((c, 0))
            else:
                tout[v] = clock - 1
                stack.pop()
        self.tin = tin
        self.tout = tout
        self.depth = depth
        # binary lifting table; root lifts to itself
        log = max(1, int(np.ceil(np.log2(max(n, 2)))))
        up = np.empty((log, n), dtype=np.int64)
        up0 = parent.copy()
        up0[0] = 0
        up[0] = up0
        for k in range(1, log):
            up[k] = up[k - 1][up[k - 1]]
        self.up = up

    def lca(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Lowest common ancestors of the pairs ``(us[i], vs[i])``."""
        up, depth = self.up, self.depth
        a = np.asarray(us, dtype=np.int64).copy()
        b = np.asarray(vs, dtype=np.int64).copy()
        # make a the deeper endpoint, then lift it level with b
        swap = depth[b] > depth[a]
        a[swap], b[swap] = b[swap], a[swap].copy()
        diff = depth[a] - depth[b]
        for k in range(up.shape[0]):
            lift = ((diff >> k) & 1).astype(bool)
            if lift.any():
                a[lift] = up[k][a[lift]]
        done = a == b
        for k in range(up.shape[0] - 1, -1, -1):
            step = ~done & (up[k][a] != up[k][b])
            if step.any():
                a[step] = up[k][a[step]]
                b[step] = up[k][b[step]]
        out = np.where(done, a, self.up[0][a])
        return out

    def subtree_mask(self, v: int) -> np.ndarray:
        """Boolean membership mask (over vertex ids) of ``subtree(v)``."""
        return (self.tin >= self.tin[v]) & (self.tin <= self.tout[v])


def _subtree_sums(masses: np.ndarray, tin: np.ndarray, tout: np.ndarray) -> np.ndarray:
    """Per-vertex subtree sums of Euler-position point masses."""
    pre = np.concatenate(([0], np.cumsum(masses)))
    return pre[tout + 1] - pre[tin]


def evaluate_tree(
    n: int,
    us: np.ndarray,
    vs: np.ndarray,
    ws: np.ndarray,
    parent: np.ndarray,
    *,
    compute_side: bool = True,
) -> tuple[int, np.ndarray | None, int, int]:
    """Best cut of ``G = (n, us/vs/ws)`` that 1- or 2-respects the tree.

    Returns ``(best_value, best_side, one_respect_min, two_respect_min)``;
    ``best_side`` is ``None`` when side tracking is off, and
    ``two_respect_min`` may be a huge sentinel when no strict pair exists
    (``n == 2``).  Exact for the given tree by exhaustion: every subtree
    and every unordered pair of distinct subtrees is scored.
    """
    tree = RootedTree(parent)
    tin, tout = tree.tin, tree.tout
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    ws = np.asarray(ws, dtype=np.int64)

    # -- 1-respecting: all subtree cut values from one LCA batch ------------
    lca = tree.lca(us, vs)
    masses = np.zeros(n, dtype=np.int64)
    np.add.at(masses, tin[us], ws)
    np.add.at(masses, tin[vs], ws)
    np.add.at(masses, tin[lca], -2 * ws)
    cut1 = _subtree_sums(masses, tin, tout)
    cut1[0] = _INF  # the root's "subtree" is V, not a cut
    one_best_v = int(np.argmin(cut1))
    one_min = int(cut1[one_best_v])

    best_value = one_min
    best_pair: tuple[int, int] | None = None

    # -- 2-respecting: for each lower endpoint a, score every partner b -----
    two_min = _INF
    tin_us, tin_vs = tin[us], tin[vs]
    for a in range(1, n):
        ta, oa = tin[a], tout[a]
        in_u = (tin_us >= ta) & (tin_us <= oa)
        in_v = (tin_vs >= ta) & (tin_vs <= oa)
        bnd = in_u != in_v
        if not bnd.any():
            continue
        w_b = ws[bnd]
        inside_pos = np.where(in_u[bnd], tin_us[bnd], tin_vs[bnd])
        outside_pos = np.where(in_u[bnd], tin_vs[bnd], tin_us[bnd])
        mass_out = np.zeros(n, dtype=np.int64)
        np.add.at(mass_out, outside_pos, w_b)
        mass_in = np.zeros(n, dtype=np.int64)
        np.add.at(mass_in, inside_pos, w_b)
        cross_disjoint = _subtree_sums(mass_out, tin, tout)
        leave_nested = _subtree_sums(mass_in, tin, tout)
        disjoint = (tout < ta) | (tin > oa)
        nested = (tin > ta) & (tout <= oa)
        cross = np.where(disjoint, cross_disjoint, leave_nested)
        vals = cut1[a] + cut1 - 2 * cross
        vals[~(disjoint | nested)] = _INF
        b = int(np.argmin(vals))
        v = int(vals[b])
        if v < two_min:
            two_min = v
            if v < best_value:
                best_value = v
                best_pair = (a, b)

    side: np.ndarray | None = None
    if compute_side:
        if best_pair is None:
            side = tree.subtree_mask(one_best_v)
        else:
            a, b = best_pair
            mask_a, mask_b = tree.subtree_mask(a), tree.subtree_mask(b)
            if tin[b] > tout[a] or tout[b] < tin[a]:
                side = mask_a | mask_b
            else:
                side = mask_a & ~mask_b
    return best_value, side, one_min, two_min
