"""Tree-packing exact minimum cut (Karger near-linear-time family)."""

from .packing import TreePacking
from .respect import RootedTree, evaluate_tree
from .solver import TREEPACK_PHASES, TREEPACK_STATS_KEYS, karger_nlt_mincut

__all__ = [
    "TreePacking",
    "RootedTree",
    "evaluate_tree",
    "karger_nlt_mincut",
    "TREEPACK_PHASES",
    "TREEPACK_STATS_KEYS",
]
