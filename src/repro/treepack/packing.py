"""Greedy spanning-tree packing (Nash-Williams / PST multiplicative weights).

Karger's reduction needs a *fractional* tree packing of value comparable to
the minimum cut λ: by Nash-Williams/Tutte the maximum packing has value
``τ ≥ λ/2``, and any packing of value ``> λ/3`` must contain a tree with
positive weight that the minimum cut 2-respects (crosses on at most two
tree edges) — see :mod:`repro.treepack.solver` for the counting argument.

The packing here is the width-free greedy of Plotkin–Shmoys–Tardos/Young:
maintain an integer *load* per edge, and repeatedly add the spanning tree
that minimises the relative load ``load(e) / c(e)`` (a minimum spanning
tree under that key, built with Kruskal over a deterministic seeded
tie-break).  After ``k`` trees, assigning every tree the uniform weight
``c*/ℓ*`` — where ``ℓ*/c*`` is the maximum relative load — is a feasible
fractional packing of value

    ``pack_lb = k · c* / ℓ*``

(each edge ``e`` carries ``load(e) · c*/ℓ* ≤ c(e)`` by maximality), and
``pack_lb → τ`` as ``k`` grows.  The certificate is exact integer
arithmetic: the solver keeps packing until ``3·k·c* > λ̂·ℓ*``, i.e. until
the packing value is certifiably ``> λ̂/3 ≥ λ/3``.
"""

from __future__ import annotations

import numpy as np

from ..datastructures.union_find import UnionFind

__all__ = ["TreePacking"]


class TreePacking:
    """Incremental greedy packing over the undirected edge list of a graph.

    Parameters
    ----------
    n, us, vs, ws:
        Vertex count and undirected edge arrays (``us[i] < vs[i]``,
        positive integer weights).  The graph must be connected.
    rng:
        Seeded generator for the per-tree Kruskal tie-break permutation —
        the only randomness in the whole solver.
    """

    def __init__(
        self, n: int, us: np.ndarray, vs: np.ndarray, ws: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        self.n = n
        self.us = np.asarray(us, dtype=np.int64)
        self.vs = np.asarray(vs, dtype=np.int64)
        self.ws = np.asarray(ws, dtype=np.int64)
        self.rng = rng
        self.loads = np.zeros(len(self.us), dtype=np.int64)
        self.trees_packed = 0

    def pack_tree(self) -> tuple[np.ndarray, tuple[int, ...]]:
        """Pack one more minimum-relative-load spanning tree.

        Returns ``(parent, edge_key)``: the tree as a parent array rooted
        at vertex 0, plus the sorted tuple of edge indices — the canonical
        identity used to dedupe repeated trees.  Raises ``ValueError`` on
        a disconnected graph (the solver early-exits before ever packing).
        """
        m = len(self.us)
        ratio = self.loads / self.ws
        perm = self.rng.permutation(m)
        order = np.lexsort((perm, ratio))
        uf = UnionFind(self.n)
        chosen: list[int] = []
        for e in order.tolist():
            if uf.union(int(self.us[e]), int(self.vs[e])):
                chosen.append(e)
                if len(chosen) == self.n - 1:
                    break
        if len(chosen) != self.n - 1:
            raise ValueError("cannot pack a spanning tree of a disconnected graph")
        self.loads[chosen] += 1
        self.trees_packed += 1
        return self._parent_of(chosen), tuple(sorted(chosen))

    def _parent_of(self, chosen: list[int]) -> np.ndarray:
        """Root the chosen edge set at vertex 0 (iterative DFS)."""
        n = self.n
        adj: list[list[int]] = [[] for _ in range(n)]
        for e in chosen:
            u, v = int(self.us[e]), int(self.vs[e])
            adj[u].append(v)
            adj[v].append(u)
        parent = np.full(n, -2, dtype=np.int64)
        parent[0] = -1
        stack = [0]
        while stack:
            v = stack.pop()
            for w in adj[v]:
                if parent[w] == -2:
                    parent[w] = v
                    stack.append(w)
        return parent

    def max_relative_load(self) -> tuple[int, int]:
        """``(ℓ*, c*)`` of an edge maximising ``load/c`` — exact.

        The float argmax is only a candidate; it is verified (and, on a
        rounding upset, corrected) with integer cross-products so the
        packing certificate never hinges on float division.
        """
        loads, ws = self.loads, self.ws
        star = int(np.argmax(loads / ws))
        while True:
            l_star, c_star = int(loads[star]), int(ws[star])
            better = loads * c_star > l_star * ws
            if not better.any():
                return l_star, c_star
            star = int(np.flatnonzero(better)[0])

    def value_lower_bound(self) -> float:
        """Certified fractional packing value ``k·c*/ℓ*`` (0.0 pre-pack)."""
        if self.trees_packed == 0:
            return 0.0
        l_star, c_star = self.max_relative_load()
        return self.trees_packed * c_star / l_star

    def certifies(self, lambda_hat: int) -> bool:
        """True when the packing value is provably ``> lambda_hat / 3``.

        Exact integer form of ``k·c*/ℓ* > λ̂/3``; with ``λ̂ ≥ λ`` this is
        the condition under which the minimum cut must 2-respect one of
        the packed trees, making exhaustive per-tree examination exact.
        """
        if self.trees_packed == 0:
            return False
        l_star, c_star = self.max_relative_load()
        return 3 * self.trees_packed * c_star > lambda_hat * l_star
