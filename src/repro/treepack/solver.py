"""``karger-nlt``: exact minimum cut by tree packing + 2-respecting cuts.

The second algorithm family of the package (Karger, "Minimum Cuts in
Near-Linear Time"; Anderson–Blelloch parallelise the same semi-duality):
instead of NOI's contraction loop, pack spanning trees until their
fractional value certifiably exceeds ``λ̂/3``, then take the best 1- or
2-respecting cut over every packed tree.

Why that is exact (the counting argument, Karger Lemma 2.3 shape): let
``P`` be a packing of value ``p`` and ``C`` a minimum cut of value ``λ``.
Summing the packing constraint over the edges of ``C``, the weighted
average number of times a tree crosses ``C`` is at most ``λ/p``; every
spanning tree crosses at least once, so if a weight-fraction ``f`` of
trees crosses three or more times then ``1 + 2f ≤ λ/p``.  With
``p > λ/3`` this forces ``f < 1`` — some tree with positive weight
crosses at most twice, i.e. the minimum cut 1- or 2-respects it, and the
exhaustive per-tree dynamic program (:mod:`repro.treepack.respect`) will
find it.  The driver therefore alternates *pack a round of trees* →
*evaluate the new distinct trees* → *check the integer certificate
``3·k·c* > λ̂·ℓ*``* until certified (λ̂ only ever decreases, the packing
bound only grows toward ``τ ≥ λ/2``, so termination is guaranteed).

Per-tree evaluations are independent, so each round fans them out through
the supervised runtime executor ladder (``processes → threads → serial``);
trees lost with a worker are re-evaluated inline, which keeps the
certificate honest — exactness never depends on every worker surviving.

Determinism: the only randomness is the Kruskal tie-break permutation,
drawn from a seedable generator.  An integer ``rng`` makes the whole
solve — values, sides, stats, trace — a pure function of the input, which
is what lets the engine cache ``karger-nlt`` requests by key.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..graph.components import connected_components
from ..graph.csr import Graph
from ..core.result import MinCutResult
from ..observability.schema import TREEPACK_PHASES, TREEPACK_STATS_KEYS
from ..runtime.supervisor import (
    call_with_degradation,
    raise_for_events,
    supervise_processes,
)
from .packing import TreePacking
from .respect import _INF, evaluate_tree

__all__ = ["karger_nlt_mincut", "TREEPACK_PHASES", "TREEPACK_STATS_KEYS"]

#: executors accepted by :func:`karger_nlt_mincut`
EXECUTORS = ("serial", "threads", "processes")


def default_trees_per_round(n: int) -> int:
    """Trees packed per certification round — ``Θ(log n)``, floor 4."""
    return max(4, int(np.ceil(np.log2(max(n, 2)))))


def karger_nlt_mincut(
    graph: Graph,
    *,
    rng: np.random.Generator | int | None = 0,
    trees_per_round: int | None = None,
    max_rounds: int = 64,
    executor: str = "serial",
    workers: int | None = None,
    timeout: float | None = None,
    on_worker_failure: str = "degrade",
    compute_side: bool = True,
    tracer=None,
) -> MinCutResult:
    """Exact minimum cut of ``graph`` via tree packing (``karger-nlt``).

    Parameters
    ----------
    graph:
        Weighted undirected graph with ``n >= 2``; disconnected graphs
        return a cut of value 0.
    rng:
        Seed or generator for the packing tie-break.  Defaults to ``0``:
        deterministic out of the box, and — as an integer — cacheable by
        the engine's request keys (a live generator is an
        ``UnkeyableRequest`` there, by design).
    trees_per_round:
        Trees packed per certification round (default ``Θ(log n)``).
    max_rounds:
        Safety cap on certification rounds.  The certificate loop
        terminates on its own (see module docstring); the cap only bounds
        pathological inputs, and blowing it is recorded as
        ``stats["certified"] = False`` rather than hidden.
    executor, workers, timeout, on_worker_failure:
        Per-tree evaluation fan-out through the supervised runtime ladder
        (``processes → threads → serial``), with the same degradation
        semantics as ``parcut``: lost workers are events, not wrong
        answers — their trees are re-evaluated inline.
    compute_side:
        Track the certified cut side (mask over original vertices).
    tracer:
        Optional :class:`repro.observability.Tracer`; emits
        ``treepack_round`` / ``treepack_tree`` events plus the shared
        ``solve_start`` / ``lambda_update`` / ``solve_end`` span.
    """
    n = graph.n
    if n < 2:
        raise ValueError(f"minimum cut requires at least 2 vertices, got {n}")
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    if on_worker_failure not in ("degrade", "fail"):
        raise ValueError(
            f"on_worker_failure must be 'degrade' or 'fail', got {on_worker_failure!r}"
        )
    seed = int(rng) if isinstance(rng, (int, np.integer)) else None
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    workers = max(1, int(workers))

    stats: dict = {
        "stats_schema": 2,
        "seed": seed,
        "rounds": 0,
        "trees_packed": 0,
        "trees_evaluated": 0,
        "distinct_trees": 0,
        "packing_value_lb": 0.0,
        "certified": False,
        "min_degree_bound": None,
        "one_respect_min": None,
        "two_respect_min": None,
        "executor": executor,
        "final_executor": executor,
        "workers": workers,
        "worker_events": [],
        "degradations": [],
        "phase_seconds": {phase: 0.0 for phase in TREEPACK_PHASES},
    }
    if tracer is not None:
        tracer.emit(
            "solve_start", algorithm="karger-nlt", n=n, m=graph.m,
            executor=executor, workers=workers,
            trees_per_round=trees_per_round or default_trees_per_round(n),
        )

    ncomp, comp_labels = connected_components(graph)
    if ncomp > 1:
        side = comp_labels == 0 if compute_side else None
        stats["certified"] = True  # value 0 is trivially minimum
        if tracer is not None:
            tracer.lambda_update(0, "disconnected", components=ncomp)
            tracer.emit("solve_end", value=0, rounds=0)
        return MinCutResult(0, side, n, "karger-nlt", stats)

    v0, deg0 = graph.min_weighted_degree()
    best_value = deg0
    best_side: np.ndarray | None = None
    if compute_side:
        best_side = np.zeros(n, dtype=bool)
        best_side[v0] = True
    stats["min_degree_bound"] = deg0
    if tracer is not None:
        tracer.lambda_update(best_value, "min-degree", vertex=int(v0))

    us, vs, ws = graph.edge_arrays()
    packing = TreePacking(n, us, vs, ws, rng)
    per_round = trees_per_round or default_trees_per_round(n)
    seen: set[tuple[int, ...]] = set()
    one_min = two_min = _INF

    def on_degrade(frm: str, to: str, exc: BaseException) -> None:
        stats["degradations"].append(
            {"stage": "treepack-dp", "from": frm, "to": to, "reason": str(exc)}
        )

    while stats["rounds"] < max_rounds:
        stats["rounds"] += 1
        t0 = time.perf_counter()
        fresh: list[tuple[int, np.ndarray]] = []
        for _ in range(per_round):
            parent, key = packing.pack_tree()
            if key not in seen:
                seen.add(key)
                fresh.append((stats["trees_evaluated"] + len(fresh), parent))
        stats["trees_packed"] = packing.trees_packed
        stats["distinct_trees"] = len(seen)
        stats["phase_seconds"]["packing"] += time.perf_counter() - t0

        t0 = time.perf_counter()
        if fresh:
            results, used = call_with_degradation(
                lambda ex: _evaluate_trees(
                    ex, n, us, vs, ws, fresh, workers=workers, timeout=timeout,
                    policy=on_worker_failure, compute_side=compute_side,
                    events=stats["worker_events"],
                ),
                executor,
                policy=on_worker_failure,
                on_degrade=on_degrade,
                tracer=tracer,
            )
            executor = used  # stay degraded for subsequent rounds
            stats["final_executor"] = used
            stats["trees_evaluated"] += len(fresh)
            for idx, (value, side, one_c, two_c) in results:
                one_min = min(one_min, one_c)
                two_min = min(two_min, two_c)
                if tracer is not None:
                    tracer.emit(
                        "treepack_tree", tree=idx, one_respect=one_c,
                        two_respect=None if two_c >= _INF else two_c,
                        best=value,
                    )
                if value < best_value:
                    best_value = value
                    if compute_side:
                        best_side = side
                    if tracer is not None:
                        tracer.lambda_update(
                            best_value, "treepack", tree=idx,
                            respects=1 if value == one_c else 2,
                        )
        stats["phase_seconds"]["dp"] += time.perf_counter() - t0

        stats["packing_value_lb"] = round(packing.value_lower_bound(), 6)
        certified = packing.certifies(best_value)
        stats["certified"] = certified
        if tracer is not None:
            tracer.emit(
                "treepack_round", round=stats["rounds"],
                trees_packed=packing.trees_packed,
                distinct_trees=len(seen),
                packing_value_lb=stats["packing_value_lb"],
                lambda_hat=best_value, certified=certified,
            )
        if certified:
            break

    stats["one_respect_min"] = None if one_min >= _INF else int(one_min)
    stats["two_respect_min"] = None if two_min >= _INF else int(two_min)
    if tracer is not None:
        tracer.emit("solve_end", value=best_value, rounds=stats["rounds"])
    return MinCutResult(
        best_value, best_side if compute_side else None, n, "karger-nlt", stats
    )


# -- per-round tree evaluation across the executor ladder --------------------


def _evaluate_trees(
    executor: str,
    n: int,
    us: np.ndarray,
    vs: np.ndarray,
    ws: np.ndarray,
    trees: list[tuple[int, np.ndarray]],
    *,
    workers: int,
    timeout: float | None,
    policy: str,
    compute_side: bool,
    events: list,
) -> list[tuple[int, tuple[int, np.ndarray | None, int, int]]]:
    """Evaluate ``trees`` (list of ``(index, parent)``) on ``executor``."""
    if executor == "serial" or len(trees) == 1 or workers == 1:
        return [
            (idx, evaluate_tree(n, us, vs, ws, parent, compute_side=compute_side))
            for idx, parent in trees
        ]
    if executor == "threads":
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(workers, len(trees))) as pool:
            outs = list(
                pool.map(
                    lambda item: (
                        item[0],
                        evaluate_tree(
                            n, us, vs, ws, item[1], compute_side=compute_side
                        ),
                    ),
                    trees,
                )
            )
        return outs
    return _evaluate_processes(
        n, us, vs, ws, trees, workers=workers, timeout=timeout, policy=policy,
        compute_side=compute_side, events=events,
    )


def _chunk_worker(worker_id, n, us, vs, ws, chunk, compute_side, out_q):
    # pragma: no cover — exercised via subprocesses (tests/test_treepack.py)
    """Process-executor entry point: evaluate one chunk of trees.

    Posts one supervised payload ``(worker_id, None, report)`` — the
    ``None`` pair slot and dict report match the runtime supervisor's
    payload contract; sides travel as raw bool bytes to keep the queue
    cheap.
    """
    results = []
    for idx, parent in chunk:
        value, side, one_c, two_c = evaluate_tree(
            n, us, vs, ws, parent, compute_side=compute_side
        )
        results.append(
            (int(idx), int(value),
             None if side is None else side.astype(np.uint8).tobytes(),
             int(one_c), int(two_c))
        )
    out_q.put((worker_id, None, {"results": results}))


def _evaluate_processes(
    n, us, vs, ws, trees, *, workers, timeout, policy, compute_side, events
) -> list:
    """Supervised process fan-out; lost chunks are re-evaluated inline.

    Losing a worker here loses candidate *trees*, which — unlike losing
    CAPFOREST marks — would break the packing certificate.  The salvage
    path therefore re-runs every tree a lost worker owned, so the result
    is exact regardless of which workers survived; ``policy="fail"``
    instead raises the runtime fault taxonomy like every other executor.
    """
    import multiprocessing as mp

    from ..core.parallel_capforest import default_start_method

    nw = min(workers, len(trees))
    chunks: list[list] = [trees[i::nw] for i in range(nw)]
    ctx = mp.get_context(default_start_method())
    out_q = ctx.Queue()
    procs = [
        ctx.Process(
            target=_chunk_worker,
            args=(i, n, us, vs, ws, chunks[i], compute_side, out_q),
        )
        for i in range(nw)
    ]
    for pr in procs:
        pr.start()
    outcome = supervise_processes(procs, out_q, n=n, timeout=timeout)
    if outcome.events:
        events.extend(outcome.events)
        if policy == "fail":
            raise_for_events("processes", outcome.events)
    if outcome.all_lost:
        raise_for_events("processes", outcome.events)

    results: list = []
    survived: set[int] = set()
    for worker_id, (_, _, rep) in outcome.results.items():
        survived.add(worker_id)
        for idx, value, side_bytes, one_c, two_c in rep.get("results", ()):
            side = (
                None if side_bytes is None
                else np.frombuffer(side_bytes, dtype=np.uint8).astype(bool)
            )
            results.append((idx, (value, side, one_c, two_c)))
    for worker_id, chunk in enumerate(chunks):
        if worker_id in survived:
            continue
        for idx, parent in chunk:  # salvage: exactness over speed
            results.append(
                (idx,
                 evaluate_tree(n, us, vs, ws, parent, compute_side=compute_side))
            )
    return results
