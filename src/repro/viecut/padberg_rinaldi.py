"""Padberg–Rinaldi local tests for contractible edges.

Padberg & Rinaldi [26] give four local conditions under which an edge
``e = (u, v)`` of weight ``w`` can be contracted while preserving at least
one minimum cut, *provided the trivial cuts (single-vertex cuts) are kept
as candidates* — which every driver in this package does by checking the
minimum weighted degree after each contraction.  With ``λ̂`` the current
minimum-cut upper bound and ``c(·)`` weighted degrees:

* **PR1**: ``w ≥ λ̂``.  Any cut separating u and v contains e, so
  ``λ(u, v) ≥ w ≥ λ̂`` — unconditionally safe, exactly like a CAPFOREST
  mark.
* **PR2**: ``2w ≥ min(c(u), c(v))``.  If a non-trivial minimum cut
  separated u and v, moving the lighter endpoint to the other side would
  not increase the cut — so some minimum cut keeps u, v together or is
  trivial.
* **PR3** (triangle): there is a common neighbour ``t`` with
  ``2(w + c(u, t)) ≥ c(u)`` and ``2(w + c(v, t)) ≥ c(v)``.
* **PR4** (star): ``w + Σ_t min(c(u, t), c(v, t)) ≥ λ̂`` over common
  neighbours ``t`` — the triangle paths certify ``λ(u, v) ≥ λ̂``.
  Unconditionally safe like PR1.

VieCut (paper §2.4) interleaves a linear-work pass of these tests with its
label-propagation contractions; this module reproduces that pass.  PR1/PR2
are evaluated vectorized over all arcs.  PR3/PR4 need common-neighbour
intersections, so they run under a work budget (default linear in m) over
the lowest-degree endpoints first, mirroring VieCut's bounded scan.

Batching note: all tests are evaluated against the *input* graph and the
passing edges are contracted together.  PR1/PR4 marks are safe to batch
(each certifies ``λ(u, v) ≥ λ̂`` in the input graph, as in Lemma 3.2).
PR2/PR3 are individually min-cut-preserving; batching them can in contrived
cases discard all minimum cuts, which is why the exact solvers use only
CAPFOREST marks while these tests power the *inexact* VieCut bound.
"""

from __future__ import annotations

import numpy as np

from ..datastructures.union_find import UnionFind
from ..graph.csr import Graph


def pr12_marks(graph: Graph, lambda_hat: int, uf: UnionFind | None = None) -> UnionFind:
    """Union the endpoints of every edge passing PR1 or PR2 (vectorized)."""
    if uf is None:
        uf = UnionFind(graph.n)
    src = graph.arc_sources()
    dst = graph.adjncy
    w = graph.adjwgt
    wdeg = graph.weighted_degrees()
    passing = (w >= lambda_hat) | (2 * w >= np.minimum(wdeg[src], wdeg[dst]))
    # each undirected edge appears as two arcs; one canonical direction suffices
    passing &= src < dst
    for u, v in zip(src[passing].tolist(), dst[passing].tolist()):
        uf.union(u, v)
    return uf


def pr34_marks(
    graph: Graph,
    lambda_hat: int,
    uf: UnionFind | None = None,
    *,
    work_budget: int | None = None,
) -> UnionFind:
    """Union endpoints passing PR3 or PR4, under a common-neighbour work budget.

    ``work_budget`` bounds the total number of adjacency entries touched
    (default ``8 * m``), keeping the pass near-linear as in VieCut.
    """
    if uf is None:
        uf = UnionFind(graph.n)
    n = graph.n
    if n == 0:
        return uf
    if work_budget is None:
        work_budget = 8 * graph.m

    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    wdeg = graph.weighted_degrees()
    deg = graph.degrees()
    # neighbour weight lookup per vertex, built lazily (only for endpoints we
    # actually examine) to respect the budget
    cache: dict[int, dict[int, int]] = {}

    def nbr_map(v: int) -> dict[int, int]:
        m = cache.get(v)
        if m is None:
            lo, hi = xadj[v], xadj[v + 1]
            m = dict(zip(adjncy[lo:hi].tolist(), adjwgt[lo:hi].tolist()))
            cache[v] = m
        return m

    # cheapest intersections first: edges ordered by deg(u) + deg(v)
    src = graph.arc_sources()
    canon = src < adjncy
    eu = src[canon]
    ev = adjncy[canon]
    ew = adjwgt[canon]
    order = np.argsort(deg[eu] + deg[ev], kind="stable")

    spent = 0
    for idx in order.tolist():
        u, v, w = int(eu[idx]), int(ev[idx]), int(ew[idx])
        du, dv = int(deg[u]), int(deg[v])
        cost = min(du, dv) + 2
        if spent + cost > work_budget:
            break
        spent += cost
        if du > dv:
            u, v = v, u  # iterate the smaller neighbourhood
        mu = nbr_map(u)
        mv = nbr_map(v)
        cu, cv = int(wdeg[u]), int(wdeg[v])
        pr4_sum = w
        pr3_hit = False
        for t, wut in mu.items():
            wvt = mv.get(t)
            if wvt is None:
                continue
            pr4_sum += wut if wut < wvt else wvt
            if not pr3_hit and 2 * (w + wut) >= cu and 2 * (w + wvt) >= cv:
                pr3_hit = True
        if pr3_hit or pr4_sum >= lambda_hat:
            uf.union(u, v)
    return uf


def padberg_rinaldi_marks(
    graph: Graph,
    lambda_hat: int,
    *,
    work_budget: int | None = None,
) -> UnionFind:
    """One full PR pass: PR1/PR2 vectorized, then PR3/PR4 budgeted."""
    uf = pr12_marks(graph, lambda_hat)
    return pr34_marks(graph, lambda_hat, uf, work_budget=work_budget)
