"""Weighted label propagation clustering (Raghavan et al.), as used by VieCut.

VieCut (paper §2.4) finds clusters with strong intra-cluster connectivity
and contracts them, betting that the minimum cut does not split a cluster.
Label propagation: every vertex starts in its own cluster; in each of a
fixed number of rounds the vertices are visited in random order and each
adopts the label with the largest total incident edge weight among its
neighbours.  Sequential running time is O(n + m) per round.

Cluster contraction must only merge *connected* vertex sets, so
:func:`cluster_labels` finalizes by unioning the endpoints of every edge
whose endpoints share a label — any same-label vertices that are not
actually connected through their label class stay separate.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import Graph


def propagate_labels(
    graph: Graph,
    *,
    iterations: int = 2,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Raw label propagation: ``int64[n]`` label per vertex (not dense).

    Ties are broken towards the currently held label (stability), then
    towards the first maximal label encountered in adjacency order.
    """
    if iterations < 0:
        raise ValueError(f"iterations must be non-negative, got {iterations}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    n = graph.n
    labels = list(range(n))
    xadj = graph.xadj.tolist()
    adjncy = graph.adjncy
    adjwgt = graph.adjwgt

    for _ in range(iterations):
        order = rng.permutation(n)
        changed = 0
        for v in order.tolist():
            lo, hi = xadj[v], xadj[v + 1]
            if lo == hi:
                continue
            nbrs = adjncy[lo:hi].tolist()
            wgts = adjwgt[lo:hi].tolist()
            gain: dict[int, int] = {}
            for u, w in zip(nbrs, wgts):
                lab = labels[u]
                gain[lab] = gain.get(lab, 0) + w
            own = labels[v]
            best_label, best_gain = own, gain.get(own, 0)
            for lab, g in gain.items():
                if g > best_gain:
                    best_label, best_gain = lab, g
            if best_label != own:
                labels[v] = best_label
                changed += 1
        if changed == 0:
            break
    return np.array(labels, dtype=np.int64)


def propagate_labels_sync(
    graph: Graph,
    *,
    iterations: int = 2,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Synchronous (Jacobi-style) label propagation, fully vectorized.

    Each round, every vertex simultaneously adopts the label with the
    largest incident weight *as of the previous round*.  Unlike the
    asynchronous scan of :func:`propagate_labels` this needs no per-vertex
    Python loop: one ``lexsort`` groups the arcs by ``(head, tail-label)``
    and a segmented argmax picks each vertex's winner — O(m log m) in numpy
    (the hpc-parallel guides' vectorization rule applied to LP).

    Fully synchronous updates oscillate on symmetric structures (two
    vertices adopting each other's labels forever), so each round applies
    the computed updates to two complementary *random halves* of the
    vertices in turn — the standard semi-synchronous symmetry breaker —
    and ties additionally break toward the currently held label.  Cluster
    quality is statistically indistinguishable from the asynchronous scan
    for VieCut's purposes (tests assert the dumbbell and suite behaviours),
    at roughly a tenth of the interpreter cost.
    """
    if iterations < 0:
        raise ValueError(f"iterations must be non-negative, got {iterations}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    n = graph.n
    labels = np.arange(n, dtype=np.int64)
    if n == 0 or graph.num_arcs == 0 or iterations == 0:
        return labels
    src = graph.arc_sources()
    dst = graph.adjncy
    wgt = graph.adjwgt

    def compute_winners(current: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # group arcs by (src, label[dst]) and sum weights per group
        keys = src * np.int64(n) + current[dst]
        order = np.argsort(keys, kind="stable")
        k_sorted = keys[order]
        w_sorted = wgt[order]
        boundary = np.empty(len(k_sorted), dtype=bool)
        boundary[0] = True
        np.not_equal(k_sorted[1:], k_sorted[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        ends = np.concatenate((starts[1:], [len(k_sorted)]))
        csum = np.concatenate(([0], np.cumsum(w_sorted, dtype=np.int64)))
        gains = csum[ends] - csum[starts]
        group_src = k_sorted[starts] // n
        group_label = k_sorted[starts] % n
        # bonus epsilon for keeping the current label: stability tie-break.
        # Scale gains by 2 and add 1 to the own-label group so strict
        # integer comparison implements "switch only on strictly better".
        scaled = gains * 2 + (group_label == current[group_src])
        # segmented argmax per src: sort groups by (src, scaled) and take
        # the last entry of each src segment
        sort2 = np.lexsort((scaled, group_src))
        gs = group_src[sort2]
        seg_end = np.empty(len(gs), dtype=bool)
        seg_end[-1] = True
        np.not_equal(gs[1:], gs[:-1], out=seg_end[:-1])
        winners = sort2[seg_end]
        return group_src[winners], group_label[winners]

    for _ in range(iterations):
        changed = False
        half = rng.random(n) < 0.5
        for active in (half, ~half):  # two complementary half-updates
            upd_src, upd_label = compute_winners(labels)
            take = active[upd_src]
            new_labels = labels.copy()
            new_labels[upd_src[take]] = upd_label[take]
            if not np.array_equal(new_labels, labels):
                changed = True
            labels = new_labels
        if not changed:
            break
    return labels


def propagate_labels_compiled(
    graph: Graph,
    *,
    iterations: int = 2,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Compiled asynchronous label propagation — the jitted twin of
    :func:`propagate_labels`.

    Rounds and permutations stay in Python (same ``rng.permutation`` draws,
    same early-exit on a quiet round); each round's vertex scan runs as one
    call into :func:`repro.kernels.lp_kernel.lp_round`, which replicates the
    reference's gain accumulation and first-strict-maximum tie-breaking
    exactly — the returned labels are bit-equal to ``propagate_labels`` for
    every graph and seed (tests assert this).  Requires the compiled tier
    (:func:`repro.kernels.compiled_available`); raises otherwise.
    """
    from ..kernels import compiled_available
    from ..kernels.lp_kernel import lp_round

    if not compiled_available():
        raise RuntimeError(
            "propagate_labels_compiled requires the compiled kernel tier "
            "(numba, or REPRO_COMPILED_PUREPY=1)"
        )
    if iterations < 0:
        raise ValueError(f"iterations must be non-negative, got {iterations}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    n = graph.n
    labels = np.arange(n, dtype=np.int64)
    if n == 0 or iterations == 0:
        return labels
    gain = np.zeros(n, dtype=np.int64)
    touched = np.empty(n, dtype=np.int64)
    for _ in range(iterations):
        order = rng.permutation(n).astype(np.int64)
        changed = lp_round(
            graph.xadj, graph.adjncy, graph.adjwgt, labels, order, gain, touched
        )
        if changed == 0:
            break
    return labels


def propagate_labels_parallel(
    graph: Graph,
    *,
    iterations: int = 2,
    workers: int = 4,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Shared-memory parallel label propagation (the VieCut configuration).

    The permutation of each round is split into per-worker chunks processed
    by real threads over one shared label array.  Reads of neighbours'
    labels race with writes by other workers — the classic benign race of
    parallel label propagation (Raghavan et al. [29]): a stale label only
    means a vertex acts on slightly older information, which the next round
    repairs; clustering quality is statistically unchanged.  Matches the
    paper's description of VieCut as "a shared-memory parallel
    implementation of the label propagation algorithm".

    Under CPython the GIL serializes the chunk loops (wall-clock parity,
    not speedup — DESIGN.md §2); the *structure* (shared array, chunked
    permutation, racy reads) is the paper's.
    """
    import threading

    if iterations < 0:
        raise ValueError(f"iterations must be non-negative, got {iterations}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    n = graph.n
    labels = list(range(n))
    xadj = graph.xadj.tolist()
    adjncy = graph.adjncy
    adjwgt = graph.adjwgt

    def work(chunk: list[int]) -> None:
        for v in chunk:
            lo, hi = xadj[v], xadj[v + 1]
            if lo == hi:
                continue
            gain: dict[int, int] = {}
            for u, w in zip(adjncy[lo:hi].tolist(), adjwgt[lo:hi].tolist()):
                lab = labels[u]
                gain[lab] = gain.get(lab, 0) + w
            own = labels[v]
            best_label, best_gain = own, gain.get(own, 0)
            for lab, g in gain.items():
                if g > best_gain:
                    best_label, best_gain = lab, g
            if best_label != own:
                labels[v] = best_label

    for _ in range(iterations):
        order = rng.permutation(n).tolist()
        p = min(workers, max(1, n))
        chunk_size = (n + p - 1) // p
        chunks = [order[i : i + chunk_size] for i in range(0, n, chunk_size)]
        failures: list[tuple[int, Exception]] = []

        def guarded(idx: int, chunk: list[int]) -> None:
            try:
                work(chunk)
            except Exception as exc:  # noqa: BLE001 - worker death must surface
                failures.append((idx, exc))

        threads = [
            threading.Thread(target=guarded, args=(i, c)) for i, c in enumerate(chunks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if failures:
            # a dead chunk worker means this round's labels are only
            # partially propagated — surface it so callers can degrade to
            # the sequential engine instead of silently clustering worse
            from ..runtime.errors import ExecutorUnavailable
            from ..runtime.supervisor import worker_event

            raise ExecutorUnavailable(
                "threads",
                "label-propagation chunk worker died",
                [worker_event(i, "crashed", detail=str(e)) for i, e in failures],
            )
    return np.array(labels, dtype=np.int64)


def cluster_labels(
    graph: Graph,
    *,
    iterations: int = 2,
    rng: np.random.Generator | int | None = None,
    workers: int = 1,
    method: str = "async",
) -> np.ndarray:
    """Dense, connectivity-respecting cluster labels in ``[0, nc)``.

    Two vertices share a cluster iff they are joined by a path of edges
    whose endpoints carry the same propagated label — exactly the blocks
    VieCut contracts.

    ``method`` selects the propagation engine: ``"async"`` (the reference
    sequential scan), ``"sync"`` (vectorized synchronous rounds — the fast
    path VieCut uses by default), ``"compiled"`` (jitted asynchronous scan,
    bit-equal to ``"async"``), or ``"parallel"`` (threaded asynchronous;
    also selected by ``workers > 1``).
    """
    if method not in ("async", "sync", "parallel", "compiled"):
        raise ValueError(f"unknown method {method!r}")
    if workers > 1 or method == "parallel":
        raw = propagate_labels_parallel(
            graph, iterations=iterations, workers=max(workers, 2), rng=rng
        )
    elif method == "sync":
        raw = propagate_labels_sync(graph, iterations=iterations, rng=rng)
    elif method == "compiled":
        raw = propagate_labels_compiled(graph, iterations=iterations, rng=rng)
    else:
        raw = propagate_labels(graph, iterations=iterations, rng=rng)
    return _split_into_connected_clusters(graph, raw)


def _split_into_connected_clusters(graph: Graph, raw: np.ndarray) -> np.ndarray:
    """Dense labels of the components of the same-raw-label subgraph."""
    from ..graph.components import components_from_arcs

    src = graph.arc_sources()
    dst = graph.adjncy
    same = raw[src] == raw[dst]
    _, dense = components_from_arcs(graph.n, src[same], dst[same])
    return dense
