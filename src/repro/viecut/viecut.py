"""VieCut: the inexact multilevel minimum-cut algorithm (paper §2.4).

Repeatedly: cluster with label propagation, contract the clusters, run the
Padberg–Rinaldi local tests, contract again — until the graph is small —
then solve the remnant exactly with NOI.  Every intermediate contracted
graph exposes trivial cuts (minimum weighted degree) that tighten the
bound, and the final exact solve contributes its cut mapped back through
all contractions.

VieCut gives **no approximation guarantee** — a cluster may straddle the
minimum cut — but the returned value is always the capacity of a real cut
of the input graph (so ``λ ≤ result``), and in practice it is usually λ
itself.  The paper uses it exactly this way: as the seed bound ``λ̂`` that
lets NOI/ParCut contract aggressively (§3.1.1).
"""

from __future__ import annotations

import numpy as np

from ..graph.components import connected_components
from ..graph.contract import compose_labels, contract_by_labels, contract_by_union_find
from ..graph.csr import Graph
from ..core.result import MinCutResult
from ..runtime.errors import RuntimeFault
from .label_propagation import cluster_labels
from .padberg_rinaldi import padberg_rinaldi_marks


def viecut(
    graph: Graph,
    *,
    lp_iterations: int = 2,
    small_threshold: int = 64,
    max_rounds: int = 32,
    rng: np.random.Generator | int | None = None,
    workers: int = 1,
    lp_method: str = "sync",
    kernel: str = "scalar",
    pr34_max_arcs: int = 1 << 16,
    tracer=None,
) -> MinCutResult:
    """Fast inexact minimum cut (upper bound with a certified side).

    Parameters
    ----------
    graph:
        Weighted undirected graph with ``n >= 2``.
    lp_iterations:
        Label-propagation rounds per level (the paper uses a small constant).
    small_threshold:
        Once at most this many supervertices remain, finish exactly with NOI.
    max_rounds:
        Safety valve on multilevel rounds (label propagation is randomized
        and may stall; a stalled round falls through to the exact solve).
    rng:
        Seed or generator.
    workers:
        ``> 1`` runs the label-propagation rounds with shared-memory
        threads (the paper's parallel VieCut; see
        :func:`~repro.viecut.label_propagation.propagate_labels_parallel`).
    lp_method:
        Label-propagation engine when ``workers == 1``: ``"sync"``
        (vectorized, the fast default), ``"async"`` (reference scan) or
        ``"compiled"`` (jitted async twin — identical labels to
        ``"async"`` for every graph and seed).  The default stays
        ``"sync"`` regardless of ``kernel`` so a driver's clustering is
        identical across kernel tiers.
    kernel:
        Relaxation kernel for the final exact NOI solve on the remnant
        graph and for the level contractions
        (:data:`repro.kernels.KERNELS`; resolved through
        :func:`repro.kernels.resolve_kernel`).  Does not change the
        clustering, so the returned cut is kernel-independent.
    pr34_max_arcs:
        The triangle/star PR tests (common-neighbour intersections, a
        Python loop) run only once the contracted graph has at most this
        many arcs; the vectorized PR1/PR2 always run.  Keeps the VieCut
        constant linear-ish on large inputs, as the paper's linear-work PR
        pass does.
    tracer:
        Optional :class:`repro.observability.Tracer` receiving
        ``viecut_start`` / ``viecut_level`` / ``viecut_end`` events (one
        per multilevel round; ``None`` adds no work).

    Returns
    -------
    MinCutResult
        ``result.value`` is the capacity of the cut ``result.side`` — an
        upper bound on λ(G), usually equal to it.
    """
    n = graph.n
    if n < 2:
        raise ValueError(f"minimum cut requires at least 2 vertices, got {n}")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)

    from ..kernels import resolve_kernel

    requested_kernel = kernel
    kernel, kernel_fb = resolve_kernel(kernel, tracer=tracer)
    stats: dict = {
        "levels": 0,
        "final_exact_n": 0,
        "kernel": requested_kernel,
        "kernel_resolved": kernel,
        "kernel_fallback": kernel_fb,
    }
    if tracer is not None:
        tracer.emit("viecut_start", n=n, m=graph.m, workers=workers, lp_method=lp_method)

    ncomp, comp_labels = connected_components(graph)
    if ncomp > 1:
        if tracer is not None:
            tracer.emit("viecut_end", value=0, levels=0, final_exact_n=0)
        return MinCutResult(0, comp_labels == 0, n, "viecut", stats)

    v0, deg0 = graph.min_weighted_degree()
    best_value = deg0
    best_side = np.zeros(n, dtype=bool)
    best_side[v0] = True

    labels = np.arange(n, dtype=np.int64)
    g = graph
    for _ in range(max_rounds):
        if g.n <= small_threshold:
            break
        # level: label propagation clustering + contraction.  A parallel LP
        # whose chunk workers die degrades (stickily) to the sequential
        # engine — clustering is a heuristic, so swapping engines never
        # affects the upper-bound contract, only speed.
        try:
            clusters = cluster_labels(
                g, iterations=lp_iterations, rng=rng, workers=workers, method=lp_method
            )
        except RuntimeFault as exc:
            stats["lp_degradations"] = stats.get("lp_degradations", 0) + 1
            stats["lp_degradation_reason"] = str(exc)
            workers = 1
            if lp_method == "parallel":
                lp_method = "sync"
            clusters = cluster_labels(
                g, iterations=lp_iterations, rng=rng, workers=1, method=lp_method
            )
        if int(clusters.max()) + 1 == g.n:
            break  # no cluster merged anything; LP has stalled
        level_n = g.n
        g, lbl = contract_by_labels(g, clusters, kernel=kernel)
        labels = compose_labels(labels, lbl)
        stats["levels"] += 1
        if tracer is not None:
            tracer.emit(
                "viecut_level", level=stats["levels"], n_before=level_n,
                n_after=g.n, best_value=best_value,
            )
        if g.n < 2:
            break
        v, d = g.min_weighted_degree()
        if d < best_value:
            best_value = d
            best_side = labels == v
        # Padberg–Rinaldi pass on the contracted graph (PR3/4 only when the
        # graph is small enough for their intersection loops, see docstring)
        if g.num_arcs <= pr34_max_arcs:
            uf = padberg_rinaldi_marks(g, best_value)
        else:
            from .padberg_rinaldi import pr12_marks

            uf = pr12_marks(g, best_value)
        if uf.count < g.n:
            g, lbl = contract_by_union_find(g, uf, kernel=kernel)
            labels = compose_labels(labels, lbl)
            if g.n < 2:
                break
            v, d = g.min_weighted_degree()
            if d < best_value:
                best_value = d
                best_side = labels == v

    stats["final_exact_n"] = g.n
    if g.n >= 2:
        from ..core.noi import noi_mincut  # local import: noi ⇄ viecut seeding

        exact = noi_mincut(g, pq_kind="heap", bounded=True, rng=rng, kernel=kernel)
        if exact.value < best_value:
            best_value = exact.value
            best_side = exact.side[labels]

    if tracer is not None:
        tracer.emit(
            "viecut_end", value=best_value, levels=stats["levels"],
            final_exact_n=stats["final_exact_n"],
        )
    return MinCutResult(best_value, best_side, n, "viecut", stats)
