"""VieCut: inexact multilevel minimum cut (label propagation + PR tests)."""

from .label_propagation import cluster_labels, propagate_labels, propagate_labels_parallel
from .padberg_rinaldi import padberg_rinaldi_marks, pr12_marks, pr34_marks
from .viecut import viecut

__all__ = [
    "cluster_labels",
    "propagate_labels",
    "propagate_labels_parallel",
    "padberg_rinaldi_marks",
    "pr12_marks",
    "pr34_marks",
    "viecut",
]
