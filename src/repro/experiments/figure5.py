"""Figure 5 — scaling of the parallel algorithm (ParCut).

The paper runs ParCutλ̂-{BStack, BQueue, Heap} with p ∈ {1, 2, 4, 8, 12, 24}
threads on the five largest instances, reporting (top row) self-relative
scalability and (bottom row) speedup over the best sequential variant and
NOI-HNSS.

Python substitution (DESIGN.md §2): wall-clock speedup is reported from the
``processes`` executor (real parallelism); additionally the *modeled*
speedup — total CAPFOREST work divided by the busiest worker's work,
summed over rounds — is reported from the deterministic ``serial``
executor, isolating the algorithmic load balance the paper's scaling
reflects from Python's process overheads.

Usage::

    python -m repro.experiments.figure5 [--workers 1 2 4 8] [--scale 0.5]
                                        [--executor serial|threads|processes]
"""

from __future__ import annotations

import argparse
import time

from ..core.mincut import parallel_mincut
from ..core.noi import noi_mincut
from ..viecut.viecut import viecut as run_viecut
from .instances import largest_web_instances
from .report import format_csv, format_table

PQ_KINDS = ("bstack", "bqueue", "heap")


def run(
    *,
    workers: tuple[int, ...] = (1, 2, 4, 8),
    scale: float = 0.5,
    executor: str = "serial",
    count: int = 5,
    seed: int = 0,
):
    """Return rows: one per (instance, pq_kind, p)."""
    instances = largest_web_instances(count, scale=scale)
    rows = []
    for name, graph in instances:
        # sequential references (paper: NOI-HNSS and the fastest sequential)
        t0 = time.perf_counter()
        hnss = noi_mincut(graph, pq_kind="heap", bounded=False, rng=seed, compute_side=False)
        t_hnss = time.perf_counter() - t0

        t0 = time.perf_counter()
        seed_cut = run_viecut(graph, rng=seed)
        best_seq = noi_mincut(
            graph,
            pq_kind="heap",
            bounded=True,
            initial_bound=seed_cut.value,
            rng=seed,
            compute_side=False,
        )
        t_best_seq = time.perf_counter() - t0

        for pq in PQ_KINDS:
            base_wall = None
            for p in workers:
                t0 = time.perf_counter()
                res = parallel_mincut(
                    graph,
                    workers=p,
                    pq_kind=pq,
                    executor=executor,
                    use_viecut=True,
                    rng=seed,
                    compute_side=False,
                )
                wall = time.perf_counter() - t0
                if base_wall is None:
                    base_wall = wall
                assert res.value == hnss.value == best_seq.value
                rows.append(
                    {
                        "instance": name,
                        "n": graph.n,
                        "m": graph.m,
                        "pq": pq,
                        "p": p,
                        "wall_s": wall,
                        "self_speedup": base_wall / wall if wall > 0 else float("nan"),
                        # schema v2: key always present, None when no parallel
                        # pass ran (e.g. the solve collapsed in the seed)
                        "modeled_speedup": res.stats["modeled_speedup"] or 1.0,
                        "speedup_vs_hnss": t_hnss / wall if wall > 0 else float("nan"),
                        "speedup_vs_best_seq": t_best_seq / wall if wall > 0 else float("nan"),
                        "cut": res.value,
                    }
                )
    return rows


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8])
    ap.add_argument("--scale", type=float, default=0.5)
    ap.add_argument("--executor", choices=("serial", "threads", "processes"), default="serial")
    ap.add_argument("--count", type=int, default=5)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--csv", action="store_true")
    args = ap.parse_args(argv)

    rows = run(
        workers=tuple(args.workers),
        scale=args.scale,
        executor=args.executor,
        count=args.count,
        seed=args.seed,
    )
    headers = [
        "instance",
        "pq",
        "p",
        "wall_s",
        "self_speedup",
        "modeled_speedup",
        "speedup_vs_hnss",
        "speedup_vs_best_seq",
        "cut",
    ]
    table_rows = [[r[h] for h in headers] for r in rows]
    print(f"== Figure 5: ParCut scaling (executor={args.executor}) ==")
    print((format_csv if args.csv else format_table)(headers, table_rows))


if __name__ == "__main__":
    main()
