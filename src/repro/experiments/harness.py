"""Experiment harness: algorithm variant registry, timing, result records.

The eight sequential variants of the paper's Figures 2–4 and the three
parallel ParCut variants of Figure 5 are registered here by their paper
names, so every experiment script and benchmark selects them identically.

Timing follows the paper's protocol (mean over repetitions); each record
also keeps the solver's operation counters, because in pure Python the
*operation counts* are the noise-free signal the paper's wall-clock ratios
correspond to (see DESIGN.md §2).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..core.mincut import parallel_mincut
from ..core.noi import noi_mincut
from ..core.result import MinCutResult
from ..graph.csr import Graph


def _seeded(rng_seed: int) -> np.random.Generator:
    return np.random.default_rng(rng_seed)


def make_sequential_variants(
    kernel: str = "scalar",
) -> dict[str, Callable[[Graph, int], MinCutResult]]:
    """The paper's sequential line-up, keyed by its variant names.

    ``HO-CGKLS`` / ``NOI-CGKLS`` are the Chekuri et al. codes; our stand-ins
    are the same algorithms (flow-based Hao–Orlin; NOI with an unbounded
    heap and no VieCut seed) — see DESIGN.md.  ``kernel`` selects the
    CAPFOREST relaxation kernel for the bounded/VieCut NOI variants
    (results are identical either way, so the cross-variant agreement
    check still holds when timing the two kernels against each other).

    ``NOI-CGKLS`` vs ``NOI-HNSS``: both are unbounded-heap NOI — the
    *algorithm* is the same, the codes differ in implementation tuning
    (the paper benchmarks both binaries).  We model that one axis we
    actually have: the relaxation kernel.  ``NOI-HNSS`` pins the tuned
    ``"scalar"`` kernel (fastest for unbounded-heap scans here, mirroring
    the hand-tuned HNSS code); ``NOI-CGKLS`` pins the untuned ``"vector"``
    stand-in.  Both kernels are bit-identical in results and PQ counters
    (the kernel-parity tests), so the cross-variant agreement and
    operation-count comparisons are unaffected — only wall time differs,
    which is exactly the difference the two paper codes exhibit.
    """

    def ho(graph: Graph, seed: int, tracer=None) -> MinCutResult:
        from ..baselines.hao_orlin import hao_orlin

        # tracer accepted for a uniform variant signature; HO is untraced
        return hao_orlin(graph, compute_side=False)

    def noi_cgkls(graph: Graph, seed: int, tracer=None) -> MinCutResult:
        return noi_mincut(graph, pq_kind="heap", bounded=False, rng=_seeded(seed),
                          compute_side=False, kernel="vector", tracer=tracer)

    def noi_hnss(graph: Graph, seed: int, tracer=None) -> MinCutResult:
        return noi_mincut(graph, pq_kind="heap", bounded=False, rng=_seeded(seed),
                          compute_side=False, kernel="scalar", tracer=tracer)

    def bounded(pq: str) -> Callable[..., MinCutResult]:
        def run(graph: Graph, seed: int, tracer=None) -> MinCutResult:
            return noi_mincut(graph, pq_kind=pq, bounded=True, rng=_seeded(seed),
                              compute_side=False, kernel=kernel, tracer=tracer)

        return run

    def with_viecut(pq: str, bounded_flag: bool) -> Callable[..., MinCutResult]:
        def run(graph: Graph, seed: int, tracer=None) -> MinCutResult:
            from ..viecut.viecut import viecut

            rng = _seeded(seed)
            seed_cut = viecut(graph, rng=rng, tracer=tracer)
            return noi_mincut(
                graph,
                pq_kind=pq,
                bounded=bounded_flag,
                initial_bound=seed_cut.value,
                rng=rng,
                compute_side=False,
                kernel=kernel,
                tracer=tracer,
            )

        return run

    return {
        "HO-CGKLS": ho,
        "NOI-CGKLS": noi_cgkls,
        "NOI-HNSS": noi_hnss,
        "NOIlam-BStack": bounded("bstack"),
        "NOIlam-BQueue": bounded("bqueue"),
        "NOIlam-Heap": bounded("heap"),
        "NOI-HNSS-VieCut": with_viecut("heap", False),
        "NOIlam-Heap-VieCut": with_viecut("heap", True),
    }


def make_parallel_variants(
    workers: int, executor: str = "serial", kernel: str = "scalar"
) -> dict[str, Callable[[Graph, int], MinCutResult]]:
    """ParCutλ̂-{BStack, BQueue, Heap} at a given worker count."""

    def parcut(pq: str) -> Callable[..., MinCutResult]:
        def run(graph: Graph, seed: int, tracer=None) -> MinCutResult:
            return parallel_mincut(
                graph,
                workers=workers,
                pq_kind=pq,
                executor=executor,
                kernel=kernel,
                use_viecut=True,
                rng=_seeded(seed),
                compute_side=False,
                tracer=tracer,
            )

        return run

    return {
        "ParCutlam-BStack": parcut("bstack"),
        "ParCutlam-BQueue": parcut("bqueue"),
        "ParCutlam-Heap": parcut("heap"),
    }


def make_engine_variants(
    algorithms: dict[str, str] | None = None, **solve_kwargs
) -> dict[str, Callable[..., MinCutResult]]:
    """Variants that route through a shared :class:`~repro.engine.SolverEngine`.

    ``algorithms`` maps variant display names to registry algorithm names
    (default: the engine default plus ParCut).  The returned callables
    follow the harness protocol with one extra keyword, ``engine`` —
    :func:`time_variant`/:func:`run_matrix` inject the shared engine there,
    so a whole matrix reuses one worker pool, one set of shared-memory
    planes, and one result cache.  Without an engine they fall back to
    direct :func:`~repro.core.api.minimum_cut` calls (same results, no
    amortisation), so the variants stay usable in engine-less scripts.

    Per-solve tracers are ignored by design: engine requests cannot carry
    live tracer objects — trace at the engine level instead.
    """
    if algorithms is None:
        algorithms = {
            "Engine-NOIlam-Heap-VieCut": "noi-viecut",
            "Engine-ParCutlam-BQueue": "parcut",
        }

    def through_engine(algo: str) -> Callable[..., MinCutResult]:
        def run(graph: Graph, seed: int, tracer=None, engine=None) -> MinCutResult:
            from ..core.api import minimum_cut

            kwargs = dict(solve_kwargs)
            kwargs.setdefault("compute_side", False)
            return minimum_cut(graph, algorithm=algo, engine=engine,
                               rng=int(seed), **kwargs)

        return run

    return {name: through_engine(algo) for name, algo in algorithms.items()}


@dataclass
class RunRecord:
    """One (algorithm, instance) measurement."""

    algorithm: str
    instance: str
    n: int
    m: int
    seconds: float
    value: int
    stats: dict = field(default_factory=dict)
    trace_summary: dict | None = None

    @property
    def ns_per_edge(self) -> float:
        """The paper's Figure 2 y-axis."""
        return self.seconds * 1e9 / max(self.m, 1)


def time_variant(
    name: str,
    fn: Callable[..., MinCutResult],
    graph: Graph,
    instance: str,
    *,
    repetitions: int = 1,
    seed: int = 0,
    trace: bool = False,
    engine=None,
) -> RunRecord:
    """Run ``fn`` ``repetitions`` times; record the mean time and result.

    ``trace=True`` attaches a :class:`~repro.observability.Tracer` to the
    *last* repetition and stores its compact digest in
    ``record.trace_summary`` (event counts, λ̂ trajectory with provenance).
    Variants that do not support tracing (e.g. ``HO-CGKLS``) accept and
    ignore the tracer, yielding an empty summary.

    ``engine`` (a :class:`~repro.engine.SolverEngine`) is forwarded to
    variants whose callable declares an ``engine`` parameter (see
    :func:`make_engine_variants`); classic variants never see it.
    """
    import inspect

    extra: dict = {}
    if engine is not None and "engine" in inspect.signature(fn).parameters:
        extra["engine"] = engine
    times = []
    result: MinCutResult | None = None
    trace_summary: dict | None = None
    for rep in range(repetitions):
        tracer = None
        if trace and rep == repetitions - 1:
            from ..observability import Tracer

            tracer = Tracer()
        t0 = time.perf_counter()
        result = (
            fn(graph, seed + rep, **extra)
            if tracer is None
            else fn(graph, seed + rep, tracer, **extra)
        )
        times.append(time.perf_counter() - t0)
        if tracer is not None:
            trace_summary = tracer.summary()
    assert result is not None
    return RunRecord(
        algorithm=name,
        instance=instance,
        n=graph.n,
        m=graph.m,
        seconds=sum(times) / len(times),
        value=result.value,
        stats=dict(result.stats),
        trace_summary=trace_summary,
    )


def run_matrix(
    variants: dict[str, Callable[..., MinCutResult]],
    instances: list[tuple[str, Graph]],
    *,
    repetitions: int = 1,
    seed: int = 0,
    check_agreement: bool = True,
    trace: bool = False,
    engine=None,
) -> list[RunRecord]:
    """Cross product of variants × instances; optionally asserts all exact
    solvers agree on every instance (they must — they are exact).
    ``trace=True`` attaches a tracer per run (see :func:`time_variant`).
    ``engine=`` shares one :class:`~repro.engine.SolverEngine` across the
    whole matrix for engine-aware variants — the pool, planes, and cache
    are reused for every (variant, instance, repetition) cell."""
    records: list[RunRecord] = []
    for inst_name, graph in instances:
        values: set[int] = set()
        for algo_name, fn in variants.items():
            rec = time_variant(algo_name, fn, graph, inst_name, repetitions=repetitions,
                               seed=seed, trace=trace, engine=engine)
            records.append(rec)
            values.add(rec.value)
        if check_agreement and len(values) > 1:
            raise AssertionError(
                f"exact solvers disagree on {inst_name}: {sorted(values)}"
            )
    return records
