"""Instance registry shared by the experiment scripts and benchmarks.

Two families, mirroring the paper's §4.1:

* **RHG** — random hyperbolic graphs, power-law exponent 5 (α = 2), a sweep
  of sizes × average degrees (paper: n = 2^20..2^25, deg 2^5..2^8; default
  here n = 2^10..2^12, deg 2^3..2^5 — same geometry, pure-Python scale;
  pass larger exponents to sweep further).
* **web-like** — the synthetic Table-1 suite of k-cores
  (:mod:`repro.generators.worlds`).

Graphs are cached per process so that a benchmark touching one instance
with several variants generates it once.
"""

from __future__ import annotations

from functools import lru_cache

from ..generators.rhg import rhg
from ..generators.worlds import DEFAULT_WORLDS, build_suite
from ..graph.components import largest_component
from ..graph.csr import Graph

#: default sweep exponents (paper values minus 10 / minus 2 — see DESIGN.md)
RHG_N_EXPONENTS = (10, 11, 12)
RHG_DEG_EXPONENTS = (3, 4, 5)


@lru_cache(maxsize=None)
def rhg_instance(n_exp: int, deg_exp: int, seed: int = 0) -> Graph:
    """Largest component of an RHG(α=2) with n = 2**n_exp, deg ≈ 2**deg_exp."""
    g = rhg(1 << n_exp, float(1 << deg_exp), alpha=2.0, rng=seed)
    comp, _ = largest_component(g)
    return comp


def rhg_instances(
    n_exponents: tuple[int, ...] = RHG_N_EXPONENTS,
    deg_exponents: tuple[int, ...] = RHG_DEG_EXPONENTS,
    *,
    seed: int = 0,
) -> list[tuple[str, Graph]]:
    """The Figure 2 grid as ``(name, graph)`` pairs, grouped by degree."""
    out: list[tuple[str, Graph]] = []
    for d in deg_exponents:
        for n in n_exponents:
            out.append((f"rhg_2^{n}_deg2^{d}", rhg_instance(n, d, seed)))
    return out


@lru_cache(maxsize=None)
def _suite_cached(scale: float) -> tuple:
    return tuple(build_suite(DEFAULT_WORLDS, scale=scale))


def web_instances(*, scale: float = 0.5) -> list[tuple[str, Graph]]:
    """The synthetic Table-1 suite as ``(name, graph)`` pairs."""
    return [(inst.name, inst.graph) for inst in _suite_cached(scale)]


def largest_web_instances(count: int = 5, *, scale: float = 0.5) -> list[tuple[str, Graph]]:
    """The ``count`` largest suite instances by edge count (Figure 5 inputs)."""
    insts = sorted(_suite_cached(scale), key=lambda i: i.m, reverse=True)
    return [(inst.name, inst.graph) for inst in insts[:count]]
