"""Ablation study: isolate each of the paper's §3 design choices.

Four mechanisms, each reported as its own table:

1. **Bound quality → contraction power** (§3.1.1): one CAPFOREST pass on a
   fixed graph under increasingly loose bounds λ̂.  The paper's core claim
   ("it is possible to contract more edges if we manage to lower λ̂
   beforehand") shows up as the marked-edge count collapsing as the bound
   loosens.
2. **Priority clamping → queue traffic** (§3.1.2, Lemma 3.1): PQ update
   counts with and without the λ̂ clamp, on a hub-heavy and on an RHG
   instance — reproducing the paper's observation that the clamp matters on
   web-like graphs and is near-neutral on RHG.
3. **Queue implementation → scan behaviour** (§3.1.3): operation counts and
   time for BStack/BQueue/Heap on the same scans.
4. **NI sparsification** (§2.3 machinery, this repo's extension): certificate
   size and end-to-end solve time with/without ``sparsify=True``.

Usage::

    python -m repro.experiments.ablation [--scale 0.5]
"""

from __future__ import annotations

import argparse
import time


from ..core.capforest import capforest
from ..core.certificates import certificate_summary, sparse_certificate
from ..core.noi import noi_mincut
from .instances import largest_web_instances, rhg_instance
from .report import format_table


def bound_quality_table(graph, *, seed: int = 0) -> list[list[object]]:
    """Marks per CAPFOREST pass as the bound loosens from λ to 4δ."""
    lam = noi_mincut(graph, rng=seed, compute_side=False).value
    _, delta = graph.min_weighted_degree()
    rows = []
    bounds = sorted({lam, max(lam, (lam + delta) // 2), delta, 2 * delta, 4 * delta})
    for bound in bounds:
        res = capforest(graph, bound, pq_kind="heap", rng=seed, fixed_bound=True)
        rows.append(
            [
                bound,
                f"{bound / lam:.1f}x lambda",
                res.n_marked,
                graph.n - res.uf.count,
                res.pq_stats.updates,
                res.pq_stats.skipped_updates,
            ]
        )
    return rows


def clamp_table(instances, *, seed: int = 0) -> list[list[object]]:
    rows = []
    for name, g in instances:
        _, delta = g.min_weighted_degree()
        for bounded in (False, True):
            t0 = time.perf_counter()
            res = capforest(g, int(delta), pq_kind="heap", bounded=bounded, rng=seed)
            dt = time.perf_counter() - t0
            rows.append(
                [
                    name,
                    "clamped" if bounded else "unbounded",
                    res.pq_stats.updates,
                    res.pq_stats.skipped_updates,
                    dt,
                ]
            )
    return rows


def queue_table(instances, *, seed: int = 0) -> list[list[object]]:
    rows = []
    for name, g in instances:
        _, delta = g.min_weighted_degree()
        for pq in ("bstack", "bqueue", "heap"):
            t0 = time.perf_counter()
            res = capforest(g, int(delta), pq_kind=pq, rng=seed)
            dt = time.perf_counter() - t0
            rows.append([name, pq, res.pq_stats.total, res.n_marked, dt])
    return rows


def sparsify_table(instances, *, seed: int = 0) -> list[list[object]]:
    rows = []
    for name, g in instances:
        t0 = time.perf_counter()
        plain = noi_mincut(g, rng=seed, compute_side=False)
        t_plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        sparse = noi_mincut(g, rng=seed, compute_side=False, sparsify=True)
        t_sparse = time.perf_counter() - t0
        assert plain.value == sparse.value
        cert = sparse_certificate(g, plain.value + 1)
        summary = certificate_summary(g, cert, plain.value + 1)
        rows.append(
            [name, g.m, summary["certificate_edges"], f"{summary['edge_ratio']:.2f}",
             t_plain, t_sparse, plain.value]
        )
    return rows


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=0.5)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    web = largest_web_instances(2, scale=args.scale)
    rhg = [("rhg_2^11_deg2^5", rhg_instance(11, 5, args.seed))]

    print("== Ablation 1: bound quality -> contraction power (one CAPFOREST pass) ==")
    print(
        format_table(
            ["bound", "vs_lambda", "marks", "vertices_merged", "pq_updates", "pq_skipped"],
            bound_quality_table(rhg[0][1], seed=args.seed),
        )
    )
    print("== Ablation 2: priority clamp -> queue traffic (Lemma 3.1) ==")
    print(
        format_table(
            ["instance", "mode", "pq_updates", "pq_skipped", "seconds"],
            clamp_table(web + rhg, seed=args.seed),
        )
    )
    print("== Ablation 3: queue implementation -> scan cost ==")
    print(
        format_table(
            ["instance", "queue", "pq_ops", "marks", "seconds"],
            queue_table(web + rhg, seed=args.seed),
        )
    )
    print("== Ablation 4: NI sparse certificate ==")
    print(
        format_table(
            ["instance", "m", "cert_m", "ratio", "t_plain", "t_sparsified", "lambda"],
            sparsify_table(web + rhg, seed=args.seed),
        )
    )


if __name__ == "__main__":
    main()
