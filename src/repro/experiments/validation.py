"""Monte-Carlo cross-validation: all solvers against each other at scale.

The test suite proves correctness on thousands of small instances; this
module is the *operational* counterpart — a runnable randomized audit over
configurable instance sizes that reports an agreement matrix and certifies
every returned cut side.  Useful after porting, optimizing, or extending
any solver::

    python -m repro.experiments.validation --trials 50 --n-max 60

Exit status is non-zero on any disagreement, so it can serve as a CI gate.
"""

from __future__ import annotations

import argparse
from collections import Counter

import numpy as np

from ..core.api import EXACT_ALGORITHMS, minimum_cut
from ..generators import connected_gnm, gnm
from .report import format_table


def run_audit(
    *,
    trials: int = 50,
    n_max: int = 40,
    w_max: int = 9,
    seed: int = 0,
    algorithms: tuple[str, ...] = EXACT_ALGORITHMS,
    include_disconnected: bool = True,
) -> dict:
    """Run the audit; returns a report dict (see keys below).

    For every trial a random (possibly disconnected) weighted graph is
    solved by every algorithm in ``algorithms``; all exact values must
    agree and every side must certify.  Inexact solvers (viecut, matula,
    karger-stein) are additionally checked to sit in their guaranteed
    ranges relative to the exact value.
    """
    rng = np.random.default_rng(seed)
    disagreements: list[dict] = []
    uncertified: list[dict] = []
    guarantee_violations: list[dict] = []
    value_hist: Counter = Counter()

    for trial in range(trials):
        n = int(rng.integers(2, n_max))
        max_m = n * (n - 1) // 2
        if include_disconnected and rng.random() < 0.2:
            m = min(int(rng.integers(0, max(n, 1))), max_m)
            g = gnm(n, m, rng=rng, weights=(1, w_max))
        else:
            m = min(int(rng.integers(n - 1, 3 * n)), max_m)
            g = connected_gnm(n, m, rng=rng, weights=(1, w_max))

        values: dict[str, int] = {}
        for algo in algorithms:
            res = minimum_cut(g, algorithm=algo, rng=int(rng.integers(1 << 31)))
            values[algo] = res.value
            if res.side is not None and not res.verify(g):
                uncertified.append({"trial": trial, "algorithm": algo, "value": res.value})
        if len(set(values.values())) != 1:
            disagreements.append({"trial": trial, "n": g.n, "m": g.m, "values": values})
            continue
        lam = next(iter(values.values()))
        value_hist[lam] += 1

        vc = minimum_cut(g, algorithm="viecut", rng=int(rng.integers(1 << 31)))
        if vc.value < lam or not vc.verify(g):
            guarantee_violations.append({"trial": trial, "algorithm": "viecut", "value": vc.value, "lambda": lam})
        mt = minimum_cut(g, algorithm="matula", eps=0.5, rng=int(rng.integers(1 << 31)))
        if not (lam <= mt.value <= 2.5 * lam) or not mt.verify(g):
            guarantee_violations.append({"trial": trial, "algorithm": "matula", "value": mt.value, "lambda": lam})
        ks = minimum_cut(g, algorithm="karger-stein", rng=int(rng.integers(1 << 31)))
        if ks.value < lam or not ks.verify(g):
            guarantee_violations.append({"trial": trial, "algorithm": "karger-stein", "value": ks.value, "lambda": lam})

    return {
        "trials": trials,
        "algorithms": list(algorithms),
        "disagreements": disagreements,
        "uncertified": uncertified,
        "guarantee_violations": guarantee_violations,
        "value_histogram": dict(sorted(value_hist.items())),
        "passed": not (disagreements or uncertified or guarantee_violations),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trials", type=int, default=50)
    ap.add_argument("--n-max", type=int, default=40)
    ap.add_argument("--w-max", type=int, default=9)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--no-disconnected", action="store_true")
    args = ap.parse_args(argv)

    report = run_audit(
        trials=args.trials,
        n_max=args.n_max,
        w_max=args.w_max,
        seed=args.seed,
        include_disconnected=not args.no_disconnected,
    )
    print(f"== Monte-Carlo solver audit: {report['trials']} trials ==")
    print(f"algorithms: {', '.join(report['algorithms'])}")
    rows = [[k, v] for k, v in report["value_histogram"].items()]
    print(format_table(["lambda", "instances"], rows))
    for key in ("disagreements", "uncertified", "guarantee_violations"):
        entries = report[key]
        print(f"{key}: {len(entries)}")
        for e in entries[:5]:
            print(f"  {e}")
    print("PASSED" if report["passed"] else "FAILED")
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
