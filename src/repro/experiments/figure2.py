"""Figure 2 — running time per edge on RHG graphs.

The paper plots nanoseconds per edge against the number of vertices, one
panel per average degree (2^5..2^8), for eight sequential variants.  This
script regenerates the same series (scaled sizes, see DESIGN.md §2) and
additionally prints the priority-queue operation counts that explain the
paper's observation that on RHG graphs "nearly no vertices reach priorities
much larger than λ̂", so NOI-HNSS ≈ NOIλ̂-Heap there.

Usage::

    python -m repro.experiments.figure2 [--n-exp 10 11 12] [--deg-exp 3 4 5]
                                        [--reps 1] [--csv]
"""

from __future__ import annotations

import argparse

from .harness import make_sequential_variants, run_matrix
from .instances import RHG_DEG_EXPONENTS, RHG_N_EXPONENTS, rhg_instance
from .report import format_csv, format_table


def run(
    n_exponents: tuple[int, ...] = RHG_N_EXPONENTS,
    deg_exponents: tuple[int, ...] = RHG_DEG_EXPONENTS,
    *,
    repetitions: int = 1,
    seed: int = 0,
):
    """Return the records grouped per degree panel: {deg_exp: [RunRecord]}."""
    variants = make_sequential_variants()
    panels = {}
    for d in deg_exponents:
        instances = [(f"rhg_2^{n}_deg2^{d}", rhg_instance(n, d, seed)) for n in n_exponents]
        panels[d] = run_matrix(variants, instances, repetitions=repetitions, seed=seed)
    return panels


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n-exp", type=int, nargs="+", default=list(RHG_N_EXPONENTS))
    ap.add_argument("--deg-exp", type=int, nargs="+", default=list(RHG_DEG_EXPONENTS))
    ap.add_argument("--reps", type=int, default=1)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--csv", action="store_true")
    args = ap.parse_args(argv)

    panels = run(tuple(args.n_exp), tuple(args.deg_exp), repetitions=args.reps, seed=args.seed)
    headers = ["instance", "n", "m", "algorithm", "ns_per_edge", "seconds", "cut", "pq_ops"]
    for d, records in panels.items():
        rows = [
            [
                r.instance,
                r.n,
                r.m,
                r.algorithm,
                r.ns_per_edge,
                r.seconds,
                r.value,
                r.stats.get("pq_pushes", 0) + r.stats.get("pq_updates", 0) + r.stats.get("pq_pops", 0),
            ]
            for r in records
        ]
        print(f"== Figure 2 panel: average degree 2^{d} ==")
        print((format_csv if args.csv else format_table)(headers, rows))


if __name__ == "__main__":
    main()
