"""Plain-text table / series rendering for the experiment scripts.

Everything the paper shows as a plot is emitted here as an aligned text
table (one row per point / instance) plus optional CSV, so
``python -m repro.experiments.figureN`` regenerates the figure's data
series verbatim into the terminal and EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import io
from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace-aligned table with a header rule."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    out = io.StringIO()
    out.write("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip() + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in cells:
        out.write("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)).rstrip() + "\n")
    return out.getvalue()


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    out = io.StringIO()
    out.write(",".join(str(h) for h in headers) + "\n")
    for row in rows:
        out.write(",".join(_fmt(c) for c in row) + "\n")
    return out.getvalue()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3e}"
        return f"{value:.3f}"
    if value is None:
        return "-"
    return str(value)
