"""Figure 1 — parallel CAPFOREST region growth (the paper's illustration).

Figure 1 in the paper is a schematic: "Every process starts at a random
vertex and scans the region around the start vertex.  These regions do not
overlap."  This script regenerates its *content* as data: it runs one
parallel CAPFOREST pass and reports, per worker, the region size, the
boundary (blacklisted pops), the work share, and the region-size balance —
the quantities the schematic illustrates and Figure 5's scaling depends on.

Usage::

    python -m repro.experiments.figure1 [--workers 5] [--scale 0.5]
"""

from __future__ import annotations

import argparse

import numpy as np

from ..core.parallel_capforest import parallel_capforest
from .instances import largest_web_instances, rhg_instance
from .report import format_table


def run(graph, *, workers: int = 5, seed: int = 0):
    """One pass; returns (per-worker rows, summary dict)."""
    _, delta = graph.min_weighted_degree()
    res = parallel_capforest(graph, int(delta), workers=workers, pq_kind="bqueue", rng=seed)
    rows = []
    for rep in sorted(res.workers, key=lambda r: r.worker_id):
        rows.append(
            [
                rep.worker_id,
                rep.start_vertex,
                rep.vertices_scanned,
                rep.blacklisted,
                rep.edges_scanned,
                f"{rep.work / max(res.total_work, 1):.2%}",
            ]
        )
    sizes = np.array([r.vertices_scanned for r in res.workers], dtype=float)
    summary = {
        "vertices_covered": int(sizes.sum()),
        "n": graph.n,
        "region_balance_max_over_mean": float(sizes.max() / sizes.mean()) if sizes.size else 0.0,
        "marked_edges": res.n_marked,
        "modeled_speedup_one_pass": res.total_work / max(res.makespan_work, 1),
    }
    return rows, summary


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workers", type=int, default=5)
    ap.add_argument("--scale", type=float, default=0.5)
    ap.add_argument("--rhg", action="store_true", help="use an RHG instance instead")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    if args.rhg:
        name, graph = "rhg_2^12_deg2^4", rhg_instance(12, 4, args.seed)
    else:
        name, graph = largest_web_instances(1, scale=args.scale)[0]

    rows, summary = run(graph, workers=args.workers, seed=args.seed)
    print(f"== Figure 1: region growth on {name} (n={graph.n}, m={graph.m}) ==")
    print(
        format_table(
            ["worker", "start", "region_size", "blacklisted", "edges_scanned", "work_share"],
            rows,
        )
    )
    for key, value in summary.items():
        print(f"{key}: {value}")


if __name__ == "__main__":
    main()
