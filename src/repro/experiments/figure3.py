"""Figure 3 — slowdown relative to NOIλ̂-Heap-VieCut on web-like graphs.

The paper normalizes every variant's running time by NOIλ̂-Heap-VieCut's
and plots the slowdown against the number of edges and the average degree.
``--speedups`` additionally prints the §4.2 headline numbers:

* geometric-mean speedup of NOIλ̂-Heap over NOI-HNSS (paper: 1.35, up to
  1.83 on hub-heavy graphs),
* geometric-mean speedup of NOIλ̂-BStack over NOIλ̂-Heap on web-like
  graphs (paper: 1.22),
* geometric-mean speedup of adding VieCut (paper: 1.34),
* plus the skipped-PQ-update counts that *cause* the first effect.

Usage::

    python -m repro.experiments.figure3 [--scale 0.5] [--reps 1] [--speedups]
"""

from __future__ import annotations

import argparse
from collections import defaultdict

from ..utils.stats import geometric_mean
from .harness import make_sequential_variants, run_matrix
from .instances import web_instances
from .report import format_csv, format_table

REFERENCE = "NOIlam-Heap-VieCut"


def run(*, scale: float = 0.5, repetitions: int = 1, seed: int = 0):
    variants = make_sequential_variants()
    instances = web_instances(scale=scale)
    return run_matrix(variants, instances, repetitions=repetitions, seed=seed)


def slowdown_rows(records) -> list[list[object]]:
    ref_time: dict[str, float] = {
        r.instance: r.seconds for r in records if r.algorithm == REFERENCE
    }
    rows = []
    for r in records:
        rows.append(
            [
                r.instance,
                r.m,
                round(2 * r.m / max(r.n, 1), 1),
                r.algorithm,
                r.seconds / ref_time[r.instance],
                r.seconds,
                r.value,
            ]
        )
    return rows


def speedup_summary(records) -> list[list[object]]:
    """The §4.2 paired geometric-mean speedups."""
    by_algo: dict[str, dict[str, float]] = defaultdict(dict)
    skipped: dict[str, dict[str, int]] = defaultdict(dict)
    for r in records:
        by_algo[r.algorithm][r.instance] = r.seconds
        skipped[r.algorithm][r.instance] = r.stats.get("pq_skipped_updates", 0)
    pairs = [
        ("NOIlam-Heap vs NOI-HNSS (bounded queue effect)", "NOI-HNSS", "NOIlam-Heap"),
        ("NOIlam-BStack vs NOIlam-Heap (bucket queue effect)", "NOIlam-Heap", "NOIlam-BStack"),
        ("NOIlam-BStack vs NOIlam-BQueue", "NOIlam-BQueue", "NOIlam-BStack"),
        ("NOIlam-Heap-VieCut vs NOIlam-Heap (VieCut seed effect)", "NOIlam-Heap", "NOIlam-Heap-VieCut"),
        ("NOIlam-Heap-VieCut vs NOI-HNSS (all optimizations)", "NOI-HNSS", "NOIlam-Heap-VieCut"),
    ]
    rows: list[list[object]] = []
    for label, base, improved in pairs:
        common = sorted(set(by_algo[base]) & set(by_algo[improved]))
        ratios = [by_algo[base][i] / by_algo[improved][i] for i in common]
        rows.append([label, geometric_mean(ratios), max(ratios), min(ratios)])
    total_skipped = sum(skipped["NOIlam-Heap"].values())
    rows.append(["PQ updates skipped by the λ̂ bound (NOIlam-Heap, total)", total_skipped, "-", "-"])
    return rows


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=0.5)
    ap.add_argument("--reps", type=int, default=1)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--speedups", action="store_true")
    ap.add_argument("--csv", action="store_true")
    args = ap.parse_args(argv)

    records = run(scale=args.scale, repetitions=args.reps, seed=args.seed)
    headers = ["instance", "m", "avg_deg", "algorithm", "slowdown_vs_ref", "seconds", "cut"]
    print(f"== Figure 3: slowdown relative to {REFERENCE} ==")
    print((format_csv if args.csv else format_table)(headers, slowdown_rows(records)))
    if args.speedups:
        print("== §4.2 geometric-mean speedups ==")
        print(
            format_table(
                ["comparison", "geomean", "max", "min"], speedup_summary(records)
            )
        )


if __name__ == "__main__":
    main()
