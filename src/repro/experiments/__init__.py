"""Experiment harness regenerating every table and figure of the paper.

Each module is runnable: ``python -m repro.experiments.figure2`` etc.; see
DESIGN.md's experiment index for the mapping to the paper.
"""

from .harness import (
    RunRecord,
    make_engine_variants,
    make_parallel_variants,
    make_sequential_variants,
    run_matrix,
    time_variant,
)

__all__ = [
    "RunRecord",
    "make_engine_variants",
    "make_parallel_variants",
    "make_sequential_variants",
    "run_matrix",
    "time_variant",
]
