"""Figure 4 — performance profile over all instances.

For every algorithm and instance the ratio ``t_best / t_algo`` is computed
(1.0 = fastest on that instance, values near 0 = much slower, below 0 =
could not run); per algorithm the ratios are sorted ascending.  The paper's
plot is exactly these series; this script prints them as columns.

Usage::

    python -m repro.experiments.figure4 [--scale 0.35] [--rhg] [--csv]
"""

from __future__ import annotations

import argparse
from collections import defaultdict

from ..utils.stats import performance_profile
from .harness import make_sequential_variants, run_matrix
from .instances import rhg_instances, web_instances
from .report import format_csv, format_table


def run(*, scale: float = 0.35, include_rhg: bool = True, repetitions: int = 1, seed: int = 0):
    variants = make_sequential_variants()
    instances = web_instances(scale=scale)
    if include_rhg:
        instances = instances + rhg_instances((10, 11), (3, 4), seed=seed)
    return run_matrix(variants, instances, repetitions=repetitions, seed=seed)


def profile_columns(records) -> tuple[list[str], list[list[object]]]:
    per_algo_times: dict[str, dict[str, float]] = defaultdict(dict)
    instance_order: list[str] = []
    for r in records:
        if r.instance not in instance_order:
            instance_order.append(r.instance)
        per_algo_times[r.algorithm][r.instance] = r.seconds
    times = {
        algo: [per_algo_times[algo].get(i) for i in instance_order]
        for algo in per_algo_times
    }
    profile = performance_profile(times)
    algos = sorted(profile)
    depth = max(len(v) for v in profile.values())
    headers = ["rank"] + algos
    rows = []
    for i in range(depth):
        rows.append([i + 1] + [profile[a][i] if i < len(profile[a]) else None for a in algos])
    return headers, rows


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=0.35)
    ap.add_argument("--no-rhg", action="store_true")
    ap.add_argument("--reps", type=int, default=1)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--csv", action="store_true")
    args = ap.parse_args(argv)

    records = run(
        scale=args.scale, include_rhg=not args.no_rhg, repetitions=args.reps, seed=args.seed
    )
    headers, rows = profile_columns(records)
    print("== Figure 4: performance profile (t_best / t_algo, sorted ascending) ==")
    print((format_csv if args.csv else format_table)(headers, rows))


if __name__ == "__main__":
    main()
