"""Table 1 — instance statistics for the (synthetic) web-like suite.

The paper's Table 1 lists, per base graph and per chosen k: the original
size, the k-core size, the core's minimum cut λ and its minimum degree δ.
This script regenerates the same table over the synthetic suite, computing
λ exactly (NOIλ̂-Heap-VieCut) — and flags the cores where λ < δ, the
paper's selection criterion ("cores in which the minimum cut is not equal
to the minimum degree").

Usage::

    python -m repro.experiments.table1 [--scale 0.5] [--csv]
"""

from __future__ import annotations

import argparse

from ..core.api import minimum_cut
from ..generators.worlds import DEFAULT_WORLDS, build_instances
from .report import format_csv, format_table


def run(*, scale: float = 0.5, seed: int = 0) -> list[list[object]]:
    rows: list[list[object]] = []
    for spec in DEFAULT_WORLDS:
        for inst in build_instances(spec, scale=scale):
            g = inst.graph
            delta = int(g.weighted_degrees().min())
            lam = minimum_cut(g, algorithm="noi-viecut", rng=seed, compute_side=False).value
            rows.append(
                [
                    inst.world,
                    inst.base_n,
                    inst.base_m,
                    inst.k,
                    g.n,
                    g.m,
                    lam,
                    delta,
                    "yes" if lam < delta else "no",
                ]
            )
    return rows


HEADERS = ["graph", "n", "m", "k", "core_n", "core_m", "lambda", "delta", "nontrivial"]


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=0.5)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--csv", action="store_true")
    args = ap.parse_args(argv)
    rows = run(scale=args.scale, seed=args.seed)
    print("== Table 1: k-core instance statistics ==")
    print((format_csv if args.csv else format_table)(HEADERS, rows))


if __name__ == "__main__":
    main()
