"""The cactus representation of *all* minimum cuts (Dinitz–Karzanov–Lomonosov).

A cactus is a connected graph in which every edge belongs to at most one
cycle.  For a weighted graph ``G`` with minimum cut value λ there is a
cactus ``C`` and a mapping π from ``G``'s vertices onto ``C``'s nodes such
that the minimum cuts of ``G`` are exactly the cuts obtained by removing
either **one tree edge** of ``C`` or **two edges of the same cycle** —
O(n) cactus nodes represent the up-to-:math:`\\binom{n}{2}` minimum cuts
implicitly.  Nodes may be *empty* (no graph vertex maps to them); they are
the junctions the structure needs, e.g. the centre of a star of three
λ-cuts.

:class:`Cactus` here is the query side of the subsystem: a picklable plain
data structure (so it crosses the engine's worker-pool boundary and lives
in the result cache) with the API the VieCut-consuming exemplars expect —
``num_min_cuts()``, cut enumeration, ``most_balanced_cut()`` and the
per-vertex ``in_cut`` membership array of VieCut's ``set_node_in_cut``.
Construction lives in :mod:`repro.cactus.build`.

Cut canonicalisation: every enumerated cut is a boolean side mask over the
*original* vertices with ``mask[0] == False`` (vertex 0 is always on the
``False`` side), so masks compare bytewise and sets of cuts compare as
sets of ``mask.tobytes()``.
"""

from __future__ import annotations

from collections import deque

import numpy as np


class CactusError(ValueError):
    """The cut family handed to the builder is not a minimum-cut family."""


class Cactus:
    """Cactus of all minimum cuts; see module docstring.

    Parameters
    ----------
    n:
        Number of vertices of the original graph.
    lam:
        The minimum cut value λ the cactus represents.
    node_members:
        Per cactus node, the list of original vertex ids mapped onto it
        (empty list for empty nodes).  Every original vertex appears in
        exactly one node.
    tree_edges:
        ``(node_a, node_b)`` pairs — each represents one minimum cut.
    cycles:
        Node-id lists in circular order (length >= 3); removing any two
        edges of one cycle is a minimum cut.
    stats:
        Construction counters (contracted size, passes, enumeration work).
    """

    def __init__(self, n: int, lam: int, node_members: list[list[int]],
                 tree_edges: list[tuple[int, int]], cycles: list[list[int]],
                 stats: dict | None = None) -> None:
        self.n = int(n)
        self.lam = int(lam)
        self.node_members = [sorted(int(v) for v in members)
                             for members in node_members]
        self.tree_edges = [(int(a), int(b)) for a, b in tree_edges]
        self.cycles = [[int(c) for c in cyc] for cyc in cycles]
        self.stats = dict(stats or {})
        self._masks: list[np.ndarray] | None = None

    # -- sizes ---------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.node_members)

    @property
    def num_cycles(self) -> int:
        return len(self.cycles)

    # -- structural edges ----------------------------------------------------

    def _edges(self) -> list[tuple[int, int]]:
        """Every structural edge (tree edges, then each cycle's edges)."""
        edges = list(self.tree_edges)
        for cyc in self.cycles:
            k = len(cyc)
            edges.extend((cyc[i], cyc[(i + 1) % k]) for i in range(k))
        return edges

    def _adjacency(self) -> list[list[tuple[int, int]]]:
        """Node adjacency as ``(neighbor, edge_index)`` over :meth:`_edges`."""
        adj: list[list[tuple[int, int]]] = [[] for _ in range(self.num_nodes)]
        for idx, (a, b) in enumerate(self._edges()):
            adj[a].append((b, idx))
            adj[b].append((a, idx))
        return adj

    def _component_after(self, removed: set[int], start: int,
                         adj: list[list[tuple[int, int]]]) -> set[int]:
        """Node set reachable from ``start`` with edges ``removed`` cut."""
        seen = {start}
        dq = deque([start])
        while dq:
            v = dq.popleft()
            for u, idx in adj[v]:
                if idx not in removed and u not in seen:
                    seen.add(u)
                    dq.append(u)
        return seen

    def _structural_cuts(self):
        """Yield the node-id side of every structural cut (with repeats)."""
        adj = self._adjacency()
        n_tree = len(self.tree_edges)
        for idx, (a, _b) in enumerate(self.tree_edges):
            yield self._component_after({idx}, a, adj)
        offset = n_tree
        for cyc in self.cycles:
            k = len(cyc)
            # cycle edge i joins cyc[i] and cyc[i+1]; removing edges i < j
            # separates the run cyc[i+1..j] from the rest
            for i in range(k):
                for j in range(i + 1, k):
                    yield self._component_after(
                        {offset + i, offset + j}, cyc[(i + 1) % k], adj
                    )
            offset += k

    # -- cut enumeration -----------------------------------------------------

    def cut_masks(self) -> list[np.ndarray]:
        """Every distinct minimum cut as a canonical boolean side mask.

        Masks are over the original vertices with ``mask[0] == False``;
        structural cuts that induce the same vertex bipartition (possible
        around empty nodes) are deduplicated.  The list is cached and must
        be treated as read-only.
        """
        if self._masks is not None:
            return self._masks
        masks: list[np.ndarray] = []
        seen: set[bytes] = set()
        for node_side in self._structural_cuts():
            mask = np.zeros(self.n, dtype=bool)
            for node in node_side:
                mask[self.node_members[node]] = True
            if self.n and mask[0]:
                mask = ~mask
            k = int(mask.sum())
            if k == 0 or k == self.n:
                continue  # empty-node-only side: not a vertex cut
            key = mask.tobytes()
            if key in seen:
                continue
            seen.add(key)
            masks.append(mask)
        masks.sort(key=lambda m: m.tobytes())
        self._masks = masks
        return masks

    def num_min_cuts(self) -> int:
        """Number of distinct minimum cuts the cactus represents."""
        return len(self.cut_masks())

    def most_balanced_cut(self) -> tuple[np.ndarray, dict]:
        """The minimum cut whose sides are closest in size.

        VieCut's ``find_most_balanced_cut``: over all minimum cuts,
        maximise ``min(|A|, |B|)`` (equivalently minimise the imbalance
        ``| |A| - |B| |``); ties break deterministically on the canonical
        mask bytes.  Returns ``(mask, info)`` where ``mask`` is the
        canonical side mask and ``info`` carries ``smaller_side_size``,
        ``larger_side_size`` and ``imbalance``.
        """
        masks = self.cut_masks()
        if not masks:
            raise CactusError("cactus represents no cuts")
        best = min(masks, key=lambda m: (abs(self.n - 2 * int(m.sum())),
                                         m.tobytes()))
        k = int(best.sum())
        info = {
            "smaller_side_size": min(k, self.n - k),
            "larger_side_size": max(k, self.n - k),
            "imbalance": abs(self.n - 2 * k),
        }
        return best, info

    def in_cut(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Per-vertex membership array for a chosen cut (VieCut's
        ``set_node_in_cut``): ``uint8[n]`` with 1 for vertices inside the
        cut side.  Defaults to the most balanced cut's *smaller* side."""
        if mask is None:
            mask, _ = self.most_balanced_cut()
            if int(mask.sum()) * 2 > self.n:
                mask = ~mask
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.n:
            raise ValueError("mask length must equal n")
        return mask.astype(np.uint8)

    def node_of(self) -> np.ndarray:
        """``int64[n]``: cactus node id of every original vertex."""
        out = np.full(self.n, -1, dtype=np.int64)
        for node, members in enumerate(self.node_members):
            out[members] = node
        return out

    def __repr__(self) -> str:
        return (
            f"Cactus(n={self.n}, lam={self.lam}, nodes={self.num_nodes}, "
            f"tree_edges={len(self.tree_edges)}, cycles={self.num_cycles}, "
            f"min_cuts={self.num_min_cuts()})"
        )

    # pickling crosses the engine's pool boundary; drop the mask cache so
    # the payload ships the structure, not the (re-derivable) enumeration
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_masks"] = None
        return state
